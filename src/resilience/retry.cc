#include "resilience/retry.h"

#include <array>

#include "util/require.h"

namespace noisybeeps::resilience {
namespace {

// SplitMix64's finalizer (distinct constants from the Rng seed chain so a
// perturbed stream never collides with a plain Split() child).
std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return z ^ (z >> 33);
}

}  // namespace

std::int64_t BackoffMillis(const RetryPolicy& policy, int attempt) {
  NB_REQUIRE(attempt >= 0, "attempt index must be non-negative");
  NB_REQUIRE(policy.base_backoff_millis >= 0 && policy.max_backoff_millis >= 0,
             "backoff bounds must be non-negative");
  if (attempt == 0 || policy.base_backoff_millis == 0) return 0;
  std::int64_t backoff = policy.base_backoff_millis;
  for (int a = 1; a < attempt; ++a) {
    if (backoff >= policy.max_backoff_millis) break;
    // Double only while backoff*2 cannot exceed the cap: with a huge cap
    // (e.g. INT64_MAX) an unguarded doubling would signed-overflow (UB)
    // before the cap check stopped it.
    if (backoff > policy.max_backoff_millis / 2) {
      backoff = policy.max_backoff_millis;
      break;
    }
    backoff *= 2;
  }
  return backoff < policy.max_backoff_millis ? backoff
                                             : policy.max_backoff_millis;
}

Rng PerturbedAttemptRng(const Rng& base, int attempt) {
  NB_REQUIRE(attempt >= 0, "attempt index must be non-negative");
  if (attempt == 0) return base;
  std::array<std::uint64_t, 4> state = base.SaveState();
  const std::uint64_t salt =
      Mix(static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ULL);
  for (std::size_t w = 0; w < state.size(); ++w) {
    state[w] = Mix(state[w] ^ (salt + w));
  }
  // Astronomically unlikely, but Restore() requires a non-zero state.
  if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0) {
    state[0] = 0x9e3779b97f4a7c15ULL;
  }
  return Rng::Restore(state);
}

}  // namespace noisybeeps::resilience
