// ResilientTrials: checkpoint/resume, per-trial watchdogs, and
// retry-with-backoff over the ParallelTrials engine.
//
// The resilience contract (verified by tests/resilience_resume_test.cc):
// for a fixed (parent Rng state, num_trials, adapter, retry policy, round
// budget), the returned result vector and the deterministic RunReport
// fields are BIT-IDENTICAL for every worker count and for every
// interrupt/resume schedule -- kill the process after any checkpoint,
// resume with different num_workers, and the outputs match an
// uninterrupted run byte for byte.  This holds because trial generators
// are a pure function of (parent state, index), retries perturb seeds as a
// pure function of (trial state, attempt), and the checkpoint persists
// both results and retry ledgers.  Wall-clock budgets
// (TrialBudget.max_wall_millis) are the one escape hatch and are off by
// default.
//
// The trial body may throw: the exception is converted into a structured
// TrialFailure::kException and the trial retried with a perturbed seed; if
// the FINAL attempt still throws, the exception propagates (a persistent
// failure must stop the run loudly, not fabricate data).
//
// Checkpoint I/O degrades gracefully instead of failing the run: an
// unreadable or corrupt checkpoint is quarantined (renamed "<path>.corrupt")
// and the trials recomputed; a failed checkpoint WRITE is counted and the
// run continues with reduced durability.  Both show up in the RunReport's
// I/O-fault taxonomy.  Only checkpoints from a DIFFERENT sweep (config
// hash / parent seed / trial count mismatch) still throw CheckpointError --
// that is operator error, not bit rot.  All I/O flows through the
// injectable failpoint::Fs seam (ResilienceOptions.fs), so every one of
// these paths is exercised under deterministic fault plans.
//
// Cooperative cancellation (ResilienceOptions.cancel) and an absolute
// deadline on the injectable clock (deadline_at_millis) are observed
// between batches AFTER the checkpoint write: an aborted run throws
// RunCancelled / RunDeadlineExceeded but always leaves a resumable
// checkpoint covering the finished batches.  The service layer
// (src/service/) uses both to implement per-job watchdogs and graceful
// drain.
#ifndef NOISYBEEPS_RESILIENCE_RESILIENT_TRIALS_H_
#define NOISYBEEPS_RESILIENCE_RESILIENT_TRIALS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "failpoint/fs.h"
#include "resilience/checkpoint.h"
#include "resilience/clock.h"
#include "resilience/outcome.h"
#include "resilience/retry.h"
#include "util/parallel.h"
#include "util/require.h"
#include "util/rng.h"

namespace noisybeeps::resilience {

// Thrown when halt_after_checkpoints fires: the in-process stand-in for a
// SIGKILL / preemption, used by tools/fault_soak.sh and the resume tests.
// The checkpoint on disk is complete and consistent when this is thrown.
class RunInterrupted : public std::runtime_error {
 public:
  explicit RunInterrupted(const std::string& what)
      : std::runtime_error(what) {}
};

// Thrown when a cooperative cancel (ResilienceOptions.cancel) is observed.
// Checked between batches AFTER the checkpoint write, so a cancelled run
// always leaves a resumable checkpoint covering the finished batches --
// cancellation costs progress, never results.
class RunCancelled : public std::runtime_error {
 public:
  explicit RunCancelled(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when the absolute deadline (ResilienceOptions.deadline_at_millis,
// on the injectable clock) has passed and trials remain.  Checked at entry
// and between batches after the checkpoint write -- same durability
// guarantee as RunCancelled.  A run whose FINAL batch finishes late still
// returns results: the deadline bounds time-to-abandon, not time-to-win.
class RunDeadlineExceeded : public std::runtime_error {
 public:
  explicit RunDeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

struct ResilienceOptions {
  // Empty = no checkpointing.  The file is written atomically (temp +
  // rename) after every batch of checkpoint_every trials; an existing
  // compatible checkpoint at this path is resumed from.
  std::string checkpoint_path;
  // Trials per checkpoint batch; 0 = a single batch (one final
  // checkpoint).  Ignored when checkpoint_path is empty.
  int checkpoint_every = 0;
  // Guards against resuming a checkpoint under different parameters: hash
  // the workload configuration (Fnv1a64 of a config string works well).
  std::uint64_t config_hash = 0;
  RetryPolicy retry;
  TrialBudget budget;
  int num_workers = 0;  // 0 = hardware concurrency
  // Injectable clock for wall budgets and backoff sleeps; null = the
  // shared SteadyClock.
  const Clock* clock = nullptr;
  // Injectable filesystem for ALL checkpoint I/O; null = the shared
  // RealFs.  Point it at a failpoint::FaultingFs to chaos-test a run.
  failpoint::Fs* fs = nullptr;
  // Testing/soak hook: throw RunInterrupted after this many checkpoint
  // writes if trials remain (0 = never).  Simulates preemption at a
  // deterministic point.
  int halt_after_checkpoints = 0;
  // Cooperative cancellation seam (null = never cancelled).  Settable from
  // a signal handler or another thread; observed between batches after the
  // checkpoint write, at which point RunCancelled is thrown.
  const std::atomic<bool>* cancel = nullptr;
  // Absolute deadline in injectable-clock milliseconds (0 = none).  When
  // NowMillis() >= deadline_at_millis and trials remain, the run throws
  // RunDeadlineExceeded at the next batch boundary (or immediately at
  // entry).  Deterministic under a FakeClock.
  std::int64_t deadline_at_millis = 0;
};

template <typename Result>
struct RunOutput {
  // One final result per trial, in index order (abandoned trials keep
  // their final attempt's result and are counted in the report).
  std::vector<Result> results;
  RunReport report;
};

// Runs `body(trial_index, attempt_rng)` resiliently.  The adapter bridges
// the caller's Result type:
//   std::string Encode(const Result&) const;           // for checkpoints
//   Result Decode(std::string_view) const;             // loud on garbage
//   TrialAssessment Assess(const Result&) const;       // verdict + rounds
// Preconditions: num_trials >= 0, opts.retry.max_attempts >= 1,
// opts.checkpoint_every >= 0, opts.halt_after_checkpoints >= 0.
template <typename Body, typename Adapter,
          typename Result = std::decay_t<std::invoke_result_t<Body&, int, Rng&>>>
RunOutput<Result> ResilientTrials(int num_trials, Rng& rng, Body&& body,
                                  const Adapter& adapter,
                                  const ResilienceOptions& opts = {}) {
  NB_REQUIRE(num_trials >= 0, "negative trial count");
  NB_REQUIRE(opts.retry.max_attempts >= 1,
             "retry.max_attempts must be >= 1 (1 = never retry)");
  NB_REQUIRE(opts.checkpoint_every >= 0,
             "checkpoint_every must be >= 0 (0 = one final checkpoint)");
  NB_REQUIRE(opts.halt_after_checkpoints >= 0,
             "halt_after_checkpoints must be >= 0 (0 = never halt)");
  const Clock* clock = opts.clock ? opts.clock : SteadyClock::Instance();
  failpoint::Fs* fs = opts.fs ? opts.fs : failpoint::RealFs::Instance();
  const std::array<std::uint64_t, 4> entry_state = rng.SaveState();
  const std::vector<Rng> trial_rngs = SplitTrialRngs(num_trials, rng);

  std::vector<std::optional<Result>> slots(
      static_cast<std::size_t>(num_trials));
  std::vector<TrialLedger> ledgers(static_cast<std::size_t>(num_trials));

  // Resume: decode completed trials from an existing checkpoint after
  // verifying it belongs to THIS sweep (same config, same parent state,
  // same trial count).  Bit rot -- an unreadable file, a bad checksum, a
  // payload that will not decode -- is quarantined and the run falls back
  // to recomputing; only a checkpoint from a DIFFERENT sweep throws,
  // because silently discarding an operator's mistake would be worse than
  // stopping.  InjectedCrash (simulated kill) always propagates.
  std::int64_t resumed = 0;
  std::int64_t checkpoints_quarantined = 0;
  const bool checkpointing = !opts.checkpoint_path.empty();
  if (checkpointing) {
    std::optional<TrialCheckpoint> loaded;
    bool quarantine = false;
    try {
      loaded = LoadCheckpoint(*fs, opts.checkpoint_path);
    } catch (const CheckpointError&) {
      quarantine = true;
    }
    if (loaded.has_value()) {
      if (loaded->config_hash != opts.config_hash) {
        throw CheckpointError(
            "config hash mismatch: " + opts.checkpoint_path +
            " was written by a different workload configuration");
      }
      if (loaded->rng_state != entry_state) {
        throw CheckpointError(
            "rng state mismatch: " + opts.checkpoint_path +
            " was written from a different parent seed/stream");
      }
      if (loaded->num_trials != num_trials) {
        throw CheckpointError(
            "trial count mismatch: " + opts.checkpoint_path + " holds " +
            std::to_string(loaded->num_trials) + " trials, run wants " +
            std::to_string(num_trials));
      }
      try {
        for (const TrialRecord& record : loaded->records) {
          const auto index = static_cast<std::size_t>(record.trial_index);
          slots[index].emplace(adapter.Decode(record.payload));
          ledgers[index] = record.ledger;
          ++resumed;
        }
      } catch (const CheckpointError&) {
        quarantine = true;
      }
    }
    if (quarantine) {
      // Discard any partially-decoded resume state: the run recomputes
      // from scratch, which is slower but provably identical.
      for (std::optional<Result>& slot : slots) slot.reset();
      ledgers.assign(static_cast<std::size_t>(num_trials), TrialLedger{});
      resumed = 0;
      ++checkpoints_quarantined;
      // Keep the rotten file for forensics, out of the resume path.
      try {
        fs->RenameFile(opts.checkpoint_path, opts.checkpoint_path + ".corrupt");
      } catch (const failpoint::FsError&) {  // NOLINT(bugprone-empty-catch)
        // Best effort; a fresh write will replace it anyway.
      }
    }
  }

  std::vector<int> pending;
  for (int t = 0; t < num_trials; ++t) {
    if (!slots[static_cast<std::size_t>(t)].has_value()) pending.push_back(t);
  }

  // Cancellation/deadline seams.  Both are observed only when work
  // REMAINS: a run whose trials are all resumed (or whose final batch just
  // finished) returns its results even if the clock has run out -- the
  // deadline bounds time-to-abandon, never time-to-win.
  const auto check_stop = [&](std::size_t trials_left) {
    if (trials_left == 0) return;
    if (opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_acquire)) {
      throw RunCancelled("cancelled with " + std::to_string(trials_left) +
                         " trial(s) left" +
                         (checkpointing
                              ? " (resume from " + opts.checkpoint_path + ")"
                              : ""));
    }
    if (opts.deadline_at_millis > 0 &&
        clock->NowMillis() >= opts.deadline_at_millis) {
      throw RunDeadlineExceeded(
          "deadline " + std::to_string(opts.deadline_at_millis) +
          "ms passed with " + std::to_string(trials_left) + " trial(s) left" +
          (checkpointing
               ? " (resume from " + opts.checkpoint_path + ")"
               : ""));
    }
  };
  check_stop(pending.size());

  // One trial, start to final verdict: watchdog-classified attempts under
  // the retry policy.  Pure per trial -- safe to run from worker threads.
  auto run_one = [&](int t) -> std::pair<Result, TrialLedger> {
    TrialLedger ledger;
    for (int attempt = 0;; ++attempt) {
      const std::int64_t backoff = BackoffMillis(opts.retry, attempt);
      if (backoff > 0) clock->Sleep(backoff);
      Rng attempt_rng =
          PerturbedAttemptRng(trial_rngs[static_cast<std::size_t>(t)],
                              attempt);
      const std::int64_t start = clock->NowMillis();
      std::optional<Result> result;
      std::exception_ptr thrown;
      try {
        result.emplace(body(t, attempt_rng));
      } catch (...) {
        thrown = std::current_exception();
      }
      const std::int64_t elapsed = clock->NowMillis() - start;
      TrialFailure failure = TrialFailure::kNone;
      if (thrown) {
        failure = TrialFailure::kException;
      } else {
        failure = ClassifyAttempt(adapter.Assess(*result), elapsed,
                                  opts.budget);
      }
      ledger.attempts.push_back(AttemptRecord{failure, backoff});
      if (failure == TrialFailure::kNone) {
        return {std::move(*result), std::move(ledger)};
      }
      if (attempt + 1 >= opts.retry.max_attempts) {
        // Retry budget exhausted.  A result-bearing failure (timeout or
        // failed verdict) is kept and reported as abandoned; a trailing
        // exception has nothing to keep and must stop the run loudly.
        // (run_one executes on ParallelForEach workers, which ferry this
        // rethrow back to the joining thread at any worker count.)
        if (thrown) std::rethrow_exception(thrown);
        ledger.abandoned = true;
        return {std::move(*result), std::move(ledger)};
      }
    }
  };

  auto write_checkpoint = [&] {
    TrialCheckpoint checkpoint;
    checkpoint.config_hash = opts.config_hash;
    checkpoint.rng_state = entry_state;
    checkpoint.num_trials = num_trials;
    for (int t = 0; t < num_trials; ++t) {
      const auto index = static_cast<std::size_t>(t);
      if (!slots[index].has_value()) continue;
      checkpoint.records.push_back(TrialRecord{
          t, ledgers[index], adapter.Encode(*slots[index])});
    }
    WriteCheckpointAtomic(*fs, opts.checkpoint_path, checkpoint);
  };

  const int batch_size =
      checkpointing && opts.checkpoint_every > 0
          ? opts.checkpoint_every
          : (pending.empty() ? 1 : static_cast<int>(pending.size()));
  std::int64_t checkpoints_written = 0;
  std::int64_t checkpoint_write_failures = 0;
  for (std::size_t begin = 0; begin < pending.size();
       begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(begin + static_cast<std::size_t>(batch_size),
                 pending.size());
    std::vector<std::pair<Result, TrialLedger>> batch = ParallelForEach(
        static_cast<int>(end - begin),
        [&](int i) {
          return run_one(pending[begin + static_cast<std::size_t>(i)]);
        },
        opts.num_workers);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto index = static_cast<std::size_t>(pending[begin + i]);
      slots[index].emplace(std::move(batch[i].first));
      ledgers[index] = std::move(batch[i].second);
    }
    if (checkpointing) {
      // A failed write costs durability, never results: count it and keep
      // computing.  halt_after_checkpoints counts SUCCESSFUL writes (the
      // soak contract: after a halt, a resumable checkpoint exists).
      // InjectedCrash is not a CheckpointError and kills the run here.
      try {
        write_checkpoint();
        ++checkpoints_written;
      } catch (const CheckpointError&) {
        ++checkpoint_write_failures;
      }
      if (opts.halt_after_checkpoints > 0 &&
          checkpoints_written >= opts.halt_after_checkpoints &&
          end < pending.size()) {
        throw RunInterrupted(
            "halted after " + std::to_string(checkpoints_written) +
            " checkpoint(s) with " + std::to_string(pending.size() - end) +
            " trial(s) left (resume from " + opts.checkpoint_path + ")");
      }
    }
    // After the checkpoint write, so an aborted run keeps every finished
    // batch.
    check_stop(pending.size() - end);
  }

  RunOutput<Result> out;
  out.report = ReportFromLedgers(ledgers);
  out.report.resumed_trials = resumed;
  out.report.checkpoints_written = checkpoints_written;
  out.report.checkpoints_quarantined = checkpoints_quarantined;
  out.report.checkpoint_write_failures = checkpoint_write_failures;
  out.results.reserve(static_cast<std::size_t>(num_trials));
  for (std::optional<Result>& slot : slots) {
    out.results.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace noisybeeps::resilience

#endif  // NOISYBEEPS_RESILIENCE_RESILIENT_TRIALS_H_
