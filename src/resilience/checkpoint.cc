#include "resilience/checkpoint.h"

#include <bit>
#include <sstream>
#include <string_view>

#include "failpoint/fs.h"

namespace noisybeeps::resilience {
namespace {

// "NBCKPT01" read as a little-endian u64.
constexpr std::uint64_t kMagic = 0x313054504b43424eULL;

// A ledger entry costs two u64s; cap attempts per record so a corrupt
// length field cannot drive a multi-gigabyte allocation before the
// checksum would have caught it.
constexpr std::uint64_t kMaxAttemptsPerRecord = 1024;

[[noreturn]] void Fail(const std::string& what) { throw CheckpointError(what); }

}  // namespace

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (char c : bytes) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return hash;
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    out.push_back(static_cast<char>((v >> (8 * byte)) & 0xff));
  }
}

void AppendF64(std::string& out, double v) {
  AppendU64(out, std::bit_cast<std::uint64_t>(v));
}

void AppendBytes(std::string& out, std::string_view bytes) {
  AppendU64(out, bytes.size());
  out.append(bytes);
}

std::uint64_t ByteReader::U64() {
  if (bytes_.size() - pos_ < 8) Fail("truncated checkpoint data");
  std::uint64_t v = 0;
  for (int byte = 0; byte < 8; ++byte) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[pos_ + byte]))
         << (8 * byte);
  }
  pos_ += 8;
  return v;
}

double ByteReader::F64() { return std::bit_cast<double>(U64()); }

std::string_view ByteReader::Bytes() {
  const std::uint64_t size = U64();
  if (bytes_.size() - pos_ < size) Fail("truncated checkpoint data");
  std::string_view view = bytes_.substr(pos_, size);
  pos_ += size;
  return view;
}

std::string TrialCheckpoint::Serialize() const {
  std::string out;
  AppendU64(out, kMagic);
  AppendU64(out, kCheckpointVersion);
  AppendU64(out, config_hash);
  for (std::uint64_t word : rng_state) AppendU64(out, word);
  AppendU64(out, static_cast<std::uint64_t>(num_trials));
  AppendU64(out, records.size());
  for (const TrialRecord& record : records) {
    AppendU64(out, static_cast<std::uint64_t>(record.trial_index));
    AppendU64(out, record.ledger.abandoned ? 1 : 0);
    AppendU64(out, record.ledger.attempts.size());
    for (const AttemptRecord& attempt : record.ledger.attempts) {
      AppendU64(out, static_cast<std::uint64_t>(attempt.failure));
      AppendU64(out, static_cast<std::uint64_t>(attempt.backoff_millis));
    }
    AppendBytes(out, record.payload);
  }
  AppendU64(out, Fnv1a64(out));
  return out;
}

TrialCheckpoint TrialCheckpoint::Parse(std::string_view bytes) {
  // Validate the trailing checksum before interpreting anything else, so
  // every flipped bit -- header or record -- reports the same way.
  if (bytes.size() < 8) Fail("truncated checkpoint data");
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  ByteReader checksum_reader(bytes.substr(bytes.size() - 8));
  const std::uint64_t stored_checksum = checksum_reader.U64();
  // Bad magic beats bad checksum as a diagnosis: a file that never was a
  // checkpoint should say so.
  ByteReader reader(body);
  const std::uint64_t magic = reader.U64();
  if (magic != kMagic) Fail("bad magic (not a TrialCheckpoint file)");
  if (Fnv1a64(body) != stored_checksum) Fail("checksum mismatch");
  const std::uint64_t version = reader.U64();
  if (version != kCheckpointVersion) {
    std::ostringstream os;
    os << "unsupported version " << version << " (this build reads version "
       << kCheckpointVersion << ")";
    Fail(os.str());
  }
  TrialCheckpoint checkpoint;
  checkpoint.config_hash = reader.U64();
  for (std::uint64_t& word : checkpoint.rng_state) word = reader.U64();
  checkpoint.num_trials = static_cast<std::int64_t>(reader.U64());
  if (checkpoint.num_trials < 0) Fail("negative trial count");
  const std::uint64_t num_records = reader.U64();
  if (num_records > static_cast<std::uint64_t>(checkpoint.num_trials)) {
    Fail("more records than trials");
  }
  // A record occupies at least 48 wire bytes (index, abandoned flag,
  // attempt count, one attempt, payload length); a checksum-valid file
  // with an absurd count must fail loudly here, not let reserve() throw
  // bad_alloc / length_error past the CheckpointError handlers.
  if (num_records > bytes.size() / 48) Fail("record count exceeds file size");
  checkpoint.records.reserve(num_records);
  std::int64_t previous_index = -1;
  for (std::uint64_t r = 0; r < num_records; ++r) {
    TrialRecord record;
    record.trial_index = static_cast<std::int64_t>(reader.U64());
    if (record.trial_index <= previous_index) {
      Fail("record trial indices not strictly increasing");
    }
    if (record.trial_index >= checkpoint.num_trials) {
      Fail("record trial index out of range");
    }
    previous_index = record.trial_index;
    const std::uint64_t abandoned = reader.U64();
    if (abandoned > 1) Fail("malformed abandoned flag");
    record.ledger.abandoned = abandoned == 1;
    const std::uint64_t num_attempts = reader.U64();
    if (num_attempts == 0 || num_attempts > kMaxAttemptsPerRecord) {
      Fail("malformed attempt count");
    }
    record.ledger.attempts.reserve(num_attempts);
    for (std::uint64_t a = 0; a < num_attempts; ++a) {
      AttemptRecord attempt;
      const std::uint64_t failure = reader.U64();
      if (failure > static_cast<std::uint64_t>(
                        TrialFailure::kDegradedVerdict)) {
        Fail("malformed failure code");
      }
      attempt.failure = static_cast<TrialFailure>(failure);
      attempt.backoff_millis = static_cast<std::int64_t>(reader.U64());
      record.ledger.attempts.push_back(attempt);
    }
    record.payload = std::string(reader.Bytes());
    checkpoint.records.push_back(std::move(record));
  }
  if (!reader.AtEnd()) Fail("trailing bytes after final record");
  return checkpoint;
}

void WriteCheckpointAtomic(failpoint::Fs& fs, const std::string& path,
                           const TrialCheckpoint& checkpoint) {
  const std::string bytes = checkpoint.Serialize();
  const std::string tmp_path = path + ".tmp";
  // The failed or partially-written temp file must never leak -- but only
  // ordinary FsError triggers cleanup: an InjectedCrash is a simulated
  // kill, and a dead process runs no unlink.
  try {
    fs.WriteFile(tmp_path, bytes);
    // Sync before rename: rename(2) orders the directory entry, not the
    // data blocks, so without this a post-rename crash could publish a
    // checkpoint whose payload never reached stable storage.
    fs.SyncFile(tmp_path);
  } catch (const failpoint::FsError& e) {
    try {
      fs.RemoveFile(tmp_path);
    } catch (const failpoint::FsError&) {  // NOLINT(bugprone-empty-catch)
      // Best effort; the original fault is the one worth reporting.
    }
    Fail("cannot write " + tmp_path + ": " + e.what());
  }
  // rename(2) is atomic within a filesystem: a crash leaves either the old
  // checkpoint or the new one, never a torn file.
  try {
    fs.RenameFile(tmp_path, path);
  } catch (const failpoint::FsError& e) {
    try {
      fs.RemoveFile(tmp_path);
    } catch (const failpoint::FsError&) {  // NOLINT(bugprone-empty-catch)
    }
    Fail("cannot rename " + tmp_path + " onto " + path + ": " + e.what());
  }
}

void WriteCheckpointAtomic(const std::string& path,
                           const TrialCheckpoint& checkpoint) {
  WriteCheckpointAtomic(*failpoint::RealFs::Instance(), path, checkpoint);
}

std::optional<TrialCheckpoint> LoadCheckpoint(failpoint::Fs& fs,
                                              const std::string& path) {
  std::optional<std::string> content;
  try {
    content = fs.ReadFile(path);
  } catch (const failpoint::FsError& e) {
    Fail("cannot read " + path + ": " + e.what());
  }
  if (!content.has_value()) return std::nullopt;
  try {
    return TrialCheckpoint::Parse(*content);
  } catch (const std::exception& e) {
    // Re-wrap with the file path so the operator knows which file rotted.
    // CheckpointError's own "checkpoint: " prefix is stripped (when
    // present) so Fail() does not stack a second one.
    constexpr std::string_view kPrefix = "checkpoint: ";
    std::string_view what = e.what();
    if (what.substr(0, kPrefix.size()) == kPrefix) {
      what.remove_prefix(kPrefix.size());
    }
    Fail(std::string(what) + " in " + path);
  }
}

std::optional<TrialCheckpoint> LoadCheckpoint(const std::string& path) {
  return LoadCheckpoint(*failpoint::RealFs::Instance(), path);
}

}  // namespace noisybeeps::resilience
