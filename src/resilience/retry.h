// Retry-with-backoff for transient trial failures.
//
// A trial whose attempt is rejected (failed verdict, exception, timeout)
// is retried with a PERTURBED seed: attempt a of trial t draws from a
// generator that is a pure function of (trial t's base rng state, a), so
// retries are reproducible, independent across attempts, and -- crucially
// -- attempt 0 uses the base generator unchanged, which keeps a
// max_attempts=1 run bit-identical to plain ParallelTrials.
//
// The backoff schedule is deterministic (exponential, capped): attempt a
// waits min(base * 2^(a-1), max) milliseconds.  In-process Monte Carlo
// trials rarely need a real wait, so base_backoff_millis defaults to 0;
// the schedule exists for callers whose failures are genuinely transient
// in time (file IO, external services) and is recorded in the per-trial
// ledger either way.
#ifndef NOISYBEEPS_RESILIENCE_RETRY_H_
#define NOISYBEEPS_RESILIENCE_RETRY_H_

#include <cstdint>

#include "util/rng.h"

namespace noisybeeps::resilience {

struct RetryPolicy {
  // Total attempts per trial (1 = never retry).  Precondition (checked by
  // the resilient engine): >= 1.
  int max_attempts = 1;
  // Backoff before attempt a (a >= 1): min(base * 2^(a-1), max).
  std::int64_t base_backoff_millis = 0;
  std::int64_t max_backoff_millis = 60'000;
};

// The deterministic backoff before `attempt` (0-based); 0 for attempt 0.
// Preconditions: attempt >= 0, policy.base_backoff_millis >= 0,
// policy.max_backoff_millis >= 0.
[[nodiscard]] std::int64_t BackoffMillis(const RetryPolicy& policy,
                                         int attempt);

// The generator for attempt `attempt` of a trial whose base generator is
// `base`: attempt 0 returns a copy of `base` (ParallelTrials
// compatibility); attempt a >= 1 reseeds from a SplitMix64-style mix of
// the base state and a, giving a decorrelated but reproducible stream.
// Precondition: attempt >= 0.
[[nodiscard]] Rng PerturbedAttemptRng(const Rng& base, int attempt);

}  // namespace noisybeeps::resilience

#endif  // NOISYBEEPS_RESILIENCE_RETRY_H_
