// The TrialCheckpoint format: versioned, checksummed, atomically written.
//
// A checkpoint captures everything needed to resume an interrupted trial
// sweep with bit-identical results: the parent Rng's state at entry (trial
// generators are a pure function of that state and the trial index, so
// only MISSING indices need re-running), a caller-supplied config hash
// (so a checkpoint is never resumed under different parameters), and one
// record per completed trial -- its encoded result payload plus its retry
// ledger (so the resumed RunReport matches the uninterrupted one).
//
// Wire format (all integers u64 little-endian):
//   magic "NBCKPT01" | version | config_hash | rng_state[4] | num_trials |
//   num_records | records... | fnv1a64 checksum of all preceding bytes
// each record:
//   trial_index | abandoned | num_attempts |
//   (failure, backoff_millis) per attempt | payload_size | payload bytes
//
// Durability: WriteCheckpointAtomic is the ONLY sanctioned writer (nblint
// rule checkpoint-atomicity): it writes "<path>.tmp", syncs it to stable
// storage, then renames, so a SIGKILL at any instant leaves either the
// previous checkpoint or the new one, never a torn file -- and a fault at
// any step unlinks the temp file before reporting.  Loading is loud: a
// truncated, corrupt, mismatched, or future-versioned file throws
// CheckpointError rather than silently restarting the sweep.
//
// All I/O goes through the failpoint::Fs seam (failpoint/fs.h, enforced
// by the whole-program nblint rule io-seam-discipline), so every one of
// these promises is testable under injected faults; the Fs-less
// overloads below delegate to RealFs.
#ifndef NOISYBEEPS_RESILIENCE_CHECKPOINT_H_
#define NOISYBEEPS_RESILIENCE_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "failpoint/fs.h"
#include "resilience/outcome.h"

namespace noisybeeps::resilience {

// Loud failure for any checkpoint defect: corrupt bytes, version from the
// future, or a resume under a different configuration.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("checkpoint: " + what) {}
};

// FNV-1a over raw bytes; used for the file checksum and for callers'
// config hashes / result fingerprints.
[[nodiscard]] std::uint64_t Fnv1a64(std::string_view bytes);

// --- byte-level helpers (shared by the checkpoint and result codecs) ----

void AppendU64(std::string& out, std::uint64_t v);
void AppendF64(std::string& out, double v);
// Length-prefixed byte string.
void AppendBytes(std::string& out, std::string_view bytes);

// Sequential reader; every accessor throws CheckpointError("truncated
// checkpoint data") on short reads.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t U64();
  [[nodiscard]] double F64();
  // Reads a length prefix then that many bytes.
  [[nodiscard]] std::string_view Bytes();
  [[nodiscard]] bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// --- the checkpoint itself ----------------------------------------------

struct TrialRecord {
  std::int64_t trial_index = 0;
  TrialLedger ledger;
  // The adapter-encoded trial result (opaque to the checkpoint layer).
  std::string payload;

  friend bool operator==(const TrialRecord&, const TrialRecord&) = default;
};

inline constexpr std::uint64_t kCheckpointVersion = 1;

struct TrialCheckpoint {
  std::uint64_t config_hash = 0;
  // The parent Rng's SaveState() at ResilientTrials entry.
  std::array<std::uint64_t, 4> rng_state{};
  std::int64_t num_trials = 0;
  // Sorted by trial_index, strictly increasing, indices in
  // [0, num_trials).
  std::vector<TrialRecord> records;

  [[nodiscard]] std::string Serialize() const;
  // Throws CheckpointError on bad magic, future version, truncation,
  // checksum mismatch, or malformed records.
  [[nodiscard]] static TrialCheckpoint Parse(std::string_view bytes);

  friend bool operator==(const TrialCheckpoint&,
                         const TrialCheckpoint&) = default;
};

// Writes serialized bytes to "<path>.tmp", syncs them to stable storage,
// then renames onto `path` (atomic on POSIX).  On an I/O fault at any
// step the temp file is unlinked (best effort) before a CheckpointError
// is thrown; an InjectedCrash (simulated kill) always propagates
// untouched.
void WriteCheckpointAtomic(failpoint::Fs& fs, const std::string& path,
                           const TrialCheckpoint& checkpoint);
// Same, against the real filesystem.
void WriteCheckpointAtomic(const std::string& path,
                           const TrialCheckpoint& checkpoint);

// Loads and parses `path`.  A missing file returns nullopt (fresh start);
// an unreadable or corrupt file throws CheckpointError.
[[nodiscard]] std::optional<TrialCheckpoint> LoadCheckpoint(
    failpoint::Fs& fs, const std::string& path);
// Same, against the real filesystem.
[[nodiscard]] std::optional<TrialCheckpoint> LoadCheckpoint(
    const std::string& path);

}  // namespace noisybeeps::resilience

#endif  // NOISYBEEPS_RESILIENCE_CHECKPOINT_H_
