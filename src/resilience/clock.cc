#include "resilience/clock.h"

#include <chrono>
#include <thread>

#include "util/require.h"

namespace noisybeeps::resilience {

std::int64_t SteadyClock::NowMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyClock::Sleep(std::int64_t millis) const {
  NB_REQUIRE(millis >= 0, "cannot sleep a negative duration");
  if (millis == 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
}

const SteadyClock* SteadyClock::Instance() {
  static const SteadyClock clock;
  return &clock;
}

}  // namespace noisybeeps::resilience
