// Structured per-trial outcomes for resilient execution.
//
// A hung, crashed, or misbehaving trial must become DATA -- a classified
// failure in a per-trial ledger -- rather than a stuck process or a
// silently dropped sample.  This header defines the failure taxonomy
// (timeout / exception / degraded verdict), the per-trial budget the
// watchdog enforces, the attempt ledger the retry policy appends to, and
// the RunReport every bench binary and nbsim surface at the end of a run.
//
// Determinism: everything here is a pure function of the trial bodies'
// results EXCEPT wall-clock timeouts (TrialBudget.max_wall_millis), which
// depend on real time and are therefore off by default; the deterministic
// budget is max_rounds.  RunReport::Fingerprint() covers only the
// deterministic fields, so an interrupted-and-resumed run must fingerprint
// identically to an uninterrupted one (docs/RESILIENCE.md).
#ifndef NOISYBEEPS_RESILIENCE_OUTCOME_H_
#define NOISYBEEPS_RESILIENCE_OUTCOME_H_

#include <cstdint>
#include <string>
#include <vector>

namespace noisybeeps::resilience {

// Why an attempt was rejected (kNone = it was accepted).
enum class TrialFailure : std::uint8_t {
  kNone = 0,             // attempt succeeded (ok or degraded verdict)
  kTimeout = 1,          // wall-clock or round budget exceeded
  kException = 2,        // the trial body threw
  kDegradedVerdict = 3,  // the caller's classifier judged the result failed
};

[[nodiscard]] const char* TrialFailureName(TrialFailure failure);

// The caller's judgement of one attempt's result, fed to the watchdog.
enum class TrialVerdict : std::uint8_t { kOk = 0, kDegraded = 1, kFailed = 2 };

struct TrialAssessment {
  TrialVerdict verdict = TrialVerdict::kOk;
  // Rounds the attempt consumed (0 if the workload has no round notion);
  // compared against TrialBudget.max_rounds.
  std::int64_t rounds_used = 0;
};

// Per-trial deadline budget.  0 = unlimited for both fields.
struct TrialBudget {
  // Wall-clock budget, measured via the injectable Clock.  NOT
  // deterministic with the real clock -- use only where bit-reproducible
  // reports are not required, or with a FakeClock in tests.
  std::int64_t max_wall_millis = 0;
  // Deterministic budget: an attempt reporting rounds_used > max_rounds is
  // classified kTimeout no matter how fast the wall clock was.
  std::int64_t max_rounds = 0;
};

// Classifies one attempt: kNone = accepted; anything else is retried (or
// abandoned when attempts are exhausted).  A degraded verdict is accepted
// -- degradation is a reportable outcome, not a transient failure -- but a
// failed verdict is retried.
[[nodiscard]] TrialFailure ClassifyAttempt(const TrialAssessment& assessment,
                                           std::int64_t elapsed_millis,
                                           const TrialBudget& budget);

// One attempt's ledger entry.
struct AttemptRecord {
  TrialFailure failure = TrialFailure::kNone;
  // Backoff waited BEFORE this attempt (0 for the first attempt).
  std::int64_t backoff_millis = 0;

  friend bool operator==(const AttemptRecord&, const AttemptRecord&) = default;
};

// The full retry history of one trial, persisted in the checkpoint so a
// resumed run reconstructs the identical RunReport.
struct TrialLedger {
  std::vector<AttemptRecord> attempts;
  // True when the retry budget ran out and the final (failed) attempt's
  // result was kept anyway.
  bool abandoned = false;

  [[nodiscard]] int retries() const {
    return attempts.empty() ? 0 : static_cast<int>(attempts.size()) - 1;
  }

  friend bool operator==(const TrialLedger&, const TrialLedger&) = default;
};

// End-of-run accounting, surfaced by every bench binary and nbsim.
struct RunReport {
  // -- deterministic fields (covered by Fingerprint) -----------------------
  std::int64_t total_trials = 0;
  std::int64_t completed = 0;  // final result accepted (ok or degraded)
  std::int64_t retried = 0;    // trials that needed more than one attempt
  std::int64_t abandoned = 0;  // retry budget exhausted
  std::int64_t attempts = 0;   // attempts across all trials
  // Failure taxonomy histogram over all rejected attempts:
  std::int64_t timeouts = 0;
  std::int64_t exceptions = 0;
  std::int64_t degraded_verdicts = 0;
  // -- execution metadata (NOT covered by Fingerprint: legitimately differs
  //    between an uninterrupted run and an interrupted-then-resumed one) --
  std::int64_t resumed_trials = 0;
  std::int64_t checkpoints_written = 0;  // successful writes only
  // I/O-fault taxonomy (failpoint layer / real-world bit rot): checkpoints
  // quarantined as "<path>.corrupt" and recomputed, and checkpoint writes
  // that failed without stopping the run.  Metadata, not fingerprinted: a
  // degraded run must still PROVE bit-identical results via Fingerprint().
  std::int64_t checkpoints_quarantined = 0;
  std::int64_t checkpoint_write_failures = 0;

  // FNV-1a over the deterministic fields only: byte-identical between a
  // clean run and any interrupt/resume schedule at any worker count.
  [[nodiscard]] std::uint64_t Fingerprint() const;

  friend bool operator==(const RunReport&, const RunReport&) = default;
};

// Builds the deterministic part of a RunReport from per-trial ledgers.
[[nodiscard]] RunReport ReportFromLedgers(
    const std::vector<TrialLedger>& ledgers);

// "completed=9/10 retried=2 abandoned=1 attempts=13 failures[timeout=1
// exception=0 degraded_verdict=3] resumed=4 checkpoints=2
// io[quarantined=0 write_failures=0]"
[[nodiscard]] std::string FormatRunReport(const RunReport& report);

}  // namespace noisybeeps::resilience

#endif  // NOISYBEEPS_RESILIENCE_OUTCOME_H_
