#include "resilience/outcome.h"

#include <sstream>

namespace noisybeeps::resilience {
namespace {

void MixU64(std::uint64_t& hash, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    hash = (hash ^ ((v >> (8 * byte)) & 0xff)) * 0x100000001b3ULL;
  }
}

}  // namespace

const char* TrialFailureName(TrialFailure failure) {
  switch (failure) {
    case TrialFailure::kNone: return "none";
    case TrialFailure::kTimeout: return "timeout";
    case TrialFailure::kException: return "exception";
    case TrialFailure::kDegradedVerdict: return "degraded_verdict";
  }
  return "unknown";
}

TrialFailure ClassifyAttempt(const TrialAssessment& assessment,
                             std::int64_t elapsed_millis,
                             const TrialBudget& budget) {
  if (budget.max_rounds > 0 && assessment.rounds_used > budget.max_rounds) {
    return TrialFailure::kTimeout;
  }
  if (budget.max_wall_millis > 0 && elapsed_millis > budget.max_wall_millis) {
    return TrialFailure::kTimeout;
  }
  if (assessment.verdict == TrialVerdict::kFailed) {
    return TrialFailure::kDegradedVerdict;
  }
  return TrialFailure::kNone;
}

std::uint64_t RunReport::Fingerprint() const {
  std::uint64_t hash = 1469598103934665603ULL;
  MixU64(hash, static_cast<std::uint64_t>(total_trials));
  MixU64(hash, static_cast<std::uint64_t>(completed));
  MixU64(hash, static_cast<std::uint64_t>(retried));
  MixU64(hash, static_cast<std::uint64_t>(abandoned));
  MixU64(hash, static_cast<std::uint64_t>(attempts));
  MixU64(hash, static_cast<std::uint64_t>(timeouts));
  MixU64(hash, static_cast<std::uint64_t>(exceptions));
  MixU64(hash, static_cast<std::uint64_t>(degraded_verdicts));
  return hash;
}

RunReport ReportFromLedgers(const std::vector<TrialLedger>& ledgers) {
  RunReport report;
  report.total_trials = static_cast<std::int64_t>(ledgers.size());
  for (const TrialLedger& ledger : ledgers) {
    report.attempts += static_cast<std::int64_t>(ledger.attempts.size());
    if (ledger.abandoned) {
      ++report.abandoned;
    } else {
      ++report.completed;
    }
    if (ledger.retries() > 0) ++report.retried;
    for (const AttemptRecord& attempt : ledger.attempts) {
      switch (attempt.failure) {
        case TrialFailure::kNone: break;
        case TrialFailure::kTimeout: ++report.timeouts; break;
        case TrialFailure::kException: ++report.exceptions; break;
        case TrialFailure::kDegradedVerdict:
          ++report.degraded_verdicts;
          break;
      }
    }
  }
  return report;
}

std::string FormatRunReport(const RunReport& report) {
  std::ostringstream os;
  os << "completed=" << report.completed << "/" << report.total_trials
     << " retried=" << report.retried << " abandoned=" << report.abandoned
     << " attempts=" << report.attempts << " failures[timeout="
     << report.timeouts << " exception=" << report.exceptions
     << " degraded_verdict=" << report.degraded_verdicts << "]"
     << " resumed=" << report.resumed_trials
     << " checkpoints=" << report.checkpoints_written
     << " io[quarantined=" << report.checkpoints_quarantined
     << " write_failures=" << report.checkpoint_write_failures << "]";
  return os.str();
}

}  // namespace noisybeeps::resilience
