// Injectable monotonic time for the resilience layer.
//
// Wall-clock watchdogs and backoff sleeps must be testable without real
// waiting, and the production clock must be monotonic (never jumps
// backward on NTP adjustments).  Clock is the seam: SteadyClock wraps the
// OS monotonic clock; FakeClock is a hand-advanced test double whose
// Sleep() advances virtual time instantly, so watchdog and backoff
// behaviour is exercised deterministically in unit tests.
#ifndef NOISYBEEPS_RESILIENCE_CLOCK_H_
#define NOISYBEEPS_RESILIENCE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace noisybeeps::resilience {

class Clock {
 public:
  virtual ~Clock() = default;

  // Milliseconds since an arbitrary fixed origin; monotonically
  // non-decreasing.
  [[nodiscard]] virtual std::int64_t NowMillis() const = 0;

  // Blocks (or virtually advances) for `millis` milliseconds.
  // Precondition: millis >= 0.
  virtual void Sleep(std::int64_t millis) const = 0;
};

// The production clock: std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] std::int64_t NowMillis() const override;
  void Sleep(std::int64_t millis) const override;

  // A shared instance (the default when ResilienceOptions.clock is null).
  [[nodiscard]] static const SteadyClock* Instance();
};

// Test double: time moves only when advanced, and Sleep() advances it.
// Thread-safe (the resilient engine calls it from worker threads).
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t start_millis = 0) : now_(start_millis) {}

  [[nodiscard]] std::int64_t NowMillis() const override {
    return now_.load(std::memory_order_relaxed);
  }
  // Virtual sleep: advances time without blocking.
  void Sleep(std::int64_t millis) const override { Advance(millis); }

  void Advance(std::int64_t millis) const {
    now_.fetch_add(millis, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::int64_t> now_;
};

}  // namespace noisybeeps::resilience

#endif  // NOISYBEEPS_RESILIENCE_CLOCK_H_
