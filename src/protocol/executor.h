// Direct execution of a protocol over a channel.
//
// This is the paper's execution semantics (Appendix A.1.1) verbatim: in
// round m each party beeps f_m^i(x^i, its transcript so far), the channel
// delivers a (possibly noisy) version of the OR, parties append what they
// received and continue.  Under a correlated channel all parties share one
// transcript; under the independent channel each party feeds its own noisy
// transcript back into its own broadcast functions.
#ifndef NOISYBEEPS_PROTOCOL_EXECUTOR_H_
#define NOISYBEEPS_PROTOCOL_EXECUTOR_H_

#include <vector>

#include "channel/channel.h"
#include "protocol/protocol.h"

namespace noisybeeps {

struct ExecutionResult {
  // Per-party transcripts.  Under a correlated channel these are all
  // identical; `shared()` returns the common one.
  std::vector<BitString> transcripts;
  // g^i evaluated on party i's transcript.
  std::vector<PartyOutput> outputs;

  [[nodiscard]] const BitString& shared() const { return transcripts.front(); }
};

// Runs `protocol` for its full length over `channel`.
[[nodiscard]] ExecutionResult Execute(const Protocol& protocol,
                                      const Channel& channel, Rng& rng);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_PROTOCOL_EXECUTOR_H_
