// Static introspection of a noiseless protocol: replay it on the
// noiseless channel and summarize the structure the coding schemes care
// about -- how many rounds carry a beep, how many of those have a unique
// beeper (the owner-finding load), and the beeper multiplicity histogram.
#ifndef NOISYBEEPS_PROTOCOL_PROTOCOL_STATS_H_
#define NOISYBEEPS_PROTOCOL_PROTOCOL_STATS_H_

#include <cstdint>
#include <vector>

#include "protocol/protocol.h"

namespace noisybeeps {

struct ProtocolStats {
  int length = 0;
  std::size_t one_rounds = 0;        // rounds with at least one beeper
  std::size_t unique_owner_rounds = 0;  // rounds with exactly one beeper
  std::size_t silent_rounds = 0;     // rounds with no beeper
  // beeper_histogram[k] = number of rounds with exactly k beepers
  // (index up to num_parties).
  std::vector<std::size_t> beeper_histogram;

  [[nodiscard]] double transcript_density() const {
    return length == 0 ? 0.0
                       : static_cast<double>(one_rounds) / length;
  }
};

// Replays the protocol noiselessly (cost O(n * T * cost(f))).
[[nodiscard]] ProtocolStats ComputeProtocolStats(const Protocol& protocol);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_PROTOCOL_PROTOCOL_STATS_H_
