#include "protocol/round_engine.h"

#include <bit>

#include "util/require.h"

namespace noisybeeps {

RoundEngine::RoundEngine(const Channel& channel, Rng& rng,
                         std::int64_t num_parties)
    : channel_(&channel), rng_(&rng), num_parties_(num_parties) {
  NB_REQUIRE(num_parties >= 1, "need at least one party");
  // Buffers are lazily sized on first use: a word-path run of a mega-n
  // engine never pays for the byte-per-party scalar buffer, and vice
  // versa.
}

std::span<const std::uint8_t> RoundEngine::Round(
    std::span<const std::uint8_t> beeps) {
  NB_REQUIRE(static_cast<std::int64_t>(beeps.size()) == num_parties_,
             "beeps vector has wrong size");
  if (received_.size() != beeps.size()) received_.assign(beeps.size(), 0);
  std::int64_t num_beepers = 0;
  for (std::uint8_t b : beeps) num_beepers += b != 0;
  channel_->Deliver(num_beepers, received_, *rng_);
  AccountRound();
  return received_;
}

std::span<const std::uint64_t> RoundEngine::RoundWords(
    std::span<const std::uint64_t> beep_words) {
  NB_REQUIRE(beep_words.size() == WordsForParties(num_parties_),
             "beep word span has wrong size");
  NB_REQUIRE((beep_words.back() & ~TailWordMask(num_parties_)) == 0,
             "beep word tail bits past num_parties must be zero");
  if (received_words_.size() != beep_words.size()) {
    received_words_.assign(beep_words.size(), 0);
  }
  std::int64_t num_beepers = 0;
  for (std::uint64_t w : beep_words) num_beepers += std::popcount(w);
  channel_->DeliverWords(num_beepers, received_words_, num_parties_,
                         word_mode_, *rng_);
  AccountRound();
  return received_words_;
}

bool RoundEngine::RoundShared(std::span<const std::uint8_t> beeps) {
  NB_REQUIRE(channel_->is_correlated(),
             "RoundShared requires a correlated channel");
  return Round(beeps)[0] != 0;
}

}  // namespace noisybeeps
