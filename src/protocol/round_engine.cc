#include "protocol/round_engine.h"

#include "util/require.h"

namespace noisybeeps {

RoundEngine::RoundEngine(const Channel& channel, Rng& rng, int num_parties)
    : channel_(&channel), rng_(&rng), num_parties_(num_parties) {
  NB_REQUIRE(num_parties >= 1, "need at least one party");
  received_.assign(num_parties, 0);
}

std::span<const std::uint8_t> RoundEngine::Round(
    std::span<const std::uint8_t> beeps) {
  NB_REQUIRE(static_cast<int>(beeps.size()) == num_parties_,
             "beeps vector has wrong size");
  int num_beepers = 0;
  for (std::uint8_t b : beeps) num_beepers += b != 0;
  channel_->Deliver(num_beepers, received_, *rng_);
  ++rounds_used_;
  // Resolve the phase counter at most once per SetPhase, not per round: a
  // phase gets a map entry only once a round actually runs under it (so
  // phase_rounds() never reports zero-round phases), and every later
  // round is a plain pointer increment instead of a string-keyed lookup.
  if (phase_counter_ == nullptr) phase_counter_ = &phase_rounds_[phase_];
  ++*phase_counter_;
  return received_;
}

bool RoundEngine::RoundShared(std::span<const std::uint8_t> beeps) {
  NB_REQUIRE(channel_->is_correlated(),
             "RoundShared requires a correlated channel");
  return Round(beeps)[0] != 0;
}

}  // namespace noisybeeps
