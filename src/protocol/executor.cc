#include "protocol/executor.h"

#include "util/require.h"

namespace noisybeeps {

ExecutionResult Execute(const Protocol& protocol, const Channel& channel,
                        Rng& rng) {
  const int n = protocol.num_parties();
  ExecutionResult result;
  result.transcripts.assign(n, BitString());
  for (BitString& transcript : result.transcripts) {
    transcript.Reserve(static_cast<std::size_t>(protocol.length()));
  }

  std::vector<std::uint8_t> received(n, 0);
  for (int m = 0; m < protocol.length(); ++m) {
    int num_beepers = 0;
    for (int i = 0; i < n; ++i) {
      // Each party decides from ITS OWN transcript; under correlated
      // channels all transcripts coincide, so this is equivalent to the
      // shared-transcript formulation.
      num_beepers += protocol.party(i).ChooseBeep(result.transcripts[i]);
    }
    channel.Deliver(num_beepers, received, rng);
    for (int i = 0; i < n; ++i) {
      result.transcripts[i].PushBack(received[i] != 0);
    }
  }

  result.outputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    result.outputs.push_back(
        protocol.party(i).ComputeOutput(result.transcripts[i]));
  }
  return result;
}

}  // namespace noisybeeps
