#include "protocol/executor.h"

#include "util/require.h"

namespace noisybeeps {

ExecutionResult Execute(const Protocol& protocol, const Channel& channel,
                        Rng& rng) {
  const int n = protocol.num_parties();
  ExecutionResult result;
  result.transcripts.assign(n, BitString());
  for (BitString& transcript : result.transcripts) {
    transcript.Reserve(static_cast<std::size_t>(protocol.length()));
  }

  // Delivery runs on the packed word representation in stream-compat
  // mode: draw-for-draw identical to the historical byte path (the golden
  // regression tests hold this to account), one word per 64 parties.
  std::vector<std::uint8_t> beeps(n, 0);
  std::vector<std::uint8_t> received(n, 0);
  std::vector<std::uint64_t> received_words(WordsForParties(n), 0);
  for (int m = 0; m < protocol.length(); ++m) {
    std::int64_t num_beepers = 0;
    for (int i = 0; i < n; ++i) {
      // Each party decides from ITS OWN transcript; under correlated
      // channels all transcripts coincide, so this is equivalent to the
      // shared-transcript formulation.
      beeps[i] = protocol.party(i).ChooseBeep(result.transcripts[i]) ? 1 : 0;
      num_beepers += beeps[i];
    }
    channel.DeliverWords(num_beepers, received_words, n,
                         WordMode::kStreamCompat, rng);
    UnpackBits(received_words, received);
    for (int i = 0; i < n; ++i) {
      result.transcripts[i].PushBack(received[i] != 0);
    }
  }

  result.outputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    result.outputs.push_back(
        protocol.party(i).ComputeOutput(result.transcripts[i]));
  }
  return result;
}

}  // namespace noisybeeps
