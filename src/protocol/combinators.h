// Protocol combinators: build longer protocols out of existing ones
// without writing new Party classes.
//
// ConcatProtocols runs P1 and then P2 on the same party set: in rounds
// [0, T1) everyone follows P1; in rounds [T1, T1+T2) party i follows its
// P2 party against the transcript suffix.  RepeatProtocol(P, k) is the
// k-fold self-concatenation.  Both preserve purity (the combined party's
// beep is a pure function of the combined prefix), so the combined
// protocols remain simulatable, and outputs concatenate per phase.
//
// These are how the benchmarks manufacture arbitrarily long workloads --
// the regime where Section D.2's hierarchy separates from flat rewind --
// from well-understood building blocks.
#ifndef NOISYBEEPS_PROTOCOL_COMBINATORS_H_
#define NOISYBEEPS_PROTOCOL_COMBINATORS_H_

#include <memory>

#include "protocol/protocol.h"

namespace noisybeeps {

// Preconditions: non-null, same num_parties.  Takes shared ownership (the
// result references both).
[[nodiscard]] std::shared_ptr<const Protocol> ConcatProtocols(
    std::shared_ptr<const Protocol> first,
    std::shared_ptr<const Protocol> second);

// P repeated `times` times back to back (times == 1 returns P itself).
// Precondition: times >= 1.
[[nodiscard]] std::shared_ptr<const Protocol> RepeatProtocol(
    std::shared_ptr<const Protocol> protocol, int times);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_PROTOCOL_COMBINATORS_H_
