// RoundEngine: the round budget meter the interactive-coding schemes draw
// noisy rounds from.
//
// A simulator (coding/) is itself a protocol over the noisy channel, but
// writing it as explicit f_m^i functions would be hopeless; instead the
// simulator code orchestrates the parties imperatively and calls
// RoundEngine::Round once per noisy round.  The engine applies the
// channel, counts the rounds consumed (the quantity Theorems 1.1/1.2 are
// about), and hands back what each party received.  The "distributed
// discipline" -- party i's beep decision may depend only on party i's
// local state plus previously received bits -- is kept by code structure
// and is what the simulator modules document and the tests probe.
//
// Two round representations coexist: Round (byte per party, the
// historical path) and RoundWords (64 parties packed per u64, the
// mega-n path; see docs/PERFORMANCE.md).  Party counts are std::int64_t:
// the word path simulates millions of parties per round, beyond `int`.
#ifndef NOISYBEEPS_PROTOCOL_ROUND_ENGINE_H_
#define NOISYBEEPS_PROTOCOL_ROUND_ENGINE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "channel/channel.h"

namespace noisybeeps {

class RoundEngine {
 public:
  // The engine borrows the channel and rng; both must outlive it.
  RoundEngine(const Channel& channel, Rng& rng, std::int64_t num_parties);
  virtual ~RoundEngine() = default;

  // Not copyable/movable: the engine caches an interior pointer into its
  // phase-accounting map (and hands out spans into received_), so a copy
  // would alias the wrong instance's state.
  RoundEngine(const RoundEngine&) = delete;
  RoundEngine& operator=(const RoundEngine&) = delete;

  [[nodiscard]] std::int64_t num_parties() const { return num_parties_; }

  // Runs one noisy round.  beeps[i] != 0 iff party i beeps.  Returns the
  // per-party received bits (valid until the next call).  Virtual so that
  // fault/injection.h can wrap the round boundary (send-side faults before
  // the channel sees the beeper count, receive-side faults after Deliver)
  // without the simulators or the Channel implementations noticing.
  // Precondition: beeps.size() == num_parties().
  virtual std::span<const std::uint8_t> Round(
      std::span<const std::uint8_t> beeps);

  // Word-parallel round: bit i of beep_words[w] is 1 iff party w*64+i
  // beeps; the result is packed the same way (valid until the next call,
  // tail bits of the last word zero).  Shares the round/phase accounting
  // with Round, so a simulation may mix representations freely.  Virtual
  // for the same fault-wrapping reason as Round.
  // Preconditions: beep_words.size() == WordsForParties(num_parties()),
  // and the unused tail bits of the last beep word are zero.
  virtual std::span<const std::uint64_t> RoundWords(
      std::span<const std::uint64_t> beep_words);

  // Correlated-channel convenience: the single shared received bit.
  // Preconditions: as Round, plus channel.is_correlated().
  bool RoundShared(std::span<const std::uint8_t> beeps);

  // Stream discipline for RoundWords (and the word path of Execute):
  // kStreamCompat (the default) consumes the rng draw-for-draw like the
  // scalar Round; kFast batches noise sampling (its own stream).
  void SetWordMode(WordMode mode) { word_mode_ = mode; }
  [[nodiscard]] WordMode word_mode() const { return word_mode_; }

  // Total noisy rounds consumed so far.
  [[nodiscard]] std::int64_t rounds_used() const { return rounds_used_; }

  // Labels subsequent rounds for cost accounting (e.g. "chunk-sim",
  // "owner-finding", "verify-flags", "audit").  Purely observational: the
  // label has no effect on channel behaviour.
  void SetPhase(std::string phase) {
    phase_ = std::move(phase);
    // Invalidate the cached counter; the next Round() re-resolves it (and
    // only then creates the map entry, so zero-round phases never appear
    // in phase_rounds()).  std::map nodes are stable, so the resolved
    // pointer survives later insertions.
    phase_counter_ = nullptr;
  }

  // The current phase label ("" before any SetPhase call).
  [[nodiscard]] const std::string& phase() const { return phase_; }

  // Rounds consumed per phase label (rounds before any SetPhase call are
  // accounted under "").
  [[nodiscard]] const std::map<std::string, std::int64_t>& phase_rounds()
      const {
    return phase_rounds_;
  }

  [[nodiscard]] const Channel& channel() const { return *channel_; }
  [[nodiscard]] Rng& rng() { return *rng_; }

 protected:
  // Round/phase bookkeeping shared by both round representations (and by
  // fault-wrapping subclasses that re-implement the round body).
  void AccountRound() {
    ++rounds_used_;
    // Resolve the phase counter at most once per SetPhase, not per round:
    // a phase gets a map entry only once a round actually runs under it
    // (so phase_rounds() never reports zero-round phases), and every
    // later round is a plain pointer increment instead of a string-keyed
    // lookup.
    if (phase_counter_ == nullptr) phase_counter_ = &phase_rounds_[phase_];
    ++*phase_counter_;
  }

 private:
  const Channel* channel_;
  Rng* rng_;
  std::int64_t num_parties_;
  WordMode word_mode_ = WordMode::kStreamCompat;
  std::int64_t rounds_used_ = 0;
  std::vector<std::uint8_t> received_;
  std::vector<std::uint64_t> received_words_;
  std::string phase_;
  std::map<std::string, std::int64_t> phase_rounds_;
  // Points at phase_rounds_[phase_] once the first round of the current
  // phase has run; nullptr until then (see SetPhase / Round).
  std::int64_t* phase_counter_ = nullptr;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_PROTOCOL_ROUND_ENGINE_H_
