// RoundEngine: the round budget meter the interactive-coding schemes draw
// noisy rounds from.
//
// A simulator (coding/) is itself a protocol over the noisy channel, but
// writing it as explicit f_m^i functions would be hopeless; instead the
// simulator code orchestrates the parties imperatively and calls
// RoundEngine::Round once per noisy round.  The engine applies the
// channel, counts the rounds consumed (the quantity Theorems 1.1/1.2 are
// about), and hands back what each party received.  The "distributed
// discipline" -- party i's beep decision may depend only on party i's
// local state plus previously received bits -- is kept by code structure
// and is what the simulator modules document and the tests probe.
#ifndef NOISYBEEPS_PROTOCOL_ROUND_ENGINE_H_
#define NOISYBEEPS_PROTOCOL_ROUND_ENGINE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "channel/channel.h"

namespace noisybeeps {

class RoundEngine {
 public:
  // The engine borrows the channel and rng; both must outlive it.
  RoundEngine(const Channel& channel, Rng& rng, int num_parties);
  virtual ~RoundEngine() = default;

  // Not copyable/movable: the engine caches an interior pointer into its
  // phase-accounting map (and hands out spans into received_), so a copy
  // would alias the wrong instance's state.
  RoundEngine(const RoundEngine&) = delete;
  RoundEngine& operator=(const RoundEngine&) = delete;

  [[nodiscard]] int num_parties() const { return num_parties_; }

  // Runs one noisy round.  beeps[i] != 0 iff party i beeps.  Returns the
  // per-party received bits (valid until the next call).  Virtual so that
  // fault/injection.h can wrap the round boundary (send-side faults before
  // the channel sees the beeper count, receive-side faults after Deliver)
  // without the simulators or the Channel implementations noticing.
  // Precondition: beeps.size() == num_parties().
  virtual std::span<const std::uint8_t> Round(
      std::span<const std::uint8_t> beeps);

  // Correlated-channel convenience: the single shared received bit.
  // Preconditions: as Round, plus channel.is_correlated().
  bool RoundShared(std::span<const std::uint8_t> beeps);

  // Total noisy rounds consumed so far.
  [[nodiscard]] std::int64_t rounds_used() const { return rounds_used_; }

  // Labels subsequent rounds for cost accounting (e.g. "chunk-sim",
  // "owner-finding", "verify-flags", "audit").  Purely observational: the
  // label has no effect on channel behaviour.
  void SetPhase(std::string phase) {
    phase_ = std::move(phase);
    // Invalidate the cached counter; the next Round() re-resolves it (and
    // only then creates the map entry, so zero-round phases never appear
    // in phase_rounds()).  std::map nodes are stable, so the resolved
    // pointer survives later insertions.
    phase_counter_ = nullptr;
  }

  // The current phase label ("" before any SetPhase call).
  [[nodiscard]] const std::string& phase() const { return phase_; }

  // Rounds consumed per phase label (rounds before any SetPhase call are
  // accounted under "").
  [[nodiscard]] const std::map<std::string, std::int64_t>& phase_rounds()
      const {
    return phase_rounds_;
  }

  [[nodiscard]] const Channel& channel() const { return *channel_; }
  [[nodiscard]] Rng& rng() { return *rng_; }

 private:
  const Channel* channel_;
  Rng* rng_;
  int num_parties_;
  std::int64_t rounds_used_ = 0;
  std::vector<std::uint8_t> received_;
  std::string phase_;
  std::map<std::string, std::int64_t> phase_rounds_;
  // Points at phase_rounds_[phase_] once the first round of the current
  // phase has run; nullptr until then (see SetPhase / Round).
  std::int64_t* phase_counter_ = nullptr;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_PROTOCOL_ROUND_ENGINE_H_
