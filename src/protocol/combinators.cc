#include "protocol/combinators.h"

#include "util/require.h"

namespace noisybeeps {
namespace {

class ConcatParty final : public Party {
 public:
  ConcatParty(std::shared_ptr<const Protocol> first,
              std::shared_ptr<const Protocol> second, int index)
      : first_(std::move(first)), second_(std::move(second)), index_(index) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    const auto t1 = static_cast<std::size_t>(first_->length());
    if (prefix.size() < t1) {
      return first_->party(index_).ChooseBeep(prefix);
    }
    return second_->party(index_).ChooseBeep(
        prefix.Substring(t1, prefix.size()));
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    const auto t1 = static_cast<std::size_t>(first_->length());
    PartyOutput out = first_->party(index_).ComputeOutput(pi.Prefix(t1));
    const PartyOutput tail =
        second_->party(index_).ComputeOutput(pi.Substring(t1, pi.size()));
    out.insert(out.end(), tail.begin(), tail.end());
    return out;
  }

 private:
  std::shared_ptr<const Protocol> first_;
  std::shared_ptr<const Protocol> second_;
  int index_;
};

}  // namespace

std::shared_ptr<const Protocol> ConcatProtocols(
    std::shared_ptr<const Protocol> first,
    std::shared_ptr<const Protocol> second) {
  NB_REQUIRE(first != nullptr && second != nullptr, "null protocol");
  NB_REQUIRE(first->num_parties() == second->num_parties(),
             "party counts differ");
  const int n = first->num_parties();
  const int length = first->length() + second->length();
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(n);
  for (int i = 0; i < n; ++i) {
    parties.push_back(std::make_unique<ConcatParty>(first, second, i));
  }
  return std::make_shared<BasicProtocol>(std::move(parties), length);
}

std::shared_ptr<const Protocol> RepeatProtocol(
    std::shared_ptr<const Protocol> protocol, int times) {
  NB_REQUIRE(protocol != nullptr, "null protocol");
  NB_REQUIRE(times >= 1, "repeat count must be positive");
  std::shared_ptr<const Protocol> result = protocol;
  for (int k = 1; k < times; ++k) {
    result = ConcatProtocols(result, protocol);
  }
  return result;
}

}  // namespace noisybeeps
