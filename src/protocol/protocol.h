// A Protocol bundles n parties with the protocol length T.
//
// Protocols in this library are *noiseless-model* objects: they describe
// what each party would beep on the noiseless channel.  Running them over
// a noisy channel directly (protocol/executor.h) shows the damage noise
// does; running them through a simulator (coding/) shows the paper's
// schemes repairing that damage.
#ifndef NOISYBEEPS_PROTOCOL_PROTOCOL_H_
#define NOISYBEEPS_PROTOCOL_PROTOCOL_H_

#include <memory>
#include <vector>

#include "protocol/party.h"

namespace noisybeeps {

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual int num_parties() const = 0;
  // T: the number of rounds on the noiseless channel.
  [[nodiscard]] virtual int length() const = 0;
  // Precondition: 0 <= i < num_parties().
  [[nodiscard]] virtual const Party& party(int i) const = 0;
};

// The standard concrete protocol: owns its parties.
class BasicProtocol final : public Protocol {
 public:
  // Preconditions: at least one party, no null parties, length >= 0.
  BasicProtocol(std::vector<std::unique_ptr<Party>> parties, int length);

  [[nodiscard]] int num_parties() const override {
    return static_cast<int>(parties_.size());
  }
  [[nodiscard]] int length() const override { return length_; }
  [[nodiscard]] const Party& party(int i) const override;

 private:
  std::vector<std::unique_ptr<Party>> parties_;
  int length_;
};

// The unique transcript the protocol produces on the noiseless channel
// (protocols here are deterministic given their inputs, so this is the
// ground truth every simulation is judged against).
[[nodiscard]] BitString ReferenceTranscript(const Protocol& protocol);

// The OR of all parties' beeps in round |prefix|+1 given a shared prefix.
[[nodiscard]] bool OrOfBeeps(const Protocol& protocol,
                             const BitString& prefix);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_PROTOCOL_PROTOCOL_H_
