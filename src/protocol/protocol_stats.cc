#include "protocol/protocol_stats.h"

namespace noisybeeps {

ProtocolStats ComputeProtocolStats(const Protocol& protocol) {
  const int n = protocol.num_parties();
  ProtocolStats stats;
  stats.length = protocol.length();
  stats.beeper_histogram.assign(n + 1, 0);

  BitString pi;
  for (int m = 0; m < protocol.length(); ++m) {
    int beepers = 0;
    for (int i = 0; i < n; ++i) {
      if (protocol.party(i).ChooseBeep(pi)) ++beepers;
    }
    ++stats.beeper_histogram[beepers];
    if (beepers == 0) {
      ++stats.silent_rounds;
    } else {
      ++stats.one_rounds;
      if (beepers == 1) ++stats.unique_owner_rounds;
    }
    pi.PushBack(beepers > 0);
  }
  return stats;
}

}  // namespace noisybeeps
