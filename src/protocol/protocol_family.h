// ProtocolFamily: a protocol whose per-party inputs can be swapped.
//
// The lower-bound analysis of Appendix C constantly asks counterfactuals:
// "what would party i have beeped in round j if its input were y instead
// of x^i?" (feasible sets S^i(pi)), and "how likely is the transcript
// under the neighbor input x^{i=y}?" (the progress measure zeta).  A
// ProtocolFamily answers these by manufacturing party i with any input
// from its input space, while a plain Protocol has the inputs baked in.
#ifndef NOISYBEEPS_PROTOCOL_PROTOCOL_FAMILY_H_
#define NOISYBEEPS_PROTOCOL_PROTOCOL_FAMILY_H_

#include <memory>

#include "protocol/party.h"

namespace noisybeeps {

class ProtocolFamily {
 public:
  virtual ~ProtocolFamily() = default;

  [[nodiscard]] virtual int num_parties() const = 0;
  // The size of each party's input space X^i (inputs are 0..num_inputs-1).
  [[nodiscard]] virtual int num_inputs() const = 0;
  // T: protocol length in noiseless rounds.
  [[nodiscard]] virtual int length() const = 0;
  // Party `i` holding input `input`.
  // Preconditions: 0 <= i < num_parties(), 0 <= input < num_inputs().
  [[nodiscard]] virtual std::unique_ptr<Party> MakeParty(int i,
                                                         int input) const = 0;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_PROTOCOL_PROTOCOL_FAMILY_H_
