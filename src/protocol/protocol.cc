#include "protocol/protocol.h"

#include "util/require.h"

namespace noisybeeps {

BasicProtocol::BasicProtocol(std::vector<std::unique_ptr<Party>> parties,
                             int length)
    : parties_(std::move(parties)), length_(length) {
  NB_REQUIRE(!parties_.empty(), "protocol needs at least one party");
  NB_REQUIRE(length_ >= 0, "protocol length must be non-negative");
  for (const auto& p : parties_) {
    NB_REQUIRE(p != nullptr, "null party");
  }
}

const Party& BasicProtocol::party(int i) const {
  NB_REQUIRE(i >= 0 && i < num_parties(), "party index out of range");
  return *parties_[i];
}

bool OrOfBeeps(const Protocol& protocol, const BitString& prefix) {
  for (int i = 0; i < protocol.num_parties(); ++i) {
    if (protocol.party(i).ChooseBeep(prefix)) return true;
  }
  return false;
}

BitString ReferenceTranscript(const Protocol& protocol) {
  BitString pi;
  for (int m = 0; m < protocol.length(); ++m) {
    pi.PushBack(OrOfBeeps(protocol, pi));
  }
  return pi;
}

}  // namespace noisybeeps
