// The party abstraction: a protocol participant in the beeping model.
//
// A protocol over the n-party beeping model (Appendix A.1.1) is a tuple
// (T, {f_m^i}, {g^i}).  A Party packages one participant's input together
// with its broadcast functions f_m^i and output function g^i:
//
//   ChooseBeep(prefix)  ==  f_{|prefix|+1}^i(x^i, prefix)
//   ComputeOutput(pi)   ==  g^i(x^i, pi)
//
// Both must be PURE functions of the transcript prefix (and the party's
// input, captured at construction).  Purity is a load-bearing contract:
// the interactive-coding schemes re-evaluate beeps on candidate
// transcripts during verification and rewind to earlier prefixes, which is
// only well-defined when the answer depends on nothing but the prefix.
// Randomized protocols fix their coins inside the party's input/seed, i.e.
// they are distributions over deterministic protocols, exactly as in the
// paper.
#ifndef NOISYBEEPS_PROTOCOL_PARTY_H_
#define NOISYBEEPS_PROTOCOL_PARTY_H_

#include <cstdint>
#include <vector>

#include "util/bitstring.h"

namespace noisybeeps {

// Protocol outputs are task-specific; tasks encode them as word vectors
// (e.g. InputSet encodes the output set as a bitmask, leader election as a
// single id).
using PartyOutput = std::vector<std::uint64_t>;

class Party {
 public:
  virtual ~Party() = default;

  // The bit this party beeps in round |transcript_prefix| + 1, given the
  // bits received so far.  Must be pure.
  [[nodiscard]] virtual bool ChooseBeep(
      const BitString& transcript_prefix) const = 0;

  // The party's output after the protocol ends with transcript `pi`.
  // Must be pure.
  [[nodiscard]] virtual PartyOutput ComputeOutput(const BitString& pi)
      const = 0;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_PROTOCOL_PARTY_H_
