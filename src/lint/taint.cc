#include "lint/taint.h"

#include <cstddef>
#include <map>
#include <set>
#include <string>

namespace noisybeeps::lint {
namespace {

const char* const kSinkMarkers[] = {"Fingerprint", "Transcript", "Digest",
                                    "Checkpoint", "Seed"};

bool IsParallelEntry(const std::string& callee) {
  return callee == "ParallelForEach" || callee == "ParallelTrials";
}

std::vector<FlowStep> WitnessFlow(const ProgramAnalysis& analysis,
                                  std::size_t n, unsigned effect) {
  std::vector<FlowStep> flow;
  for (const ProgramAnalysis::WitnessStep& step :
       analysis.WitnessSteps(n, effect)) {
    flow.push_back({step.file, step.line, step.text});
  }
  return flow;
}

}  // namespace

bool IsDeterminismSink(const CallNode& node) {
  if (node.name == "SplitTrialRngs") return true;
  for (const char* marker : kSinkMarkers) {
    if (node.name.find(marker) != std::string::npos) return true;
  }
  return false;
}

void CheckDeterminismTaint(const ProgramAnalysis& analysis,
                           std::vector<Finding>& out) {
  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const CallNode& node = nodes[n];
    if (!node.path.starts_with("src/")) continue;

    // Raw OS clocks are confined to the injectable seam.
    if (!IsClockSeamPath(node.path) &&
        (analysis.DirectEffectsOf(n) & kEffectWallClock) != 0) {
      for (const EffectOrigin& origin : analysis.OriginsOf(n)) {
        if (origin.effect != kEffectWallClock) continue;
        out.push_back(
            {node.path, origin.line, "determinism-taint",
             "raw wall-clock read (" + origin.detail + ") in " +
                 node.qualified_name +
                 "; src/ must go through the injectable Clock in "
                 "src/resilience/clock.h so replay stays deterministic"});
      }
    }

    if (!IsDeterminismSink(node)) continue;
    const unsigned tainted = analysis.EffectsOf(n) & kDeterminismSources;
    for (unsigned bit = 1; bit != 0; bit <<= 1) {
      if ((tainted & bit) == 0) continue;
      Finding finding{
          node.path, node.line, "determinism-taint",
          "determinism-critical sink " + node.qualified_name +
              " can reach a " + EffectName(bit) +
              " nondeterminism source: " + analysis.WitnessPath(n, bit)};
      finding.flow = WitnessFlow(analysis, n, bit);
      out.push_back(std::move(finding));
    }
  }
}

void CheckRngDrawParity(const ProgramAnalysis& analysis,
                        std::vector<Finding>& out) {
  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const CallNode& node = nodes[n];
    if (!node.path.starts_with("src/channel/")) continue;
    const FunctionFacts& facts = analysis.FactsOf(n);
    if (facts.mode_branches.empty()) continue;

    // A call site draws when it syntactically touches an Rng (receiver,
    // qualifier, or argument) or when its resolved callee's effect
    // closure draws.  Union edges count too: a guessed receiver that
    // draws is exactly the double-advance bug class this rule hunts.
    std::vector<char> draws(node.edges.size(), 0);
    for (std::size_t e = 0; e < node.edges.size(); ++e) {
      if (e < facts.call_rng_local.size() && facts.call_rng_local[e] != 0) {
        draws[e] = 1;
        continue;
      }
      for (const std::size_t target : node.edges[e].targets) {
        if ((analysis.EffectsOf(target) & kEffectDrawsRng) != 0) {
          draws[e] = 1;
          break;
        }
      }
    }
    const auto count_of = [&](const std::vector<int>& path) {
      int count = 0;
      for (const int site : path) {
        if (site >= 0 && static_cast<std::size_t>(site) < draws.size() &&
            draws[static_cast<std::size_t>(site)] != 0) {
          ++count;
        }
      }
      return count;
    };
    const auto counts_of = [&](const std::vector<std::vector<int>>& paths) {
      std::set<int> counts;
      for (const std::vector<int>& path : paths) counts.insert(count_of(path));
      return counts;
    };
    const auto render = [](const std::set<int>& counts) {
      std::string text = "{";
      for (const int c : counts) {
        if (text.size() > 1) text += ",";
        text += std::to_string(c);
      }
      return text + "}";
    };

    for (const FunctionFacts::ModeBranch& branch : facts.mode_branches) {
      const std::set<int> taken = counts_of(branch.taken_paths);
      const std::set<int> other = counts_of(branch.other_paths);
      if (taken.empty() || other.empty() || taken == other) continue;

      Finding finding{
          node.path, branch.line, "rng-draw-parity",
          "WordMode-conditioned branch in " + node.qualified_name +
              " draws different numbers of Rng values per arm (per-path "
              "draw counts " + render(taken) + " vs " + render(other) +
              "); the stream-compat and fast modes must consume identical "
              "draw counts per round or their streams diverge after the "
              "first round and replay comparisons silently lie"};
      finding.flow.push_back({node.path, branch.line,
                              "WordMode branch in " + node.qualified_name});
      // Witness the arm whose count the other arm cannot reach.
      const std::vector<std::vector<int>>* witness = &branch.taken_paths;
      const std::set<int>* foreign = &other;
      const std::vector<int>* best = nullptr;
      for (int round = 0; round < 2 && best == nullptr; ++round) {
        for (const std::vector<int>& path : *witness) {
          if (foreign->count(count_of(path)) == 0) {
            best = &path;
            break;
          }
        }
        witness = &branch.other_paths;
        foreign = &taken;
      }
      if (best != nullptr) {
        for (const int site : *best) {
          if (site < 0 || static_cast<std::size_t>(site) >= draws.size() ||
              draws[static_cast<std::size_t>(site)] == 0) {
            continue;
          }
          const RawCallSite& call =
              node.edges[static_cast<std::size_t>(site)].site;
          finding.flow.push_back(
              {node.path, call.line, "Rng draw: " + call.callee});
        }
      }
      out.push_back(std::move(finding));
    }
  }
}

void CheckLocksetDiscipline(const ProgramAnalysis& analysis,
                            std::vector<Finding>& out) {
  const std::vector<CallNode>& nodes = analysis.graph().nodes();

  // Roots: functions that issue a ParallelForEach / ParallelTrials call.
  // Their worker lambdas are lexically inside them, so every function the
  // workers call is a call-graph successor of the root.
  struct Reach {
    std::size_t root = 0;
    std::size_t parent = kNpos;  // caller on the discovery path
    int line = 0;                // call-site line in the caller
  };
  std::vector<std::size_t> frontier;
  std::map<std::size_t, Reach> reached;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (const CallEdge& edge : nodes[n].edges) {
      if (IsParallelEntry(edge.site.callee)) {
        frontier.push_back(n);
        reached.emplace(n, Reach{n, kNpos, edge.site.line});
        break;
      }
    }
  }
  std::set<std::size_t> roots(frontier.begin(), frontier.end());
  while (!frontier.empty()) {
    const std::size_t n = frontier.back();
    frontier.pop_back();
    for (const CallEdge& edge : nodes[n].edges) {
      for (const std::size_t target : edge.targets) {
        if (reached
                .emplace(target,
                         Reach{reached.at(n).root, n, edge.site.line})
                .second) {
          frontier.push_back(target);
        }
      }
    }
  }

  for (const auto& [n, reach] : reached) {
    const CallNode& node = nodes[n];
    // The root's own direct writes may be sequential code around the
    // parallel region; only its callees are judged.
    if (roots.count(n) > 0) continue;
    if (node.path.starts_with("tests/")) continue;
    // The must-lockset analysis (dataflow.cc) already discharged writes
    // that every path covers with a live RAII guard or manual lock.
    const FunctionFacts& facts = analysis.FactsOf(n);
    if (facts.unlocked_writes.empty()) continue;
    const FunctionFacts::UnlockedWrite& write = facts.unlocked_writes.front();

    Finding finding{
        node.path, write.line, "lockset-discipline",
        node.qualified_name + " writes shared state (" + write.detail +
            ") with an empty lockset on some path and is reachable from "
            "the parallel worker body in " + nodes[reach.root].qualified_name +
            " (" + nodes[reach.root].path +
            "); use the per-worker accumulator + Merge pattern"};
    // Witness: the discovery chain root -> ... -> n, then the write.
    std::vector<std::size_t> chain;
    for (std::size_t hop = n; hop != kNpos;
         hop = reached.at(hop).parent) {
      chain.push_back(hop);
      if (chain.size() > nodes.size()) break;  // defensive: no cycles
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const Reach& r = reached.at(*it);
      finding.flow.push_back(
          {nodes[*it].path, r.parent == kNpos ? r.line : nodes[*it].line,
           r.parent == kNpos
               ? "parallel region in " + nodes[*it].qualified_name
               : nodes[*it].qualified_name});
    }
    finding.flow.push_back(
        {node.path, write.line, "unlocked write: " + write.detail});
    out.push_back(std::move(finding));
    // One finding per node keeps the report readable.
  }
}

void CheckIntNarrowing(const ProgramAnalysis& analysis,
                       std::vector<Finding>& out) {
  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const CallNode& node = nodes[n];
    if (!node.path.starts_with("src/")) continue;
    const FunctionFacts& facts = analysis.FactsOf(n);
    for (const FunctionFacts::Narrowing& narrowing : facts.narrowings) {
      out.push_back(
          {node.path, narrowing.line, "int-narrowing-at-boundary",
           narrowing.detail + " in " + node.qualified_name +
               " with no dominating NB_REQUIRE range guard; guard the "
               "value or make the narrowing explicit with a checked "
               "cast"});
    }
    for (const FunctionFacts::NarrowArg& arg : facts.narrow_args) {
      if (arg.call < 0 ||
          static_cast<std::size_t>(arg.call) >= node.edges.size()) {
        continue;
      }
      const CallEdge& edge = node.edges[static_cast<std::size_t>(arg.call)];
      // Only an exact resolution may judge the callee's signature; and
      // every overload must agree the parameter is 32-bit.
      if (edge.resolution != Resolution::kExact || edge.targets.empty()) {
        continue;
      }
      bool all_narrow = true;
      for (const std::size_t target : edge.targets) {
        const FunctionFacts& callee = analysis.FactsOf(target);
        if (arg.arg < 0 ||
            static_cast<std::size_t>(arg.arg) >= callee.param_widths.size() ||
            callee.param_widths[static_cast<std::size_t>(arg.arg)] != 32) {
          all_narrow = false;
          break;
        }
      }
      if (!all_narrow) continue;
      const CallNode& callee = nodes[edge.targets.front()];
      Finding finding{
          node.path, arg.line, "int-narrowing-at-boundary",
          "int64 `" + arg.ident + "` passed as argument " +
              std::to_string(arg.arg + 1) + " of " + callee.qualified_name +
              ", whose parameter is declared 32-bit (" + callee.path + ":" +
              std::to_string(callee.line) +
              "), with no dominating NB_REQUIRE range guard; guard the "
              "value or make the narrowing explicit with a checked cast"};
      finding.flow.push_back(
          {node.path, arg.line,
           "call site in " + node.qualified_name + " passes `" + arg.ident +
               "`"});
      finding.flow.push_back(
          {callee.path, callee.line,
           "parameter " + std::to_string(arg.arg + 1) + " of " +
               callee.qualified_name + " is 32-bit"});
      out.push_back(std::move(finding));
    }
  }
}

void CheckLayeringReachability(const ProgramAnalysis& analysis,
                               std::vector<Finding>& out) {
  // Transitive closure of the declarative layer table.
  const auto& table = LayerTable();
  std::map<std::string, std::set<std::string>> closure;
  for (const auto& [module, deps] : table) {
    std::set<std::string>& seen = closure[module];
    std::vector<std::string> stack(deps.begin(), deps.end());
    while (!stack.empty()) {
      const std::string dep = stack.back();
      stack.pop_back();
      if (!seen.insert(dep).second) continue;
      const auto it = table.find(dep);
      if (it == table.end()) continue;
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }

  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  std::set<std::string> reported;  // "from|to|path|line" dedup
  for (const CallNode& node : nodes) {
    if (node.module.empty() || table.count(node.module) == 0) continue;
    for (const CallEdge& edge : node.edges) {
      // A union edge is a guess about the receiver's class; guesses must
      // not invent architecture violations.
      if (edge.resolution != Resolution::kExact) continue;
      for (const std::size_t t : edge.targets) {
        const std::string& to = nodes[t].module;
        if (to.empty() || to == node.module || table.count(to) == 0) {
          continue;
        }
        if (closure.at(node.module).count(to) > 0) continue;
        const std::string key = node.module + "|" + to + "|" + node.path +
                                "|" + std::to_string(edge.site.line);
        if (!reported.insert(key).second) continue;
        std::string allowed;
        for (const std::string& dep : closure.at(node.module)) {
          if (!allowed.empty()) allowed += ", ";
          allowed += dep + "/";
        }
        if (allowed.empty()) allowed = "no other module";
        out.push_back(
            {node.path, edge.site.line, "layering-reachability",
             node.qualified_name + " calls " + nodes[t].qualified_name +
                 " (" + nodes[t].path + "), a src/" + to +
                 "/ dependency the layer table does not reach from src/" +
                 node.module + "/ (transitively allowed: " + allowed + ")"});
      }
    }
  }
}

void CheckIoSeamDiscipline(const ProgramAnalysis& analysis,
                           std::vector<Finding>& out) {
  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const CallNode& node = nodes[n];
    // bench/ is in scope too: a benchmark that writes files skews the
    // numbers it reports.  tools/ stay exempt -- reading trees and
    // writing reports is their whole job.
    if (!node.path.starts_with("src/") && !node.path.starts_with("bench/")) {
      continue;
    }
    if (IsFsSeamPath(node.path)) continue;
    if ((analysis.DirectEffectsOf(n) & kEffectRawFileIo) == 0) continue;
    for (const EffectOrigin& origin : analysis.OriginsOf(n)) {
      if (origin.effect != kEffectRawFileIo) continue;
      out.push_back(
          {node.path, origin.line, "io-seam-discipline",
           "raw filesystem access (" + origin.detail + ") in " +
               node.qualified_name +
               "; src/ must go through the injectable failpoint::Fs seam in "
               "src/failpoint/fs.h so I/O faults stay injectable (and "
               "bench/ must not do file I/O at all)"});
    }
  }
}

void CheckServiceLayering(const ProgramAnalysis& analysis,
                          std::vector<Finding>& out) {
  // Unlike io-seam-discipline there is NO exempt seam path: no file in
  // src/ is allowed to speak a transport.  The one sanctioned home for
  // socket calls is the nbserved front-end under tools/.
  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const CallNode& node = nodes[n];
    // In scope: the library, the benchmarks, and every tool except the
    // one sanctioned transport front-end.
    const bool in_scope =
        node.path.starts_with("src/") || node.path.starts_with("bench/") ||
        (node.path.starts_with("tools/") && node.path != "tools/nbserved.cc");
    if (!in_scope) continue;
    if ((analysis.DirectEffectsOf(n) & kEffectRawSocket) == 0) continue;
    for (const EffectOrigin& origin : analysis.OriginsOf(n)) {
      if (origin.effect != kEffectRawSocket) continue;
      out.push_back(
          {node.path, origin.line, "service-layering",
           "raw socket call (" + origin.detail + ") in " +
               node.qualified_name +
               "; transport lives only in the nbserved front-end "
               "(tools/nbserved.cc) -- everything else must stay behind "
               "the transport-agnostic service core API (src/service/)"});
    }
  }
}

}  // namespace noisybeeps::lint
