#include "lint/taint.h"

#include <map>
#include <set>
#include <string>

namespace noisybeeps::lint {
namespace {

const char* const kSinkMarkers[] = {"Fingerprint", "Transcript", "Digest",
                                    "Checkpoint", "Seed"};

bool IsParallelEntry(const std::string& callee) {
  return callee == "ParallelForEach" || callee == "ParallelTrials";
}

}  // namespace

bool IsDeterminismSink(const CallNode& node) {
  if (node.name == "SplitTrialRngs") return true;
  for (const char* marker : kSinkMarkers) {
    if (node.name.find(marker) != std::string::npos) return true;
  }
  return false;
}

void CheckDeterminismTaint(const ProgramAnalysis& analysis,
                           std::vector<Finding>& out) {
  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const CallNode& node = nodes[n];
    if (!node.path.starts_with("src/")) continue;

    // Raw OS clocks are confined to the injectable seam.
    if (!IsClockSeamPath(node.path) &&
        (analysis.DirectEffectsOf(n) & kEffectWallClock) != 0) {
      for (const EffectOrigin& origin : analysis.OriginsOf(n)) {
        if (origin.effect != kEffectWallClock) continue;
        out.push_back(
            {node.path, origin.line, "determinism-taint",
             "raw wall-clock read (" + origin.detail + ") in " +
                 node.qualified_name +
                 "; src/ must go through the injectable Clock in "
                 "src/resilience/clock.h so replay stays deterministic"});
      }
    }

    if (!IsDeterminismSink(node)) continue;
    const unsigned tainted = analysis.EffectsOf(n) & kDeterminismSources;
    for (unsigned bit = 1; bit != 0; bit <<= 1) {
      if ((tainted & bit) == 0) continue;
      out.push_back(
          {node.path, node.line, "determinism-taint",
           "determinism-critical sink " + node.qualified_name +
               " can reach a " + EffectName(bit) +
               " nondeterminism source: " + analysis.WitnessPath(n, bit)});
    }
  }
}

void CheckSharedStateDiscipline(const ProgramAnalysis& analysis,
                                std::vector<Finding>& out) {
  const std::vector<CallNode>& nodes = analysis.graph().nodes();

  // Roots: functions that issue a ParallelForEach / ParallelTrials call.
  // Their worker lambdas are lexically inside them, so every function the
  // workers call is a call-graph successor of the root.
  std::vector<std::size_t> frontier;
  std::map<std::size_t, std::size_t> reached_from;  // node -> root
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (const CallEdge& edge : nodes[n].edges) {
      if (IsParallelEntry(edge.site.callee)) {
        frontier.push_back(n);
        reached_from.emplace(n, n);
        break;
      }
    }
  }
  std::set<std::size_t> roots(frontier.begin(), frontier.end());
  while (!frontier.empty()) {
    const std::size_t n = frontier.back();
    frontier.pop_back();
    for (const CallEdge& edge : nodes[n].edges) {
      for (const std::size_t target : edge.targets) {
        if (reached_from.emplace(target, reached_from.at(n)).second) {
          frontier.push_back(target);
        }
      }
    }
  }

  for (const auto& [n, root] : reached_from) {
    const CallNode& node = nodes[n];
    // The root's own direct writes may be sequential code around the
    // parallel region; only its callees are judged.
    if (roots.count(n) > 0) continue;
    if (node.path.starts_with("tests/")) continue;
    const unsigned direct = analysis.DirectEffectsOf(n);
    if ((direct & kEffectWritesShared) == 0 ||
        (direct & kEffectTakesLock) != 0) {
      continue;
    }
    for (const EffectOrigin& origin : analysis.OriginsOf(n)) {
      if (origin.effect != kEffectWritesShared) continue;
      out.push_back(
          {node.path, origin.line, "shared-state-discipline",
           node.qualified_name + " writes shared state (" + origin.detail +
               ") without a lock and is reachable from the parallel worker "
               "body in " + nodes[root].qualified_name + " (" +
               nodes[root].path +
               "); use the per-worker accumulator + Merge pattern"});
      break;  // one finding per node keeps the report readable
    }
  }
}

void CheckLayeringReachability(const ProgramAnalysis& analysis,
                               std::vector<Finding>& out) {
  // Transitive closure of the declarative layer table.
  const auto& table = LayerTable();
  std::map<std::string, std::set<std::string>> closure;
  for (const auto& [module, deps] : table) {
    std::set<std::string>& seen = closure[module];
    std::vector<std::string> stack(deps.begin(), deps.end());
    while (!stack.empty()) {
      const std::string dep = stack.back();
      stack.pop_back();
      if (!seen.insert(dep).second) continue;
      const auto it = table.find(dep);
      if (it == table.end()) continue;
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }

  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  std::set<std::string> reported;  // "from|to|path|line" dedup
  for (const CallNode& node : nodes) {
    if (node.module.empty() || table.count(node.module) == 0) continue;
    for (const CallEdge& edge : node.edges) {
      // A union edge is a guess about the receiver's class; guesses must
      // not invent architecture violations.
      if (edge.resolution != Resolution::kExact) continue;
      for (const std::size_t t : edge.targets) {
        const std::string& to = nodes[t].module;
        if (to.empty() || to == node.module || table.count(to) == 0) {
          continue;
        }
        if (closure.at(node.module).count(to) > 0) continue;
        const std::string key = node.module + "|" + to + "|" + node.path +
                                "|" + std::to_string(edge.site.line);
        if (!reported.insert(key).second) continue;
        std::string allowed;
        for (const std::string& dep : closure.at(node.module)) {
          if (!allowed.empty()) allowed += ", ";
          allowed += dep + "/";
        }
        if (allowed.empty()) allowed = "no other module";
        out.push_back(
            {node.path, edge.site.line, "layering-reachability",
             node.qualified_name + " calls " + nodes[t].qualified_name +
                 " (" + nodes[t].path + "), a src/" + to +
                 "/ dependency the layer table does not reach from src/" +
                 node.module + "/ (transitively allowed: " + allowed + ")"});
      }
    }
  }
}

void CheckIoSeamDiscipline(const ProgramAnalysis& analysis,
                           std::vector<Finding>& out) {
  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const CallNode& node = nodes[n];
    if (!node.path.starts_with("src/")) continue;
    if (IsFsSeamPath(node.path)) continue;
    if ((analysis.DirectEffectsOf(n) & kEffectRawFileIo) == 0) continue;
    for (const EffectOrigin& origin : analysis.OriginsOf(n)) {
      if (origin.effect != kEffectRawFileIo) continue;
      out.push_back(
          {node.path, origin.line, "io-seam-discipline",
           "raw filesystem access (" + origin.detail + ") in " +
               node.qualified_name +
               "; src/ must go through the injectable failpoint::Fs seam in "
               "src/failpoint/fs.h so I/O faults stay injectable"});
    }
  }
}

void CheckServiceLayering(const ProgramAnalysis& analysis,
                          std::vector<Finding>& out) {
  // Unlike io-seam-discipline there is NO exempt seam path: no file in
  // src/ is allowed to speak a transport.  The one sanctioned home for
  // socket calls is the nbserved front-end under tools/.
  const std::vector<CallNode>& nodes = analysis.graph().nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const CallNode& node = nodes[n];
    if (!node.path.starts_with("src/")) continue;
    if ((analysis.DirectEffectsOf(n) & kEffectRawSocket) == 0) continue;
    for (const EffectOrigin& origin : analysis.OriginsOf(n)) {
      if (origin.effect != kEffectRawSocket) continue;
      out.push_back(
          {node.path, origin.line, "service-layering",
           "raw socket call (" + origin.detail + ") in " +
               node.qualified_name +
               "; transport lives only in the nbserved front-end "
               "(tools/nbserved.cc) -- src/ must stay behind the "
               "transport-agnostic service core API (src/service/)"});
    }
  }
}

}  // namespace noisybeeps::lint
