#include "lint/cache.h"

#include <cstdint>
#include <map>
#include <sstream>
#include <utility>

namespace noisybeeps::lint {
namespace {

// v2: kEffectRawFileIo changed what extraction emits for unchanged files.
// v3: effect masks gained kEffectRawSocket (bit 10); cached masks from v2
// would silently lack it, so the bump invalidates them.
constexpr std::string_view kHeader = "nblint-cache 3";

// "" round-trips as "-" so every record keeps a fixed field count.
std::string Opt(const std::string& value) {
  return value.empty() ? "-" : value;
}
std::string UnOpt(const std::string& value) {
  return value == "-" ? "" : value;
}

std::string PairedPath(const std::string& path) {
  std::string paired = path;
  if (paired.ends_with(".cc")) {
    paired.replace(paired.size() - 3, 3, ".h");
  } else if (paired.ends_with(".h")) {
    paired.replace(paired.size() - 2, 2, ".cc");
  } else {
    return "";
  }
  return paired;
}

}  // namespace

std::string HashContent(std::string_view content) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : content) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::string SerializeCache(const std::vector<FileExtract>& extracts) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (const FileExtract& file : extracts) {
    out << "file " << file.path << " " << Opt(file.module) << " "
        << file.content_hash << " " << Opt(file.paired_hash) << "\n";
    for (const FunctionExtract& fn : file.functions) {
      out << "fn " << fn.line << " " << fn.direct_effects << " " << fn.name
          << " " << Opt(fn.class_name) << "\n";
      for (const EffectOrigin& origin : fn.origins) {
        out << "origin " << origin.effect << " " << origin.line << " "
            << origin.detail << "\n";
      }
      for (const RawCallSite& call : fn.calls) {
        out << "call " << static_cast<int>(call.kind) << " " << call.line
            << " " << call.callee << " " << Opt(call.qualifier) << " "
            << Opt(call.receiver_type) << "\n";
      }
    }
  }
  return out.str();
}

std::vector<FileExtract> ParseCache(const std::string& text) {
  std::vector<FileExtract> extracts;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return {};
  FileExtract* file = nullptr;
  FunctionExtract* fn = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "file") {
      FileExtract next;
      std::string module;
      std::string paired;
      if (!(fields >> next.path >> module >> next.content_hash >> paired)) {
        return {};
      }
      next.module = UnOpt(module);
      next.paired_hash = UnOpt(paired);
      extracts.push_back(std::move(next));
      file = &extracts.back();
      fn = nullptr;
    } else if (tag == "fn") {
      if (file == nullptr) return {};
      FunctionExtract next;
      std::string cls;
      if (!(fields >> next.line >> next.direct_effects >> next.name >>
            cls)) {
        return {};
      }
      next.class_name = UnOpt(cls);
      file->functions.push_back(std::move(next));
      fn = &file->functions.back();
    } else if (tag == "origin") {
      if (fn == nullptr) return {};
      EffectOrigin origin;
      if (!(fields >> origin.effect >> origin.line)) return {};
      std::getline(fields, origin.detail);
      if (!origin.detail.empty() && origin.detail.front() == ' ') {
        origin.detail.erase(0, 1);
      }
      fn->origins.push_back(std::move(origin));
    } else if (tag == "call") {
      if (fn == nullptr) return {};
      RawCallSite call;
      int kind = 0;
      std::string qualifier;
      std::string receiver;
      if (!(fields >> kind >> call.line >> call.callee >> qualifier >>
            receiver) ||
          kind < 0 || kind > 2) {
        return {};
      }
      call.kind = static_cast<CallKind>(kind);
      call.qualifier = UnOpt(qualifier);
      call.receiver_type = UnOpt(receiver);
      fn->calls.push_back(std::move(call));
    } else {
      return {};
    }
  }
  return extracts;
}

std::vector<FileExtract> ExtractWithCache(
    const RepoModel& repo, const std::vector<FileExtract>& cached,
    std::size_t* cache_hits) {
  std::map<std::string, const FileExtract*> by_path;
  for (const FileExtract& entry : cached) {
    by_path.emplace(entry.path, &entry);
  }
  if (cache_hits != nullptr) *cache_hits = 0;
  std::vector<FileExtract> extracts;
  extracts.reserve(repo.files().size());
  for (const FileModel& file : repo.files()) {
    const std::string own = HashContent(file.content());
    std::string paired_hash;
    const std::string paired = PairedPath(file.path());
    if (const FileModel* other =
            paired.empty() ? nullptr : repo.FindFile(paired)) {
      paired_hash = HashContent(other->content());
    }
    const auto hit = by_path.find(file.path());
    if (hit != by_path.end() && hit->second->content_hash == own &&
        hit->second->paired_hash == paired_hash) {
      if (cache_hits != nullptr) ++*cache_hits;
      extracts.push_back(*hit->second);
      continue;
    }
    FileExtract fresh = ExtractFile(repo, file);
    fresh.content_hash = own;
    fresh.paired_hash = paired_hash;
    extracts.push_back(std::move(fresh));
  }
  return extracts;
}

}  // namespace noisybeeps::lint
