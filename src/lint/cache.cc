#include "lint/cache.h"

#include <cstdint>
#include <map>
#include <sstream>
#include <utility>

namespace noisybeeps::lint {
namespace {

// v2: kEffectRawFileIo changed what extraction emits for unchanged files.
// v3: effect masks gained kEffectRawSocket (bit 10); cached masks from v2
// would silently lack it, so the bump invalidates them.
// v4: extraction gained the CFG-derived FunctionFacts (dataflow.h) --
// integer widths on the fn record, an rng-local flag on the call record,
// and the mb/uw/nw/na records below; a v3 cache would replay every fact
// as empty and silently blind the flow-sensitive rules.
constexpr std::string_view kHeader = "nblint-cache 4";

// "" round-trips as "-" so every record keeps a fixed field count.
std::string Opt(const std::string& value) {
  return value.empty() ? "-" : value;
}
std::string UnOpt(const std::string& value) {
  return value == "-" ? "" : value;
}

// Integer widths serialize as one digit: 0 other, 1 = 32-bit, 2 = 64-bit.
char WidthDigit(int width) {
  return width == 32 ? '1' : width == 64 ? '2' : '0';
}
int DigitWidth(char digit) {
  return digit == '1' ? 32 : digit == '2' ? 64 : 0;
}

// A mode-branch arm: ';'-joined paths, each a ','-joined list of call
// indices, '.' for an empty path, '-' for an arm with no paths at all.
std::string SerializeArm(const std::vector<std::vector<int>>& paths) {
  if (paths.empty()) return "-";
  std::string out;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    if (p > 0) out += ";";
    if (paths[p].empty()) {
      out += ".";
      continue;
    }
    for (std::size_t s = 0; s < paths[p].size(); ++s) {
      if (s > 0) out += ",";
      out += std::to_string(paths[p][s]);
    }
  }
  return out;
}

bool ParseArm(const std::string& text,
              std::vector<std::vector<int>>* paths) {
  if (text == "-") return true;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t semi = text.find(';', start);
    if (semi == std::string::npos) semi = text.size();
    const std::string path_text = text.substr(start, semi - start);
    std::vector<int> path;
    if (path_text != ".") {
      if (path_text.empty()) return false;
      std::size_t pos = 0;
      while (pos <= path_text.size()) {
        std::size_t comma = path_text.find(',', pos);
        if (comma == std::string::npos) comma = path_text.size();
        const std::string item = path_text.substr(pos, comma - pos);
        if (item.empty()) return false;
        int value = 0;
        for (const char c : item) {
          if (c < '0' || c > '9') return false;
          value = value * 10 + (c - '0');
        }
        path.push_back(value);
        pos = comma + 1;
        if (comma == path_text.size()) break;
      }
    }
    paths->push_back(std::move(path));
    start = semi + 1;
    if (semi == text.size()) break;
  }
  return true;
}

std::string PairedPath(const std::string& path) {
  std::string paired = path;
  if (paired.ends_with(".cc")) {
    paired.replace(paired.size() - 3, 3, ".h");
  } else if (paired.ends_with(".h")) {
    paired.replace(paired.size() - 2, 2, ".cc");
  } else {
    return "";
  }
  return paired;
}

}  // namespace

std::string HashContent(std::string_view content) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : content) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::string SerializeCache(const std::vector<FileExtract>& extracts) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (const FileExtract& file : extracts) {
    out << "file " << file.path << " " << Opt(file.module) << " "
        << file.content_hash << " " << Opt(file.paired_hash) << "\n";
    for (const FunctionExtract& fn : file.functions) {
      const FunctionFacts& facts = fn.facts;
      std::string widths;
      for (const int w : facts.param_widths) widths += WidthDigit(w);
      out << "fn " << fn.line << " " << fn.direct_effects << " "
          << WidthDigit(facts.return_width) << " " << Opt(widths) << " "
          << fn.name << " " << Opt(fn.class_name) << "\n";
      for (const EffectOrigin& origin : fn.origins) {
        out << "origin " << origin.effect << " " << origin.line << " "
            << origin.detail << "\n";
      }
      for (std::size_t c = 0; c < fn.calls.size(); ++c) {
        const RawCallSite& call = fn.calls[c];
        const bool rng_local =
            c < facts.call_rng_local.size() && facts.call_rng_local[c] != 0;
        out << "call " << static_cast<int>(call.kind) << " " << call.line
            << " " << call.callee << " " << Opt(call.qualifier) << " "
            << Opt(call.receiver_type) << " " << (rng_local ? 1 : 0) << "\n";
      }
      for (const FunctionFacts::ModeBranch& branch : facts.mode_branches) {
        out << "mb " << branch.line << " " << SerializeArm(branch.taken_paths)
            << " " << SerializeArm(branch.other_paths) << "\n";
      }
      for (const FunctionFacts::UnlockedWrite& write :
           facts.unlocked_writes) {
        out << "uw " << write.line << " " << write.detail << "\n";
      }
      for (const FunctionFacts::Narrowing& narrowing : facts.narrowings) {
        out << "nw " << narrowing.line << " " << narrowing.detail << "\n";
      }
      for (const FunctionFacts::NarrowArg& arg : facts.narrow_args) {
        out << "na " << arg.call << " " << arg.arg << " " << arg.line << " "
            << arg.ident << "\n";
      }
    }
  }
  return out.str();
}

std::vector<FileExtract> ParseCache(const std::string& text) {
  std::vector<FileExtract> extracts;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return {};
  FileExtract* file = nullptr;
  FunctionExtract* fn = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "file") {
      FileExtract next;
      std::string module;
      std::string paired;
      if (!(fields >> next.path >> module >> next.content_hash >> paired)) {
        return {};
      }
      next.module = UnOpt(module);
      next.paired_hash = UnOpt(paired);
      extracts.push_back(std::move(next));
      file = &extracts.back();
      fn = nullptr;
    } else if (tag == "fn") {
      if (file == nullptr) return {};
      FunctionExtract next;
      std::string rw;
      std::string pw;
      std::string cls;
      if (!(fields >> next.line >> next.direct_effects >> rw >> pw >>
            next.name >> cls) ||
          rw.size() != 1) {
        return {};
      }
      next.facts.return_width = DigitWidth(rw[0]);
      for (const char digit : UnOpt(pw)) {
        if (digit != '0' && digit != '1' && digit != '2') return {};
        next.facts.param_widths.push_back(DigitWidth(digit));
      }
      next.class_name = UnOpt(cls);
      file->functions.push_back(std::move(next));
      fn = &file->functions.back();
    } else if (tag == "origin") {
      if (fn == nullptr) return {};
      EffectOrigin origin;
      if (!(fields >> origin.effect >> origin.line)) return {};
      std::getline(fields, origin.detail);
      if (!origin.detail.empty() && origin.detail.front() == ' ') {
        origin.detail.erase(0, 1);
      }
      fn->origins.push_back(std::move(origin));
    } else if (tag == "call") {
      if (fn == nullptr) return {};
      RawCallSite call;
      int kind = 0;
      std::string qualifier;
      std::string receiver;
      int rng_local = 0;
      if (!(fields >> kind >> call.line >> call.callee >> qualifier >>
            receiver >> rng_local) ||
          kind < 0 || kind > 2 || rng_local < 0 || rng_local > 1) {
        return {};
      }
      call.kind = static_cast<CallKind>(kind);
      call.qualifier = UnOpt(qualifier);
      call.receiver_type = UnOpt(receiver);
      fn->calls.push_back(std::move(call));
      fn->facts.call_rng_local.push_back(
          static_cast<std::uint8_t>(rng_local));
    } else if (tag == "mb") {
      if (fn == nullptr) return {};
      FunctionFacts::ModeBranch branch;
      std::string taken;
      std::string other;
      if (!(fields >> branch.line >> taken >> other) ||
          !ParseArm(taken, &branch.taken_paths) ||
          !ParseArm(other, &branch.other_paths)) {
        return {};
      }
      fn->facts.mode_branches.push_back(std::move(branch));
    } else if (tag == "uw") {
      if (fn == nullptr) return {};
      FunctionFacts::UnlockedWrite write;
      if (!(fields >> write.line)) return {};
      std::getline(fields, write.detail);
      if (!write.detail.empty() && write.detail.front() == ' ') {
        write.detail.erase(0, 1);
      }
      fn->facts.unlocked_writes.push_back(std::move(write));
    } else if (tag == "nw") {
      if (fn == nullptr) return {};
      FunctionFacts::Narrowing narrowing;
      if (!(fields >> narrowing.line)) return {};
      std::getline(fields, narrowing.detail);
      if (!narrowing.detail.empty() && narrowing.detail.front() == ' ') {
        narrowing.detail.erase(0, 1);
      }
      fn->facts.narrowings.push_back(std::move(narrowing));
    } else if (tag == "na") {
      if (fn == nullptr) return {};
      FunctionFacts::NarrowArg arg;
      if (!(fields >> arg.call >> arg.arg >> arg.line >> arg.ident)) {
        return {};
      }
      fn->facts.narrow_args.push_back(std::move(arg));
    } else {
      return {};
    }
  }
  return extracts;
}

std::vector<FileExtract> ExtractWithCache(
    const RepoModel& repo, const std::vector<FileExtract>& cached,
    std::size_t* cache_hits) {
  std::map<std::string, const FileExtract*> by_path;
  for (const FileExtract& entry : cached) {
    by_path.emplace(entry.path, &entry);
  }
  if (cache_hits != nullptr) *cache_hits = 0;
  std::vector<FileExtract> extracts;
  extracts.reserve(repo.files().size());
  for (const FileModel& file : repo.files()) {
    const std::string own = HashContent(file.content());
    std::string paired_hash;
    const std::string paired = PairedPath(file.path());
    if (const FileModel* other =
            paired.empty() ? nullptr : repo.FindFile(paired)) {
      paired_hash = HashContent(other->content());
    }
    const auto hit = by_path.find(file.path());
    if (hit != by_path.end() && hit->second->content_hash == own &&
        hit->second->paired_hash == paired_hash) {
      if (cache_hits != nullptr) ++*cache_hits;
      extracts.push_back(*hit->second);
      continue;
    }
    FileExtract fresh = ExtractFile(repo, file);
    fresh.content_hash = own;
    fresh.paired_hash = paired_hash;
    extracts.push_back(std::move(fresh));
  }
  return extracts;
}

}  // namespace noisybeeps::lint
