#include "lint/callgraph.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace noisybeeps::lint {
namespace {

// Identifier-kind tokens that look like calls but are control flow or
// operators.  (Overlaps model.cc's list; kept local so the two heuristic
// passes stay independently tunable.)
bool IsCallKeyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",       "while",   "for",     "switch",        "catch",
      "sizeof",   "alignof", "alignas", "decltype",      "static_assert",
      "return",   "throw",   "defined", "noexcept",      "typeid",
      "requires", "assert"};
  return kKeywords.count(name) > 0;
}

// Identifier-kind tokens after which `name(` is still an expression --
// they must NOT veto a call the way `Type name(` does.
bool IsExpressionKeyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "return", "throw",  "co_return", "co_yield", "case",
      "new",    "delete", "else",      "do",       "in"};
  return kKeywords.count(name) > 0;
}

std::string PairedPath(const std::string& path) {
  std::string paired = path;
  if (paired.ends_with(".cc")) {
    paired.replace(paired.size() - 3, 3, ".h");
  } else if (paired.ends_with(".h")) {
    paired.replace(paired.size() - 2, 2, ".cc");
  } else {
    return "";
  }
  return paired;
}

}  // namespace

std::vector<RawCallSite> ExtractCallSites(const RepoModel& repo,
                                          const FileModel& file,
                                          const FunctionInfo& fn) {
  std::vector<RawCallSite> sites;
  if (!fn.is_definition || fn.body_begin == kNpos ||
      fn.body_end <= fn.body_begin) {
    return sites;
  }
  // The body's code tokens, braces excluded.
  std::vector<std::size_t> body;
  for (const std::size_t raw : file.code()) {
    if (raw > fn.body_begin && raw < fn.body_end) body.push_back(raw);
  }
  const auto tok = [&](std::size_t i) -> const Token& {
    return file.tokens()[body[i]];
  };

  for (std::size_t i = 0; i < body.size(); ++i) {
    const Token& t = tok(i);
    if (t.kind != TokenKind::kIdentifier || IsCallKeyword(t.text)) continue;
    if (i + 1 >= body.size() || tok(i + 1).text != "(") continue;

    // Walk back over an `A::B::` chain to find the qualifier.
    std::size_t start = i;
    std::vector<std::string> qualifiers;
    while (start >= 2 && tok(start - 1).text == "::" &&
           tok(start - 2).kind == TokenKind::kIdentifier) {
      qualifiers.push_back(tok(start - 2).text);
      start -= 2;
    }
    std::reverse(qualifiers.begin(), qualifiers.end());

    RawCallSite site;
    site.callee = t.text;
    site.line = t.line;

    if (!qualifiers.empty()) {
      site.kind = CallKind::kQualified;
      for (std::size_t q = 0; q < qualifiers.size(); ++q) {
        if (q > 0) site.qualifier += "::";
        site.qualifier += qualifiers[q];
      }
    } else if (start > 0 &&
               (tok(start - 1).text == "." || tok(start - 1).text == "->")) {
      site.kind = CallKind::kMember;
      if (start >= 2 && tok(start - 2).kind == TokenKind::kIdentifier) {
        const std::string& receiver = tok(start - 2).text;
        site.receiver_type = receiver == "this"
                                 ? fn.class_name
                                 : repo.TypeOf(file, receiver);
      }
    } else {
      site.kind = CallKind::kFree;
      if (start > 0) {
        const Token& prev = tok(start - 1);
        // `Type name(` / `T* name(` / `vector<T> name(` declare, not call.
        if ((prev.kind == TokenKind::kIdentifier &&
             !IsExpressionKeyword(prev.text)) ||
            prev.text == ">" || prev.text == ">>" || prev.text == "*" ||
            prev.text == "&") {
          continue;
        }
      }
    }
    sites.push_back(std::move(site));
  }
  return sites;
}

CallGraph CallGraph::Build(const RepoModel& repo) {
  std::vector<NodeInput> inputs;
  for (const FileModel& file : repo.files()) {
    for (const FunctionInfo& fn : file.functions()) {
      if (!fn.is_definition) continue;
      NodeInput input;
      input.path = file.path();
      input.module = file.module();
      input.name = fn.name;
      input.class_name = fn.class_name;
      input.qualified_name =
          fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
      input.line = fn.line;
      input.calls = ExtractCallSites(repo, file, fn);
      inputs.push_back(std::move(input));
    }
  }
  return Build(std::move(inputs));
}

CallGraph CallGraph::Build(std::vector<NodeInput> inputs) {
  CallGraph graph;
  graph.nodes_.reserve(inputs.size());
  for (NodeInput& input : inputs) {
    CallNode node;
    node.path = std::move(input.path);
    node.module = std::move(input.module);
    node.name = std::move(input.name);
    node.class_name = std::move(input.class_name);
    node.qualified_name = std::move(input.qualified_name);
    node.line = input.line;
    node.edges.reserve(input.calls.size());
    for (RawCallSite& site : input.calls) {
      CallEdge edge;
      edge.site = std::move(site);
      node.edges.push_back(std::move(edge));
    }
    graph.nodes_.push_back(std::move(node));
  }

  // Name tables.  methods: (class, name) -> nodes.  free_fns: name ->
  // nodes with no class.  any_method: name -> nodes with SOME class (the
  // union fallback for untyped receivers).
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>>
      methods;
  std::map<std::string, std::vector<std::size_t>> free_fns;
  std::map<std::string, std::vector<std::size_t>> any_method;
  for (std::size_t n = 0; n < graph.nodes_.size(); ++n) {
    const CallNode& node = graph.nodes_[n];
    if (node.class_name.empty()) {
      free_fns[node.name].push_back(n);
    } else {
      methods[{node.class_name, node.name}].push_back(n);
      any_method[node.name].push_back(n);
    }
  }

  const auto resolve_free = [&](const CallNode& caller,
                                const std::string& name, CallEdge& edge) {
    // A bare call inside a member function reaches sibling methods first.
    if (!caller.class_name.empty()) {
      const auto sibling = methods.find({caller.class_name, name});
      if (sibling != methods.end()) {
        edge.targets = sibling->second;
        edge.resolution = Resolution::kExact;
        return;
      }
    }
    const auto it = free_fns.find(name);
    if (it != free_fns.end()) {
      // Prefer definitions in the calling file, then its pair, then all --
      // same-named static helpers in other modules are not candidates.
      const std::string paired = PairedPath(caller.path);
      std::vector<std::size_t> same, pair;
      for (const std::size_t n : it->second) {
        if (graph.nodes_[n].path == caller.path) same.push_back(n);
        if (!paired.empty() && graph.nodes_[n].path == paired) {
          pair.push_back(n);
        }
      }
      edge.targets = !same.empty() ? same : !pair.empty() ? pair : it->second;
      edge.resolution = Resolution::kExact;
      return;
    }
    // `Foo(...)` constructing a class resolves to Foo's constructors.
    const auto ctor = methods.find({name, name});
    if (ctor != methods.end()) {
      edge.targets = ctor->second;
      edge.resolution = Resolution::kExact;
    }
  };

  for (CallNode& node : graph.nodes_) {
    for (CallEdge& edge : node.edges) {
      const RawCallSite& site = edge.site;
      switch (site.kind) {
        case CallKind::kQualified: {
          if (site.qualifier == "std" ||
              site.qualifier.starts_with("std::")) {
            break;  // external; stays kUnresolved
          }
          // The last qualifier segment is the class candidate; the rest
          // is namespace noise ("lint::Foo::Bar" -> "Foo").
          const std::size_t sep = site.qualifier.rfind("::");
          const std::string cls = sep == std::string::npos
                                      ? site.qualifier
                                      : site.qualifier.substr(sep + 2);
          const auto it = methods.find({cls, site.callee});
          if (it != methods.end()) {
            edge.targets = it->second;
            edge.resolution = Resolution::kExact;
            break;
          }
          // Namespace-qualified free call ("lint::RunRule(...)").
          resolve_free(node, site.callee, edge);
          break;
        }
        case CallKind::kMember: {
          if (!site.receiver_type.empty() &&
              !site.receiver_type.starts_with("std::")) {
            const auto it = methods.find({site.receiver_type, site.callee});
            if (it != methods.end()) {
              edge.targets = it->second;
              edge.resolution = Resolution::kExact;
              break;
            }
          }
          if (site.receiver_type.starts_with("std::")) break;  // external
          const auto it = any_method.find(site.callee);
          if (it != any_method.end()) {
            edge.targets = it->second;
            edge.resolution = Resolution::kMethodUnion;
          }
          break;
        }
        case CallKind::kFree:
          resolve_free(node, site.callee, edge);
          break;
      }
    }
  }
  return graph;
}

std::size_t CallGraph::FindNode(const std::string& qualified_name) const {
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].qualified_name == qualified_name) return n;
  }
  return kNpos;
}

}  // namespace noisybeeps::lint
