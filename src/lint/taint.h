// The whole-program rule families, implemented over ProgramAnalysis
// (summary.h) and the flow-sensitive per-function facts it carries
// (dataflow.h).  Registered in rules.cc as `determinism-taint`,
// `rng-draw-parity`, `lockset-discipline`, `layering-reachability`,
// `io-seam-discipline`, `service-layering`, and
// `int-narrowing-at-boundary`; the engine (lint.h) invokes them once per
// run in whole-program mode.
//
// determinism-taint.  The repo's replay guarantees (bit-identical trials
// across worker counts, bit-identical kill-and-resume) hold only if the
// artifacts they compare -- checkpoint payloads, RunReport fingerprints,
// golden transcripts, derived seeds -- are functions of the seeded Rng and
// nothing else.  The rule reports every determinism-critical sink whose
// transitive call closure reaches a nondeterminism source (raw wall
// clock, getenv, unordered-container iteration, pointer-to-integer
// casts), with the full witness call path in the message.  Rng draws and
// the injectable Clock are NOT sources: they are the sanctioned
// boundaries that make replay deterministic.  Separately, any raw clock
// read in src/ outside src/resilience/clock.* is reported -- that pair is
// the only place allowed to touch OS time.
//
// rng-draw-parity.  The word-parallel channel keeps two sampling modes
// (WordMode::kStreamCompat / kFast) that must consume IDENTICAL numbers
// of Rng draws per round, or the two modes diverge after the first round
// and replay comparisons silently lie (PR 9's burst double-advance bug).
// For every WordMode-conditioned branch in src/channel/, the rule
// enumerates each arm's CFG paths, counts the distinct draw sites crossed
// (calls with an Rng receiver/argument, or whose resolved callee's effect
// closure draws), and reports when the two arms' per-path draw-count SETS
// differ.  Error severity: SharedOutcome-style designs pass by
// construction because both arms route through the same sampler call.
//
// lockset-discipline.  The flow-sensitive successor of v3's
// shared-state-discipline.  Worker bodies handed to ParallelForEach /
// ParallelTrials must follow the per-worker-accumulator + Merge pattern.
// The rule walks everything reachable from functions that issue those
// calls and reports shared writes that SOME CFG path reaches with an
// empty must-lockset (RAII guards count only inside their brace scope;
// manual lock()/unlock() gen/kill along the path).  A helper that takes
// the lock on every path to the write is now clean -- v3 flagged any
// write in a function that did not also lock, and could not see
// early-return paths that skip the guard.
//
// int-narrowing-at-boundary.  Trial counts, word counts, and byte sizes
// are 64-bit at the boundaries (NumTrials, payload sizes) but older call
// sites still traffic in int.  The rule reports implicit int64 -> int32
// narrowing at assignment/return boundaries, and 64-bit identifiers
// passed bare to a parameter declared 32-bit (judged against the
// resolved callee's signature), unless an NB_REQUIRE guard naming the
// identifier dominates the site.
//
// layering-reachability.  Per-file include rules check direct edges; this
// checks every RESOLVED cross-module call edge against the transitive
// closure of the layer table (rules.h), catching dependencies that flow
// through a same-module header or a forward declaration with no
// witnessing #include.  kMethodUnion edges are skipped -- guessing a
// receiver's class must not invent architecture violations.
//
// io-seam-discipline.  The resilience layer's crash-consistency promises
// are only testable because ALL of its file I/O flows through the
// injectable failpoint::Fs seam (src/failpoint/fs.h) -- the third
// sanctioned hole beside locks and wall-clock.  The rule reports every
// DIRECT raw filesystem access (fstream construction, fopen/fsync/rename,
// std::filesystem calls) in src/ outside src/failpoint/fs.*, and in
// bench/ (benchmarks report on stdout; a benchmark that writes files
// skews the numbers it measures).  tools/ stay exempt: the CLIs' whole
// job is reading trees and writing reports.  Callers of the seam are
// clean because the fixed point strips kEffectRawFileIo at the seam
// boundary.
//
// service-layering.  The trial-service core (src/service/) is transport-
// agnostic by contract: every robustness behaviour -- admission, shedding,
// deadlines, caching, drain -- is exercised by in-process deterministic
// tests, which is only possible because no byte of transport lives in
// src/.  Raw BSD socket calls (socket/bind/listen/accept/connect/...) are
// confined to the nbserved front-end; the rule reports every DIRECT
// socket call in src/, bench/, and tools/ outside tools/nbserved.cc,
// with no seam exemption -- there is no sanctioned socket seam inside
// the library, and no other binary is allowed to grow a transport.
#ifndef NOISYBEEPS_LINT_TAINT_H_
#define NOISYBEEPS_LINT_TAINT_H_

#include <vector>

#include "lint/rules.h"
#include "lint/summary.h"

namespace noisybeeps::lint {

// What determinism-taint treats as a nondeterminism source.
inline constexpr unsigned kDeterminismSources =
    kEffectWallClock | kEffectReadsEnv | kEffectUnorderedIter |
    kEffectPtrToInt;

// A determinism-critical sink: name mentions Fingerprint / Transcript /
// Digest / Checkpoint / Seed, or is SplitTrialRngs itself.  Exposed for
// tests.
[[nodiscard]] bool IsDeterminismSink(const CallNode& node);

void CheckDeterminismTaint(const ProgramAnalysis& analysis,
                           std::vector<Finding>& out);
void CheckRngDrawParity(const ProgramAnalysis& analysis,
                        std::vector<Finding>& out);
void CheckLocksetDiscipline(const ProgramAnalysis& analysis,
                            std::vector<Finding>& out);
void CheckIntNarrowing(const ProgramAnalysis& analysis,
                       std::vector<Finding>& out);
void CheckLayeringReachability(const ProgramAnalysis& analysis,
                               std::vector<Finding>& out);
void CheckIoSeamDiscipline(const ProgramAnalysis& analysis,
                           std::vector<Finding>& out);
void CheckServiceLayering(const ProgramAnalysis& analysis,
                          std::vector<Finding>& out);

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_TAINT_H_
