// The whole-program rule families, implemented over ProgramAnalysis
// (summary.h).  Registered in rules.cc as `determinism-taint`,
// `shared-state-discipline`, `layering-reachability`, and
// `io-seam-discipline`; the engine (lint.h) invokes them once per run in
// whole-program mode.
//
// determinism-taint.  The repo's replay guarantees (bit-identical trials
// across worker counts, bit-identical kill-and-resume) hold only if the
// artifacts they compare -- checkpoint payloads, RunReport fingerprints,
// golden transcripts, derived seeds -- are functions of the seeded Rng and
// nothing else.  The rule reports every determinism-critical sink whose
// transitive call closure reaches a nondeterminism source (raw wall
// clock, getenv, unordered-container iteration, pointer-to-integer
// casts), with the full witness call path in the message.  Rng draws and
// the injectable Clock are NOT sources: they are the sanctioned
// boundaries that make replay deterministic.  Separately, any raw clock
// read in src/ outside src/resilience/clock.* is reported -- that pair is
// the only place allowed to touch OS time.
//
// shared-state-discipline.  Worker bodies handed to ParallelForEach /
// ParallelTrials must follow the per-worker-accumulator + Merge pattern.
// The rule walks everything reachable from functions that issue those
// calls and reports nodes that directly write namespace-scope or
// function-static state without directly taking a lock.  (Deliberately
// conservative: a helper a parallelizing function calls only outside the
// parallel region is still reported, because lexical extent is not
// tracked -- restructure or suppress with justification.)
//
// layering-reachability.  Per-file include rules check direct edges; this
// checks every RESOLVED cross-module call edge against the transitive
// closure of the layer table (rules.h), catching dependencies that flow
// through a same-module header or a forward declaration with no
// witnessing #include.  kMethodUnion edges are skipped -- guessing a
// receiver's class must not invent architecture violations.
//
// io-seam-discipline.  The resilience layer's crash-consistency promises
// are only testable because ALL of its file I/O flows through the
// injectable failpoint::Fs seam (src/failpoint/fs.h) -- the third
// sanctioned hole beside locks and wall-clock.  The rule reports every
// DIRECT raw filesystem access (fstream construction, fopen/fsync/rename,
// std::filesystem calls) in src/ outside src/failpoint/fs.*; callers of
// the seam are clean because the fixed point strips kEffectRawFileIo at
// the seam boundary.
//
// service-layering.  The trial-service core (src/service/) is transport-
// agnostic by contract: every robustness behaviour -- admission, shedding,
// deadlines, caching, drain -- is exercised by in-process deterministic
// tests, which is only possible because no byte of transport lives in
// src/.  Raw BSD socket calls (socket/bind/listen/accept/connect/...) are
// confined to the nbserved front-end under tools/; the rule reports every
// DIRECT socket call in src/, with no seam exemption -- there is no
// sanctioned socket seam inside the library.
#ifndef NOISYBEEPS_LINT_TAINT_H_
#define NOISYBEEPS_LINT_TAINT_H_

#include <vector>

#include "lint/rules.h"
#include "lint/summary.h"

namespace noisybeeps::lint {

// What determinism-taint treats as a nondeterminism source.
inline constexpr unsigned kDeterminismSources =
    kEffectWallClock | kEffectReadsEnv | kEffectUnorderedIter |
    kEffectPtrToInt;

// A determinism-critical sink: name mentions Fingerprint / Transcript /
// Digest / Checkpoint / Seed, or is SplitTrialRngs itself.  Exposed for
// tests.
[[nodiscard]] bool IsDeterminismSink(const CallNode& node);

void CheckDeterminismTaint(const ProgramAnalysis& analysis,
                           std::vector<Finding>& out);
void CheckSharedStateDiscipline(const ProgramAnalysis& analysis,
                                std::vector<Finding>& out);
void CheckLayeringReachability(const ProgramAnalysis& analysis,
                               std::vector<Finding>& out);
void CheckIoSeamDiscipline(const ProgramAnalysis& analysis,
                           std::vector<Finding>& out);
void CheckServiceLayering(const ProgramAnalysis& analysis,
                          std::vector<Finding>& out);

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_TAINT_H_
