#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace noisybeeps::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// True when `text[pos, pos+token)` equals token and neither neighbour is an
// identifier character (so "operand" never matches "rand").
bool TokenAt(std::string_view text, std::size_t pos, std::string_view token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  std::size_t after = pos + token.size();
  if (after < text.size() && IsIdentChar(text[after])) return false;
  // Reject "std::rand" matching bare "rand": a qualifying "::" before the
  // token means a longer qualified token should have matched instead.
  if (pos >= 2 && text[pos - 1] == ':' && text[pos - 2] == ':') return false;
  return true;
}

int LineOfOffset(std::string_view text, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

// Whether the path is a header under src/ (the only files that carry
// NOISYBEEPS_ include guards).
bool IsSrcHeader(const std::string& path) {
  return path.starts_with("src/") && path.ends_with(".h");
}

std::string ExpectedGuard(const std::string& path) {
  std::string guard = "NOISYBEEPS_";
  for (char c : path.substr(4, path.size() - 4 - 2)) {  // strip src/ and .h
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += "_H_";
  return guard;
}

// First whitespace-delimited token after `prefix` on the line, or "".
std::string TokenAfter(const std::string& line, std::string_view prefix) {
  std::size_t pos = line.find(prefix);
  if (pos == std::string::npos) return "";
  std::istringstream is(line.substr(pos + prefix.size()));
  std::string token;
  is >> token;
  return token;
}

struct BannedToken {
  std::string_view token;
  bool requires_call;  // only flag when followed by '(' (bare rand/srand)
};

constexpr BannedToken kBannedRandomness[] = {
    {"std::rand", false},          {"std::srand", false},
    {"std::random_device", false}, {"std::mt19937", false},
    {"std::mt19937_64", false},    {"std::minstd_rand", false},
    {"std::default_random_engine", false},
    {"std::random_shuffle", false},
    {"rand", true},                {"srand", true},
    {"drand48", false},            {"lrand48", false},
};

constexpr std::string_view kBannedThreadTokens[] = {
    "std::thread",
    "std::jthread",
    "std::async",
    "pthread_create",
};

bool FollowedByCall(std::string_view text, std::size_t after) {
  while (after < text.size() &&
         std::isspace(static_cast<unsigned char>(text[after])) != 0) {
    ++after;
  }
  return after < text.size() && text[after] == '(';
}

bool FollowedByScope(std::string_view text, std::size_t after) {
  while (after < text.size() &&
         std::isspace(static_cast<unsigned char>(text[after])) != 0) {
    ++after;
  }
  return after + 1 < text.size() && text[after] == ':' &&
         text[after + 1] == ':';
}

// The module directory of a src/ path ("src/util/rng.cc" -> "util"), or "".
std::string ModuleOf(const std::string& path) {
  if (!path.starts_with("src/")) return "";
  std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

// --- require-precondition support -----------------------------------------

struct DocumentedDecl {
  std::string header;  // path of the declaring header
  int line = 0;        // line of the Precondition comment
  std::string name;    // constructor class name or factory function name
  bool is_ctor = false;
};

// Strips decl-specifier noise so a constructor declaration starts with the
// class name.
std::string StripDeclPrefix(std::string decl) {
  const std::string_view kPrefixes[] = {"explicit", "constexpr", "inline",
                                        "static", "friend", "virtual"};
  bool changed = true;
  while (changed) {
    changed = false;
    while (!decl.empty() &&
           std::isspace(static_cast<unsigned char>(decl.front())) != 0) {
      decl.erase(decl.begin());
      changed = true;
    }
    if (decl.starts_with("[[")) {
      std::size_t end = decl.find("]]");
      if (end == std::string::npos) return decl;
      decl.erase(0, end + 2);
      changed = true;
      continue;
    }
    for (std::string_view p : kPrefixes) {
      if (decl.starts_with(p) && decl.size() > p.size() &&
          !IsIdentChar(decl[p.size()])) {
        decl.erase(0, p.size());
        changed = true;
      }
    }
  }
  return decl;
}

// Extracts the identifier immediately preceding the first '(' of `decl`.
std::string CalleeName(const std::string& decl) {
  std::size_t paren = decl.find('(');
  if (paren == std::string::npos || paren == 0) return "";
  std::size_t end = paren;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(decl[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && IsIdentChar(decl[begin - 1])) --begin;
  return decl.substr(begin, end - begin);
}

// Collects constructor / factory declarations whose preceding comment
// documents a Precondition.
std::vector<DocumentedDecl> CollectDocumentedDecls(const SourceFile& file) {
  std::vector<DocumentedDecl> decls;
  const std::vector<std::string> lines = SplitLines(file.content);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    std::size_t comment = line.find("//");
    if (comment == std::string::npos) continue;
    std::size_t kw = line.find("Precondition", comment);
    if (kw == std::string::npos) continue;
    // Find the declaration: skip the rest of the comment block and blanks.
    std::size_t j = i + 1;
    while (j < lines.size()) {
      std::string trimmed = lines[j];
      while (!trimmed.empty() &&
             std::isspace(static_cast<unsigned char>(trimmed.front())) != 0) {
        trimmed.erase(trimmed.begin());
      }
      if (trimmed.empty() || trimmed.starts_with("//")) {
        ++j;
        continue;
      }
      break;
    }
    if (j >= lines.size()) continue;
    // Accumulate the declaration until ';' or '{' (bounded lookahead).
    std::string decl;
    for (std::size_t k = j; k < std::min(j + 8, lines.size()); ++k) {
      decl += lines[k];
      decl += ' ';
      if (lines[k].find(';') != std::string::npos ||
          lines[k].find('{') != std::string::npos) {
        break;
      }
    }
    const std::string stripped = StripDeclPrefix(decl);
    const std::string name = CalleeName(stripped);
    if (name.empty()) continue;
    const bool is_ctor = stripped.starts_with(name) &&
                         stripped.size() > name.size() &&
                         !IsIdentChar(stripped[name.size()]);
    const bool is_factory =
        name.starts_with("Make") || name.starts_with("Sample");
    if (!is_ctor && !is_factory) continue;
    decls.push_back(DocumentedDecl{file.path, static_cast<int>(i) + 1, name,
                                   is_ctor});
  }
  return decls;
}

// Scans `code` (already stripped) for definitions of `pattern` ("Name" or
// "Name::Name") and reports whether any definition body calls NB_REQUIRE.
// Returns {found_any_definition, any_definition_has_require}.
std::pair<bool, bool> DefinitionsHaveRequire(std::string_view code,
                                             std::string_view pattern) {
  bool found = false;
  bool has_require = false;
  std::size_t pos = 0;
  while ((pos = code.find(pattern, pos)) != std::string_view::npos) {
    const std::size_t match = pos;
    pos += pattern.size();
    if (match > 0 && (IsIdentChar(code[match - 1]) || code[match - 1] == ':' ||
                      code[match - 1] == '.' || code[match - 1] == '>')) {
      continue;
    }
    std::size_t after = pos;
    while (after < code.size() &&
           std::isspace(static_cast<unsigned char>(code[after])) != 0) {
      ++after;
    }
    if (after >= code.size() || code[after] != '(') continue;
    // Find the matching ')'.
    int depth = 0;
    std::size_t close = after;
    for (; close < code.size(); ++close) {
      if (code[close] == '(') ++depth;
      if (code[close] == ')' && --depth == 0) break;
    }
    if (close >= code.size()) continue;
    // A definition has a '{' before the next ';' (allowing an init list /
    // const / noexcept in between).
    std::size_t body_open = std::string_view::npos;
    for (std::size_t k = close + 1; k < code.size(); ++k) {
      if (code[k] == '{') {
        body_open = k;
        break;
      }
      if (code[k] == ';') break;
    }
    if (body_open == std::string_view::npos) continue;
    int braces = 0;
    std::size_t body_end = body_open;
    for (; body_end < code.size(); ++body_end) {
      if (code[body_end] == '{') ++braces;
      if (code[body_end] == '}' && --braces == 0) break;
    }
    found = true;
    if (code.substr(body_open, body_end - body_open).find("NB_REQUIRE") !=
        std::string_view::npos) {
      has_require = true;
    }
  }
  return {found, has_require};
}

}  // namespace

namespace {
// Shared engine for StripCommentsAndStrings / StripComments: blanks
// comments always, and string/char literal contents when strip_strings.
std::string StripImpl(std::string_view content, bool strip_strings) {
  std::string out(content);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" closer of the active raw string
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string: R" possibly prefixed by u8/u/U/L.
          std::size_t p = i;
          if (p > 0 && content[p - 1] == 'R' &&
              (p < 2 || !IsIdentChar(content[p - 2]) ||
               content[p - 2] == '8' || content[p - 2] == 'u' ||
               content[p - 2] == 'U' || content[p - 2] == 'L')) {
            raw_delim = ")";
            std::size_t d = i + 1;
            while (d < content.size() && content[d] != '(') {
              raw_delim += content[d];
              ++d;
            }
            raw_delim += '"';
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (strip_strings) out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < content.size() && strip_strings) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (strip_strings) out[i] = ' ';
          if (i + 1 < content.size() && next != '\n') {
            if (strip_strings) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          if (strip_strings) {
            for (std::size_t k = 0; k + 1 < raw_delim.size(); ++k) {
              out[i + k] = ' ';
            }
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

// Comments blanked, string literals preserved -- what the include-graph
// rule needs, since #include paths are themselves string literals.
std::string StripComments(std::string_view content) {
  return StripImpl(content, /*strip_strings=*/false);
}
}  // namespace

std::string StripCommentsAndStrings(std::string_view content) {
  return StripImpl(content, /*strip_strings=*/true);
}

std::vector<Finding> CheckHeaderGuard(const SourceFile& file) {
  std::vector<Finding> findings;
  if (!IsSrcHeader(file.path)) return findings;
  const std::string expected = ExpectedGuard(file.path);
  const std::string code = StripCommentsAndStrings(file.content);
  const std::vector<std::string> lines = SplitLines(code);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string guard = TokenAfter(lines[i], "#ifndef");
    if (guard.empty()) continue;
    if (guard != expected) {
      findings.push_back(
          {file.path, static_cast<int>(i) + 1, "header-guard",
           "include guard '" + guard + "' should be '" + expected + "'"});
      return findings;
    }
    // The guard name matched; the very next directive must #define it.
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      if (lines[j].find_first_not_of(" \t") == std::string::npos) continue;
      const std::string defined = TokenAfter(lines[j], "#define");
      if (defined != expected) {
        findings.push_back({file.path, static_cast<int>(j) + 1, "header-guard",
                            "#ifndef " + expected +
                                " must be followed by #define " + expected});
      }
      return findings;
    }
    return findings;
  }
  findings.push_back({file.path, 1, "header-guard",
                      "missing include guard (expected #ifndef " + expected +
                          ")"});
  return findings;
}

std::vector<Finding> CheckBannedRandomness(const SourceFile& file) {
  std::vector<Finding> findings;
  if (file.path == "src/util/rng.cc") return findings;
  const std::string code = StripCommentsAndStrings(file.content);
  constexpr std::string_view kIncludeRandom = "#include <random>";
  constexpr std::string_view kIncludeRandomTight = "#include<random>";
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code.compare(i, kIncludeRandom.size(), kIncludeRandom) == 0 ||
        code.compare(i, kIncludeRandomTight.size(), kIncludeRandomTight) ==
            0) {
      findings.push_back({file.path, LineOfOffset(code, i), "banned-random",
                          "#include <random>: all randomness must flow "
                          "through util/rng.h (Rng is the reproducibility "
                          "boundary)"});
      continue;
    }
    for (const BannedToken& banned : kBannedRandomness) {
      if (!TokenAt(code, i, banned.token)) continue;
      if (banned.requires_call &&
          !FollowedByCall(code, i + banned.token.size())) {
        continue;
      }
      findings.push_back(
          {file.path, LineOfOffset(code, i), "banned-random",
           std::string(banned.token) +
               " is banned outside src/util/rng.cc: use Rng (seeded, "
               "splittable) so runs stay bit-reproducible"});
      i += banned.token.size() - 1;
      break;
    }
  }
  return findings;
}

std::vector<Finding> CheckRawThreads(const SourceFile& file) {
  std::vector<Finding> findings;
  if (file.path == "src/util/parallel.h") return findings;
  const std::string code = StripCommentsAndStrings(file.content);
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (std::string_view token : kBannedThreadTokens) {
      if (!TokenAt(code, i, token)) continue;
      // Static member access (std::thread::hardware_concurrency) queries;
      // it does not spawn.
      if (FollowedByScope(code, i + token.size())) continue;
      findings.push_back(
          {file.path, LineOfOffset(code, i), "raw-thread",
           std::string(token) +
               " is banned outside src/util/parallel.h: spawn workers via "
               "ParallelTrials so determinism is preserved by construction"});
      i += token.size() - 1;
      break;
    }
  }
  return findings;
}

std::vector<Finding> CheckCheckpointAtomicity(const SourceFile& file) {
  // A checkpoint written with a bare std::ofstream can be torn by a kill
  // mid-write, and the resume path will then (correctly, but avoidably)
  // refuse the file.  All checkpoint writes must flow through
  // WriteCheckpointAtomic in src/resilience/, which stages a temp file and
  // renames it into place.  tests/ are exempt: the negative tests write
  // deliberately corrupt checkpoint files, and src/lint/ because the
  // rule's own diagnostic names the banned pattern.
  std::vector<Finding> findings;
  if (file.path.starts_with("src/resilience/") ||
      file.path.starts_with("src/lint/") || file.path.starts_with("tests/")) {
    return findings;
  }
  // Comments are stripped but string literals kept: the checkpoint path
  // usually appears as a literal or a *_path variable on the same line.
  const std::vector<std::string> lines =
      SplitLines(StripComments(file.content));
  constexpr std::string_view kStream = "std::ofstream";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    std::size_t pos = std::string::npos;
    for (std::size_t j = 0; j + kStream.size() <= line.size(); ++j) {
      if (TokenAt(line, j, kStream)) {
        pos = j;
        break;
      }
    }
    if (pos == std::string::npos) continue;
    std::string lower = line;
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (lower.find("checkpoint") == std::string::npos &&
        lower.find("ckpt") == std::string::npos) {
      continue;
    }
    findings.push_back(
        {file.path, static_cast<int>(i) + 1, "checkpoint-atomicity",
         "direct std::ofstream write of a checkpoint path: use "
         "WriteCheckpointAtomic (src/resilience/checkpoint.h) so an "
         "interrupted write can never leave a torn checkpoint"});
  }
  return findings;
}

std::vector<Finding> CheckChannelHotPath(const SourceFile& file) {
  // Channel::Deliver is the Monte Carlo inner loop: one call per noisy
  // round, one coin flip per listener on the independent channel.  A
  // per-sample rng.Bernoulli(p)/UniformDouble() < p flip re-derives the
  // fixed-point threshold (or pays a u64->double convert, multiply, and
  // double compare) on every draw; channels must precompute a
  // BernoulliSampler member instead, which is bit-identical (see
  // util/rng.h) and a single integer compare per draw.
  std::vector<Finding> findings;
  if (!file.path.starts_with("src/channel/")) return findings;
  const std::string code = StripCommentsAndStrings(file.content);
  constexpr std::string_view kDeliver = "Deliver";
  std::size_t pos = 0;
  while ((pos = code.find(kDeliver, pos)) != std::string::npos) {
    const std::size_t match = pos;
    pos += kDeliver.size();
    // Not TokenAt: out-of-class definitions are "::"-qualified
    // ("IndependentNoisyChannel::Deliver"), which TokenAt deliberately
    // rejects.  Only the identifier boundaries matter here ("DeliverShared"
    // and "Redeliver" are different identifiers).
    if (match > 0 && IsIdentChar(code[match - 1])) continue;
    if (match + kDeliver.size() < code.size() &&
        IsIdentChar(code[match + kDeliver.size()])) {
      continue;
    }
    // Parameter list: the next non-space character must open it.
    std::size_t open = match + kDeliver.size();
    while (open < code.size() &&
           std::isspace(static_cast<unsigned char>(code[open])) != 0) {
      ++open;
    }
    if (open >= code.size() || code[open] != '(') continue;
    int depth = 0;
    std::size_t close = open;
    for (; close < code.size(); ++close) {
      if (code[close] == '(') ++depth;
      if (code[close] == ')' && --depth == 0) break;
    }
    if (close >= code.size()) continue;
    // A definition has a '{' before the next ';' (allowing const /
    // override / noexcept in between); pure declarations are skipped.
    std::size_t body_open = std::string::npos;
    for (std::size_t k = close + 1; k < code.size(); ++k) {
      if (code[k] == '{') {
        body_open = k;
        break;
      }
      if (code[k] == ';') break;
    }
    if (body_open == std::string::npos) continue;
    int braces = 0;
    std::size_t body_end = body_open;
    for (; body_end < code.size(); ++body_end) {
      if (code[body_end] == '{') ++braces;
      if (code[body_end] == '}' && --braces == 0) break;
    }
    const std::string_view body(code.data() + body_open,
                                body_end - body_open);
    for (std::string_view banned : {std::string_view("UniformDouble"),
                                    std::string_view("Bernoulli")}) {
      for (std::size_t k = 0; (k = body.find(banned, k)) !=
                              std::string_view::npos;
           k += banned.size()) {
        if (!TokenAt(body, k, banned)) continue;
        findings.push_back(
            {file.path, LineOfOffset(code, body_open + k),
             "channel-hot-path",
             std::string(banned) +
                 " inside a Deliver implementation: precompute a "
                 "BernoulliSampler member (util/rng.h) -- bit-identical "
                 "stream, one integer compare per draw"});
      }
    }
    pos = body_end;
  }
  return findings;
}

std::vector<Finding> CheckIncludeCycles(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::set<std::string> modules;
  for (const SourceFile& file : files) {
    const std::string module = ModuleOf(file.path);
    if (!module.empty()) modules.insert(module);
  }
  // edges[a][b] = (file, line) of one include that witnesses a -> b.
  std::map<std::string, std::map<std::string, std::pair<std::string, int>>>
      edges;
  for (const SourceFile& file : files) {
    const std::string from = ModuleOf(file.path);
    if (from.empty()) continue;
    const std::vector<std::string> lines =
        SplitLines(StripComments(file.content));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      std::size_t pos = line.find("#include \"");
      if (pos == std::string::npos) continue;
      const std::size_t start = pos + 10;
      const std::size_t slash = line.find('/', start);
      const std::size_t quote = line.find('"', start);
      if (slash == std::string::npos || quote == std::string::npos ||
          slash > quote) {
        continue;
      }
      const std::string to = line.substr(start, slash - start);
      if (to == from || modules.count(to) == 0) continue;
      edges[from].emplace(to,
                          std::make_pair(file.path, static_cast<int>(i) + 1));
    }
  }
  // Iterative DFS with three colours; a grey->grey edge closes a cycle.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  auto dfs = [&](auto&& self, const std::string& node) -> void {
    colour[node] = 1;
    stack.push_back(node);
    for (const auto& [to, witness] : edges[node]) {
      if (colour[to] == 1) {
        std::string path;
        auto it = std::find(stack.begin(), stack.end(), to);
        for (; it != stack.end(); ++it) path += *it + " -> ";
        path += to;
        findings.push_back({witness.first, witness.second, "include-cycle",
                            "module include cycle: " + path});
      } else if (colour[to] == 0) {
        self(self, to);
      }
    }
    stack.pop_back();
    colour[node] = 2;
  };
  for (const std::string& module : modules) {
    if (colour[module] == 0) dfs(dfs, module);
  }
  return findings;
}

std::vector<Finding> CheckRequireCoverage(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) by_path[file.path] = &file;
  for (const SourceFile& file : files) {
    if (!IsSrcHeader(file.path)) continue;
    for (const DocumentedDecl& decl : CollectDocumentedDecls(file)) {
      // Constructors are defined out of line as Name::Name, or inline in
      // the class body as plain Name; factories as plain Name.
      std::vector<std::string> patterns = {decl.name};
      if (decl.is_ctor) patterns.insert(patterns.begin(),
                                        decl.name + "::" + decl.name);
      // Look in the paired .cc and in the header itself (header-only
      // definitions).
      const std::string cc_path =
          file.path.substr(0, file.path.size() - 2) + ".cc";
      bool found = false;
      bool has_require = false;
      for (const std::string& candidate : {cc_path, file.path}) {
        auto it = by_path.find(candidate);
        if (it == by_path.end()) continue;
        const std::string code =
            StripCommentsAndStrings(it->second->content);
        for (const std::string& pattern : patterns) {
          const auto [f, r] = DefinitionsHaveRequire(code, pattern);
          found = found || f;
          has_require = has_require || r;
        }
      }
      if (found && !has_require) {
        findings.push_back(
            {decl.header, decl.line, "require-precondition",
             decl.name + " documents a Precondition but its definition "
                         "never calls NB_REQUIRE"});
      }
    }
  }
  return findings;
}

std::vector<Finding> CheckFaultLayering(const std::vector<SourceFile>& files) {
  // The fault-injection layer must stay a leaf: it may reach down into
  // channel/ and protocol/ (plus util/ and itself), and only coding/,
  // bench/, tools/, and tests may reach back into it.  Anything else
  // would let the core grow a dependency on its own failure model.
  static const std::set<std::string> kFaultMayInclude = {
      "fault", "channel", "protocol", "util"};
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    const std::string module = ModuleOf(file.path);
    const bool in_fault = module == "fault";
    const bool may_include_fault =
        in_fault || module == "coding" || file.path.starts_with("bench/") ||
        file.path.starts_with("tools/") || file.path.starts_with("tests/");
    const std::vector<std::string> lines =
        SplitLines(StripComments(file.content));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      const std::size_t pos = line.find("#include \"");
      if (pos == std::string::npos) continue;
      const std::size_t start = pos + 10;
      const std::size_t slash = line.find('/', start);
      const std::size_t quote = line.find('"', start);
      if (slash == std::string::npos || quote == std::string::npos ||
          slash > quote) {
        continue;
      }
      const std::string to = line.substr(start, slash - start);
      const int line_no = static_cast<int>(i) + 1;
      if (in_fault && kFaultMayInclude.count(to) == 0) {
        findings.push_back(
            {file.path, line_no, "fault-layering",
             "src/fault/ may include only fault/, channel/, protocol/, and "
             "util/ headers, not \"" + to + "/...\""});
      } else if (!may_include_fault && to == "fault") {
        findings.push_back(
            {file.path, line_no, "fault-layering",
             "only src/fault/, src/coding/, bench/, tools/, and tests may "
             "include \"fault/...\" headers; the core must not depend on "
             "the fault layer"});
      }
    }
  }
  return findings;
}

std::vector<Finding> RunAllChecks(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    for (auto* check : {&CheckHeaderGuard, &CheckBannedRandomness,
                        &CheckRawThreads, &CheckCheckpointAtomicity,
                        &CheckChannelHotPath}) {
      std::vector<Finding> found = (*check)(file);
      findings.insert(findings.end(), found.begin(), found.end());
    }
  }
  for (auto* check :
       {&CheckIncludeCycles, &CheckRequireCoverage, &CheckFaultLayering}) {
    std::vector<Finding> found = (*check)(files);
    findings.insert(findings.end(), found.begin(), found.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule_id, a.message) <
                     std::tie(b.file, b.line, b.rule_id, b.message);
            });
  return findings;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": " << f.rule_id << ": " << f.message
       << "\n";
  }
  return os.str();
}

namespace {
void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}
}  // namespace

std::string FormatJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  {\"file\": ";
    AppendJsonString(out, findings[i].file);
    out += ", \"line\": " + std::to_string(findings[i].line) + ", \"rule\": ";
    AppendJsonString(out, findings[i].rule_id);
    out += ", \"message\": ";
    AppendJsonString(out, findings[i].message);
    out += "}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace noisybeeps::lint
