#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>
#include <tuple>
#include <utility>

#include "lint/cache.h"
#include "lint/summary.h"

namespace noisybeeps::lint {
namespace {

constexpr std::string_view kMarker = "NBLINT(";

std::string Trimmed(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return std::string(text);
}

}  // namespace

std::vector<Suppression> CollectSuppressions(const FileModel& file) {
  std::vector<Suppression> suppressions;
  for (std::size_t ti = 0; ti < file.tokens().size(); ++ti) {
    const Token& token = file.tokens()[ti];
    if (token.kind != TokenKind::kComment) continue;
    // A suppression is the WHOLE comment: the marker must lead it, so
    // prose that merely mentions the syntax never parses as one.
    const std::string text = CommentText(token);
    if (!text.starts_with("NBLINT")) continue;

    Suppression sup;
    sup.file = file.path();
    sup.comment_line = token.line;
    // A trailing comment targets its own line; a comment alone on a line
    // targets the next one.
    bool code_before = false;
    for (const std::size_t ci : file.code()) {
      const Token& t = file.tokens()[ci];
      if (t.line == token.line && t.offset < token.offset) {
        code_before = true;
        break;
      }
    }
    sup.target_line = code_before ? token.line : token.line + 1;

    const std::size_t close = text.find(')');
    if (!text.starts_with(kMarker) || close == std::string::npos) {
      // Malformed (typo'd marker, no closing paren): rule_id stays
      // empty; the engine reports it instead of silently ignoring it.
      suppressions.push_back(std::move(sup));
      continue;
    }
    sup.rule_id = Trimmed(
        std::string_view(text).substr(kMarker.size(), close - kMarker.size()));
    std::string_view rest = std::string_view(text).substr(close + 1);
    if (!rest.empty() && rest.front() == ':') rest.remove_prefix(1);
    sup.justification = Trimmed(rest);
    suppressions.push_back(std::move(sup));
  }
  return suppressions;
}

namespace {

void SortFindings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule_id, a.message) <
                     std::tie(b.file, b.line, b.rule_id, b.message);
            });
}

}  // namespace

std::vector<Finding> RunRule(const Rule& rule,
                             const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  if (rule.run != nullptr) {
    const RepoModel model(files);
    rule.run(model, findings);
    for (Finding& f : findings) f.severity = rule.severity;
  } else if (rule.run_program != nullptr) {
    const RepoModel model(files);
    const ProgramAnalysis analysis = ProgramAnalysis::Build(model);
    rule.run_program(analysis, findings);
    for (Finding& f : findings) f.severity = rule.severity;
  }
  SortFindings(findings);
  return findings;
}

std::vector<Finding> RunAllChecks(const std::vector<SourceFile>& files) {
  return RunAllChecks(files, LintOptions{});
}

std::vector<Finding> RunAllChecks(const std::vector<SourceFile>& files,
                                  const LintOptions& options) {
  const RepoModel model(files);
  std::vector<Finding> findings;
  for (const Rule& rule : AllRules()) {
    if (rule.run == nullptr) continue;
    const std::size_t before = findings.size();
    rule.run(model, findings);
    for (std::size_t i = before; i < findings.size(); ++i) {
      findings[i].severity = rule.severity;
    }
  }

  if (options.whole_program) {
    std::size_t cache_hits = 0;
    const std::vector<FileExtract> extracts =
        ExtractWithCache(model, ParseCache(options.cache_in), &cache_hits);
    if (options.cache_out != nullptr) {
      *options.cache_out = SerializeCache(extracts);
    }
    const ProgramAnalysis analysis = ProgramAnalysis::Build(extracts);
    if (options.stats != nullptr) {
      options.stats->files = model.files().size();
      options.stats->cache_hits = cache_hits;
      options.stats->nodes = analysis.graph().nodes().size();
      for (const CallNode& node : analysis.graph().nodes()) {
        options.stats->edges += node.edges.size();
        for (const CallEdge& edge : node.edges) {
          if (!edge.targets.empty()) ++options.stats->resolved_edges;
        }
      }
    }
    for (const Rule& rule : AllRules()) {
      if (rule.run_program == nullptr) continue;
      const std::size_t before = findings.size();
      rule.run_program(analysis, findings);
      for (std::size_t i = before; i < findings.size(); ++i) {
        findings[i].severity = rule.severity;
      }
    }
  }

  std::vector<Finding> meta;
  for (const FileModel& file : model.files()) {
    for (const Suppression& sup : CollectSuppressions(file)) {
      if (sup.rule_id.empty()) {
        meta.push_back(
            {sup.file, sup.comment_line, "suppression-unknown-rule",
             "malformed NBLINT suppression: expected "
             "// NBLINT(rule-id): justification"});
        continue;
      }
      if (FindRule(sup.rule_id) == nullptr) {
        meta.push_back(
            {sup.file, sup.comment_line, "suppression-unknown-rule",
             "NBLINT suppression names unknown rule '" + sup.rule_id +
                 "'; it silences nothing"});
        continue;
      }
      if (sup.justification.empty()) {
        meta.push_back(
            {sup.file, sup.comment_line, "suppression-justification",
             "NBLINT(" + sup.rule_id +
                 ") suppression has no justification -- say why the "
                 "finding is acceptable; an unjustified suppression "
                 "silences nothing"});
        continue;
      }
      std::erase_if(findings, [&sup](const Finding& f) {
        return f.file == sup.file && f.rule_id == sup.rule_id &&
               f.line == sup.target_line;
      });
    }
  }
  findings.insert(findings.end(), meta.begin(), meta.end());
  SortFindings(findings);
  return findings;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": ";
    out += SeverityName(f.severity);
    out += ": " + f.rule_id + ": " + f.message + "\n";
    for (const FlowStep& step : f.flow) {
      out += "    " + step.file + ":" + std::to_string(step.line) + ": " +
             step.text + "\n";
    }
  }
  return out;
}

namespace {

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string FormatJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  {\"file\": ";
    AppendJsonString(out, findings[i].file);
    out += ", \"line\": " + std::to_string(findings[i].line) + ", \"rule\": ";
    AppendJsonString(out, findings[i].rule_id);
    out += ", \"severity\": ";
    AppendJsonString(out, SeverityName(findings[i].severity));
    out += ", \"message\": ";
    AppendJsonString(out, findings[i].message);
    out += "}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string FormatSarif(const std::vector<Finding>& findings) {
  // SARIF maps our severities onto its `level` enum: error stays error,
  // warn becomes "warning".
  const auto level = [](Severity s) {
    return s == Severity::kError ? "error" : "warning";
  };
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"nblint\",\n"
      "          \"informationUri\": \"docs/TOOLING.md\",\n"
      "          \"rules\": [\n";
  const std::vector<Rule>& rules = AllRules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": ";
    AppendJsonString(out, rules[i].id);
    out += ", \"shortDescription\": {\"text\": ";
    AppendJsonString(out, rules[i].summary);
    out += "}, \"defaultConfiguration\": {\"level\": ";
    AppendJsonString(out, level(rules[i].severity));
    out += "}, \"properties\": {\"category\": ";
    AppendJsonString(out, rules[i].category);
    out += "}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::size_t rule_index = 0;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (rules[r].id == f.rule_id) {
        rule_index = r;
        break;
      }
    }
    out += "        {\"ruleId\": ";
    AppendJsonString(out, f.rule_id);
    out += ", \"ruleIndex\": " + std::to_string(rule_index);
    out += ", \"level\": ";
    AppendJsonString(out, level(f.severity));
    out += ", \"message\": {\"text\": ";
    AppendJsonString(out, f.message);
    out +=
        "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": ";
    AppendJsonString(out, f.file);
    out += "}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}}}]";
    // Witness paths (call chains, CFG paths) ship as one codeFlow with
    // one threadFlow, step order preserved.
    if (!f.flow.empty()) {
      out += ", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [";
      for (std::size_t s = 0; s < f.flow.size(); ++s) {
        if (s > 0) out += ", ";
        out += "{\"location\": {\"physicalLocation\": {\"artifactLocation\": "
               "{\"uri\": ";
        AppendJsonString(out, f.flow[s].file);
        out += "}, \"region\": {\"startLine\": " +
               std::to_string(f.flow[s].line) + "}}, \"message\": {\"text\": ";
        AppendJsonString(out, f.flow[s].text);
        out += "}}}";
      }
      out += "]}]}]";
    }
    out += "}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

namespace {

// The next JSON string literal at or after `pos`; npos when none.
// Good enough for the baseline file, whose strings are rule ids and
// repo-relative paths (no escapes).
std::string NextJsonString(const std::string& json, std::size_t& pos) {
  const std::size_t open = json.find('"', pos);
  if (open == std::string::npos) {
    pos = std::string::npos;
    return "";
  }
  const std::size_t close = json.find('"', open + 1);
  if (close == std::string::npos) {
    pos = std::string::npos;
    return "";
  }
  pos = close + 1;
  return json.substr(open + 1, close - open - 1);
}

}  // namespace

std::vector<BaselineEntry> ParseBaseline(const std::string& json) {
  std::vector<BaselineEntry> entries;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t rule_key = json.find("\"rule\"", pos);
    if (rule_key == std::string::npos) break;
    pos = rule_key + 6;
    BaselineEntry entry;
    entry.rule_id = NextJsonString(json, pos);
    if (pos == std::string::npos) break;
    const std::size_t file_key = json.find("\"file\"", pos);
    if (file_key == std::string::npos) break;
    pos = file_key + 6;
    entry.file = NextJsonString(json, pos);
    if (entry.rule_id.empty() || entry.file.empty()) continue;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::set<std::pair<std::string, std::string>> keys;
  for (const Finding& f : findings) {
    if (f.severity != Severity::kWarn) continue;
    keys.emplace(f.rule_id, f.file);
  }
  std::string out = "{\n  \"version\": 1,\n  \"findings\": [";
  bool first = true;
  for (const auto& [rule, file] : keys) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": ";
    AppendJsonString(out, rule);
    out += ", \"file\": ";
    AppendJsonString(out, file);
    out += "}";
  }
  out += keys.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::vector<Finding> NewFindings(const std::vector<Finding>& findings,
                                 const std::vector<BaselineEntry>& baseline) {
  std::set<std::pair<std::string, std::string>> known;
  for (const BaselineEntry& entry : baseline) {
    known.emplace(entry.rule_id, entry.file);
  }
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    if (f.severity != Severity::kWarn) continue;
    if (known.count({f.rule_id, f.file}) > 0) continue;
    fresh.push_back(f);
  }
  return fresh;
}

}  // namespace noisybeeps::lint
