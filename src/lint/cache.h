// The incremental whole-program analysis cache (build/nblint.cache).
//
// Whole-program mode adds one per-file cost over the v2 engine: scanning
// every function body for call sites, direct effects (summary.h), and
// the CFG-derived flow-sensitive facts (cfg.h + dataflow.h).
// That scan depends only on the file's own content plus its paired
// header/source (receiver typing consults the pair), so its result is
// cached per file under both content hashes.  Call RESOLUTION and effect
// PROPAGATION are global and always re-run -- they are cheap, and caching
// them would make staleness bugs possible.
//
// The format is deliberately line-based text, written in deterministic
// (sorted-path, declaration-order) order so that two cold runs over the
// same tree produce byte-identical files -- CI diffs them to prove the
// cache is reproducible.  Any parse hiccup or version mismatch degrades
// to a cold run; a cache can never make nblint wrong, only slow.
//
// File IO stays in the caller (tools/nblint.cc); this layer works on
// strings so tests can round-trip without touching disk.
#ifndef NOISYBEEPS_LINT_CACHE_H_
#define NOISYBEEPS_LINT_CACHE_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/model.h"
#include "lint/summary.h"

namespace noisybeeps::lint {

// FNV-1a/64 of `content`, as 16 lowercase hex digits.  (Local to the lint
// layer on purpose: the layer table forbids lint/ -> resilience/, where
// the repo's other FNV lives.)
[[nodiscard]] std::string HashContent(std::string_view content);

// Serializes extracts (with their hashes) to the "nblint-cache 4" format
// (v4 added the CFG-derived FunctionFacts -- see dataflow.h).
[[nodiscard]] std::string SerializeCache(
    const std::vector<FileExtract>& extracts);

// Parses a serialized cache.  Returns an empty vector on version mismatch
// or any malformed line -- the caller just runs cold.
[[nodiscard]] std::vector<FileExtract> ParseCache(const std::string& text);

// The cache-aware extraction pipeline: for each file in `repo`, reuse the
// cached entry when both content hashes match, otherwise re-extract.
// Always returns one entry per file, hashes filled in, ready to
// serialize.  `cache_hits` (optional) receives the reuse count.
[[nodiscard]] std::vector<FileExtract> ExtractWithCache(
    const RepoModel& repo, const std::vector<FileExtract>& cached,
    std::size_t* cache_hits = nullptr);

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_CACHE_H_
