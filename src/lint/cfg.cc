#include "lint/cfg.h"

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <utility>

namespace noisybeeps::lint {
namespace {

// Bodies that would need more blocks than this degrade to the fallback.
constexpr std::size_t kMaxBlocks = 512;

// A branch edge awaiting its target: `slot` 0 is the true edge, 1 false.
struct Pending {
  std::size_t block = 0;
  std::size_t slot = 0;
};

// A parsed condition: its entry block plus every dangling true/false edge.
struct CondResult {
  std::size_t entry = 0;
  std::vector<Pending> on_true;
  std::vector<Pending> on_false;
};

}  // namespace

// Recursive-descent statement walker over the code-token stream.  Every
// helper tolerates malformed input by consuming what it can and moving on;
// NewBlock flips `failed_` past the budget and every mutator no-ops after
// that, so Run() can fall back cleanly.
class CfgBuilder {
 public:
  CfgBuilder(const FileModel& file, const FunctionInfo& fn)
      : file_(file), fn_(fn) {}

  Cfg Run() {
    const auto [lo, hi] = BodyRange();
    if (fn_.body_begin == kNpos || fn_.body_end == kNpos) {
      return Fallback(lo, hi);
    }
    entry_ = NewBlock();
    exit_ = NewBlock();
    cur_ = entry_;
    ParseSeq(lo, hi);
    if (failed_) return Fallback(lo, hi);
    Edge(cur_, exit_);
    Cfg out;
    out.blocks_ = std::move(blocks_);
    out.entry_ = entry_;
    out.exit_ = exit_;
    return out;
  }

 private:
  const Token& Tok(std::size_t c) const {
    return file_.tokens()[file_.code()[c]];
  }
  const std::string& Text(std::size_t c) const { return Tok(c).text; }

  // The body interior as a half-open range of code() positions.
  std::pair<std::size_t, std::size_t> BodyRange() const {
    const auto& code = file_.code();
    if (fn_.body_begin == kNpos || fn_.body_end == kNpos ||
        fn_.body_end <= fn_.body_begin) {
      return {0, 0};
    }
    const std::size_t lo = static_cast<std::size_t>(
        std::upper_bound(code.begin(), code.end(), fn_.body_begin) -
        code.begin());
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(code.begin(), code.end(), fn_.body_end) -
        code.begin());
    return {lo, std::max(lo, hi)};
  }

  Cfg Fallback(std::size_t lo, std::size_t hi) const {
    Cfg out;
    out.fallback_ = true;
    out.blocks_.resize(3);
    if (hi > lo) out.blocks_[1].stmts.push_back({lo, hi});
    out.blocks_[0].succs.push_back(1);
    out.blocks_[1].preds.push_back(0);
    out.blocks_[1].succs.push_back(2);
    out.blocks_[2].preds.push_back(1);
    out.entry_ = 0;
    out.exit_ = 2;
    return out;
  }

  std::size_t NewBlock() {
    if (failed_) return 0;
    if (blocks_.size() >= kMaxBlocks) {
      failed_ = true;
      return 0;
    }
    blocks_.emplace_back();
    return blocks_.size() - 1;
  }

  std::size_t NewBranchBlock(std::size_t stmt_lo, std::size_t stmt_hi) {
    const std::size_t b = NewBlock();
    if (failed_) return b;
    blocks_[b].is_branch = true;
    blocks_[b].succs = {kNpos, kNpos};
    if (stmt_hi > stmt_lo) blocks_[b].stmts.push_back({stmt_lo, stmt_hi});
    return b;
  }

  void Edge(std::size_t from, std::size_t to) {
    if (failed_) return;
    blocks_[from].succs.push_back(to);
    blocks_[to].preds.push_back(from);
  }

  void PatchOne(std::size_t block, std::size_t slot, std::size_t target) {
    if (failed_) return;
    blocks_[block].succs[slot] = target;
    blocks_[target].preds.push_back(block);
  }

  void Patch(const std::vector<Pending>& list, std::size_t target) {
    for (const Pending& p : list) PatchOne(p.block, p.slot, target);
  }

  void AddStmt(std::size_t begin, std::size_t end) {
    if (failed_ || end <= begin) return;
    blocks_[cur_].stmts.push_back({begin, end});
  }

  // Matching close bracket for the opener at `c` (any of ( [ {), or kNpos.
  std::size_t Match(std::size_t c, std::size_t hi) const {
    int depth = 0;
    for (std::size_t i = c; i < hi; ++i) {
      const std::string& t = Text(i);
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
        if (depth == 0) return i;
      }
    }
    return kNpos;
  }

  // Position of the ';' ending the statement at `c` (depth 0), or the
  // position where balance breaks, or `hi`.
  std::size_t StmtEnd(std::size_t c, std::size_t hi) const {
    int depth = 0;
    for (std::size_t i = c; i < hi; ++i) {
      const std::string& t = Text(i);
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
        if (depth < 0) return i;
      } else if (t == ";" && depth == 0) {
        return i;
      }
    }
    return hi;
  }

  void ParseSeq(std::size_t lo, std::size_t hi) {
    std::size_t c = lo;
    while (c < hi && !failed_) {
      const std::size_t next = ParseStmt(c, hi);
      c = next > c ? next : c + 1;
    }
  }

  // Parses one statement starting at `c`; returns the position after it.
  std::size_t ParseStmt(std::size_t c, std::size_t hi) {
    const std::string& t = Text(c);
    if (t == "{") {
      const std::size_t close = Match(c, hi);
      if (close == kNpos) {
        AddStmt(c + 1, hi);
        return hi;
      }
      ParseSeq(c + 1, close);
      return close + 1;
    }
    if (t == "if") return ParseIf(c, hi);
    if (t == "while") return ParseWhile(c, hi);
    if (t == "for") return ParseFor(c, hi);
    if (t == "do") return ParseDo(c, hi);
    if (t == "switch") return ParseSwitch(c, hi);
    if (t == "try") return ParseTry(c, hi);
    if (t == "break" || t == "continue") {
      const std::size_t end = std::min(StmtEnd(c, hi) + 1, hi);
      AddStmt(c, end);
      const std::size_t target =
          t == "break" ? (breaks_.empty() ? exit_ : breaks_.back())
                       : (continues_.empty() ? exit_ : continues_.back());
      Edge(cur_, target);
      cur_ = NewBlock();  // unreachable continuation
      return end;
    }
    if (t == "return" || t == "throw" || t == "co_return") {
      const std::size_t end = std::min(StmtEnd(c, hi) + 1, hi);
      AddStmt(c, end);
      Edge(cur_, exit_);
      cur_ = NewBlock();
      return end;
    }
    if (t == "else") return c + 1;  // parse slip: skip the keyword
    if (t == "case" || t == "default") {
      // Only reachable on a parse slip outside ParseSwitch: skip to ':'.
      while (c < hi && Text(c) != ":") ++c;
      return c + 1;
    }
    // Expression statement or declaration (goto included: its edge is a
    // documented blind spot).
    const std::size_t end = std::min(StmtEnd(c, hi) + 1, hi);
    AddStmt(c, end);
    return end;
  }

  std::size_t ParseIf(std::size_t c, std::size_t hi) {
    std::size_t p = c + 1;
    if (p < hi && Text(p) == "constexpr") ++p;
    if (p >= hi || Text(p) != "(") return c + 1;
    const std::size_t close = Match(p, hi);
    if (close == kNpos) return hi;
    const CondResult cond = ParseCond(p + 1, close);
    Edge(cur_, cond.entry);
    const std::size_t then_entry = NewBlock();
    Patch(cond.on_true, then_entry);
    cur_ = then_entry;
    std::size_t next = ParseStmt(close + 1, hi);
    const std::size_t then_end = cur_;
    if (next < hi && Text(next) == "else") {
      const std::size_t else_entry = NewBlock();
      Patch(cond.on_false, else_entry);
      cur_ = else_entry;
      next = ParseStmt(next + 1, hi);
      const std::size_t else_end = cur_;
      const std::size_t join = NewBlock();
      Edge(then_end, join);
      Edge(else_end, join);
      cur_ = join;
      return next;
    }
    const std::size_t join = NewBlock();
    Patch(cond.on_false, join);
    Edge(then_end, join);
    cur_ = join;
    return next;
  }

  std::size_t ParseWhile(std::size_t c, std::size_t hi) {
    const std::size_t p = c + 1;
    if (p >= hi || Text(p) != "(") return c + 1;
    const std::size_t close = Match(p, hi);
    if (close == kNpos) return hi;
    const CondResult cond = ParseCond(p + 1, close);
    Edge(cur_, cond.entry);
    const std::size_t body = NewBlock();
    const std::size_t after = NewBlock();
    Patch(cond.on_true, body);
    Patch(cond.on_false, after);
    breaks_.push_back(after);
    continues_.push_back(cond.entry);
    cur_ = body;
    const std::size_t next = ParseStmt(close + 1, hi);
    Edge(cur_, cond.entry);  // back edge
    breaks_.pop_back();
    continues_.pop_back();
    cur_ = after;
    return next;
  }

  std::size_t ParseFor(std::size_t c, std::size_t hi) {
    const std::size_t p = c + 1;
    if (p >= hi || Text(p) != "(") return c + 1;
    const std::size_t close = Match(p, hi);
    if (close == kNpos) return hi;
    // Top-level ';' splits of the header: init / condition / increment.
    std::vector<std::size_t> semis;
    int depth = 0;
    for (std::size_t i = p + 1; i < close; ++i) {
      const std::string& t = Text(i);
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
      } else if (t == ";" && depth == 0) {
        semis.push_back(i);
      }
    }
    if (semis.size() < 2) return ParseRangeFor(p, close, hi);
    AddStmt(p + 1, semis[0]);
    const bool has_cond = semis[1] > semis[0] + 1;
    CondResult cond;
    std::size_t header;
    if (has_cond) {
      cond = ParseCond(semis[0] + 1, semis[1]);
      header = cond.entry;
    } else {
      header = NewBlock();  // for (;;): no test, body always entered
    }
    Edge(cur_, header);
    const std::size_t body = NewBlock();
    const std::size_t after = NewBlock();
    if (has_cond) {
      Patch(cond.on_true, body);
      Patch(cond.on_false, after);
    } else {
      Edge(header, body);
    }
    const std::size_t inc = NewBlock();
    if (!failed_ && close > semis[1] + 1) {
      blocks_[inc].stmts.push_back({semis[1] + 1, close});
    }
    Edge(inc, header);
    breaks_.push_back(after);
    continues_.push_back(inc);
    cur_ = body;
    const std::size_t next = ParseStmt(close + 1, hi);
    Edge(cur_, inc);
    breaks_.pop_back();
    continues_.pop_back();
    cur_ = after;
    return next;
  }

  std::size_t ParseRangeFor(std::size_t p, std::size_t close,
                            std::size_t hi) {
    // `for (decl : range)` may run zero times: the header is a branch.
    const std::size_t header = NewBranchBlock(p + 1, close);
    Edge(cur_, header);
    const std::size_t body = NewBlock();
    const std::size_t after = NewBlock();
    PatchOne(header, 0, body);
    PatchOne(header, 1, after);
    breaks_.push_back(after);
    continues_.push_back(header);
    cur_ = body;
    const std::size_t next = ParseStmt(close + 1, hi);
    Edge(cur_, header);
    breaks_.pop_back();
    continues_.pop_back();
    cur_ = after;
    return next;
  }

  std::size_t ParseDo(std::size_t c, std::size_t hi) {
    const std::size_t body = NewBlock();
    const std::size_t condb = NewBranchBlock(0, 0);
    const std::size_t after = NewBlock();
    Edge(cur_, body);
    breaks_.push_back(after);
    continues_.push_back(condb);
    cur_ = body;
    std::size_t next = ParseStmt(c + 1, hi);
    Edge(cur_, condb);
    breaks_.pop_back();
    continues_.pop_back();
    if (next < hi && Text(next) == "while" && next + 1 < hi &&
        Text(next + 1) == "(") {
      const std::size_t close = Match(next + 1, hi);
      if (close != kNpos) {
        // One block for the whole condition (no short-circuit split here).
        if (!failed_ && close > next + 2) {
          blocks_[condb].stmts.push_back({next + 2, close});
        }
        next = close + 1;
        if (next < hi && Text(next) == ";") ++next;
      } else {
        next = hi;
      }
    }
    PatchOne(condb, 0, body);  // condition holds: loop again
    PatchOne(condb, 1, after);
    cur_ = after;
    return next;
  }

  std::size_t ParseSwitch(std::size_t c, std::size_t hi) {
    const std::size_t p = c + 1;
    if (p >= hi || Text(p) != "(") return c + 1;
    const std::size_t close = Match(p, hi);
    if (close == kNpos) return hi;
    AddStmt(p + 1, close);  // the switched expression
    const std::size_t head = cur_;
    const std::size_t b = close + 1;
    if (b >= hi || Text(b) != "{") return b;
    const std::size_t bclose = Match(b, hi);
    if (bclose == kNpos) return hi;
    const std::size_t after = NewBlock();
    breaks_.push_back(after);
    bool has_default = false;
    cur_ = NewBlock();  // statements before the first label are dead code
    std::size_t i = b + 1;
    while (i < bclose && !failed_) {
      const std::string& t = Text(i);
      if (t == "case" || t == "default") {
        has_default = has_default || t == "default";
        std::size_t colon = i + 1;
        int depth = 0;
        while (colon < bclose) {
          const std::string& tc = Text(colon);
          if (tc == "(" || tc == "[" || tc == "{") {
            ++depth;
          } else if (tc == ")" || tc == "]" || tc == "}") {
            --depth;
          } else if (tc == ":" && depth == 0) {
            break;
          }
          ++colon;
        }
        const std::size_t arm = NewBlock();
        Edge(head, arm);
        Edge(cur_, arm);  // fall-through from the previous arm
        cur_ = arm;
        i = std::min(colon + 1, bclose);
      } else {
        const std::size_t next = ParseStmt(i, bclose);
        i = next > i ? next : i + 1;
      }
    }
    Edge(cur_, after);
    if (!has_default) Edge(head, after);
    breaks_.pop_back();
    cur_ = after;
    return bclose + 1;
  }

  std::size_t ParseTry(std::size_t c, std::size_t hi) {
    const std::size_t before = cur_;
    std::size_t next = c + 1;
    if (next < hi && Text(next) == "{") {
      const std::size_t close = Match(next, hi);
      if (close == kNpos) {
        AddStmt(next + 1, hi);
        return hi;
      }
      ParseSeq(next + 1, close);
      next = close + 1;
    }
    const std::size_t join = NewBlock();
    Edge(cur_, join);
    while (next < hi && Text(next) == "catch" && !failed_) {
      std::size_t q = next + 1;
      if (q < hi && Text(q) == "(") {
        const std::size_t pc = Match(q, hi);
        if (pc == kNpos) return hi;
        q = pc + 1;
      }
      const std::size_t handler = NewBlock();
      Edge(before, handler);
      cur_ = handler;
      if (q < hi && Text(q) == "{") {
        const std::size_t bc = Match(q, hi);
        if (bc == kNpos) return hi;
        ParseSeq(q + 1, bc);
        q = bc + 1;
      }
      Edge(cur_, join);
      next = q;
    }
    cur_ = join;
    return next;
  }

  // --- conditions: `||` lowest, then `&&`, then atoms -----------------------

  CondResult ParseCond(std::size_t lo, std::size_t hi) {
    return ParseOr(lo, hi);
  }

  std::vector<std::pair<std::size_t, std::size_t>> SplitTop(
      std::size_t lo, std::size_t hi, const char* op) const {
    std::vector<std::pair<std::size_t, std::size_t>> parts;
    int depth = 0;
    std::size_t start = lo;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::string& t = Text(i);
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
      } else if (depth == 0 && t == op) {
        parts.emplace_back(start, i);
        start = i + 1;
      }
    }
    parts.emplace_back(start, hi);
    return parts;
  }

  CondResult ParseOr(std::size_t lo, std::size_t hi) {
    const auto parts = SplitTop(lo, hi, "||");
    if (parts.size() == 1) return ParseAnd(lo, hi);
    CondResult out;
    CondResult prev;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const CondResult part = ParseAnd(parts[i].first, parts[i].second);
      if (i == 0) {
        out.entry = part.entry;
      } else {
        Patch(prev.on_false, part.entry);  // falls to the next alternative
      }
      out.on_true.insert(out.on_true.end(), part.on_true.begin(),
                         part.on_true.end());
      prev = part;
    }
    out.on_false = prev.on_false;
    return out;
  }

  CondResult ParseAnd(std::size_t lo, std::size_t hi) {
    const auto parts = SplitTop(lo, hi, "&&");
    if (parts.size() == 1) return ParseAtom(lo, hi);
    CondResult out;
    CondResult prev;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const CondResult part = ParseAtom(parts[i].first, parts[i].second);
      if (i == 0) {
        out.entry = part.entry;
      } else {
        Patch(prev.on_true, part.entry);  // holds so far: test the next
      }
      out.on_false.insert(out.on_false.end(), part.on_false.begin(),
                          part.on_false.end());
      prev = part;
    }
    out.on_true = prev.on_true;
    return out;
  }

  CondResult ParseAtom(std::size_t lo, std::size_t hi) {
    if (hi >= lo + 2 && Text(lo) == "!" && Text(lo + 1) == "(" &&
        Match(lo + 1, hi) == hi - 1) {
      CondResult inner = ParseCond(lo + 2, hi - 1);
      std::swap(inner.on_true, inner.on_false);
      return inner;
    }
    if (hi >= lo + 2 && Text(lo) == "(" && Match(lo, hi) == hi - 1) {
      return ParseCond(lo + 1, hi - 1);
    }
    CondResult out;
    const std::size_t b = NewBranchBlock(lo, hi);
    out.entry = b;
    out.on_true.push_back({b, 0});
    out.on_false.push_back({b, 1});
    return out;
  }

  const FileModel& file_;
  const FunctionInfo& fn_;
  std::vector<CfgBlock> blocks_;
  std::size_t entry_ = 0;
  std::size_t exit_ = 0;
  std::size_t cur_ = 0;
  std::vector<std::size_t> breaks_;
  std::vector<std::size_t> continues_;
  bool failed_ = false;
};

Cfg Cfg::Build(const FileModel& file, const FunctionInfo& fn) {
  return CfgBuilder(file, fn).Run();
}

int Cfg::StmtLine(const FileModel& file, const CfgBlock::Stmt& stmt) const {
  if (stmt.begin >= stmt.end || stmt.begin >= file.code().size()) return 0;
  return file.tokens()[file.code()[stmt.begin]].line;
}

std::vector<std::vector<std::size_t>> EnumeratePaths(const Cfg& cfg,
                                                     std::size_t from,
                                                     std::size_t max_paths,
                                                     std::size_t max_edges) {
  std::vector<std::vector<std::size_t>> paths;
  if (from >= cfg.blocks().size()) return paths;
  std::set<std::pair<std::size_t, std::size_t>> used;  // (block, succ slot)
  std::vector<std::size_t> path{from};
  std::function<void(std::size_t)> walk = [&](std::size_t b) {
    if (paths.size() >= max_paths) return;
    if (b == cfg.exit() || cfg.blocks()[b].succs.empty() ||
        path.size() > max_edges) {
      paths.push_back(path);
      return;
    }
    bool advanced = false;
    const auto& succs = cfg.blocks()[b].succs;
    for (std::size_t s = 0; s < succs.size(); ++s) {
      const std::size_t to = succs[s];
      if (to >= cfg.blocks().size()) continue;  // unpatched slot
      const auto key = std::make_pair(b, s);
      if (used.contains(key)) continue;
      used.insert(key);
      path.push_back(to);
      walk(to);
      path.pop_back();
      used.erase(key);
      advanced = true;
      if (paths.size() >= max_paths) return;
    }
    // Every outgoing edge already used on this path: treat as an end.
    if (!advanced) paths.push_back(path);
  };
  walk(from);
  return paths;
}

}  // namespace noisybeeps::lint
