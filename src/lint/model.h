// The structural model nblint rules run over.
//
// One FileModel per source file: the classified token stream (token.h),
// function and class boundaries with qualified-name resolution for
// out-of-class definitions ("IndependentNoisyChannel::Deliver"), the
// file's include edges, and a best-effort map of declared value types
// (which identifiers are double / Rng / std::ostringstream -- what the
// float-equality, rng-stream-discipline, and locale-formatting rules need).
//
// The RepoModel aggregates the files and exposes the src/ module include
// graph as a first-class queryable structure: modules, witnessed edges
// (which #include proves the dependency), and reachability -- the
// include-cycle and layering rules are small queries against it.
//
// Everything here is a HEURISTIC parser, not a compiler front end: it must
// never crash on strange code, and it prefers missing an exotic construct
// over guessing wildly.  Rules are expected to tolerate both.
#ifndef NOISYBEEPS_LINT_MODEL_H_
#define NOISYBEEPS_LINT_MODEL_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/token.h"

namespace noisybeeps::lint {

struct SourceFile {
  // Repo-relative path with '/' separators, e.g. "src/util/rng.h".
  std::string path;
  std::string content;
};

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// One #include directive.  `target` is the include path as written;
// `module` is its first path segment when the include is quoted
// ("util/rng.h" -> "util"), or "" for system includes.
struct IncludeEdge {
  std::string target;
  std::string module;
  int line = 0;
  bool system = false;  // <...> rather than "..."
};

// A function declaration or definition found at namespace or class scope.
// Token fields index into FileModel::tokens().
struct FunctionInfo {
  std::string name;            // "Deliver"
  std::string class_name;      // "IndependentNoisyChannel", "" for free fns
  std::string qualified_name;  // "IndependentNoisyChannel::Deliver"
  int line = 0;                // line of the name token
  std::size_t name_token = kNpos;
  std::size_t params_begin = kNpos;  // the '(' token
  std::size_t params_end = kNpos;    // the matching ')' token
  std::size_t body_begin = kNpos;    // the '{' token; kNpos for declarations
  std::size_t body_end = kNpos;      // the matching '}' token
  bool is_definition = false;
};

class FileModel {
 public:
  // Builds the model for one file.  Never throws on malformed code.
  [[nodiscard]] static FileModel Build(SourceFile file);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& content() const { return content_; }
  // The module directory for src/ files ("src/util/rng.cc" -> "util"), "".
  [[nodiscard]] const std::string& module() const { return module_; }
  [[nodiscard]] bool is_header() const { return is_header_; }

  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }
  // Indices of non-comment tokens, in order -- the stream rules scan when
  // documentation must not false-positive.
  [[nodiscard]] const std::vector<std::size_t>& code() const { return code_; }
  [[nodiscard]] const std::vector<IncludeEdge>& includes() const {
    return includes_;
  }
  [[nodiscard]] const std::vector<FunctionInfo>& functions() const {
    return functions_;
  }
  // Identifier -> declared type, for the declaration forms the model
  // recognises ("double", "float", "Rng", "std::ostringstream",
  // "std::ostream", and the unordered containers as
  // "std::unordered_map" etc. with their template arguments dropped).
  // Best-effort; absent means unknown.
  [[nodiscard]] const std::map<std::string, std::string>& value_types()
      const {
    return value_types_;
  }
  // Names of MUTABLE namespace-scope variables declared in this file
  // (const/constexpr/using/extern declarations excluded).  Writes to these
  // are shared-state hazards under parallel execution; the whole-program
  // lockset-discipline rule queries this set.
  [[nodiscard]] const std::set<std::string>& globals() const {
    return globals_;
  }

  // True when any code token or string literal on `line` contains
  // `needle` case-insensitively (comments excluded).
  [[nodiscard]] bool LineMentions(int line, std::string_view needle) const;

 private:
  std::string path_;
  std::string content_;
  std::string module_;
  bool is_header_ = false;
  std::vector<Token> tokens_;
  std::vector<std::size_t> code_;
  std::vector<IncludeEdge> includes_;
  std::vector<FunctionInfo> functions_;
  std::map<std::string, std::string> value_types_;
  std::set<std::string> globals_;
};

class RepoModel {
 public:
  explicit RepoModel(std::vector<SourceFile> files);

  [[nodiscard]] const std::vector<FileModel>& files() const { return files_; }
  [[nodiscard]] const FileModel* FindFile(const std::string& path) const;

  // --- the src/ module include graph --------------------------------------
  struct Witness {
    std::string file;
    int line = 0;
  };
  [[nodiscard]] const std::set<std::string>& modules() const {
    return modules_;
  }
  // edges().at(a).at(b) is one include proving module a depends on b.
  [[nodiscard]] const std::map<std::string, std::map<std::string, Witness>>&
  edges() const {
    return edges_;
  }
  [[nodiscard]] bool DependsOn(const std::string& from,
                               const std::string& to) const;

  // Declared type of `ident` as seen from `file`: the file's own
  // declarations first, then its paired header/source ("a/b.cc" <-> "a/b.h"
  // -- where the members a .cc refers to are declared).  "" if unknown.
  [[nodiscard]] std::string TypeOf(const FileModel& file,
                                   const std::string& ident) const;

 private:
  std::vector<FileModel> files_;
  std::map<std::string, std::size_t> by_path_;
  std::set<std::string> modules_;
  std::map<std::string, std::map<std::string, Witness>> edges_;
};

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_MODEL_H_
