// A lightweight C++ lexer for nblint.
//
// The regex-era checker scanned raw text with ad-hoc comment/string
// stripping; every rule re-derived "is this a real identifier" on its own,
// and PR 4's channel-hot-path vacuity bug showed how silently that can go
// wrong.  The lexer produces one classified token stream per file that all
// rules share: identifiers, numbers, string/char literals, punctuators,
// and -- unlike a compiler front end -- COMMENTS, kept as first-class
// tokens so suppression markers ("// NBLINT(rule-id): why") and
// documentation contracts ("// Precondition: ...") stay queryable.
//
// The lexer is deliberately not a preprocessor: directives appear as
// ordinary tokens ('#', 'include', a string or a '<'..'>' sequence), which
// is exactly what the include-graph and header-guard rules want.
#ifndef NOISYBEEPS_LINT_TOKEN_H_
#define NOISYBEEPS_LINT_TOKEN_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace noisybeeps::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords alike (rules match by spelling)
  kNumber,      // integer or floating literal, incl. digit separators
  kString,      // "...", R"(...)", with encoding prefixes; text keeps quotes
  kChar,        // '...'
  kComment,     // // or /* */; text keeps the comment markers
  kPunct,       // operators and punctuation, maximal munch ("::", "<<", ...)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;        // exact source spelling
  int line = 1;            // 1-based line of the token's first character
  std::size_t offset = 0;  // byte offset into the file content

  friend bool operator==(const Token& a, const Token& b) = default;
};

// Lexes `content` into a token stream.  Never throws on malformed input:
// an unterminated literal or comment simply extends to end of file, and a
// byte that starts no token is emitted as a single-character punctuator --
// a linter must degrade gracefully on code it half-understands.
[[nodiscard]] std::vector<Token> Lex(std::string_view content);

// True for floating-point literals: a '.'/'e'/'E' in a decimal literal, a
// 'p'/'P' exponent in a hexadecimal one ("0x1p3").  Digit separators and
// suffixes are handled.  False for every non-number token.
[[nodiscard]] bool IsFloatLiteral(const Token& token);

// The inner text of a string-literal token: quotes, encoding prefixes, and
// raw-string delimiters removed.  Returns "" for non-string tokens.
[[nodiscard]] std::string StringLiteralText(const Token& token);

// The justification-free text of a comment token: "//", "/*", "*/" markers
// removed and surrounding whitespace trimmed.  "" for non-comment tokens.
[[nodiscard]] std::string CommentText(const Token& token);

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_TOKEN_H_
