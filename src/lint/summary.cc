#include "lint/summary.h"

#include <algorithm>
#include <set>
#include <utility>

#include "lint/dataflow.h"

namespace noisybeeps::lint {
namespace {

bool IsAssignOp(const std::string& text) {
  static const std::set<std::string> kOps = {
      "=",  "+=", "-=", "*=",  "/=",  "%=", "|=",
      "&=", "^=", "<<=", ">>=", "++", "--"};
  return kOps.count(text) > 0;
}

bool IsMutatorMethod(const std::string& name) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back", "insert", "erase",
      "clear",     "emplace",      "assign",   "resize", "reset",
      "store",     "push",         "pop"};
  return kMutators.count(name) > 0;
}

bool IsLockType(const std::string& name) {
  return name == "lock_guard" || name == "unique_lock" ||
         name == "scoped_lock" || name == "shared_lock";
}

bool IsWallClockFree(const std::string& name) {
  return name == "gettimeofday" || name == "clock_gettime" ||
         name == "localtime" || name == "gmtime" || name == "mktime";
}

// Free functions that touch the filesystem directly.  Deliberately not
// "remove": std::remove is also the <algorithm> erase helper, and the
// seam's own call is inside the exempt fs.cc anyway.
bool IsRawFileIoFree(const std::string& name) {
  return name == "fopen" || name == "fclose" || name == "fread" ||
         name == "fwrite" || name == "fsync" || name == "fdatasync" ||
         name == "open" || name == "close" || name == "unlink" ||
         name == "rename";
}

// The BSD socket surface.  Only UNQUALIFIED free calls classify (below):
// std::bind and a connect() method on some class must not read as
// transport code.
bool IsRawSocketFree(const std::string& name) {
  return name == "socket" || name == "bind" || name == "listen" ||
         name == "accept" || name == "accept4" || name == "connect" ||
         name == "recv" || name == "send" || name == "recvfrom" ||
         name == "sendto" || name == "recvmsg" || name == "sendmsg" ||
         name == "setsockopt" || name == "getsockopt" ||
         name == "shutdown" || name == "socketpair";
}

}  // namespace

bool IsClockSeamPath(const std::string& path) {
  return path == "src/resilience/clock.h" ||
         path == "src/resilience/clock.cc";
}

bool IsFsSeamPath(const std::string& path) {
  return path == "src/failpoint/fs.h" || path == "src/failpoint/fs.cc";
}

std::string EffectName(unsigned effect) {
  switch (effect) {
    case kEffectDrawsRng: return "draws-rng";
    case kEffectWallClock: return "wall-clock";
    case kEffectReadsEnv: return "reads-env";
    case kEffectUnorderedIter: return "unordered-iter";
    case kEffectPtrToInt: return "ptr-to-int";
    case kEffectWritesShared: return "writes-shared";
    case kEffectTakesLock: return "takes-lock";
    case kEffectSpawnsThread: return "spawns-thread";
    case kEffectInjectedClock: return "injected-clock";
    case kEffectRawFileIo: return "raw-file-io";
    case kEffectRawSocket: return "raw-socket";
    default: return "effect-" + std::to_string(effect);
  }
}

DirectEffects ExtractEffects(const RepoModel& repo, const FileModel& file,
                             const FunctionInfo& fn,
                             const std::vector<RawCallSite>& calls) {
  DirectEffects out;
  const auto add = [&](unsigned effect, int line, std::string detail) {
    out.mask |= effect;
    out.origins.push_back(EffectOrigin{effect, line, std::move(detail)});
  };

  // --- effects visible in the call list ----------------------------------
  for (const RawCallSite& call : calls) {
    if (call.callee == "getenv" || call.callee == "secure_getenv") {
      add(kEffectReadsEnv, call.line, "getenv");
    }
    if (call.callee == "now" &&
        (call.qualifier.find("steady_clock") != std::string::npos ||
         call.qualifier.find("system_clock") != std::string::npos ||
         call.qualifier.find("high_resolution_clock") != std::string::npos)) {
      add(kEffectWallClock, call.line, call.qualifier + "::now");
    }
    if (call.kind == CallKind::kFree && IsWallClockFree(call.callee)) {
      add(kEffectWallClock, call.line, call.callee);
    }
    if (call.callee == "NowMillis") {
      add(kEffectInjectedClock, call.line, "Clock::NowMillis");
    }
    if (call.receiver_type == "Rng" || call.qualifier == "Rng") {
      add(kEffectDrawsRng, call.line, "Rng::" + call.callee);
    }
    if (call.callee == "lock" || call.callee == "unlock" ||
        call.callee == "try_lock") {
      add(kEffectTakesLock, call.line, "mutex " + call.callee);
    }
    if (call.qualifier == "std" && call.callee == "async") {
      add(kEffectSpawnsThread, call.line, "std::async");
    }
    if ((call.callee == "begin" || call.callee == "cbegin") &&
        call.receiver_type.starts_with("std::unordered")) {
      add(kEffectUnorderedIter, call.line,
          call.receiver_type + "::" + call.callee);
    }
    if (IsRawFileIoFree(call.callee) &&
        ((call.kind == CallKind::kFree && call.qualifier.empty()) ||
         (call.kind == CallKind::kQualified && call.qualifier == "std"))) {
      add(kEffectRawFileIo, call.line,
          call.qualifier.empty() ? call.callee : "std::" + call.callee);
    }
    // std::filesystem::exists / fs::remove / ... (namespace alias included).
    if (call.qualifier.ends_with("filesystem") || call.qualifier == "fs") {
      add(kEffectRawFileIo, call.line, call.qualifier + "::" + call.callee);
    }
    // BSD socket calls; unqualified free calls only (std::bind and class
    // methods named connect/send must not classify).
    if (IsRawSocketFree(call.callee) && call.kind == CallKind::kFree &&
        call.qualifier.empty()) {
      add(kEffectRawSocket, call.line, call.callee);
    }
  }

  // --- effects that need the body token stream ---------------------------
  if (!fn.is_definition || fn.body_begin == kNpos ||
      fn.body_end <= fn.body_begin) {
    return out;
  }
  std::vector<std::size_t> body;
  for (const std::size_t raw : file.code()) {
    if (raw > fn.body_begin && raw < fn.body_end) body.push_back(raw);
  }
  const auto tok = [&](std::size_t i) -> const Token& {
    return file.tokens()[body[i]];
  };

  // The shared-state name set: namespace-scope mutables declared here or
  // in the paired header/source.
  std::set<std::string> globals = file.globals();
  {
    std::string paired = file.path();
    if (paired.ends_with(".cc")) {
      paired.replace(paired.size() - 3, 3, ".h");
    } else if (paired.ends_with(".h")) {
      paired.replace(paired.size() - 2, 2, ".cc");
    } else {
      paired.clear();
    }
    if (const FileModel* other =
            paired.empty() ? nullptr : repo.FindFile(paired)) {
      globals.insert(other->globals().begin(), other->globals().end());
    }
  }

  // Function-local statics: mutable ones join the shared set (they outlive
  // the call and are visible to every thread), but their own initializer
  // must not read as a mutation -- a Meyers singleton that is only ever
  // returned is clean.
  std::set<std::size_t> initializer_positions;
  for (std::size_t i = 0; i + 1 < body.size(); ++i) {
    if (tok(i).text != "static") continue;
    bool is_const = false;
    std::string declared;
    std::size_t name_pos = kNpos;
    for (std::size_t j = i + 1; j < body.size(); ++j) {
      const std::string& text = tok(j).text;
      if (text == "const" || text == "constexpr" || text == "constinit") {
        is_const = true;
      }
      if (text == "=" || text == ";" || text == "{" || text == "(") break;
      if (tok(j).kind == TokenKind::kIdentifier) {
        declared = text;
        name_pos = j;
      }
    }
    if (is_const || declared.empty()) continue;
    globals.insert(declared);
    initializer_positions.insert(name_pos);
  }

  for (std::size_t i = 0; i < body.size(); ++i) {
    const Token& t = tok(i);

    // reinterpret_cast to a non-pointer target is a pointer-to-integer
    // cast: address values differ across runs (ASLR) and across workers.
    if (t.text == "reinterpret_cast" && i + 1 < body.size() &&
        tok(i + 1).text == "<") {
      bool pointer_target = false;
      std::size_t j = i + 2;
      for (; j < body.size(); ++j) {
        const std::string& text = tok(j).text;
        if (text == ">" || text == ">>") break;
        if (text == "*" || text == "&") pointer_target = true;
      }
      if (!pointer_target) {
        add(kEffectPtrToInt, t.line, "reinterpret_cast to integer");
      }
      continue;
    }

    if (t.kind == TokenKind::kIdentifier && IsLockType(t.text)) {
      add(kEffectTakesLock, t.line, "std::" + t.text);
      continue;
    }

    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "thread" || t.text == "jthread") && i >= 2 &&
        tok(i - 1).text == "::" && tok(i - 2).text == "std") {
      add(kEffectSpawnsThread, t.line, "std::" + t.text);
      continue;
    }

    // File-stream construction is raw filesystem access even when no
    // method call is visible (RAII open on construction).
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "ofstream" || t.text == "ifstream" ||
         t.text == "fstream") &&
        i >= 2 && tok(i - 1).text == "::" && tok(i - 2).text == "std") {
      add(kEffectRawFileIo, t.line, "std::" + t.text);
      continue;
    }

    // Range-for over an unordered container: iteration order is
    // per-process, so anything derived from it is nondeterministic.
    if (t.text == "for" && i + 1 < body.size() && tok(i + 1).text == "(") {
      int depth = 0;
      for (std::size_t j = i + 1; j < body.size(); ++j) {
        const std::string& text = tok(j).text;
        if (text == "(") ++depth;
        if (text == ")" && --depth == 0) break;
        if (text == ":" && depth == 1 && j + 1 < body.size()) {
          std::size_t expr = j + 1;
          while (expr < body.size() &&
                 (tok(expr).text == "*" || tok(expr).text == "&")) {
            ++expr;
          }
          if (expr < body.size() &&
              tok(expr).kind == TokenKind::kIdentifier) {
            const std::string type = repo.TypeOf(file, tok(expr).text);
            if (type.starts_with("std::unordered")) {
              add(kEffectUnorderedIter, tok(expr).line,
                  "range-for over " + type + " " + tok(expr).text);
            }
          }
          break;
        }
      }
      continue;
    }

    // Writes to the shared-state name set.
    if (t.kind == TokenKind::kIdentifier && globals.count(t.text) > 0 &&
        initializer_positions.count(i) == 0) {
      bool mutation = false;
      std::string how;
      if (i > 0 && (tok(i - 1).text == "++" || tok(i - 1).text == "--")) {
        mutation = true;
        how = tok(i - 1).text + t.text;
      } else if (i + 1 < body.size()) {
        const std::string& next = tok(i + 1).text;
        if (IsAssignOp(next)) {
          mutation = true;
          how = t.text + " " + next;
        } else if ((next == "." || next == "->") && i + 2 < body.size() &&
                   IsMutatorMethod(tok(i + 2).text)) {
          mutation = true;
          how = t.text + next + tok(i + 2).text;
        } else if (next == "[") {
          // g[k] = v: find the matching ']' and look for an assignment.
          int depth = 0;
          for (std::size_t j = i + 1; j < body.size(); ++j) {
            if (tok(j).text == "[") ++depth;
            if (tok(j).text == "]" && --depth == 0) {
              if (j + 1 < body.size() && IsAssignOp(tok(j + 1).text)) {
                mutation = true;
                how = t.text + "[...] " + tok(j + 1).text;
              }
              break;
            }
          }
        }
      }
      if (mutation) add(kEffectWritesShared, t.line, how);
    }
  }
  return out;
}

FileExtract ExtractFile(const RepoModel& repo, const FileModel& file) {
  FileExtract out;
  out.path = file.path();
  out.module = file.module();
  for (const FunctionInfo& fn : file.functions()) {
    if (!fn.is_definition) continue;
    FunctionExtract extract;
    extract.name = fn.name;
    extract.class_name = fn.class_name;
    extract.line = fn.line;
    extract.calls = ExtractCallSites(repo, file, fn);
    DirectEffects effects = ExtractEffects(repo, file, fn, extract.calls);
    extract.direct_effects = effects.mask;
    extract.facts = ComputeCfgFacts(repo, file, fn, extract.calls, effects);
    extract.origins = std::move(effects.origins);
    out.functions.push_back(std::move(extract));
  }
  return out;
}

ProgramAnalysis ProgramAnalysis::Build(const RepoModel& repo) {
  std::vector<FileExtract> extracts;
  extracts.reserve(repo.files().size());
  for (const FileModel& file : repo.files()) {
    extracts.push_back(ExtractFile(repo, file));
  }
  return Build(extracts);
}

ProgramAnalysis ProgramAnalysis::Build(
    const std::vector<FileExtract>& extracts) {
  constexpr std::size_t kBits = 16;
  ProgramAnalysis analysis;

  std::vector<NodeInput> inputs;
  for (const FileExtract& file : extracts) {
    for (const FunctionExtract& fn : file.functions) {
      NodeInput input;
      input.path = file.path;
      input.module = file.module;
      input.name = fn.name;
      input.class_name = fn.class_name;
      input.qualified_name =
          fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
      input.line = fn.line;
      input.calls = fn.calls;
      inputs.push_back(std::move(input));
    }
  }
  analysis.graph_ = CallGraph::Build(std::move(inputs));
  const std::vector<CallNode>& nodes = analysis.graph_.nodes();

  analysis.direct_.assign(nodes.size(), 0u);
  analysis.effects_.assign(nodes.size(), 0u);
  analysis.origins_.assign(nodes.size(), {});
  analysis.facts_.assign(nodes.size(), {});
  analysis.provenance_.assign(nodes.size(),
                              std::vector<Provenance>(kBits));
  std::size_t n = 0;
  for (const FileExtract& file : extracts) {
    for (const FunctionExtract& fn : file.functions) {
      analysis.direct_[n] = fn.direct_effects;
      analysis.effects_[n] = fn.direct_effects;
      analysis.origins_[n] = fn.origins;
      analysis.facts_[n] = fn.facts;
      for (const EffectOrigin& origin : fn.origins) {
        for (std::size_t bit = 0; bit < kBits; ++bit) {
          if ((origin.effect & (1u << bit)) == 0) continue;
          Provenance& p = analysis.provenance_[n][bit];
          if (p.direct || p.next != kNpos) continue;  // first origin wins
          p.direct = true;
          p.line = origin.line;
          p.detail = origin.detail;
        }
      }
      ++n;
    }
  }

  // Fixed point: callers inherit callee effects.  Lock acquisition stays
  // local; wall clock stops at the injectable clock seam; raw file I/O
  // stops at the injectable filesystem seam.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t caller = 0; caller < nodes.size(); ++caller) {
      for (const CallEdge& edge : nodes[caller].edges) {
        for (const std::size_t callee : edge.targets) {
          unsigned inherit = analysis.effects_[callee] & ~kEffectTakesLock;
          if (IsClockSeamPath(nodes[callee].path)) {
            inherit &= ~kEffectWallClock;
          }
          if (IsFsSeamPath(nodes[callee].path)) {
            inherit &= ~kEffectRawFileIo;
          }
          const unsigned fresh = inherit & ~analysis.effects_[caller];
          if (fresh == 0) continue;
          analysis.effects_[caller] |= fresh;
          changed = true;
          for (std::size_t bit = 0; bit < kBits; ++bit) {
            if ((fresh & (1u << bit)) == 0) continue;
            Provenance& p = analysis.provenance_[caller][bit];
            p.direct = false;
            p.next = callee;
            p.line = edge.site.line;
          }
        }
      }
    }
  }
  return analysis;
}

std::string ProgramAnalysis::WitnessPath(std::size_t n,
                                         unsigned effect) const {
  std::size_t bit = 0;
  while (bit < 16 && (effect & (1u << bit)) == 0) ++bit;
  if (bit >= 16 || n >= effects_.size() ||
      (effects_[n] & (1u << bit)) == 0) {
    return "";
  }
  std::string path;
  std::size_t cur = n;
  // Provenance is acyclic by construction (each hop points at a node that
  // already held the effect), but cap hops defensively.
  for (std::size_t hops = 0; hops <= graph_.nodes().size(); ++hops) {
    const CallNode& node = graph_.nodes()[cur];
    const Provenance& p = provenance_[cur][bit];
    if (!path.empty()) path += " -> ";
    path += node.qualified_name + " (" + node.path + ":" +
            std::to_string(p.line) + ")";
    if (p.direct || p.next == kNpos) {
      path += " -> " + p.detail + " [" + EffectName(1u << bit) + "]";
      break;
    }
    cur = p.next;
  }
  return path;
}

std::vector<ProgramAnalysis::WitnessStep> ProgramAnalysis::WitnessSteps(
    std::size_t n, unsigned effect) const {
  std::size_t bit = 0;
  while (bit < 16 && (effect & (1u << bit)) == 0) ++bit;
  if (bit >= 16 || n >= effects_.size() ||
      (effects_[n] & (1u << bit)) == 0) {
    return {};
  }
  std::vector<WitnessStep> steps;
  std::size_t cur = n;
  for (std::size_t hops = 0; hops <= graph_.nodes().size(); ++hops) {
    const CallNode& node = graph_.nodes()[cur];
    const Provenance& p = provenance_[cur][bit];
    WitnessStep step;
    step.file = node.path;
    step.line = p.line;
    step.text = node.qualified_name;
    if (p.direct || p.next == kNpos) {
      step.text += " -> " + p.detail + " [" + EffectName(1u << bit) + "]";
      steps.push_back(std::move(step));
      break;
    }
    steps.push_back(std::move(step));
    cur = p.next;
  }
  return steps;
}

}  // namespace noisybeeps::lint
