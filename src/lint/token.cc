#include "lint/token.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace noisybeeps::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-character punctuators, longest first so maximal munch falls out of
// scan order.  Only operators C++ actually has; "<::" digraph trivia is
// ignored on purpose.
constexpr std::string_view kPunctuators[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", ".*", "##",
};

// An encoding prefix that may precede a string/char literal.
bool IsLiteralPrefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L" ||
         ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

class Lexer {
 public:
  explicit Lexer(std::string_view content) : content_(content) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (pos_ < content_.size()) {
      const char c = content_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      const std::size_t start = pos_;
      const int start_line = line_;
      Token token;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        token.kind = TokenKind::kComment;
      } else if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        token.kind = TokenKind::kComment;
      } else if (c == '"') {
        LexString();
        token.kind = TokenKind::kString;
      } else if (c == '\'') {
        LexChar();
        token.kind = TokenKind::kChar;
      } else if (IsIdentStart(c)) {
        while (pos_ < content_.size() && IsIdentChar(content_[pos_])) ++pos_;
        const std::string_view ident =
            content_.substr(start, pos_ - start);
        if (IsLiteralPrefix(ident) && pos_ < content_.size() &&
            (content_[pos_] == '"' || content_[pos_] == '\'')) {
          // u8"...", R"(...)", L'x': the prefix belongs to the literal.
          const bool raw = ident.back() == 'R';
          const char quote = content_[pos_];
          if (quote == '"' && raw) {
            LexRawString();
          } else if (quote == '"') {
            LexString();
          } else {
            LexChar();
          }
          token.kind =
              quote == '"' ? TokenKind::kString : TokenKind::kChar;
        } else {
          token.kind = TokenKind::kIdentifier;
        }
      } else if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        token.kind = TokenKind::kNumber;
      } else {
        LexPunct();
        token.kind = TokenKind::kPunct;
      }
      token.text = std::string(content_.substr(start, pos_ - start));
      token.line = start_line;
      token.offset = start;
      tokens.push_back(std::move(token));
    }
    return tokens;
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < content_.size() ? content_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (content_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void LexLineComment() {
    while (pos_ < content_.size() && content_[pos_] != '\n') ++pos_;
  }

  void LexBlockComment() {
    pos_ += 2;
    while (pos_ < content_.size()) {
      if (content_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        return;
      }
      Advance();
    }
  }

  void LexString() {
    ++pos_;  // opening quote
    while (pos_ < content_.size()) {
      const char c = content_[pos_];
      if (c == '\\' && pos_ + 1 < content_.size()) {
        Advance();
        Advance();
        continue;
      }
      if (c == '"' || c == '\n') {  // newline: unterminated, stop gracefully
        if (c == '"') ++pos_;
        return;
      }
      Advance();
    }
  }

  void LexChar() {
    ++pos_;
    while (pos_ < content_.size()) {
      const char c = content_[pos_];
      if (c == '\\' && pos_ + 1 < content_.size()) {
        Advance();
        Advance();
        continue;
      }
      if (c == '\'' || c == '\n') {
        if (c == '\'') ++pos_;
        return;
      }
      Advance();
    }
  }

  void LexRawString() {
    // At the '"' of R"delim( ... )delim".
    ++pos_;
    std::string delim = ")";
    while (pos_ < content_.size() && content_[pos_] != '(') {
      delim += content_[pos_];
      ++pos_;
    }
    delim += '"';
    while (pos_ < content_.size()) {
      if (content_.compare(pos_, delim.size(), delim) == 0) {
        for (std::size_t k = 0; k < delim.size(); ++k) Advance();
        return;
      }
      Advance();
    }
  }

  void LexNumber() {
    // A pp-number-ish scan: digits, identifier characters (hex digits,
    // suffixes, the 0x prefix), digit separators, '.', and exponent signs
    // immediately after e/E/p/P.
    while (pos_ < content_.size()) {
      const char c = content_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > 0) {
        const char prev = content_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
  }

  void LexPunct() {
    for (std::string_view op : kPunctuators) {
      if (content_.compare(pos_, op.size(), op) == 0) {
        pos_ += op.size();
        return;
      }
    }
    ++pos_;
  }

  std::string_view content_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> Lex(std::string_view content) {
  return Lexer(content).Run();
}

bool IsFloatLiteral(const Token& token) {
  if (token.kind != TokenKind::kNumber) return false;
  const std::string& t = token.text;
  const bool hex = t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X');
  if (hex) {
    return t.find_first_of("pP") != std::string::npos;
  }
  return t.find_first_of(".eE") != std::string::npos;
}

std::string StringLiteralText(const Token& token) {
  if (token.kind != TokenKind::kString) return "";
  std::string_view t = token.text;
  // Strip the encoding prefix up to the first quote or 'R'.
  const std::size_t quote = t.find('"');
  if (quote == std::string_view::npos) return "";
  const bool raw = quote > 0 && t[quote - 1] == 'R';
  t.remove_prefix(quote + 1);
  if (!t.empty() && t.back() == '"') t.remove_suffix(1);
  if (raw) {
    const std::size_t open = t.find('(');
    const std::size_t close = t.rfind(')');
    if (open != std::string_view::npos && close != std::string_view::npos &&
        close >= open) {
      t = t.substr(open + 1, close - open - 1);
    }
  }
  return std::string(t);
}

std::string CommentText(const Token& token) {
  if (token.kind != TokenKind::kComment) return "";
  std::string_view t = token.text;
  if (t.starts_with("//")) {
    t.remove_prefix(2);
  } else if (t.starts_with("/*")) {
    t.remove_prefix(2);
    if (t.ends_with("*/")) t.remove_suffix(2);
  }
  while (!t.empty() &&
         std::isspace(static_cast<unsigned char>(t.front())) != 0) {
    t.remove_prefix(1);
  }
  while (!t.empty() &&
         std::isspace(static_cast<unsigned char>(t.back())) != 0) {
    t.remove_suffix(1);
  }
  return std::string(t);
}

}  // namespace noisybeeps::lint
