// An intraprocedural control-flow graph over the token/structural model.
//
// The per-file model (model.h) deliberately stops at function granularity:
// rules see a flat body token range.  That was enough for effect summaries
// ("does this function draw RNG anywhere?") but not for the flow-sensitive
// questions v4 asks -- "does EVERY path to this shared write hold a lock?",
// "do the two arms of a WordMode branch draw the same number of times?".
// The CFG answers those without becoming a compiler: it is built from the
// same classified token stream, by the same heuristics-over-crashes
// philosophy as model.cc.
//
// Shape recovered per function body:
//   * if/else (with `&&`/`||` in conditions split into short-circuit
//     branch chains, including `!(...)` negation),
//   * while/for/range-for/do-while loops with break/continue targets,
//   * switch with case/default arms and fall-through edges,
//   * early return/throw edges to the single exit block,
//   * try/catch as a branch to each handler.
//
// Known, documented limitations (see docs/LINT.md): goto is ignored (no
// edge), statement-level expressions keep nested lambda bodies inline, and
// do-while conditions are single blocks (no short-circuit split).  A body
// the builder cannot bound (block budget exceeded, hopelessly unbalanced
// tokens) degrades to a single straight-line block with `fallback()` set --
// over-approximating "one path through everything", never crashing.
#ifndef NOISYBEEPS_LINT_CFG_H_
#define NOISYBEEPS_LINT_CFG_H_

#include <cstddef>
#include <vector>

#include "lint/model.h"

namespace noisybeeps::lint {

struct CfgBlock {
  // One statement: a half-open range of positions into FileModel::code()
  // (comment tokens already excluded).  Condition blocks hold exactly the
  // (sub-)condition they test; `for` headers contribute their init and
  // increment clauses as ordinary statements.
  struct Stmt {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<Stmt> stmts;
  // Successor blocks.  For a branch block, succs[0] is the edge taken when
  // the condition holds (then-arm / loop body / case arm) and succs[1] the
  // fall-through; otherwise successors are unordered control merges.
  std::vector<std::size_t> succs;
  std::vector<std::size_t> preds;
  bool is_branch = false;
};

class Cfg {
 public:
  // Never fails: unparseable or oversized bodies produce the single-block
  // fallback.  A declaration (no body) yields entry -> exit and fallback().
  [[nodiscard]] static Cfg Build(const FileModel& file,
                                 const FunctionInfo& fn);

  [[nodiscard]] const std::vector<CfgBlock>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] std::size_t entry() const { return entry_; }
  [[nodiscard]] std::size_t exit() const { return exit_; }
  [[nodiscard]] bool fallback() const { return fallback_; }

  // First source line of a statement ("" handled by callers; 0 when the
  // range is empty).
  [[nodiscard]] int StmtLine(const FileModel& file,
                             const CfgBlock::Stmt& stmt) const;

 private:
  std::vector<CfgBlock> blocks_;
  std::size_t entry_ = 0;
  std::size_t exit_ = 0;
  bool fallback_ = false;

  friend class CfgBuilder;
};

// Enumerates control-flow paths from `from` to the exit block.  Each edge
// is traversed at most once per path, so a loop contributes the "body runs
// once" path alongside the "body skipped" one -- exactly what per-path
// draw-site counting wants.  Deterministic DFS order; output capped at
// `max_paths` paths of at most `max_edges` edges each (hitting a cap drops
// the overflow, it never invents paths).
[[nodiscard]] std::vector<std::vector<std::size_t>> EnumeratePaths(
    const Cfg& cfg, std::size_t from, std::size_t max_paths = 64,
    std::size_t max_edges = 256);

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_CFG_H_
