// nblint: project-specific static checks for the noisybeeps sources.
//
// The checker is built in two stages.  Stage one (token.h, model.h) lexes
// every file into a classified token stream and derives a lightweight
// structural model: function/class boundaries, qualified names, declared
// value types, and the src/ module include graph.  Stage two (rules.h) is
// a registry of rules -- each with an id, a severity, a category, and a
// firing fixture -- that run over the model.  This header is the engine
// that ties them together: it runs the rules, applies inline suppressions,
// and renders findings as text, JSON, or SARIF 2.1.0.
//
// Suppressions.  A finding can be silenced for one line with
//
//     offending code;  // NBLINT(rule-id): why this is acceptable
//
// A suppression comment on its own line targets the NEXT line; trailing a
// statement it targets its own line.  The justification is mandatory: an
// empty one suppresses nothing and is reported as
// `suppression-justification`, and a rule id that does not exist is
// reported as `suppression-unknown-rule`.  Silencing must never be
// cheaper than fixing.
//
// The checks operate on file CONTENTS handed in by the caller (the nblint
// tool reads the tree; the unit tests feed synthetic files).  Findings
// print as "file:line: severity: rule-id: message", as JSON via --json, or
// as SARIF via --sarif.
#ifndef NOISYBEEPS_LINT_LINT_H_
#define NOISYBEEPS_LINT_LINT_H_

#include <string>
#include <vector>

#include "lint/model.h"
#include "lint/rules.h"

namespace noisybeeps::lint {

// One parsed NBLINT comment.
struct Suppression {
  std::string file;
  int comment_line = 0;  // where the NBLINT comment sits
  int target_line = 0;   // the line whose findings it silences
  std::string rule_id;
  std::string justification;

  friend bool operator==(const Suppression& a, const Suppression& b) =
      default;
};

// All NBLINT suppressions in one file, in order of appearance.  Malformed
// markers (no closing parenthesis) come back with an empty rule_id so the
// engine can report them instead of dropping them.
[[nodiscard]] std::vector<Suppression> CollectSuppressions(
    const FileModel& file);

// Runs a single rule over `files` with NO suppression processing --
// what rule unit tests and the vacuity meta-test want.  Whole-program
// rules (rule.run_program set) get a fresh ProgramAnalysis; engine-
// implemented rules (both null) yield no findings here -- exercise those
// through RunAllChecks.  Findings carry the rule's severity and are sorted.
[[nodiscard]] std::vector<Finding> RunRule(
    const Rule& rule, const std::vector<SourceFile>& files);

// Observability counters for one whole-program run (tools/nblint.cc
// prints them; CI's cold-vs-warm timing line is built on cache_hits).
struct LintStats {
  std::size_t files = 0;
  std::size_t nodes = 0;           // call-graph nodes (definitions)
  std::size_t edges = 0;           // call sites
  std::size_t resolved_edges = 0;  // edges with at least one target
  std::size_t cache_hits = 0;      // files reused from the cache
};

struct LintOptions {
  // Also run the whole-program rules (call graph + effect propagation +
  // taint.h) on top of the per-file rules.
  bool whole_program = false;
  // Serialized incremental cache from a previous run (cache.h); "" runs
  // cold.  Ignored unless whole_program.
  std::string cache_in;
  // When non-null, receives the up-to-date serialized cache to persist.
  std::string* cache_out = nullptr;
  // When non-null, receives run counters.
  LintStats* stats = nullptr;
};

// The full engine: every registered rule over every file, suppressions
// applied, suppression findings added, sorted by (file, line, rule,
// message).  NBLINT suppressions silence whole-program findings exactly
// like per-file ones.
[[nodiscard]] std::vector<Finding> RunAllChecks(
    const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Finding> RunAllChecks(
    const std::vector<SourceFile>& files, const LintOptions& options);

// --- the finding baseline (tools/nblint_baseline.json) -------------------
//
// Warn-severity rules must be able to land without blocking unrelated
// PRs, so CI compares warn findings against a committed baseline keyed by
// (rule, file) -- line numbers shift too easily to key on.  Error
// findings are never baselined: they fail the build outright.

struct BaselineEntry {
  std::string rule_id;
  std::string file;

  friend bool operator==(const BaselineEntry& a, const BaselineEntry& b) =
      default;
};

// Parses the baseline JSON ({"version":1,"findings":[{"rule":...,
// "file":...}]}).  Malformed input yields an empty baseline.
[[nodiscard]] std::vector<BaselineEntry> ParseBaseline(
    const std::string& json);

// Serializes the warn findings in `findings` as baseline JSON,
// deduplicated and sorted by (rule, file).
[[nodiscard]] std::string FormatBaseline(
    const std::vector<Finding>& findings);

// The warn findings not covered by `baseline` -- what --baseline mode
// fails on.  Stale baseline entries (nothing matches them) are ignored.
[[nodiscard]] std::vector<Finding> NewFindings(
    const std::vector<Finding>& findings,
    const std::vector<BaselineEntry>& baseline);

// "file:line: severity: rule-id: message\n" per finding.
[[nodiscard]] std::string FormatText(const std::vector<Finding>& findings);
// A JSON array of {"file","line","rule","severity","message"} objects.
[[nodiscard]] std::string FormatJson(const std::vector<Finding>& findings);
// A SARIF 2.1.0 log: one run, the full rule registry in
// tool.driver.rules, one result per finding.
[[nodiscard]] std::string FormatSarif(const std::vector<Finding>& findings);

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_LINT_H_
