// nblint: project-specific static checks for the noisybeeps sources.
//
// Generic linters cannot see this library's correctness contracts; nblint
// enforces the ones that keep the Monte Carlo reproduction deterministic
// and the public API honest:
//
//   header-guard           include guards must be NOISYBEEPS_<PATH>_H_
//   banned-random          no std::rand / std::random_device / <random> /
//                          std::mt19937 etc. outside src/util/rng.cc --
//                          all randomness flows through the splittable Rng
//   raw-thread             no std::thread / std::jthread / std::async /
//                          pthread_create outside src/util/parallel.h --
//                          ParallelTrials is the only concurrency primitive
//   include-cycle          the src/ module graph (util, ecc, channel,
//                          protocol, tasks, fault, coding, analysis, lint)
//                          must stay acyclic
//   fault-layering         src/fault/ may include only util/, channel/,
//                          protocol/ (and itself); fault/ headers may be
//                          included only from fault/, coding/, bench/,
//                          tools/, and tests/ -- the fault layer stays a
//                          leaf the core cannot grow a dependency on
//   require-precondition   a constructor or Make*/Sample* factory whose
//                          header declaration documents a "Precondition:"
//                          must call NB_REQUIRE in its definition
//   checkpoint-atomicity   no direct std::ofstream writes of checkpoint
//                          files outside src/resilience/ -- checkpoints
//                          must go through WriteCheckpointAtomic (temp file
//                          + rename) so a kill mid-write can never leave a
//                          torn file that a resume would then reject
//   channel-hot-path       no per-sample UniformDouble()/Bernoulli() coin
//                          flips inside src/channel/ Deliver bodies -- the
//                          Monte Carlo inner loop must draw through a
//                          precomputed BernoulliSampler (bit-identical,
//                          one integer compare per draw)
//
// The checks operate on file CONTENTS handed in by the caller (the nblint
// tool reads the tree; the unit test feeds synthetic files), with comments
// and string/char literals stripped first so documentation never
// false-positives.  Findings print as "file:line: rule-id: message" or as
// JSON via --json.
#ifndef NOISYBEEPS_LINT_LINT_H_
#define NOISYBEEPS_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace noisybeeps::lint {

struct SourceFile {
  // Repo-relative path with '/' separators, e.g. "src/util/rng.h".
  std::string path;
  std::string content;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule_id;
  std::string message;

  friend bool operator==(const Finding& a, const Finding& b) = default;
};

// Replaces comments and string/char literal contents with spaces,
// preserving newlines (so line numbers survive).  Handles //, /* */,
// "...", '...', and raw string literals; a ' preceded by an identifier
// character is treated as a digit separator, not a char literal.
[[nodiscard]] std::string StripCommentsAndStrings(std::string_view content);

// Individual rules (exposed for unit tests).  Per-file rules:
[[nodiscard]] std::vector<Finding> CheckHeaderGuard(const SourceFile& file);
[[nodiscard]] std::vector<Finding> CheckBannedRandomness(
    const SourceFile& file);
[[nodiscard]] std::vector<Finding> CheckRawThreads(const SourceFile& file);
[[nodiscard]] std::vector<Finding> CheckCheckpointAtomicity(
    const SourceFile& file);
[[nodiscard]] std::vector<Finding> CheckChannelHotPath(const SourceFile& file);
// Whole-repo rules:
[[nodiscard]] std::vector<Finding> CheckIncludeCycles(
    const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Finding> CheckRequireCoverage(
    const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Finding> CheckFaultLayering(
    const std::vector<SourceFile>& files);

// All rules over all files, findings sorted by (file, line, rule).
[[nodiscard]] std::vector<Finding> RunAllChecks(
    const std::vector<SourceFile>& files);

// "file:line: rule-id: message\n" per finding.
[[nodiscard]] std::string FormatText(const std::vector<Finding>& findings);
// A JSON array of {"file","line","rule","message"} objects.
[[nodiscard]] std::string FormatJson(const std::vector<Finding>& findings);

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_LINT_H_
