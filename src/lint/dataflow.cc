#include "lint/dataflow.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace noisybeeps::lint {

std::vector<std::uint64_t> Solve(const Cfg& cfg, const DataflowSpec& spec) {
  const std::size_t n = cfg.blocks().size();
  std::vector<std::uint64_t> in(n, spec.top);
  const std::size_t boundary = spec.backward ? cfg.exit() : cfg.entry();
  if (boundary < n) in[boundary] = spec.boundary;
  std::deque<std::size_t> work;
  std::vector<char> queued(n, 1);
  for (std::size_t b = 0; b < n; ++b) work.push_back(b);
  // The lattice has 64 levels per block, so n*64 changes bound the run;
  // the budget is belt-and-braces against a non-monotone client.
  std::size_t budget = n * 128 + 1024;
  while (!work.empty() && budget-- > 0) {
    const std::size_t b = work.front();
    work.pop_front();
    queued[b] = 0;
    const std::uint64_t out = spec.transfer(b, in[b]);
    const auto& next =
        spec.backward ? cfg.blocks()[b].preds : cfg.blocks()[b].succs;
    for (const std::size_t t : next) {
      if (t >= n || t == boundary) continue;  // unpatched slot / boundary
      const std::uint64_t joined = spec.join(in[t], out);
      if (joined == in[t]) continue;
      in[t] = joined;
      if (!queued[t]) {
        queued[t] = 1;
        work.push_back(t);
      }
    }
  }
  return in;
}

int IntWidthOfType(const std::string& type) {
  if (type == "int" || type == "std::int32_t" || type == "int32_t" ||
      type == "std::uint32_t" || type == "uint32_t" || type == "unsigned") {
    return 32;
  }
  if (type == "std::int64_t" || type == "int64_t" ||
      type == "std::uint64_t" || type == "uint64_t" ||
      type == "std::size_t" || type == "size_t" ||
      type == "std::ptrdiff_t" || type == "ptrdiff_t") {
    return 64;
  }
  return 0;
}

namespace {

bool IsLockTypeName(const std::string& name) {
  return name == "lock_guard" || name == "unique_lock" ||
         name == "scoped_lock" || name == "shared_lock";
}

// Walks the per-function fact extraction.  One instance per definition;
// everything is deterministic vectors and maps keyed on positions.
class FactsBuilder {
 public:
  FactsBuilder(const RepoModel& repo, const FileModel& file,
               const FunctionInfo& fn, const std::vector<RawCallSite>& calls,
               const DirectEffects& effects)
      : repo_(repo),
        file_(file),
        fn_(fn),
        calls_(calls),
        effects_(effects),
        cfg_(Cfg::Build(file, fn)) {}

  FunctionFacts Run() {
    facts_.return_width = ReturnWidth();
    facts_.param_widths = ParamWidths();
    MapCalls();
    ClassifyRngLocal();
    CollectModeBranches();
    CollectUnlockedWrites();
    BuildLocalWidths();
    CollectNarrowings();
    return std::move(facts_);
  }

 private:
  const Token& Tok(std::size_t c) const {
    return file_.tokens()[file_.code()[c]];
  }
  const std::string& Text(std::size_t c) const { return Tok(c).text; }
  std::size_t CodeSize() const { return file_.code().size(); }

  // Code position of token index `t`, or kNpos (comment/absent).
  std::size_t CodePosOf(std::size_t t) const {
    const auto& code = file_.code();
    const auto it = std::lower_bound(code.begin(), code.end(), t);
    if (it == code.end() || *it != t) return kNpos;
    return static_cast<std::size_t>(it - code.begin());
  }

  std::size_t MatchForward(std::size_t c, std::size_t hi) const {
    int depth = 0;
    for (std::size_t i = c; i < hi; ++i) {
      const std::string& t = Text(i);
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
        if (depth == 0) return i;
      }
    }
    return kNpos;
  }

  // The qualified-id chain ending at code position `last` (inclusive):
  // "std :: int64_t" -> "std::int64_t".  `first_out` gets the chain start.
  std::string ChainEndingAt(std::size_t last, std::size_t* first_out) const {
    std::size_t first = last;
    while (first >= 2 && Text(first - 1) == "::" &&
           Tok(first - 2).kind == TokenKind::kIdentifier) {
      first -= 2;
    }
    std::string out;
    for (std::size_t i = first; i <= last; ++i) out += Text(i);
    if (first_out != nullptr) *first_out = first;
    return out;
  }

  int ReturnWidth() const {
    if (fn_.name_token == kNpos) return 0;
    std::size_t pos = CodePosOf(fn_.name_token);
    if (pos == kNpos || pos == 0) return 0;
    // Skip the class qualifier(s): `Type Foo::Bar(` -> back past `Foo::`.
    while (pos >= 2 && Text(pos - 1) == "::" &&
           Tok(pos - 2).kind == TokenKind::kIdentifier) {
      pos -= 2;
    }
    if (pos == 0) return 0;
    std::size_t p = pos - 1;
    while (p > 0 && (Text(p) == "&" || Text(p) == "*")) --p;
    if (Tok(p).kind != TokenKind::kIdentifier) return 0;
    return IntWidthOfType(ChainEndingAt(p, nullptr));
  }

  std::vector<int> ParamWidths() const {
    std::vector<int> widths;
    if (fn_.params_begin == kNpos || fn_.params_end == kNpos) return widths;
    const std::size_t lo = CodePosOf(fn_.params_begin);
    const std::size_t hi = CodePosOf(fn_.params_end);
    if (lo == kNpos || hi == kNpos || hi <= lo + 1) return widths;
    // Split [lo+1, hi) at top-level commas.
    std::vector<std::pair<std::size_t, std::size_t>> params;
    int depth = 0;
    std::size_t start = lo + 1;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      const std::string& t = Text(i);
      if (t == "(" || t == "[" || t == "{" || t == "<") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}" || t == ">") {
        --depth;
      } else if (t == "," && depth == 0) {
        params.emplace_back(start, i);
        start = i + 1;
      }
    }
    params.emplace_back(start, hi);
    for (const auto& [plo, phi] : params) {
      std::size_t p = plo;
      while (p < phi && Text(p) == "const") ++p;
      // Collect the leading qualified-id chain as the type spelling.
      std::string type;
      while (p < phi && (Tok(p).kind == TokenKind::kIdentifier ||
                         Text(p) == "::")) {
        type += Text(p);
        ++p;
        // A template argument list ends the simple spelling.
        if (p < phi && Text(p) == "<") break;
      }
      widths.push_back(p < phi && Text(p) == "<" ? 0 : IntWidthOfType(type));
    }
    if (widths.size() == 1 && widths[0] == 0) {
      // `()` or `(void)` -- drop the empty pseudo-parameter.
      const std::size_t plo = params[0].first;
      if (plo >= params[0].second ||
          (params[0].second == plo + 1 && Text(plo) == "void")) {
        widths.clear();
      }
    }
    return widths;
  }

  // --- call-site token mapping ---------------------------------------------

  void MapCalls() {
    call_pos_.assign(calls_.size(), kNpos);
    call_close_.assign(calls_.size(), kNpos);
    for (const CfgBlock& block : cfg_.blocks()) {
      for (const CfgBlock::Stmt& stmt : block.stmts) {
        for (std::size_t i = stmt.begin;
             i < stmt.end && i + 1 < CodeSize(); ++i) {
          if (Tok(i).kind != TokenKind::kIdentifier || Text(i + 1) != "(") {
            continue;
          }
          for (std::size_t k = 0; k < calls_.size(); ++k) {
            if (call_pos_[k] != kNpos || calls_[k].callee != Text(i) ||
                calls_[k].line != Tok(i).line) {
              continue;
            }
            call_pos_[k] = i;
            call_close_[k] = MatchForward(i + 1, stmt.end);
            break;
          }
        }
      }
    }
  }

  void ClassifyRngLocal() {
    facts_.call_rng_local.assign(calls_.size(), 0);
    for (std::size_t k = 0; k < calls_.size(); ++k) {
      if (calls_[k].receiver_type == "Rng" || calls_[k].qualifier == "Rng") {
        facts_.call_rng_local[k] = 1;
        continue;
      }
      if (call_pos_[k] == kNpos || call_close_[k] == kNpos) continue;
      for (std::size_t i = call_pos_[k] + 2; i < call_close_[k]; ++i) {
        if (Tok(i).kind != TokenKind::kIdentifier) continue;
        if (repo_.TypeOf(file_, Text(i)) == "Rng") {
          facts_.call_rng_local[k] = 1;
          break;
        }
      }
    }
  }

  // Call indices whose mapped position lies inside `stmt`, in order.
  std::vector<int> CallsInStmt(const CfgBlock::Stmt& stmt) const {
    std::vector<int> out;
    for (std::size_t k = 0; k < calls_.size(); ++k) {
      if (call_pos_[k] != kNpos && call_pos_[k] >= stmt.begin &&
          call_pos_[k] < stmt.end) {
        out.push_back(static_cast<int>(k));
      }
    }
    std::sort(out.begin(), out.end(), [&](int a, int b) {
      return call_pos_[static_cast<std::size_t>(a)] <
             call_pos_[static_cast<std::size_t>(b)];
    });
    return out;
  }

  // --- WordMode branches ---------------------------------------------------

  void CollectModeBranches() {
    for (std::size_t b = 0; b < cfg_.blocks().size(); ++b) {
      const CfgBlock& block = cfg_.blocks()[b];
      if (!block.is_branch || block.succs.size() != 2) continue;
      bool mentions_mode = false;
      int line = 0;
      for (const CfgBlock::Stmt& stmt : block.stmts) {
        for (std::size_t i = stmt.begin; i < stmt.end; ++i) {
          const std::string& t = Text(i);
          if (t == "WordMode" || t == "kStreamCompat" || t == "kFast") {
            mentions_mode = true;
            if (line == 0) line = Tok(i).line;
          }
        }
      }
      if (!mentions_mode) continue;
      FunctionFacts::ModeBranch branch;
      branch.line = line;
      branch.taken_paths = ArmPaths(block.succs[0]);
      branch.other_paths = ArmPaths(block.succs[1]);
      facts_.mode_branches.push_back(std::move(branch));
    }
  }

  std::vector<std::vector<int>> ArmPaths(std::size_t from) const {
    std::vector<std::vector<int>> out;
    if (from >= cfg_.blocks().size()) return out;
    for (const std::vector<std::size_t>& path : EnumeratePaths(cfg_, from)) {
      std::vector<int> sites;
      std::set<int> seen;
      for (const std::size_t b : path) {
        for (const CfgBlock::Stmt& stmt : cfg_.blocks()[b].stmts) {
          for (const int k : CallsInStmt(stmt)) {
            if (seen.insert(k).second) sites.push_back(k);
          }
        }
      }
      out.push_back(std::move(sites));
    }
    return out;
  }

  // --- lockset -------------------------------------------------------------

  struct LockFact {
    std::size_t pos = kNpos;    // gen/kill position
    std::size_t scope_lo = 0;   // code-position interval the lock is valid in
    std::size_t scope_hi = 0;   // (RAII: its brace scope; manual: the body)
    bool kill = false;          // .unlock()
    std::size_t bit = 0;
  };

  // Innermost enclosing brace interval of every code position in the body.
  void ComputeScopes(std::size_t lo, std::size_t hi,
                     std::vector<std::pair<std::size_t, std::size_t>>* out)
      const {
    out->assign(CodeSize(), {lo, hi});
    std::vector<std::size_t> stack;
    for (std::size_t i = lo; i < hi; ++i) {
      (*out)[i] = stack.empty() ? std::make_pair(lo, hi)
                                : std::make_pair(stack.back(), hi);
      if (Text(i) == "{") {
        stack.push_back(i);
      } else if (Text(i) == "}" && !stack.empty()) {
        const std::size_t open = stack.back();
        stack.pop_back();
        for (std::size_t j = open; j <= i; ++j) {
          if ((*out)[j].first == open) (*out)[j].second = i;
        }
      }
    }
  }

  void CollectUnlockedWrites() {
    std::vector<int> write_lines;
    std::vector<std::string> write_details;
    for (const EffectOrigin& origin : effects_.origins) {
      if (origin.effect != kEffectWritesShared) continue;
      write_lines.push_back(origin.line);
      write_details.push_back(origin.detail);
    }
    if (write_lines.empty()) return;
    if (cfg_.fallback()) {
      // No flow information: degrade to the v3 semantics -- a function
      // that takes any lock is trusted, one that takes none is not.
      if ((effects_.mask & kEffectTakesLock) == 0) {
        for (std::size_t w = 0; w < write_lines.size(); ++w) {
          facts_.unlocked_writes.push_back(
              {write_lines[w], write_details[w]});
        }
      }
      return;
    }

    // Body extent over code positions (for scope intervals).
    std::size_t lo = CodeSize(), hi = 0;
    for (const CfgBlock& block : cfg_.blocks()) {
      for (const CfgBlock::Stmt& stmt : block.stmts) {
        lo = std::min(lo, stmt.begin);
        hi = std::max(hi, stmt.end);
      }
    }
    if (lo >= hi) {
      return;  // no statements at all: nothing to locate writes in
    }
    std::vector<std::pair<std::size_t, std::size_t>> scopes;
    ComputeScopes(lo, hi, &scopes);

    // Lock facts: RAII guard declarations and manual lock()/unlock().
    std::vector<LockFact> locks;
    std::map<std::string, std::size_t> manual_bits;  // mutex name -> bit
    std::size_t bits = 0;
    const auto bit_for_manual = [&](const std::string& name) {
      const auto it = manual_bits.find(name);
      if (it != manual_bits.end()) return it->second;
      manual_bits.emplace(name, bits);
      return bits++;
    };
    for (const CfgBlock& block : cfg_.blocks()) {
      for (const CfgBlock::Stmt& stmt : block.stmts) {
        for (std::size_t i = stmt.begin; i < stmt.end; ++i) {
          const std::string& t = Text(i);
          if (Tok(i).kind != TokenKind::kIdentifier) continue;
          if (IsLockTypeName(t)) {
            LockFact fact;
            fact.pos = i;
            fact.scope_lo = scopes[i].first;
            fact.scope_hi = scopes[i].second;
            fact.bit = bits++;
            locks.push_back(fact);
          } else if ((t == "lock" || t == "unlock" || t == "try_lock") &&
                     i + 1 < CodeSize() && Text(i + 1) == "(" && i >= 2 &&
                     (Text(i - 1) == "." || Text(i - 1) == "->") &&
                     Tok(i - 2).kind == TokenKind::kIdentifier) {
            LockFact fact;
            fact.pos = i;
            fact.scope_lo = lo;
            fact.scope_hi = hi;
            fact.kill = t == "unlock";
            fact.bit = bit_for_manual(Text(i - 2));
            locks.push_back(fact);
          }
        }
      }
    }
    if (bits > 64) {
      return;  // domain overflow: stay silent rather than false-positive
    }

    // Per-block ordered events, and the write positions to check.
    struct Event {
      std::size_t pos = 0;
      bool write = false;
      std::size_t lock = kNpos;   // index into `locks` when !write
      std::size_t which = kNpos;  // index into write_lines when write
    };
    std::vector<std::vector<Event>> events(cfg_.blocks().size());
    std::vector<char> write_found(write_lines.size(), 0);
    for (std::size_t b = 0; b < cfg_.blocks().size(); ++b) {
      for (const CfgBlock::Stmt& stmt : cfg_.blocks()[b].stmts) {
        for (std::size_t i = stmt.begin; i < stmt.end; ++i) {
          for (std::size_t l = 0; l < locks.size(); ++l) {
            if (locks[l].pos == i) events[b].push_back({i, false, l, kNpos});
          }
          for (std::size_t w = 0; w < write_lines.size(); ++w) {
            if (!write_found[w] && Tok(i).line == write_lines[w] &&
                Tok(i).kind == TokenKind::kIdentifier &&
                i + 1 <= CodeSize()) {
              // First identifier on the origin's line approximates the
              // write position well enough for ordering.
              write_found[w] = 1;
              events[b].push_back({i, true, kNpos, w});
            }
          }
        }
      }
      std::sort(events[b].begin(), events[b].end(),
                [](const Event& a, const Event& e) { return a.pos < e.pos; });
    }
    for (std::size_t w = 0; w < write_lines.size(); ++w) {
      if (!write_found[w] && (effects_.mask & kEffectTakesLock) == 0) {
        // Unlocatable write (lambda-heavy line, macro): v3 fallback.
        facts_.unlocked_writes.push_back({write_lines[w], write_details[w]});
      }
    }

    const auto apply = [&](const Event& e, std::uint64_t value) {
      const LockFact& fact = locks[e.lock];
      const std::uint64_t mask = std::uint64_t{1} << fact.bit;
      return fact.kill ? (value & ~mask) : (value | mask);
    };
    DataflowSpec spec;
    spec.join = [](std::uint64_t a, std::uint64_t b) { return a & b; };
    spec.transfer = [&](std::size_t b, std::uint64_t in) {
      std::uint64_t value = in;
      for (const Event& e : events[b]) {
        if (!e.write) value = apply(e, value);
      }
      return value;
    };
    const std::vector<std::uint64_t> solved = Solve(cfg_, spec);

    for (std::size_t b = 0; b < cfg_.blocks().size(); ++b) {
      std::uint64_t value = solved[b];
      for (const Event& e : events[b]) {
        if (!e.write) {
          value = apply(e, value);
          continue;
        }
        // A lock counts only where its scope is live at the write.
        std::uint64_t valid = 0;
        for (const LockFact& fact : locks) {
          if (e.pos >= fact.scope_lo && e.pos <= fact.scope_hi) {
            valid |= std::uint64_t{1} << fact.bit;
          }
        }
        if ((value & valid) == 0) {
          facts_.unlocked_writes.push_back(
              {write_lines[e.which], write_details[e.which]});
        }
      }
    }
  }

  // --- int narrowing -------------------------------------------------------

  // The file-wide value_types map is keyed on bare identifiers, so a
  // `std::size_t i` in one function would poison the plain `int i` of the
  // next.  Declarations found in THIS function's parameter list or body
  // win; the file map only answers for identifiers never declared locally
  // (members, globals).  A name locally declared at two different widths
  // (scoped shadowing) is ambiguous and drops to width 0.
  void BuildLocalWidths() {
    local_widths_.clear();
    std::size_t lo = CodePosOf(fn_.params_begin);
    std::size_t hi = fn_.body_end == kNpos ? kNpos : CodePosOf(fn_.body_end);
    if (lo == kNpos) return;
    if (hi == kNpos || hi > CodeSize()) hi = CodeSize();
    for (std::size_t i = lo; i < hi; ++i) {
      if (Tok(i).kind != TokenKind::kIdentifier) continue;
      int width = 0;
      std::size_t after = i + 1;
      if (Text(i) == "std" && i + 2 < hi && Text(i + 1) == "::") {
        width = IntWidthOfType("std::" + Text(i + 2));
        after = i + 3;
      } else {
        width = IntWidthOfType(Text(i));
        // `unsigned long long x` / `long int y`: multi-word spellings are
        // not classified (mirrors model.cc's value-type collection).
        if (width != 0 && (Text(i) == "int" || Text(i) == "unsigned")) {
          if (i > 0) {
            const std::string& prev = Text(i - 1);
            if (prev == "unsigned" || prev == "signed" || prev == "long" ||
                prev == "short") {
              continue;
            }
          }
          if (after < hi) {
            const std::string& next = Text(after);
            if (next == "int" || next == "long" || next == "short" ||
                next == "char") {
              continue;
            }
          }
        }
      }
      if (width == 0) continue;
      while (after < hi && (Text(after) == "&" || Text(after) == "*" ||
                            Text(after) == "const")) {
        ++after;
      }
      if (after >= hi || Tok(after).kind != TokenKind::kIdentifier) continue;
      const auto [it, inserted] = local_widths_.emplace(Text(after), width);
      if (!inserted && it->second != width) it->second = 0;
    }
  }

  int WidthOfIdent(const std::string& ident) const {
    const auto local = local_widths_.find(ident);
    if (local != local_widths_.end()) return local->second;
    return IntWidthOfType(repo_.TypeOf(file_, ident));
  }

  void CollectNarrowings() {
    // Candidates first; then one must-guard pass over their identifiers.
    struct Candidate {
      std::size_t block = 0;
      std::size_t pos = 0;  // position that orders it within the block
      int line = 0;
      std::string ident;
      std::string detail;  // "" for call-arg candidates
      int call = -1;
      int arg = -1;
    };
    std::vector<Candidate> candidates;

    for (std::size_t b = 0; b < cfg_.blocks().size(); ++b) {
      for (const CfgBlock::Stmt& stmt : cfg_.blocks()[b].stmts) {
        CollectStmtNarrowings(b, stmt, &candidates);
      }
    }
    if (candidates.empty()) return;

    // Bit per distinct identifier (the NB_REQUIRE guard domain).
    std::map<std::string, std::size_t> ident_bits;
    for (const Candidate& c : candidates) {
      if (ident_bits.size() >= 64) break;
      ident_bits.emplace(c.ident, ident_bits.size());
    }

    // Per-block guard events: an NB_REQUIRE statement mentioning an
    // identifier generates its bit.
    struct Guard {
      std::size_t pos = 0;
      std::uint64_t gen = 0;
    };
    std::vector<std::vector<Guard>> guards(cfg_.blocks().size());
    for (std::size_t b = 0; b < cfg_.blocks().size(); ++b) {
      for (const CfgBlock::Stmt& stmt : cfg_.blocks()[b].stmts) {
        if (stmt.begin >= stmt.end || Text(stmt.begin) != "NB_REQUIRE") {
          continue;
        }
        std::uint64_t gen = 0;
        for (std::size_t i = stmt.begin; i < stmt.end; ++i) {
          const auto it = ident_bits.find(Text(i));
          if (it != ident_bits.end()) gen |= std::uint64_t{1} << it->second;
        }
        if (gen != 0) guards[b].push_back({stmt.begin, gen});
      }
    }

    DataflowSpec spec;
    spec.join = [](std::uint64_t a, std::uint64_t b) { return a & b; };
    spec.transfer = [&](std::size_t b, std::uint64_t in) {
      std::uint64_t value = in;
      for (const Guard& g : guards[b]) value |= g.gen;
      return value;
    };
    const std::vector<std::uint64_t> solved = Solve(cfg_, spec);

    for (const Candidate& c : candidates) {
      std::uint64_t value = solved[c.block];
      for (const Guard& g : guards[c.block]) {
        if (g.pos < c.pos) value |= g.gen;
      }
      const auto it = ident_bits.find(c.ident);
      const bool guarded =
          it != ident_bits.end() &&
          (value & (std::uint64_t{1} << it->second)) != 0;
      if (guarded) continue;
      if (c.call >= 0) {
        facts_.narrow_args.push_back({c.call, c.arg, c.line, c.ident});
      } else {
        facts_.narrowings.push_back({c.line, c.detail});
      }
    }
  }

  template <typename Out>
  void CollectStmtNarrowings(std::size_t b, const CfgBlock::Stmt& stmt,
                             Out* candidates) const {
    const std::size_t lo = stmt.begin;
    const std::size_t hi = stmt.end;
    if (lo >= hi) return;
    // return <ident> ;
    if (Text(lo) == "return" && hi == lo + 3 &&
        Tok(lo + 1).kind == TokenKind::kIdentifier && Text(lo + 2) == ";" &&
        facts_.return_width == 32 && WidthOfIdent(Text(lo + 1)) == 64) {
      candidates->push_back({b, lo, Tok(lo + 1).line, Text(lo + 1),
                             "int64 `" + Text(lo + 1) +
                                 "` returned as int32 from `" + fn_.name +
                                 "`",
                             -1, -1});
    }
    // <lhs> = <ident> ; including `std::int32_t lhs = ident;` -- the model
    // registers the declared type, so the width lookup covers both.
    {
      int depth = 0;
      for (std::size_t i = lo; i + 2 < hi; ++i) {
        const std::string& t = Text(i);
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") --depth;
        if (depth != 0 || t != "=") continue;
        if (i == lo || Tok(i - 1).kind != TokenKind::kIdentifier) break;
        if (Tok(i + 1).kind != TokenKind::kIdentifier || Text(i + 2) != ";") {
          break;
        }
        const std::string& lhs = Text(i - 1);
        const std::string& rhs = Text(i + 1);
        if (WidthOfIdent(lhs) == 32 && WidthOfIdent(rhs) == 64) {
          candidates->push_back({b, i, Tok(i).line, rhs,
                                 "int64 `" + rhs +
                                     "` narrows to int32 `" + lhs + "`",
                                 -1, -1});
        }
        break;
      }
    }
    // f(..., <ident>, ...): a bare 64-bit identifier argument.
    for (std::size_t k = 0; k < calls_.size(); ++k) {
      if (call_pos_[k] == kNpos || call_close_[k] == kNpos ||
          call_pos_[k] < lo || call_pos_[k] >= hi) {
        continue;
      }
      const std::size_t open = call_pos_[k] + 1;
      const std::size_t close = call_close_[k];
      if (close <= open + 1) continue;
      int depth = 0;
      std::size_t start = open + 1;
      int arg = 0;
      const auto consider = [&](std::size_t alo, std::size_t ahi) {
        if (ahi == alo + 1 && Tok(alo).kind == TokenKind::kIdentifier &&
            WidthOfIdent(Text(alo)) == 64) {
          candidates->push_back({b, alo, Tok(alo).line, Text(alo), "",
                                 static_cast<int>(k), arg});
        }
      };
      for (std::size_t i = open + 1; i < close; ++i) {
        const std::string& t = Text(i);
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") --depth;
        if (t == "," && depth == 0) {
          consider(start, i);
          start = i + 1;
          ++arg;
        }
      }
      consider(start, close);
    }
  }

  const RepoModel& repo_;
  const FileModel& file_;
  const FunctionInfo& fn_;
  const std::vector<RawCallSite>& calls_;
  const DirectEffects& effects_;
  Cfg cfg_;
  FunctionFacts facts_;
  std::map<std::string, int> local_widths_;
  std::vector<std::size_t> call_pos_;
  std::vector<std::size_t> call_close_;
};

}  // namespace

FunctionFacts ComputeCfgFacts(const RepoModel& repo, const FileModel& file,
                              const FunctionInfo& fn,
                              const std::vector<RawCallSite>& calls,
                              const DirectEffects& effects) {
  if (!fn.is_definition) return {};
  return FactsBuilder(repo, file, fn, calls, effects).Run();
}

}  // namespace noisybeeps::lint
