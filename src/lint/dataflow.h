// A generic worklist dataflow solver over the CFG, plus the concrete
// per-function analyses nblint v4 runs with it.
//
// The framework is deliberately small: lattice values are 64-bit sets
// (locks held, identifiers range-guarded -- every per-function domain the
// rules need fits), direction is forward or backward, and the client
// supplies the join and the per-block transfer function.  Statement-level
// precision is the client's job: Solve hands back one value per block
// boundary and the client replays its transfer inside the block.
//
// On top of it, ComputeCfgFacts distils each function body into the
// flow-sensitive facts the whole-program rules consume (summary.h's
// FunctionFacts, cached by cache.cc as format v4):
//
//   * WordMode branch arms with their per-path call-site traces
//     (rng-draw-parity compares the two arms' draw counts),
//   * shared writes reachable with an empty must-lockset
//     (lockset-discipline, the flow-sensitive successor of
//     shared-state-discipline),
//   * int64 -> int32 narrowings with no dominating NB_REQUIRE guard
//     (int-narrowing-at-boundary), including call arguments judged later
//     against the resolved callee's parameter widths.
#ifndef NOISYBEEPS_LINT_DATAFLOW_H_
#define NOISYBEEPS_LINT_DATAFLOW_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lint/cfg.h"
#include "lint/summary.h"

namespace noisybeeps::lint {

struct DataflowSpec {
  bool backward = false;
  // Value at the entry block (exit when backward).
  std::uint64_t boundary = 0;
  // Initial value of every other block; for a must-analysis this is the
  // full set, so unreachable predecessors join neutrally.
  std::uint64_t top = ~std::uint64_t{0};
  std::function<std::uint64_t(std::uint64_t, std::uint64_t)> join;
  // IN value -> OUT value of one block (OUT -> IN when backward).
  std::function<std::uint64_t(std::size_t block, std::uint64_t in)> transfer;
};

// Iterates to a fixed point; returns the IN value of every block (its OUT
// value when backward).  Deterministic order, bounded iterations.
[[nodiscard]] std::vector<std::uint64_t> Solve(const Cfg& cfg,
                                               const DataflowSpec& spec);

// Integer width class of a declared type spelling: 32, 64, or 0 for
// everything else ("double", "Rng", template types, unknown).
[[nodiscard]] int IntWidthOfType(const std::string& type);

// Builds the flow-sensitive facts for one definition.  `calls` must be
// ExtractCallSites' output and `effects` ExtractEffects' for the same
// function (facts reference call indices and write-origin lines).
[[nodiscard]] FunctionFacts ComputeCfgFacts(
    const RepoModel& repo, const FileModel& file, const FunctionInfo& fn,
    const std::vector<RawCallSite>& calls, const DirectEffects& effects);

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_DATAFLOW_H_
