// Per-function effect summaries and their transitive propagation -- the
// substrate under nblint's whole-program rules (taint.h).
//
// Each call-graph node gets a DIRECT effect mask from scanning its own
// body (plus classifying calls to well-known externals: getenv,
// steady_clock::now), then ProgramAnalysis closes the masks over the call
// graph: a caller inherits what its callees do.  Two deliberate holes in
// that closure encode the repo's sanctioned determinism boundaries:
//
//   * kEffectWallClock does NOT propagate out of src/resilience/clock.* --
//     that file pair IS the injectable seam.  Callers of Clock::NowMillis
//     get the distinct kEffectInjectedClock instead, so the analysis can
//     separately prove "raw clocks stay confined" and "injected time
//     never reaches a fingerprint".
//   * kEffectTakesLock does not propagate at all: a helper that locks
//     internally protects only its own writes, not its caller's.
//
// Every (node, effect) pair remembers WHY it holds -- a direct origin
// (line + what was seen) or the call edge it arrived through -- so a rule
// can render the full witness path in its diagnostic:
//
//   RunReport::Fingerprint (src/analysis/outcome.cc:41)
//     -> StampTime (src/analysis/outcome.cc:12)
//     -> std::chrono::steady_clock::now [wall-clock] (src/analysis/outcome.cc:13)
//
// FunctionExtract/FileExtract carry exactly the per-file inputs of this
// pass (node identity + direct effects + raw call sites); cache.h
// serializes them so warm runs skip the body scans.
#ifndef NOISYBEEPS_LINT_SUMMARY_H_
#define NOISYBEEPS_LINT_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/callgraph.h"
#include "lint/model.h"

namespace noisybeeps::lint {

// Effect bits.  Additions go at the end; cache.cc stores raw masks and
// bumps its format version when these change meaning.
inline constexpr unsigned kEffectDrawsRng = 1u << 0;
inline constexpr unsigned kEffectWallClock = 1u << 1;      // raw OS clocks
inline constexpr unsigned kEffectReadsEnv = 1u << 2;       // getenv
inline constexpr unsigned kEffectUnorderedIter = 1u << 3;  // range-for/begin
inline constexpr unsigned kEffectPtrToInt = 1u << 4;  // reinterpret_cast
inline constexpr unsigned kEffectWritesShared = 1u << 5;  // globals/statics
inline constexpr unsigned kEffectTakesLock = 1u << 6;
inline constexpr unsigned kEffectSpawnsThread = 1u << 7;
inline constexpr unsigned kEffectInjectedClock = 1u << 8;  // Clock::NowMillis
inline constexpr unsigned kEffectRawFileIo = 1u << 9;      // fstream/fopen/...
inline constexpr unsigned kEffectRawSocket = 1u << 10;     // socket/bind/...

// "wall-clock", "writes-shared", ... for one bit (diagnostics).
[[nodiscard]] std::string EffectName(unsigned effect);

// True for src/resilience/clock.{h,cc} -- the injectable-clock seam, the
// only place in src/ allowed to touch raw OS clocks.
[[nodiscard]] bool IsClockSeamPath(const std::string& path);

// True for src/failpoint/fs.{h,cc} -- the injectable-filesystem seam, the
// only place in src/ allowed to touch the filesystem directly.
[[nodiscard]] bool IsFsSeamPath(const std::string& path);

// Why a node holds an effect DIRECTLY.
struct EffectOrigin {
  unsigned effect = 0;  // single bit
  int line = 0;
  std::string detail;  // "std::chrono::steady_clock::now", "g_count ="

  friend bool operator==(const EffectOrigin& a, const EffectOrigin& b) =
      default;
};

struct DirectEffects {
  unsigned mask = 0;
  std::vector<EffectOrigin> origins;
};

// Scans one definition's body.  `calls` must be ExtractCallSites' output
// for the same function (well-known external callees classify effects).
[[nodiscard]] DirectEffects ExtractEffects(
    const RepoModel& repo, const FileModel& file, const FunctionInfo& fn,
    const std::vector<RawCallSite>& calls);

// --- flow-sensitive facts (computed by dataflow.h over cfg.h) -------------

// Per-function facts derived from the intraprocedural CFG at extract time.
// Everything is phrased against the function's own call list (indices into
// FunctionExtract::calls) or plain source lines, so cache.cc round-trips
// them without re-parsing bodies (format v4).
struct FunctionFacts {
  // Declared integer width of the return type / each parameter: 32, 64, or
  // 0 for everything else (unknown, non-integer, templates).
  int return_width = 0;
  std::vector<int> param_widths;
  // call_rng_local[i] != 0: call i has an Rng receiver/qualifier or passes
  // an Rng-typed argument -- a draw site even when resolution cannot see
  // into the callee.
  std::vector<std::uint8_t> call_rng_local;

  // A WordMode-conditioned branch.  Per arm, every enumerated control-flow
  // path to the exit, rendered as the ordered distinct call sites crossed.
  struct ModeBranch {
    int line = 0;
    std::vector<std::vector<int>> taken_paths;  // arm where the test holds
    std::vector<std::vector<int>> other_paths;  // fall-through arm
  };
  std::vector<ModeBranch> mode_branches;

  // A shared write some path reaches with an empty must-lockset.
  struct UnlockedWrite {
    int line = 0;
    std::string detail;
  };
  std::vector<UnlockedWrite> unlocked_writes;

  // An int64 identifier implicitly narrowing to int32 at an assign/init/
  // return, with no dominating NB_REQUIRE guard naming it.
  struct Narrowing {
    int line = 0;
    std::string detail;
  };
  std::vector<Narrowing> narrowings;

  // A 64-bit identifier passed bare as argument `arg` of call `call`
  // (index into calls), unguarded; whether it narrows depends on the
  // resolved callee's parameter width, judged by the whole-program rule.
  struct NarrowArg {
    int call = 0;
    int arg = 0;
    int line = 0;
    std::string ident;
  };
  std::vector<NarrowArg> narrow_args;
};

// --- the per-file unit the incremental cache stores ----------------------

struct FunctionExtract {
  std::string name;
  std::string class_name;
  int line = 0;
  unsigned direct_effects = 0;
  std::vector<EffectOrigin> origins;
  std::vector<RawCallSite> calls;
  FunctionFacts facts;
};

struct FileExtract {
  std::string path;
  std::string module;
  // FNV-1a/64 hex of this file's content and of its paired header/source
  // ("" when no pair exists).  Receiver typing consults the pair, so both
  // hashes key cache validity.
  std::string content_hash;
  std::string paired_hash;
  std::vector<FunctionExtract> functions;
};

// The fresh (cache-miss) path: extract every definition in `file`.
[[nodiscard]] FileExtract ExtractFile(const RepoModel& repo,
                                      const FileModel& file);

// --- transitive closure ---------------------------------------------------

class ProgramAnalysis {
 public:
  // Builds the graph from `extracts` and closes effects over it.
  [[nodiscard]] static ProgramAnalysis Build(
      const std::vector<FileExtract>& extracts);
  // Convenience for tests: fresh-extract the whole repo first.
  [[nodiscard]] static ProgramAnalysis Build(const RepoModel& repo);

  [[nodiscard]] const CallGraph& graph() const { return graph_; }
  // Direct + inherited effect mask / direct-only mask of node `n`.
  [[nodiscard]] unsigned EffectsOf(std::size_t n) const {
    return effects_[n];
  }
  [[nodiscard]] unsigned DirectEffectsOf(std::size_t n) const {
    return direct_[n];
  }
  [[nodiscard]] const std::vector<EffectOrigin>& OriginsOf(
      std::size_t n) const {
    return origins_[n];
  }

  // The flow-sensitive facts of node `n` (same order as graph().nodes()).
  [[nodiscard]] const FunctionFacts& FactsOf(std::size_t n) const {
    return facts_[n];
  }

  // Renders how `effect` (single bit) reaches node `n`:
  //   "A (f.cc:3) -> B (g.cc:7) -> getenv [reads-env] (g.cc:9)".
  // "" when the node does not hold the effect.
  [[nodiscard]] std::string WitnessPath(std::size_t n, unsigned effect) const;

  // The same chain as structured steps (one per hop, ending at the direct
  // origin), for SARIF codeFlows.  Empty when the effect does not hold.
  struct WitnessStep {
    std::string file;
    int line = 0;
    std::string text;
  };
  [[nodiscard]] std::vector<WitnessStep> WitnessSteps(std::size_t n,
                                                      unsigned effect) const;

 private:
  // How (node, effect) came to hold: a direct origin, or the callee that
  // supplied it plus the call-site line.
  struct Provenance {
    bool direct = false;
    std::size_t next = kNpos;  // callee node when !direct
    int line = 0;
    std::string detail;  // origin detail when direct
  };

  CallGraph graph_;
  std::vector<unsigned> effects_;
  std::vector<unsigned> direct_;
  std::vector<std::vector<EffectOrigin>> origins_;
  std::vector<FunctionFacts> facts_;
  // provenance_[n][bit-index] for bits set in effects_[n].
  std::vector<std::vector<Provenance>> provenance_;
};

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_SUMMARY_H_
