#include "lint/model.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace noisybeeps::lint {
namespace {

std::string ModuleOfPath(const std::string& path) {
  if (!path.starts_with("src/")) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

std::string Lowered(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Tokens that cannot precede a function declarator: after these, an
// identifier followed by '(' is a call or initializer, not a declaration.
bool RejectsDeclarator(const Token& prev) {
  if (prev.kind == TokenKind::kString || prev.kind == TokenKind::kChar ||
      prev.kind == TokenKind::kNumber) {
    return true;
  }
  static const std::set<std::string> kReject = {
      ".",  "->", "(",    ",",      "=",   "<",   "<<",  ">>", "!",
      "+",  "-",  "/",    "%",      "?",   "[",   "case", "return",
      "throw", "new", "delete", "co_return", "co_yield", "||", "|", "^"};
  return kReject.count(prev.text) > 0;
}

bool IsUnorderedContainer(const std::string& name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

// Fixed-width and size-like integer spellings the narrowing analysis
// (lint/dataflow.h) classifies; recorded both bare and std::-qualified.
bool IsSizedIntType(const std::string& name) {
  return name == "int64_t" || name == "uint64_t" || name == "int32_t" ||
         name == "uint32_t" || name == "size_t" || name == "ptrdiff_t";
}

// Identifiers that introduce statements/expressions, never function names.
bool IsNonFunctionKeyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",       "while",   "for",     "switch",        "catch",
      "sizeof",   "alignof", "alignas", "decltype",      "static_assert",
      "return",   "throw",   "new",     "delete",        "defined",
      "noexcept", "typeid",  "requires"};
  return kKeywords.count(name) > 0;
}

class ModelBuilder {
 public:
  ModelBuilder(const std::vector<Token>& tokens,
               const std::vector<std::size_t>& code)
      : tokens_(tokens), code_(code) {}

  void Run(std::vector<FunctionInfo>& functions,
           std::map<std::string, std::string>& value_types,
           std::set<std::string>& globals) {
    CollectValueTypes(value_types);
    std::size_t i = 0;
    while (i < code_.size()) {
      const Token& t = Tok(i);
      if (t.kind == TokenKind::kIdentifier && t.text == "template" &&
          i + 1 < code_.size() && Tok(i + 1).text == "<") {
        i = SkipTemplateParams(i + 1);
        continue;
      }
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "class" || t.text == "struct")) {
        i = HandleClass(i);
        continue;
      }
      if (t.kind == TokenKind::kIdentifier && t.text == "enum") {
        i = SkipEnum(i);
        continue;
      }
      if (t.text == "{") {
        // Namespace bodies keep namespace scope; any other brace (init
        // list, lambda body, array initializer) is an opaque region whose
        // declarations must not be mistaken for namespace-scope state.
        scopes_.push_back(
            Scope{IsNamespaceBrace(i) ? ScopeKind::kNamespace
                                      : ScopeKind::kOther,
                  ""});
        ++i;
        continue;
      }
      if (t.text == "}") {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier && !IsNonFunctionKeyword(t.text) &&
          i + 1 < code_.size() && Tok(i + 1).text == "(") {
        const std::size_t next = TryFunction(i, functions);
        if (next != kNpos) {
          i = next;
          continue;
        }
      }
      // A lambda bound to a named variable at namespace or class scope
      // (`auto Helper = [...](...) {...};`) is a function definition in
      // every sense the rules care about: record it under the variable's
      // name so call sites and effects in its body attribute somewhere.
      if (t.kind == TokenKind::kIdentifier && i + 2 < code_.size() &&
          Tok(i + 1).text == "=" && Tok(i + 2).text == "[") {
        const std::size_t next = TryLambda(i, functions);
        if (next != kNpos) {
          i = next;
          continue;
        }
      }
      if (t.kind == TokenKind::kIdentifier && AtNamespaceScope() &&
          IsGlobalVariableName(i)) {
        globals.insert(t.text);
      }
      ++i;
    }
  }

 private:
  enum class ScopeKind { kNamespace, kClass, kOther };
  struct Scope {
    ScopeKind kind = ScopeKind::kOther;
    std::string name;  // the class name for kClass scopes
  };

  const Token& Tok(std::size_t i) const { return tokens_[code_[i]]; }

  // True when every open scope is a namespace body (i.e. the walker sits
  // at namespace scope, where variable declarations are shared state).
  bool AtNamespaceScope() const {
    for (const Scope& scope : scopes_) {
      if (scope.kind != ScopeKind::kNamespace) return false;
    }
    return true;
  }

  // `i` is at a '{' in the main walk.  True when the brace opens a
  // namespace body: "namespace {", "namespace name {", "namespace a::b {".
  bool IsNamespaceBrace(std::size_t i) const {
    std::size_t j = i;
    while (j > 0) {
      const Token& prev = Tok(j - 1);
      if (prev.kind == TokenKind::kIdentifier && prev.text == "namespace") {
        return true;
      }
      if (prev.kind == TokenKind::kIdentifier || prev.text == "::") {
        --j;
        continue;
      }
      return false;
    }
    return false;
  }

  // `i` is at an identifier at namespace scope.  True when it declares a
  // MUTABLE namespace-scope variable: the next token closes a declarator
  // ('=', ';', '[', '{'), a type precedes it in the same statement, and
  // the statement carries no const/constexpr/using/... disqualifier.
  bool IsGlobalVariableName(std::size_t i) const {
    if (i + 1 >= code_.size()) return false;
    const std::string& next = Tok(i + 1).text;
    if (next != "=" && next != ";" && next != "[" && next != "{") {
      return false;
    }
    static const std::set<std::string> kDisqualifiers = {
        "const",    "constexpr", "constinit", "using",  "typedef",
        "extern",   "namespace", "friend",    "enum",   "operator",
        "template", "return",    "class",     "struct", "static_assert",
        "="};
    bool saw_type = false;
    for (std::size_t j = i; j > 0; --j) {
      const Token& prev = Tok(j - 1);
      if (prev.text == ";" || prev.text == "{" || prev.text == "}") break;
      if (kDisqualifiers.count(prev.text) > 0) return false;
      if (prev.kind == TokenKind::kIdentifier) saw_type = true;
    }
    return saw_type;
  }

  // `i` is at the '<' after `template`; returns the index after the
  // matching '>'.  Understands '>>' closing two levels.
  std::size_t SkipTemplateParams(std::size_t i) {
    int depth = 0;
    for (; i < code_.size(); ++i) {
      const std::string& text = Tok(i).text;
      if (text == "<") {
        ++depth;
      } else if (text == ">") {
        if (--depth == 0) return i + 1;
      } else if (text == ">>") {
        depth -= 2;
        if (depth <= 0) return i + 1;
      } else if (text == "{" || text == ";") {
        return i;  // malformed; bail out gracefully
      }
    }
    return i;
  }

  // `i` is at 'class'/'struct'.  Pushes a named scope for definitions,
  // returns the index to resume at.
  std::size_t HandleClass(std::size_t i) {
    std::string name;
    bool in_base_clause = false;
    std::size_t j = i + 1;
    for (; j < code_.size(); ++j) {
      const Token& t = Tok(j);
      if (t.text == "(") {
        j = MatchForward(j, "(", ")");
        if (j == kNpos) return i + 1;
        continue;
      }
      if (t.text == ";") return j + 1;  // forward declaration
      if (t.text == "{") break;
      if (t.text == ":") in_base_clause = true;
      if (!in_base_clause && t.kind == TokenKind::kIdentifier &&
          t.text != "final" && t.text != "alignas") {
        name = t.text;
      }
    }
    if (j >= code_.size()) return j;
    scopes_.push_back(Scope{ScopeKind::kClass, name});
    return j + 1;
  }

  std::size_t SkipEnum(std::size_t i) {
    std::size_t j = i + 1;
    for (; j < code_.size(); ++j) {
      if (Tok(j).text == ";") return j + 1;
      if (Tok(j).text == "{") {
        const std::size_t close = MatchForward(j, "{", "}");
        return close == kNpos ? code_.size() : close + 1;
      }
    }
    return j;
  }

  // Index of the token matching the opener at `open`, or kNpos.
  std::size_t MatchForward(std::size_t open, std::string_view opener,
                           std::string_view closer) const {
    int depth = 0;
    for (std::size_t k = open; k < code_.size(); ++k) {
      if (Tok(k).text == opener) ++depth;
      if (Tok(k).text == closer && --depth == 0) return k;
    }
    return kNpos;
  }

  // Innermost named class scope, or "".
  std::string EnclosingClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeKind::kClass && !it->name.empty()) {
        return it->name;
      }
    }
    return "";
  }

  // `i` is at `ident = [`.  Records the lambda as a FunctionInfo named
  // after the variable and returns the index past its body, or kNpos when
  // the shape is not `ident = [capture](params...) ... { body }`.
  std::size_t TryLambda(std::size_t i, std::vector<FunctionInfo>& out) {
    const std::size_t capture_close = MatchForward(i + 2, "[", "]");
    if (capture_close == kNpos) return kNpos;
    // Optional parameter list, then specifiers (mutable, noexcept,
    // -> type) up to the body brace; a ';' first means no body followed
    // (`x = [expr];` subscript-free shapes cannot reach here, but stay
    // defensive).
    std::size_t params_begin = kNpos;
    std::size_t params_end = kNpos;
    std::size_t k = capture_close + 1;
    if (k < code_.size() && Tok(k).text == "(") {
      params_begin = k;
      params_end = MatchForward(k, "(", ")");
      if (params_end == kNpos) return kNpos;
      k = params_end + 1;
    }
    std::size_t body_begin = kNpos;
    for (; k < code_.size(); ++k) {
      const std::string& text = Tok(k).text;
      if (text == "{") {
        body_begin = k;
        break;
      }
      if (text == ";" || text == "}" || text == ",") return kNpos;
    }
    if (body_begin == kNpos) return kNpos;
    const std::size_t body_end = MatchForward(body_begin, "{", "}");
    if (body_end == kNpos) return kNpos;

    FunctionInfo fn;
    fn.name = Tok(i).text;
    fn.class_name = EnclosingClass();
    fn.qualified_name = fn.name;
    fn.line = Tok(i).line;
    fn.name_token = code_[i];
    // A capture-only lambda has no parameter list; point both ends at the
    // capture's ']' so token ranges stay well-formed and empty.
    fn.params_begin =
        code_[params_begin == kNpos ? capture_close : params_begin];
    fn.params_end = code_[params_end == kNpos ? capture_close : params_end];
    fn.is_definition = true;
    fn.body_begin = code_[body_begin];
    fn.body_end = code_[body_end];
    out.push_back(std::move(fn));
    return body_end + 1;
  }

  // `i` is at an identifier followed by '('.  Records a FunctionInfo and
  // returns the resume index, or kNpos when this is not a declarator.
  std::size_t TryFunction(std::size_t i, std::vector<FunctionInfo>& out) {
    // Walk back over a `A::B::` qualification chain to the declarator
    // start, whose own predecessor decides declaration context.  A
    // qualifier may carry template arguments ("Foo<T>::Bar" in an
    // out-of-line template member definition): the argument list is
    // skipped backward to the class name that owns it.
    std::size_t chain_start = i;
    std::vector<std::string> qualifiers;
    while (chain_start >= 2 && Tok(chain_start - 1).text == "::") {
      if (Tok(chain_start - 2).kind == TokenKind::kIdentifier) {
        qualifiers.push_back(Tok(chain_start - 2).text);
        chain_start -= 2;
        continue;
      }
      if (Tok(chain_start - 2).text != ">" &&
          Tok(chain_start - 2).text != ">>") {
        break;
      }
      // Scan back across the template-argument list to its '<'.
      std::size_t k = chain_start - 2;
      int depth = 0;
      bool matched = false;
      for (; k + 1 > 0; --k) {
        const std::string& text = Tok(k).text;
        if (text == ">") {
          ++depth;
        } else if (text == ">>") {
          depth += 2;
        } else if (text == "<") {
          if (--depth <= 0) {
            matched = depth == 0;
            break;
          }
        } else if (text == "{" || text == "}" || text == ";") {
          break;
        }
        if (k == 0) break;
      }
      if (!matched || k < 1 ||
          Tok(k - 1).kind != TokenKind::kIdentifier) {
        break;
      }
      qualifiers.push_back(Tok(k - 1).text);
      chain_start = k - 1;
    }
    if (chain_start > 0) {
      const Token& prev = Tok(chain_start - 1);
      if (prev.text == "~") return kNpos;  // destructors are uninteresting
      if (prev.text == "::") return kNpos;  // absolute-qualified call
      if (RejectsDeclarator(prev)) return kNpos;
    }
    std::reverse(qualifiers.begin(), qualifiers.end());

    const std::size_t params_begin = i + 1;
    const std::size_t params_end = MatchForward(params_begin, "(", ")");
    if (params_end == kNpos) return kNpos;

    // After the parameter list: find the body '{' or the terminating ';'.
    // A ctor init list may interpose calls, so parentheses are tracked; a
    // '}' or a top-level ',' before either terminator means this was an
    // expression or a multi-declarator statement -- not recorded.
    bool in_init_list = false;
    std::size_t k = params_end + 1;
    int paren_depth = 0;
    std::size_t body_begin = kNpos;
    for (; k < code_.size(); ++k) {
      const std::string& text = Tok(k).text;
      if (text == "(") ++paren_depth;
      if (text == ")") --paren_depth;
      if (paren_depth > 0) continue;
      if (text == ":") in_init_list = true;
      if (text == "{") {
        // A brace directly after an identifier inside a ctor init list is
        // a member's brace-init (`: a_{1}, b_{2}`), not the body: skip it
        // and keep scanning for the real body brace.
        if (in_init_list && k > 0 &&
            Tok(k - 1).kind == TokenKind::kIdentifier) {
          const std::size_t close = MatchForward(k, "{", "}");
          if (close == kNpos) return kNpos;
          k = close;
          continue;
        }
        body_begin = k;
        break;
      }
      if (text == ";") break;
      if (text == "}") return kNpos;
      if (text == "," && !in_init_list) return kNpos;
    }
    if (k >= code_.size()) return kNpos;

    FunctionInfo fn;
    fn.name = Tok(i).text;
    fn.class_name =
        qualifiers.empty() ? EnclosingClass() : qualifiers.back();
    std::string qualified;
    for (const std::string& q : qualifiers) qualified += q + "::";
    qualified += fn.name;
    fn.qualified_name = qualified;
    fn.line = Tok(i).line;
    fn.name_token = code_[i];
    fn.params_begin = code_[params_begin];
    fn.params_end = code_[params_end];
    if (body_begin != kNpos) {
      const std::size_t body_end = MatchForward(body_begin, "{", "}");
      if (body_end == kNpos) {
        // Unterminated body: claim to end of file so rules still scan it.
        fn.is_definition = true;
        fn.body_begin = code_[body_begin];
        fn.body_end = tokens_.size() == 0 ? 0 : code_.back();
        out.push_back(std::move(fn));
        return code_.size();
      }
      fn.is_definition = true;
      fn.body_begin = code_[body_begin];
      fn.body_end = code_[body_end];
      out.push_back(std::move(fn));
      return body_end + 1;
    }
    fn.is_definition = false;
    out.push_back(std::move(fn));
    return k + 1;  // past the ';'
  }

  const std::vector<Token>& tokens_;
  const std::vector<std::size_t>& code_;
  std::vector<Scope> scopes_;

  void CollectValueTypes(std::map<std::string, std::string>& out) {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != TokenKind::kIdentifier) continue;
      std::string type;
      std::size_t after = i + 1;  // first token past the type name
      if (t.text == "double" || t.text == "float" || t.text == "Rng" ||
          t.text == "int" || t.text == "unsigned" ||
          IsSizedIntType(t.text)) {
        type = t.text;
        // `unsigned long long x` must not record x as plain unsigned; a
        // multi-word integer spelling is left untyped.
        if ((t.text == "int" || t.text == "unsigned") && i > 0) {
          const std::string& prev = Tok(i - 1).text;
          if (prev == "unsigned" || prev == "signed" || prev == "long" ||
              prev == "short" || prev == "const") {
            continue;
          }
        }
        if ((t.text == "int" || t.text == "unsigned") &&
            i + 1 < code_.size()) {
          const std::string& next = Tok(i + 1).text;
          if (next == "int" || next == "long" || next == "short" ||
              next == "char") {
            continue;
          }
        }
      } else if (t.text == "std" && i + 2 < code_.size() &&
                 Tok(i + 1).text == "::" && IsSizedIntType(Tok(i + 2).text)) {
        type = "std::" + Tok(i + 2).text;
        after = i + 3;
      } else if (t.text == "std" && i + 2 < code_.size() &&
                 Tok(i + 1).text == "::" &&
                 (Tok(i + 2).text == "ostringstream" ||
                  Tok(i + 2).text == "ostream")) {
        type = "std::" + Tok(i + 2).text;
        after = i + 3;
      } else if (t.text == "std" && i + 2 < code_.size() &&
                 Tok(i + 1).text == "::" &&
                 IsUnorderedContainer(Tok(i + 2).text)) {
        // Record the container sans template arguments; the declared
        // identifier follows the argument list.
        type = "std::" + Tok(i + 2).text;
        after = i + 3;
        if (after >= code_.size() || Tok(after).text != "<") continue;
        int depth = 0;
        for (; after < code_.size(); ++after) {
          const std::string& text = Tok(after).text;
          if (text == "<") {
            ++depth;
          } else if (text == ">") {
            if (--depth == 0) {
              ++after;
              break;
            }
          } else if (text == ">>") {
            depth -= 2;
            if (depth <= 0) {
              ++after;
              break;
            }
          } else if (text == "{" || text == ";") {
            break;  // malformed argument list; skip this declaration
          }
        }
        if (after >= code_.size()) continue;
      } else {
        continue;
      }
      // Optional ref/pointer, then the declared identifier, then a token
      // that plausibly ends a declarator.
      while (after < code_.size() &&
             (Tok(after).text == "&" || Tok(after).text == "&&" ||
              Tok(after).text == "*")) {
        ++after;
      }
      if (after >= code_.size() ||
          Tok(after).kind != TokenKind::kIdentifier ||
          IsNonFunctionKeyword(Tok(after).text)) {
        continue;
      }
      const std::string& ident = Tok(after).text;
      if (after + 1 < code_.size()) {
        const std::string& next = Tok(after + 1).text;
        if (next == "(") {
          // `Rng rng(seed);` constructs; `Rng Make(Rng base);` declares a
          // function.  A construction's argument list opens with a literal
          // or an identifier followed by an expression separator, while a
          // parameter's type is followed by more declarator tokens.
          if (after + 2 >= code_.size()) continue;
          const Token& arg = Tok(after + 2);
          bool constructs = false;
          if (arg.kind == TokenKind::kNumber ||
              arg.kind == TokenKind::kString ||
              arg.kind == TokenKind::kChar) {
            constructs = true;
          } else if (arg.kind == TokenKind::kIdentifier &&
                     !IsNonFunctionKeyword(arg.text) &&
                     after + 3 < code_.size()) {
            static const std::set<std::string> kExprSeparators = {
                ")", ",", ".", "->", "(", "+", "-", "["};
            constructs = kExprSeparators.count(Tok(after + 3).text) > 0;
          }
          if (!constructs) continue;
        } else {
          static const std::set<std::string> kEnders = {
              ";", ",", ")", "=", "{", "[", ":"};
          if (kEnders.count(next) == 0) continue;
        }
      }
      out.emplace(ident, type);  // first declaration wins
    }
  }
};

}  // namespace

FileModel FileModel::Build(SourceFile file) {
  FileModel model;
  model.path_ = std::move(file.path);
  model.content_ = std::move(file.content);
  model.module_ = ModuleOfPath(model.path_);
  model.is_header_ = model.path_.ends_with(".h");
  model.tokens_ = Lex(model.content_);
  model.code_.reserve(model.tokens_.size());
  for (std::size_t i = 0; i < model.tokens_.size(); ++i) {
    if (model.tokens_[i].kind != TokenKind::kComment) {
      model.code_.push_back(i);
    }
  }

  // Include directives: '#' (first code token on its line) + "include".
  for (std::size_t ci = 0; ci + 1 < model.code_.size(); ++ci) {
    const Token& hash = model.tokens_[model.code_[ci]];
    if (hash.text != "#") continue;
    if (ci > 0 &&
        model.tokens_[model.code_[ci - 1]].line == hash.line) {
      continue;
    }
    const Token& directive = model.tokens_[model.code_[ci + 1]];
    if (directive.text != "include" || directive.line != hash.line) continue;
    if (ci + 2 >= model.code_.size()) continue;
    const Token& target = model.tokens_[model.code_[ci + 2]];
    IncludeEdge edge;
    edge.line = hash.line;
    if (target.kind == TokenKind::kString) {
      edge.target = StringLiteralText(target);
      edge.system = false;
    } else if (target.text == "<") {
      edge.system = true;
      for (std::size_t k = ci + 3; k < model.code_.size(); ++k) {
        const Token& part = model.tokens_[model.code_[k]];
        if (part.text == ">" || part.line != hash.line) break;
        edge.target += part.text;
      }
    } else {
      continue;
    }
    if (!edge.system) {
      const std::size_t slash = edge.target.find('/');
      if (slash != std::string::npos) {
        edge.module = edge.target.substr(0, slash);
      }
    }
    model.includes_.push_back(std::move(edge));
  }

  // Preprocessor directives are line-oriented and declare no functions or
  // values; hide them from the structural pass so that e.g. a definition
  // directly following an #include is not judged by the directive's
  // trailing tokens (the header-name string would veto the declarator).
  std::vector<std::size_t> structural;
  structural.reserve(model.code_.size());
  int last_code_line = -1;
  int pp_line = -1;
  for (const std::size_t i : model.code_) {
    const Token& t = model.tokens_[i];
    if (t.text == "#" && t.line != last_code_line) pp_line = t.line;
    last_code_line = t.line;
    if (t.line == pp_line) continue;
    structural.push_back(i);
  }
  ModelBuilder builder(model.tokens_, structural);
  builder.Run(model.functions_, model.value_types_, model.globals_);
  return model;
}

bool FileModel::LineMentions(int line, std::string_view needle) const {
  const std::string wanted = Lowered(needle);
  for (const std::size_t i : code_) {
    const Token& t = tokens_[i];
    if (t.line != line) continue;
    if (Lowered(t.text).find(wanted) != std::string::npos) return true;
  }
  return false;
}

RepoModel::RepoModel(std::vector<SourceFile> files) {
  files_.reserve(files.size());
  for (SourceFile& file : files) {
    files_.push_back(FileModel::Build(std::move(file)));
  }
  for (std::size_t i = 0; i < files_.size(); ++i) {
    by_path_[files_[i].path()] = i;
    if (!files_[i].module().empty()) modules_.insert(files_[i].module());
  }
  for (const FileModel& file : files_) {
    const std::string& from = file.module();
    if (from.empty()) continue;
    for (const IncludeEdge& inc : file.includes()) {
      if (inc.system || inc.module.empty() || inc.module == from) continue;
      if (modules_.count(inc.module) == 0) continue;
      edges_[from].emplace(inc.module, Witness{file.path(), inc.line});
    }
  }
}

const FileModel* RepoModel::FindFile(const std::string& path) const {
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? nullptr : &files_[it->second];
}

bool RepoModel::DependsOn(const std::string& from,
                          const std::string& to) const {
  std::set<std::string> seen;
  std::vector<std::string> frontier = {from};
  while (!frontier.empty()) {
    const std::string node = frontier.back();
    frontier.pop_back();
    if (!seen.insert(node).second) continue;
    const auto it = edges_.find(node);
    if (it == edges_.end()) continue;
    for (const auto& [next, witness] : it->second) {
      if (next == to) return true;
      frontier.push_back(next);
    }
  }
  return false;
}

std::string RepoModel::TypeOf(const FileModel& file,
                              const std::string& ident) const {
  const auto own = file.value_types().find(ident);
  if (own != file.value_types().end()) return own->second;
  // The paired header (or source) declares the members a .cc refers to.
  std::string paired = file.path();
  if (paired.ends_with(".cc")) {
    paired.replace(paired.size() - 3, 3, ".h");
  } else if (paired.ends_with(".h")) {
    paired.replace(paired.size() - 2, 2, ".cc");
  } else {
    return "";
  }
  const FileModel* other = FindFile(paired);
  if (other == nullptr) return "";
  const auto it = other->value_types().find(ident);
  return it == other->value_types().end() ? "" : it->second;
}

}  // namespace noisybeeps::lint
