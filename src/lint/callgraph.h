// The repo-wide call graph nblint's whole-program rules run over.
//
// Nodes are FUNCTION DEFINITIONS as found by the structural model
// (model.h): one node per FunctionInfo with a body, in file order.  Edges
// are call sites extracted from those bodies, resolved best-effort to
// target nodes.  Resolution is honest about its confidence:
//
//   kExact        qualifier or receiver type pinned the target; an
//                 overload set yields every matching definition
//   kMethodUnion  an unqualified member call (`x.Frob()`) whose receiver
//                 type is unknown -- every class with a `Frob` is a
//                 target.  Sound for effect propagation, too blunt for
//                 layering, so the layering rule skips these edges.
//   kUnresolved   no definition in the repo matches (std::, libc, system
//                 headers).  The edge is kept -- `determinism-taint`
//                 classifies some unresolved callees (steady_clock::now,
//                 getenv) as direct effect origins in summary.cc.
//
// Free-call resolution prefers definitions in the calling file, then its
// paired header/source, then anywhere in the repo -- so two modules each
// defining a static helper `Hash` do not grow a phantom cross-module edge.
//
// Like the rest of nblint this is a heuristic, not a compiler: it must
// never crash, and it prefers an explicit kUnresolved edge over a guessed
// target.
#ifndef NOISYBEEPS_LINT_CALLGRAPH_H_
#define NOISYBEEPS_LINT_CALLGRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lint/model.h"

namespace noisybeeps::lint {

enum class CallKind {
  kFree,       // Frob(...)
  kQualified,  // Foo::Frob(...), std::chrono::steady_clock::now(...)
  kMember,     // x.Frob(...), p->Frob(...)
};

// One call site inside a function body, before resolution.  For kMember
// calls `receiver_type` is the receiver's declared type when the model
// knows it ("" otherwise) -- resolved at extraction time because it
// consults the paired header, which the incremental cache keys on.
struct RawCallSite {
  std::string callee;         // last name segment: "Frob", "now"
  std::string qualifier;      // "Foo", "std::chrono::steady_clock", ""
  std::string receiver_type;  // "Rng", "std::unordered_map", ""
  CallKind kind = CallKind::kFree;
  int line = 0;

  friend bool operator==(const RawCallSite& a, const RawCallSite& b) =
      default;
};

// All call sites in `fn`'s body (no-op for declarations).  `repo` supplies
// receiver typing via RepoModel::TypeOf.
[[nodiscard]] std::vector<RawCallSite> ExtractCallSites(
    const RepoModel& repo, const FileModel& file, const FunctionInfo& fn);

enum class Resolution { kExact, kMethodUnion, kUnresolved };

struct CallEdge {
  RawCallSite site;
  std::vector<std::size_t> targets;  // node indices; empty iff unresolved
  Resolution resolution = Resolution::kUnresolved;
};

// Everything the graph needs to know about one function definition.  The
// warm path reconstitutes these from build/nblint.cache instead of
// re-scanning bodies (cache.h).
struct NodeInput {
  std::string path;    // repo-relative file
  std::string module;  // "util" for src/util/..., "" outside src/
  std::string name;
  std::string class_name;
  std::string qualified_name;
  int line = 0;
  std::vector<RawCallSite> calls;
};

struct CallNode {
  std::string path;
  std::string module;
  std::string name;
  std::string class_name;
  std::string qualified_name;
  int line = 0;
  std::vector<CallEdge> edges;

  // "src/util/rng.cc:Rng::NextDouble" -- stable display identity.
  [[nodiscard]] std::string Display() const {
    return path + ":" + qualified_name;
  }
};

class CallGraph {
 public:
  // Resolves `inputs` (one per definition, file order) into a graph.
  [[nodiscard]] static CallGraph Build(std::vector<NodeInput> inputs);
  // Convenience: extract every definition in `repo` and build.
  [[nodiscard]] static CallGraph Build(const RepoModel& repo);

  [[nodiscard]] const std::vector<CallNode>& nodes() const { return nodes_; }

  // First node with this qualified name ("Rng::NextDouble" or a free
  // function's name), kNpos when absent.  Test/diagnostic convenience.
  [[nodiscard]] std::size_t FindNode(const std::string& qualified_name) const;

 private:
  std::vector<CallNode> nodes_;
};

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_CALLGRAPH_H_
