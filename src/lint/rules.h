// The nblint rule framework.
//
// Each rule is data plus one function over the RepoModel (model.h): a
// stable id, a severity (`error` fails the build, `warn` reports without
// failing), a category, a one-line summary (surfaced in SARIF), and a
// firing fixture -- a tiny synthetic file set on which the rule MUST
// produce at least one finding.  The fixture travels with the rule so the
// vacuity meta-test (tests/lint_test.cc) can mechanically prove no rule
// has silently become a no-op, which is exactly how PR 4's channel-hot-path
// regression slipped in under the regex engine.
//
// Two rule ids are implemented by the engine rather than a run function
// (run == nullptr): `suppression-justification` (an NBLINT suppression with
// an empty justification) and `suppression-unknown-rule` (a suppression
// naming a rule that does not exist).  See lint.h for suppression syntax.
#ifndef NOISYBEEPS_LINT_RULES_H_
#define NOISYBEEPS_LINT_RULES_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/model.h"

namespace noisybeeps::lint {

class ProgramAnalysis;  // summary.h -- the whole-program effect closure

enum class Severity { kError, kWarn };

// "error" / "warn".
[[nodiscard]] std::string_view SeverityName(Severity severity);

// One hop of a finding's witness path (a call chain or a CFG path).
// Rendered as indented continuation lines in text output and as a
// codeFlow/threadFlow in SARIF.
struct FlowStep {
  std::string file;
  int line = 0;
  std::string text;

  friend bool operator==(const FlowStep& a, const FlowStep& b) = default;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule_id;
  std::string message;
  Severity severity = Severity::kError;
  // Optional witness path, first step outermost.  Empty for most rules.
  std::vector<FlowStep> flow;

  friend bool operator==(const Finding& a, const Finding& b) = default;
};

struct Rule {
  std::string id;
  Severity severity = Severity::kError;
  std::string category;
  std::string summary;
  // Emits findings over the model; nullptr for engine-implemented and
  // whole-program rules.
  std::function<void(const RepoModel&, std::vector<Finding>&)> run;
  // Synthetic files on which this rule must fire (vacuity meta-test).
  std::vector<SourceFile> firing_fixture;
  // Longer-form why-this-exists, surfaced by `nblint --explain=<id>`.
  std::string rationale;
  // Emits findings over the whole-program analysis (taint.h); only set
  // for whole-program rules, which run when the engine is invoked with
  // LintOptions.whole_program (lint.h).
  std::function<void(const ProgramAnalysis&, std::vector<Finding>&)>
      run_program;
};

// The registry, in stable order (SARIF ruleIndex depends on it).
[[nodiscard]] const std::vector<Rule>& AllRules();

// nullptr when no rule has that id.
[[nodiscard]] const Rule* FindRule(std::string_view id);

// The declarative module-layer table: every src/ module with the exact
// set of sibling modules it may depend on.  The per-file `layering` rule
// checks direct #includes against it; `layering-reachability` (taint.h)
// checks resolved call edges against its transitive closure.
[[nodiscard]] const std::map<std::string, std::set<std::string>>&
LayerTable();

}  // namespace noisybeeps::lint

#endif  // NOISYBEEPS_LINT_RULES_H_
