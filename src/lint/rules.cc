#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <utility>

#include "lint/taint.h"

namespace noisybeeps::lint {
namespace {

bool IsSrcHeader(const FileModel& file) {
  return file.path().starts_with("src/") && file.is_header();
}

std::string ExpectedGuard(const std::string& path) {
  std::string guard = "NOISYBEEPS_";
  for (char c : path.substr(4, path.size() - 4 - 2)) {  // strip src/ and .h
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += "_H_";
  return guard;
}

const Token& Tok(const FileModel& file, std::size_t ci) {
  return file.tokens()[file.code()[ci]];
}

// The ::-qualified identifier chain ending at code index `ci`
// ("std" "::" "rand" -> parts {"std","rand"}), plus its start index.
struct IdentChain {
  std::vector<std::string> parts;
  std::size_t start_ci = 0;
};

IdentChain ChainEndingAt(const FileModel& file, std::size_t ci) {
  IdentChain chain;
  chain.parts.push_back(Tok(file, ci).text);
  chain.start_ci = ci;
  while (chain.start_ci >= 2 &&
         Tok(file, chain.start_ci - 1).text == "::" &&
         Tok(file, chain.start_ci - 2).kind == TokenKind::kIdentifier) {
    chain.start_ci -= 2;
    chain.parts.push_back(Tok(file, chain.start_ci).text);
  }
  std::reverse(chain.parts.begin(), chain.parts.end());
  return chain;
}

// True when `ci` is the last identifier of its qualification chain (the
// next token is not a '::' continuing it).
bool IsChainEnd(const FileModel& file, std::size_t ci) {
  return ci + 1 >= file.code().size() || Tok(file, ci + 1).text != "::";
}

// --- header-guard -----------------------------------------------------------

void CheckHeaderGuard(const RepoModel& repo, std::vector<Finding>& out) {
  for (const FileModel& file : repo.files()) {
    if (!IsSrcHeader(file)) continue;
    const std::string expected = ExpectedGuard(file.path());
    const std::vector<std::size_t>& code = file.code();
    bool found_ifndef = false;
    for (std::size_t ci = 0; ci + 2 < code.size(); ++ci) {
      const Token& hash = Tok(file, ci);
      if (hash.text != "#" || Tok(file, ci + 1).text != "ifndef" ||
          Tok(file, ci + 1).line != hash.line) {
        continue;
      }
      const Token& name = Tok(file, ci + 2);
      if (name.kind != TokenKind::kIdentifier || name.line != hash.line) {
        continue;
      }
      found_ifndef = true;
      if (name.text != expected) {
        out.push_back(
            {file.path(), name.line, "header-guard",
             "include guard '" + name.text + "' should be '" + expected +
                 "'"});
        break;
      }
      // The guard name matched; the very next directive must #define it.
      if (ci + 5 < code.size() && Tok(file, ci + 3).text == "#" &&
          Tok(file, ci + 4).text == "define" &&
          Tok(file, ci + 5).text == expected) {
        break;
      }
      if (ci + 3 < code.size()) {
        out.push_back({file.path(), Tok(file, ci + 3).line, "header-guard",
                       "#ifndef " + expected +
                           " must be followed by #define " + expected});
      }
      break;
    }
    if (!found_ifndef) {
      out.push_back({file.path(), 1, "header-guard",
                     "missing include guard (expected #ifndef " + expected +
                         ")"});
    }
  }
}

// --- banned-random ----------------------------------------------------------

void CheckBannedRandomness(const RepoModel& repo, std::vector<Finding>& out) {
  // requires_call: bare rand/srand are only banned as calls, so a local
  // variable named `rand` never false-positives.
  struct BannedToken {
    std::string_view token;
    bool requires_call;
  };
  static constexpr BannedToken kBanned[] = {
      {"std::rand", false},          {"std::srand", false},
      {"std::random_device", false}, {"std::mt19937", false},
      {"std::mt19937_64", false},    {"std::minstd_rand", false},
      {"std::default_random_engine", false},
      {"std::random_shuffle", false},
      {"rand", true},                {"srand", true},
      {"drand48", false},            {"lrand48", false},
  };
  for (const FileModel& file : repo.files()) {
    if (file.path() == "src/util/rng.cc") continue;
    for (const IncludeEdge& inc : file.includes()) {
      if (inc.system && inc.target == "random") {
        out.push_back({file.path(), inc.line, "banned-random",
                       "#include <random>: all randomness must flow "
                       "through util/rng.h (Rng is the reproducibility "
                       "boundary)"});
      }
    }
    const std::vector<std::size_t>& code = file.code();
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& t = Tok(file, ci);
      if (t.kind != TokenKind::kIdentifier || !IsChainEnd(file, ci)) continue;
      const IdentChain chain = ChainEndingAt(file, ci);
      // Any chain PREFIX may match: std::mt19937::min is still std::mt19937.
      std::string prefix;
      for (std::size_t p = 0; p < chain.parts.size(); ++p) {
        if (p > 0) prefix += "::";
        prefix += chain.parts[p];
        for (const BannedToken& banned : kBanned) {
          if (prefix != banned.token) continue;
          if (banned.requires_call &&
              (chain.parts.size() > 1 || ci + 1 >= code.size() ||
               Tok(file, ci + 1).text != "(")) {
            continue;
          }
          out.push_back(
              {file.path(), Tok(file, chain.start_ci).line, "banned-random",
               std::string(banned.token) +
                   " is banned outside src/util/rng.cc: use Rng (seeded, "
                   "splittable) so runs stay bit-reproducible"});
          p = chain.parts.size();  // one finding per chain
          break;
        }
      }
    }
  }
}

// --- raw-thread -------------------------------------------------------------

void CheckRawThreads(const RepoModel& repo, std::vector<Finding>& out) {
  static constexpr std::string_view kBanned[] = {
      "std::thread", "std::jthread", "std::async", "pthread_create"};
  for (const FileModel& file : repo.files()) {
    if (file.path() == "src/util/parallel.h") continue;
    const std::vector<std::size_t>& code = file.code();
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& t = Tok(file, ci);
      if (t.kind != TokenKind::kIdentifier || !IsChainEnd(file, ci)) continue;
      const IdentChain chain = ChainEndingAt(file, ci);
      std::string qualified;
      for (std::size_t p = 0; p < chain.parts.size(); ++p) {
        if (p > 0) qualified += "::";
        qualified += chain.parts[p];
      }
      // Only the FULL chain counts: std::thread::hardware_concurrency is a
      // static query, not a spawn, so a longer chain is exempt.
      for (std::string_view banned : kBanned) {
        if (qualified != banned) continue;
        out.push_back(
            {file.path(), Tok(file, chain.start_ci).line, "raw-thread",
             std::string(banned) +
                 " is banned outside src/util/parallel.h: spawn workers via "
                 "ParallelTrials so determinism is preserved by "
                 "construction"});
        break;
      }
    }
  }
}

// --- include-cycle ----------------------------------------------------------

void CheckIncludeCycles(const RepoModel& repo, std::vector<Finding>& out) {
  // Iterative-enough DFS with three colours; a grey->grey edge closes a
  // cycle, reported at the witnessing #include.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  auto dfs = [&](auto&& self, const std::string& node) -> void {
    colour[node] = 1;
    stack.push_back(node);
    const auto it = repo.edges().find(node);
    if (it != repo.edges().end()) {
      for (const auto& [to, witness] : it->second) {
        if (colour[to] == 1) {
          std::string path;
          auto s = std::find(stack.begin(), stack.end(), to);
          for (; s != stack.end(); ++s) path += *s + " -> ";
          path += to;
          out.push_back({witness.file, witness.line, "include-cycle",
                         "module include cycle: " + path});
        } else if (colour[to] == 0) {
          self(self, to);
        }
      }
    }
    stack.pop_back();
    colour[node] = 2;
  };
  for (const std::string& module : repo.modules()) {
    if (colour[module] == 0) dfs(dfs, module);
  }
}

// --- layering ---------------------------------------------------------------

}  // namespace

// The declarative module-layer table: every src/ module appears here with
// the exact set of sibling modules it may include.  Adding a module or a
// dependency means editing this table -- which is the point: the layering
// of the simulator is a reviewed decision, not an accident of #includes.
// Declared in rules.h so layering-reachability (taint.cc) can close it
// transitively.
const std::map<std::string, std::set<std::string>>& LayerTable() {
  static const std::map<std::string, std::set<std::string>> kTable = {
      {"util", {}},
      {"lint", {"util"}},
      {"ecc", {"util"}},
      {"channel", {"util"}},
      {"protocol", {"channel", "util"}},
      {"tasks", {"protocol", "util"}},
      {"fault", {"channel", "protocol", "util"}},
      {"coding", {"channel", "ecc", "fault", "protocol", "util"}},
      {"analysis", {"protocol", "tasks", "util"}},
      {"failpoint", {"util"}},
      {"resilience", {"failpoint", "util"}},
      {"service",
       {"channel", "coding", "failpoint", "fault", "protocol", "resilience",
        "tasks", "util"}},
  };
  return kTable;
}

namespace {

void CheckLayering(const RepoModel& repo, std::vector<Finding>& out) {
  // Restricted modules stay leaves: their headers may be included from
  // inside src/ only where the layer table says so, and from outside src/
  // only by the listed directories.  The core must never grow a dependency
  // on its own failure model.
  static const std::set<std::string> kRestricted = {"fault"};
  static const std::set<std::string> kRestrictedImporterDirs = {
      "bench/", "tools/", "tests/"};
  for (const FileModel& file : repo.files()) {
    const std::string& from = file.module();
    const auto layer = LayerTable().find(from);
    if (!from.empty() && layer == LayerTable().end()) {
      out.push_back(
          {file.path(), 1, "layering",
           "module src/" + from +
               "/ is not in the nblint layer table; add it with an "
               "explicit allowed-dependency list (src/lint/rules.cc)"});
      continue;
    }
    for (const IncludeEdge& inc : file.includes()) {
      if (inc.system || inc.module.empty() || inc.module == from) continue;
      if (!from.empty()) {
        if (layer->second.count(inc.module) > 0) continue;
        std::string allowed;
        for (const std::string& dep : layer->second) {
          if (!allowed.empty()) allowed += ", ";
          allowed += dep + "/";
        }
        if (allowed.empty()) allowed = "no other module";
        out.push_back({file.path(), inc.line, "layering",
                       "layer table forbids src/" + from + "/ including \"" +
                           inc.module + "/...\" (allowed: " + allowed + ")"});
        continue;
      }
      if (kRestricted.count(inc.module) == 0) continue;
      bool allowed_dir = false;
      for (const std::string& dir : kRestrictedImporterDirs) {
        if (file.path().starts_with(dir)) allowed_dir = true;
      }
      if (allowed_dir) continue;
      out.push_back(
          {file.path(), inc.line, "layering",
           "only src/fault/, src/coding/, bench/, tools/, and tests may "
           "include \"fault/...\" headers; the core must not depend on "
           "the fault layer"});
    }
  }
}

// --- require-precondition ---------------------------------------------------

// Declarator tokens that may sit between a Precondition comment and the
// function name it documents: specifiers, attributes, and the return type.
// Anything else (a member variable's '=' or ';', a brace) means the comment
// does not belong to the next recorded function.
bool IsDeclPrefixToken(const Token& t) {
  if (t.kind == TokenKind::kIdentifier) return true;
  static const std::set<std::string> kAllowed = {"::", "<",  ">", ">>", "&",
                                                 "&&", "*",  "[", "]",  ",",
                                                 "~"};
  return kAllowed.count(t.text) > 0;
}

bool BodyCallsRequire(const FileModel& file, const FunctionInfo& fn) {
  if (!fn.is_definition) return false;
  for (std::size_t i = fn.body_begin; i <= fn.body_end &&
                                      i < file.tokens().size();
       ++i) {
    const Token& t = file.tokens()[i];
    if (t.kind == TokenKind::kIdentifier && t.text == "NB_REQUIRE") {
      return true;
    }
  }
  return false;
}

void CheckRequireCoverage(const RepoModel& repo, std::vector<Finding>& out) {
  for (const FileModel& file : repo.files()) {
    if (!IsSrcHeader(file)) continue;
    for (const Token& comment : file.tokens()) {
      if (comment.kind != TokenKind::kComment ||
          comment.text.find("Precondition") == std::string::npos) {
        continue;
      }
      // The first code token after the comment starts the documented
      // declaration; find the function whose name token follows it.
      std::size_t first_code = kNpos;
      for (std::size_t ci = 0; ci < file.code().size(); ++ci) {
        if (Tok(file, ci).offset > comment.offset) {
          first_code = ci;
          break;
        }
      }
      if (first_code == kNpos) continue;
      const FunctionInfo* decl = nullptr;
      for (const FunctionInfo& fn : file.functions()) {
        if (file.tokens()[fn.name_token].offset >=
            Tok(file, first_code).offset) {
          decl = &fn;
          break;
        }
      }
      if (decl == nullptr) continue;
      bool attached = true;
      for (std::size_t ci = first_code; ci < file.code().size() &&
                                        file.code()[ci] < decl->name_token;
           ++ci) {
        if (!IsDeclPrefixToken(Tok(file, ci))) {
          attached = false;
          break;
        }
      }
      if (!attached) continue;
      const bool is_ctor =
          !decl->class_name.empty() && decl->name == decl->class_name;
      const bool is_factory = decl->name.starts_with("Make") ||
                              decl->name.starts_with("Sample");
      if (!is_ctor && !is_factory) continue;
      // Definitions live in the paired .cc or in the header itself.
      std::string cc_path = file.path();
      cc_path.replace(cc_path.size() - 2, 2, ".cc");
      bool found = false;
      bool has_require = false;
      for (const FileModel* candidate :
           {repo.FindFile(cc_path), &file}) {
        if (candidate == nullptr) continue;
        for (const FunctionInfo& fn : candidate->functions()) {
          if (!fn.is_definition || fn.name != decl->name) continue;
          if (is_ctor && fn.class_name != decl->name) continue;
          found = true;
          has_require = has_require || BodyCallsRequire(*candidate, fn);
        }
      }
      if (found && !has_require) {
        out.push_back(
            {file.path(), comment.line, "require-precondition",
             decl->name + " documents a Precondition but its definition "
                          "never calls NB_REQUIRE"});
      }
    }
  }
}

// --- checkpoint-atomicity ---------------------------------------------------

void CheckCheckpointAtomicity(const RepoModel& repo,
                              std::vector<Finding>& out) {
  // tests/ are exempt (the negative tests write deliberately corrupt
  // checkpoints), src/resilience/ owns the sanctioned writer, and
  // src/lint/ names the banned pattern in its own diagnostics.
  for (const FileModel& file : repo.files()) {
    if (file.path().starts_with("src/resilience/") ||
        file.path().starts_with("src/lint/") ||
        file.path().starts_with("tests/")) {
      continue;
    }
    const std::vector<std::size_t>& code = file.code();
    for (std::size_t ci = 2; ci < code.size(); ++ci) {
      if (Tok(file, ci).text != "ofstream" ||
          Tok(file, ci - 1).text != "::" ||
          Tok(file, ci - 2).text != "std") {
        continue;
      }
      const int line = Tok(file, ci - 2).line;
      if (!file.LineMentions(line, "checkpoint") &&
          !file.LineMentions(line, "ckpt")) {
        continue;
      }
      out.push_back(
          {file.path(), line, "checkpoint-atomicity",
           "direct std::ofstream write of a checkpoint path: use "
           "WriteCheckpointAtomic (src/resilience/checkpoint.h) so an "
           "interrupted write can never leave a torn checkpoint"});
    }
  }
}

// --- channel-hot-path -------------------------------------------------------

void CheckChannelHotPath(const RepoModel& repo, std::vector<Finding>& out) {
  // Channel::Deliver is the Monte Carlo inner loop: one call per noisy
  // round, one coin flip per listener.  Per-sample rng.Bernoulli(p) /
  // UniformDouble() < p re-derives the fixed-point threshold on every
  // draw; channels must precompute a BernoulliSampler member instead,
  // which is bit-identical (see util/rng.h) and one integer compare.
  for (const FileModel& file : repo.files()) {
    if (!file.path().starts_with("src/channel/")) continue;
    for (const FunctionInfo& fn : file.functions()) {
      if (fn.name != "Deliver" || !fn.is_definition) continue;
      const std::vector<std::size_t>& code = file.code();
      for (std::size_t ci = 0; ci < code.size(); ++ci) {
        if (file.code()[ci] <= fn.body_begin) continue;
        if (file.code()[ci] >= fn.body_end) break;
        const Token& t = Tok(file, ci);
        if (t.kind != TokenKind::kIdentifier ||
            (t.text != "UniformDouble" && t.text != "Bernoulli")) {
          continue;
        }
        if (ci > 0 && Tok(file, ci - 1).text == "::") continue;
        out.push_back(
            {file.path(), t.line, "channel-hot-path",
             t.text +
                 " inside a Deliver implementation: precompute a "
                 "BernoulliSampler member (util/rng.h) -- bit-identical "
                 "stream, one integer compare per draw"});
      }
    }
  }
}

// --- word-path-batched-sampling ---------------------------------------------

void CheckWordPathBatchedSampling(const RepoModel& repo,
                                  std::vector<Finding>& out) {
  // DeliverWords is the word-parallel round hot path: one call covers 64
  // listeners per word.  A per-bit rng.Bernoulli(p) / UniformDouble() < p
  // inside it defeats the batching the path exists for; draws must go
  // through the precomputed samplers (BernoulliSampler for the
  // stream-compat replay, BernoulliWordSampler / GeometricSkipSampler for
  // the batched fast mode -- all in util/rng.h).
  for (const FileModel& file : repo.files()) {
    if (!file.path().starts_with("src/channel/")) continue;
    for (const FunctionInfo& fn : file.functions()) {
      if (fn.name != "DeliverWords" || !fn.is_definition) continue;
      const std::vector<std::size_t>& code = file.code();
      for (std::size_t ci = 0; ci < code.size(); ++ci) {
        if (file.code()[ci] <= fn.body_begin) continue;
        if (file.code()[ci] >= fn.body_end) break;
        const Token& t = Tok(file, ci);
        if (t.kind != TokenKind::kIdentifier ||
            (t.text != "UniformDouble" && t.text != "Bernoulli")) {
          continue;
        }
        if (ci > 0 && Tok(file, ci - 1).text == "::") continue;
        out.push_back(
            {file.path(), t.line, "word-path-batched-sampling",
             t.text +
                 " inside a DeliverWords implementation: the word path "
                 "must batch its noise draws through BernoulliSampler / "
                 "BernoulliWordSampler / GeometricSkipSampler (util/rng.h) "
                 "instead of drawing per bit"});
      }
    }
  }
}

// --- rng-stream-discipline --------------------------------------------------

void CheckRngStreamDiscipline(const RepoModel& repo,
                              std::vector<Finding>& out) {
  // An Rng is a position in one deterministic stream.  Copying it forks the
  // stream: two consumers silently draw identical values, which is exactly
  // the aliasing bug seeded-reproducibility exists to prevent.  Split() is
  // the sanctioned way to derive an independent child.  tests/ are exempt
  // (stream-identity tests copy deliberately), as is util/rng itself.
  for (const FileModel& file : repo.files()) {
    if (file.path() == "src/util/rng.h" || file.path() == "src/util/rng.cc" ||
        file.path().starts_with("tests/")) {
      continue;
    }
    const std::vector<std::size_t>& code = file.code();
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& t = Tok(file, ci);
      if (t.kind != TokenKind::kIdentifier || t.text != "Rng") continue;
      if (ci > 0 && Tok(file, ci - 1).text == "::") continue;
      // By-value parameter: (Rng x / , Rng x / , const Rng x, with no & or *.
      std::size_t before = ci;
      if (before > 0 && Tok(file, before - 1).text == "const") --before;
      const bool param_context =
          before > 0 && (Tok(file, before - 1).text == "(" ||
                         Tok(file, before - 1).text == ",");
      if (param_context && ci + 1 < code.size()) {
        const Token& next = Tok(file, ci + 1);
        const bool by_ref = next.text == "&" || next.text == "&&" ||
                            next.text == "*";
        const bool ends_param = next.kind == TokenKind::kIdentifier ||
                                next.text == "," || next.text == ")";
        if (!by_ref && ends_param) {
          out.push_back(
              {file.path(), t.line, "rng-stream-discipline",
               "Rng parameter passed by value: the copy forks the "
               "deterministic stream and both sides draw identical values; "
               "pass Rng& (or hand the callee rng.Split())"});
          continue;
        }
      }
      // Copy-initialisation from another Rng: Rng a = b; / Rng a{b};
      if (ci + 4 < code.size() &&
          Tok(file, ci + 1).kind == TokenKind::kIdentifier) {
        const std::string& open = Tok(file, ci + 2).text;
        const std::string& close = Tok(file, ci + 4).text;
        const Token& source = Tok(file, ci + 3);
        const bool copy_form = (open == "=" && close == ";") ||
                               (open == "{" && close == "}");
        if (copy_form && source.kind == TokenKind::kIdentifier &&
            repo.TypeOf(file, source.text) == "Rng") {
          out.push_back(
              {file.path(), t.line, "rng-stream-discipline",
               "copying an Rng forks its stream: derive an independent "
               "child with " +
                   source.text + ".Split() instead of copy-construction"});
        }
      }
    }
  }
}

// --- float-equality ---------------------------------------------------------

bool IsFloatTyped(const RepoModel& repo, const FileModel& file,
                  const Token& t) {
  if (IsFloatLiteral(t)) return true;
  if (t.kind != TokenKind::kIdentifier) return false;
  const std::string type = repo.TypeOf(file, t.text);
  return type == "double" || type == "float";
}

void CheckFloatEquality(const RepoModel& repo, std::vector<Finding>& out) {
  // The analysis and ECC layers compute with rounded doubles (empirical
  // rates, thresholds, code rates); exact ==/!= there is either dead
  // (never true) or a latent tolerance bug.
  for (const FileModel& file : repo.files()) {
    if (!file.path().starts_with("src/analysis/") &&
        !file.path().starts_with("src/ecc/")) {
      continue;
    }
    const std::vector<std::size_t>& code = file.code();
    for (std::size_t ci = 1; ci + 1 < code.size(); ++ci) {
      const Token& op = Tok(file, ci);
      if (op.text != "==" && op.text != "!=") continue;
      const Token& lhs = Tok(file, ci - 1);
      std::size_t ri = ci + 1;
      if ((Tok(file, ri).text == "-" || Tok(file, ri).text == "+") &&
          ri + 1 < code.size()) {
        ++ri;
      }
      const Token& rhs = Tok(file, ri);
      if (!IsFloatTyped(repo, file, lhs) && !IsFloatTyped(repo, file, rhs)) {
        continue;
      }
      out.push_back(
          {file.path(), op.line, "float-equality",
           "floating-point values compared with " + op.text +
               ": rounding makes exact equality meaningless here; compare "
               "|a - b| against an explicit tolerance"});
    }
  }
}

// --- locale-formatting ------------------------------------------------------

// True when `fmt` contains a printf floating-point conversion (%f %e %g %a
// and friends), i.e. output whose decimal point follows the global locale.
bool HasFloatConversion(const std::string& fmt) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < fmt.size() && fmt[j] == '%') {
      i = j;
      continue;
    }
    while (j < fmt.size() &&
           (std::strchr("-+ #0123456789.*'", fmt[j]) != nullptr)) {
      ++j;
    }
    while (j < fmt.size() && std::strchr("hlLqjzt", fmt[j]) != nullptr) ++j;
    if (j < fmt.size() && std::strchr("fFeEgGaA", fmt[j]) != nullptr) {
      return true;
    }
  }
  return false;
}

void CheckLocaleFormatting(const RepoModel& repo, std::vector<Finding>& out) {
  // Config fingerprints, channel name() strings, and CSV cells must not
  // change spelling with the host locale ("0.5" vs "0,5" breaks checkpoint
  // compatibility and downstream parsing).  FormatDouble (util/format.h)
  // is the canonical, locale-free, round-trippable spelling; this rule
  // flags the locale-dependent paths a double can leak through instead:
  // operator<< into a declared ostream/ostringstream, std::to_string, and
  // printf-family %f/%g.
  static constexpr std::string_view kPrintf[] = {"printf", "fprintf",
                                                 "sprintf", "snprintf"};
  for (const FileModel& file : repo.files()) {
    const bool in_scope = (file.path().starts_with("src/") ||
                           file.path().starts_with("tools/")) &&
                          !file.path().starts_with("src/util/format");
    if (!in_scope) continue;
    const std::vector<std::size_t>& code = file.code();
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const Token& t = Tok(file, ci);
      if (t.kind != TokenKind::kIdentifier) continue;

      // ostream << chains rooted at a declared stream variable.
      const std::string root_type = repo.TypeOf(file, t.text);
      if ((root_type == "std::ostringstream" || root_type == "std::ostream") &&
          ci + 1 < code.size() && Tok(file, ci + 1).text == "<<") {
        std::size_t pos = ci + 1;
        while (pos < code.size() && Tok(file, pos).text == "<<") {
          const std::size_t span_begin = pos + 1;
          int depth = 0;
          bool has_call = false;
          std::size_t last_value = kNpos;
          std::size_t k = span_begin;
          for (; k < code.size(); ++k) {
            const std::string& x = Tok(file, k).text;
            if (x == "(") {
              ++depth;
              has_call = true;  // conservatively treat calls as formatted
              continue;
            }
            if (x == ")") {
              if (depth == 0) break;
              --depth;
              continue;
            }
            if (depth > 0) continue;
            if (x == "<<" || x == ";") break;
            if (Tok(file, k).kind == TokenKind::kIdentifier ||
                Tok(file, k).kind == TokenKind::kNumber) {
              last_value = k;
            }
          }
          if (k >= code.size()) break;
          if (!has_call && last_value != kNpos &&
              IsFloatTyped(repo, file, Tok(file, last_value))) {
            out.push_back(
                {file.path(), Tok(file, span_begin).line, "locale-formatting",
                 "streaming a double through operator<< spells the decimal "
                 "point per the global locale; stream "
                 "FormatDouble(value) (util/format.h) instead"});
          }
          if (Tok(file, k).text != "<<") break;
          pos = k;
        }
        continue;
      }

      // std::to_string(double).
      if (t.text == "to_string" && ci >= 2 &&
          Tok(file, ci - 1).text == "::" && Tok(file, ci - 2).text == "std" &&
          ci + 1 < code.size() && Tok(file, ci + 1).text == "(") {
        int depth = 0;
        bool has_call = false;
        std::size_t last_value = kNpos;
        for (std::size_t k = ci + 1; k < code.size(); ++k) {
          const std::string& x = Tok(file, k).text;
          if (x == "(") {
            if (depth > 0) has_call = true;
            ++depth;
            continue;
          }
          if (x == ")" && --depth == 0) break;
          if (depth != 1) continue;
          if (Tok(file, k).kind == TokenKind::kIdentifier ||
              Tok(file, k).kind == TokenKind::kNumber) {
            last_value = k;
          }
        }
        if (!has_call && last_value != kNpos &&
            IsFloatTyped(repo, file, Tok(file, last_value))) {
          out.push_back(
              {file.path(), Tok(file, ci - 2).line, "locale-formatting",
               "std::to_string of a double spells the decimal point per "
               "the global locale; use FormatDouble (util/format.h)"});
        }
        continue;
      }

      // printf-family with a %f/%e/%g/%a conversion -- src/ only: a tool
      // main that never calls setlocale() is guaranteed the "C" locale by
      // the C standard, but library code may run under any host locale.
      if (!file.path().starts_with("src/")) continue;
      for (std::string_view fn : kPrintf) {
        if (t.text != fn) continue;
        if (ci > 0 && Tok(file, ci - 1).text == "::" &&
            (ci < 2 || Tok(file, ci - 2).text != "std")) {
          break;  // some other namespace's printf
        }
        if (ci + 1 >= code.size() || Tok(file, ci + 1).text != "(") break;
        int depth = 0;
        for (std::size_t k = ci + 1; k < code.size(); ++k) {
          const std::string& x = Tok(file, k).text;
          if (x == "(") ++depth;
          if (x == ")" && --depth == 0) break;
          const Token& arg = Tok(file, k);
          if (arg.kind != TokenKind::kString) continue;
          if (HasFloatConversion(StringLiteralText(arg))) {
            out.push_back(
                {file.path(), t.line, "locale-formatting",
                 "printf-style %f/%g formatting of a double spells the "
                 "decimal point per the global locale; format the value "
                 "with FormatDouble (util/format.h) and print the string"});
          }
          break;  // only the format string matters
        }
        break;
      }
    }
  }
}

// --- the registry -----------------------------------------------------------

SourceFile F(std::string path, std::string content) {
  return SourceFile{std::move(path), std::move(content)};
}

std::vector<Rule> BuildRegistry() {
  std::vector<Rule> rules;
  rules.push_back(Rule{
      "banned-random", Severity::kError, "determinism",
      "All randomness must flow through the seeded, splittable Rng in "
      "util/rng.h; <random>, rand(), and friends are banned elsewhere.",
      CheckBannedRandomness,
      {F("src/analysis/fixture.cc", "int Draw() { return std::rand(); }\n")},
      "The paper's guarantees are statements about distributions over "
      "transcripts, so every trial must replay bit-identically from its "
      "seed.  A stray rand() or thread-local <random> engine breaks "
      "replay silently; funnelling every draw through Rng keeps the "
      "whole experiment a pure function of the seed."});
  rules.push_back(Rule{
      "channel-hot-path", Severity::kError, "performance",
      "Channel Deliver bodies must draw through a precomputed "
      "BernoulliSampler, not per-sample UniformDouble()/Bernoulli().",
      CheckChannelHotPath,
      {F("src/channel/fixture.cc",
         "struct Chan {\n"
         "  bool Deliver(double p) { return rng_.Bernoulli(p); }\n"
         "};\n")},
      "Deliver runs once per slot per trial -- billions of times in a "
      "sweep.  PR 4 moved it to stream-identical fixed-point sampling; "
      "this rule keeps per-sample floating-point draws from creeping "
      "back into the hot path."});
  rules.push_back(Rule{
      "checkpoint-atomicity", Severity::kError, "robustness",
      "Checkpoint files must be written via WriteCheckpointAtomic "
      "(temp file + rename), never a direct std::ofstream.",
      CheckCheckpointAtomicity,
      {F("src/tasks/fixture.cc",
         "#include <fstream>\n"
         "void Save() { std::ofstream out(\"trial.ckpt\"); }\n")},
      "A checkpoint torn by a crash mid-write is worse than none: "
      "resume would replay from corrupt state.  Temp-file-plus-rename "
      "makes the visible file transition atomic on POSIX."});
  rules.push_back(Rule{
      "determinism-taint", Severity::kWarn, "determinism",
      "Whole-program: no call path from a determinism-critical sink "
      "(checkpoint payloads, fingerprints, transcripts, digests, seed "
      "derivation) may reach a nondeterminism source (raw wall clock, "
      "getenv, unordered-container iteration, pointer-to-integer casts); "
      "raw clocks are confined to src/resilience/clock.",
      nullptr,
      {F("src/analysis/fixture.cc",
         "#include <chrono>\n"
         "namespace noisybeeps {\n"
         "long StampNow() {\n"
         "  return "
         "std::chrono::steady_clock::now().time_since_epoch().count();\n"
         "}\n"
         "long ReportFingerprint() { return StampNow(); }\n"
         "}  // namespace noisybeeps\n")},
      "Replay guarantees (bit-identical trials across worker counts, "
      "bit-identical kill-and-resume) hold only if checkpoint payloads, "
      "RunReport fingerprints, golden transcripts, and derived seeds are "
      "functions of the seeded Rng alone.  Per-file rules cannot see a "
      "helper three calls down reading the clock; the call-graph closure "
      "can, and the diagnostic carries the full witness path.  Rng draws "
      "and the injectable Clock are sanctioned boundaries, not sources.",
      CheckDeterminismTaint});
  rules.push_back(Rule{
      "float-equality", Severity::kWarn, "numerics",
      "No ==/!= between floating-point expressions in src/analysis/ and "
      "src/ecc/; compare against an explicit tolerance.",
      CheckFloatEquality,
      {F("src/analysis/fixture.cc",
         "bool Same(double a, double b) { return a == b; }\n")},
      "Estimator and bound computations accumulate rounding error; exact "
      "comparison turns harmless last-ulp drift into logic divergence.  "
      "An explicit tolerance documents the intended precision."});
  rules.push_back(Rule{
      "header-guard", Severity::kError, "style",
      "src/ headers carry NOISYBEEPS_<PATH>_H_ include guards.",
      CheckHeaderGuard,
      {F("src/util/fixture.h",
         "#ifndef WRONG_GUARD\n#define WRONG_GUARD\n#endif\n")},
      "Path-derived guards cannot collide as files move or multiply, and "
      "uniformity makes the guard mechanical to audit."});
  rules.push_back(Rule{
      "include-cycle", Severity::kError, "architecture",
      "The src/ module include graph must stay acyclic.",
      CheckIncludeCycles,
      {F("src/ecc/fixture.h", "#include \"channel/fixture.h\"\n"),
       F("src/channel/fixture.h", "#include \"ecc/fixture.h\"\n")},
      "A cycle between modules means neither can be understood, tested, "
      "or replaced alone.  Acyclicity is what makes the layer table "
      "meaningful."});
  rules.push_back(Rule{
      "int-narrowing-at-boundary", Severity::kWarn, "correctness",
      "Whole-program: implicit int64 -> int32 narrowing at assignment, "
      "return, and call boundaries (judged against the resolved callee's "
      "declared parameter width) must be dominated by an NB_REQUIRE range "
      "guard naming the value.",
      nullptr,
      {F("src/analysis/fixture.cc",
         "#include <cstdint>\n"
         "namespace noisybeeps {\n"
         "std::int32_t ClipCount(std::int64_t total) {\n"
         "  std::int32_t small = 0;\n"
         "  small = total;\n"
         "  return small;\n"
         "}\n"
         "}  // namespace noisybeeps\n")},
      "Trial counts and payload sizes are 64-bit at the boundaries, but "
      "older call sites still traffic in int.  An implicit truncation is "
      "silent until a sweep crosses 2^31 trials and statistics quietly "
      "wrap.  The CFG-level check accepts a dominating NB_REQUIRE that "
      "names the value -- the repo's idiom for 'this range was thought "
      "about' -- and otherwise asks for an explicit checked cast.",
      CheckIntNarrowing});
  rules.push_back(Rule{
      "io-seam-discipline", Severity::kWarn, "robustness",
      "Whole-program: no raw filesystem access (fstream construction, "
      "fopen/fsync/rename, std::filesystem calls) in src/ or bench/ "
      "outside the injectable failpoint::Fs seam in src/failpoint/fs.*.",
      nullptr,
      {F("src/analysis/fixture.cc",
         "#include <fstream>\n"
         "namespace noisybeeps {\n"
         "void SaveStats() { std::ofstream out(\"stats.txt\"); }\n"
         "}  // namespace noisybeeps\n")},
      "The resilience layer's crash-consistency promises are only "
      "testable because every byte it moves goes through the Fs seam, "
      "where a deterministic FailPlan can make the disk fill, tear, or "
      "rot on demand.  A raw fstream or rename elsewhere in src/ is I/O "
      "the chaos layer can never fault -- an untested failure path by "
      "construction.  The seam itself is the third sanctioned hole in "
      "the effect closure, beside locks and wall-clock.  bench/ is in "
      "scope too (a benchmark that writes files skews what it measures); "
      "tools/ stay exempt because reading trees and writing reports is "
      "their whole job.",
      CheckIoSeamDiscipline});
  rules.push_back(Rule{
      "layering", Severity::kError, "architecture",
      "Every src/ module's dependencies must match the declarative layer "
      "table; restricted modules (fault/) are importable only where "
      "listed.",
      CheckLayering,
      {F("src/protocol/fixture.cc", "#include \"fault/fault_plan.h\"\n")},
      "The simulator's layering is a reviewed decision, not an accident "
      "of #includes: adding a dependency means editing the table in "
      "src/lint/rules.cc where the change is visible in review."});
  rules.push_back(Rule{
      "layering-reachability", Severity::kWarn, "architecture",
      "Whole-program: every resolved cross-module call edge must stay "
      "within the transitive closure of the layer table, catching "
      "dependencies no direct #include witnesses.",
      nullptr,
      {F("src/util/fixture.cc",
         "namespace noisybeeps {\n"
         "int TaskCount();\n"
         "int UtilThing() { return TaskCount(); }\n"
         "}  // namespace noisybeeps\n"),
       F("src/tasks/fixture.cc",
         "namespace noisybeeps {\n"
         "int TaskCount() { return 3; }\n"
         "}  // namespace noisybeeps\n")},
      "A module can reach another through a forward declaration or a "
      "same-module header that re-exports the symbol -- no #include "
      "edge, so the per-file layering rule is blind to it.  Checking "
      "resolved call edges against the closed layer table catches the "
      "dependency where it actually flows.  Method-union edges are "
      "skipped: a guessed receiver class must not invent an "
      "architecture violation.",
      CheckLayeringReachability});
  rules.push_back(Rule{
      "locale-formatting", Severity::kError, "portability",
      "Doubles in name()/fingerprint/CSV paths must be formatted with "
      "FormatDouble (util/format.h), not locale-dependent <<, "
      "std::to_string, or printf %f/%g.",
      CheckLocaleFormatting,
      {F("src/analysis/fixture.cc",
         "#include <sstream>\n"
         "std::string Name(double eps) {\n"
         "  std::ostringstream os;\n"
         "  os << eps;\n"
         "  return os.str();\n"
         "}\n")},
      "A German locale renders 0.1 as \"0,1\": experiment names, CSV "
      "rows, and fingerprints silently change meaning on another "
      "machine.  FormatDouble pins the 'C' locale and round-trips."});
  rules.push_back(Rule{
      "lockset-discipline", Severity::kWarn, "concurrency",
      "Whole-program: functions reachable from ParallelForEach / "
      "ParallelTrials worker bodies must hold a lock on EVERY CFG path "
      "that reaches a write of namespace-scope or static state; use the "
      "per-worker accumulator + Merge pattern.",
      nullptr,
      {F("src/analysis/fixture.cc",
         "namespace noisybeeps {\n"
         "int g_hits = 0;\n"
         "void Bump() { g_hits += 1; }\n"
         "void Sweep() {\n"
         "  ParallelForEach(8, [](int i) { Bump(); });\n"
         "}\n"
         "}  // namespace noisybeeps\n")},
      "A data race in a worker body is both undefined behaviour and a "
      "determinism leak: results depend on interleaving.  The repo's "
      "pattern -- each worker fills its own accumulator, the caller "
      "Merges sequentially -- makes races structurally impossible.  The "
      "flow-sensitive successor of v3's shared-state-discipline: a "
      "must-lockset analysis walks each reachable function's CFG, so a "
      "helper that guards the write on every path (RAII guard in scope, "
      "manual lock()/unlock()) is clean, while an early-return path that "
      "skips the guard is caught -- v3 could see neither.",
      CheckLocksetDiscipline});
  rules.push_back(Rule{
      "raw-thread", Severity::kError, "determinism",
      "No std::thread/std::jthread/std::async/pthread_create outside "
      "src/util/parallel.h; ParallelTrials is the concurrency primitive.",
      CheckRawThreads,
      {F("src/tasks/fixture.cc",
         "#include <thread>\nvoid Go() { std::thread t; }\n")},
      "ParallelTrials guarantees the worker count cannot affect results "
      "by deriving per-trial Rngs up front.  Ad-hoc threads re-open "
      "every scheduling-dependent nondeterminism the primitive closed."});
  rules.push_back(Rule{
      "require-precondition", Severity::kError, "contracts",
      "A constructor or Make*/Sample* factory documenting a Precondition "
      "must call NB_REQUIRE in its definition.",
      CheckRequireCoverage,
      {F("src/util/fixture.h",
         "#ifndef NOISYBEEPS_UTIL_FIXTURE_H_\n"
         "#define NOISYBEEPS_UTIL_FIXTURE_H_\n"
         "struct Widget { int n = 0; };\n"
         "// Precondition: n > 0.\n"
         "Widget MakeWidget(int n);\n"
         "#endif  // NOISYBEEPS_UTIL_FIXTURE_H_\n"),
       F("src/util/fixture.cc",
         "#include \"util/fixture.h\"\n"
         "Widget MakeWidget(int n) { return Widget{n}; }\n")},
      "A documented precondition that is not checked is a trap for the "
      "next caller: violations surface as corrupt statistics long after "
      "the bad argument.  NB_REQUIRE turns them into immediate, "
      "attributable failures."});
  rules.push_back(Rule{
      "rng-draw-parity", Severity::kError, "determinism",
      "Whole-program: in src/channel/, the arms of a WordMode-conditioned "
      "branch must consume identical numbers of Rng draws on every CFG "
      "path, or the stream-compat and fast modes diverge after one round.",
      nullptr,
      {F("src/channel/fixture.cc",
         "#include \"util/rng.h\"\n"
         "namespace noisybeeps {\n"
         "enum class WordMode { kStreamCompat, kFast };\n"
         "struct WordChan {\n"
         "  WordMode mode_ = WordMode::kFast;\n"
         "  Rng rng_;\n"
         "  unsigned Step() {\n"
         "    if (mode_ == WordMode::kStreamCompat) {\n"
         "      unsigned a = rng_.NextU64() & 1u;\n"
         "      unsigned b = rng_.NextU64() & 1u;\n"
         "      return a ^ b;\n"
         "    }\n"
         "    return rng_.NextU64() & 3u;\n"
         "  }\n"
         "};\n"
         "}  // namespace noisybeeps\n")},
      "The word-parallel channel keeps two sampling modes that must stay "
      "stream-compatible: kStreamCompat replays the scalar draw sequence, "
      "kFast batches it.  Equality of per-round RESULTS is tested, but if "
      "the two arms consume different numbers of draws the modes diverge "
      "from the second round on, and every cross-mode replay comparison "
      "silently lies -- exactly PR 9's burst double-advance bug, where "
      "the compat arm advanced the stream twice per round.  The CFG pass "
      "enumerates each arm's paths and compares the sets of distinct "
      "draw-site counts; designs that route both arms through one shared "
      "sampler call pass by construction.",
      CheckRngDrawParity});
  rules.push_back(Rule{
      "rng-stream-discipline", Severity::kError, "determinism",
      "Rng is a stream position: no by-value Rng parameters and no Rng "
      "copies outside Split(); a copy silently forks the stream.",
      CheckRngStreamDiscipline,
      {F("src/tasks/fixture.cc",
         "#include \"util/rng.h\"\nvoid Run(Rng rng);\n")},
      "Copying an Rng duplicates its stream position: two call sites "
      "draw identical values that should have been independent, and the "
      "determinism audit cannot see it.  Split() is the one sanctioned "
      "way to fork."});
  rules.push_back(Rule{
      "service-layering", Severity::kWarn, "robustness",
      "Whole-program: no raw BSD socket calls (socket/bind/listen/accept/"
      "connect/...) in src/, bench/, or tools/ outside tools/nbserved.cc; "
      "transport lives only in the nbserved front-end, behind the "
      "transport-agnostic service core API in src/service/.",
      nullptr,
      {F("src/analysis/fixture.cc",
         "#include <sys/socket.h>\n"
         "namespace noisybeeps {\n"
         "int OpenControl() { return socket(AF_UNIX, SOCK_STREAM, 0); }\n"
         "}  // namespace noisybeeps\n")},
      "The service core's robustness behaviours -- admission, shedding, "
      "deadlines, caching, drain -- are provable only because they run "
      "in-process under deterministic tests and the crash oracle.  A "
      "socket call inside src/ couples that logic to a transport the "
      "harness cannot drive, so every overload and crash path behind it "
      "goes untested.  Unlike the Fs and Clock seams there is no "
      "sanctioned socket seam: bytes-on-the-wire belong exclusively to "
      "tools/nbserved.cc.",
      CheckServiceLayering});
  rules.push_back(Rule{
      "suppression-justification", Severity::kError, "suppressions",
      "Every NBLINT suppression must carry a non-empty justification; an "
      "unjustified suppression suppresses nothing and is itself reported.",
      nullptr,
      {F("src/analysis/fixture.cc",
         "int Draw() { return std::rand(); }  // NBLINT(banned-random):\n")},
      "Silencing a finding must never be cheaper than fixing it.  The "
      "justification is the reviewable artifact: it states why this one "
      "site is exempt."});
  rules.push_back(Rule{
      "suppression-unknown-rule", Severity::kError, "suppressions",
      "An NBLINT suppression naming a rule id that does not exist is "
      "reported loudly instead of silently ignored.",
      nullptr,
      {F("src/analysis/fixture.cc",
         "int Zero() { return 0; }  // NBLINT(no-such-rule): spurious\n")},
      "A typo'd rule id would otherwise leave the author believing a "
      "finding is handled while the engine ignores the comment."});
  rules.push_back(Rule{
      "word-path-batched-sampling", Severity::kError, "performance",
      "Channel DeliverWords bodies must not draw per-bit via "
      "Rng::Bernoulli/UniformDouble; use the batched samplers in "
      "util/rng.h.",
      CheckWordPathBatchedSampling,
      {F("src/channel/fixture.cc",
         "struct Chan {\n"
         "  void DeliverWords(double p) {\n"
         "    if (rng_.Bernoulli(p)) bits_ ^= 1;\n"
         "  }\n"
         "};\n")},
      "DeliverWords exists so a round over a million parties costs "
      "thousands of draws, not a million: geometric skip-sampling for "
      "sparse noise, bit-sliced word draws otherwise.  One per-bit "
      "Bernoulli inside it silently restores the scalar cost while the "
      "benchmarks still say 'word path'."});
  return rules;
}

}  // namespace

std::string_view SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warn";
}

const std::vector<Rule>& AllRules() {
  static const std::vector<Rule> kRules = BuildRegistry();
  return kRules;
}

const Rule* FindRule(std::string_view id) {
  for (const Rule& rule : AllRules()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

}  // namespace noisybeeps::lint
