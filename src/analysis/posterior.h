// Exact Bayesian posteriors over inputs given a transcript, for small n.
//
// The entropy half of the lower bound (Observation C.4 / Lemma C.5) says a
// short transcript cannot reduce H(X | pi) much below n log(2n), and in
// particular the feasible sets S^i(pi) cannot all be small.  For tiny
// instances we can check this EXACTLY: enumerate all (2n)^n input vectors,
// compute Pr(pi | x') in closed form under one-sided-up noise, and read
// off H(X | pi), the per-party marginals H(X^i | pi), and the support
// structure.  Cost O((2n)^n * n * T) -- intended for n <= 5.
#ifndef NOISYBEEPS_ANALYSIS_POSTERIOR_H_
#define NOISYBEEPS_ANALYSIS_POSTERIOR_H_

#include <vector>

#include "protocol/protocol_family.h"
#include "util/bitstring.h"

namespace noisybeeps {

struct PosteriorResult {
  // False when NO input vector is consistent with pi (possible under
  // one-sided noise: a transcript whose 0s contradict every input has
  // probability zero).  When false, log2_prob_pi is -infinity and the
  // entropy/marginal/support fields are zeroed.
  bool feasible = true;
  // H(X | Pi = pi), in bits.
  double entropy_bits = 0.0;
  // H(X^i | Pi = pi) per party, in bits.
  std::vector<double> marginal_entropy_bits;
  // log2 Pr(Pi = pi) under the uniform prior.
  double log2_prob_pi = 0.0;
  // Per party: the number of inputs y with positive marginal posterior.
  // Under one-sided-up noise this support equals the feasible set S^i(pi).
  std::vector<std::size_t> support_size;
};

// Exact posterior for transcript `pi` under one-sided-up noise rate `eps`.
// Preconditions: family.num_parties() small enough that
// num_inputs^num_parties enumeration is affordable; 0 < eps < 1.
[[nodiscard]] PosteriorResult ExactPosterior(const ProtocolFamily& family,
                                             const BitString& pi, double eps);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ANALYSIS_POSTERIOR_H_
