#include "analysis/feasible_sets.h"

#include "util/require.h"

namespace noisybeeps {

std::vector<int> FeasibleSet(const ProtocolFamily& family, int party,
                             const BitString& pi) {
  NB_REQUIRE(party >= 0 && party < family.num_parties(),
             "party index out of range");
  NB_REQUIRE(pi.size() <= static_cast<std::size_t>(family.length()),
             "transcript longer than protocol");
  std::vector<int> feasible;
  for (int y = 0; y < family.num_inputs(); ++y) {
    const std::unique_ptr<Party> candidate = family.MakeParty(party, y);
    BitString prefix;
    bool ok = true;
    for (std::size_t j = 0; j < pi.size(); ++j) {
      if (!pi[j] && candidate->ChooseBeep(prefix)) {
        ok = false;
        break;
      }
      prefix.PushBack(pi[j]);
    }
    if (ok) feasible.push_back(y);
  }
  return feasible;
}

std::vector<std::vector<int>> AllFeasibleSets(const ProtocolFamily& family,
                                              const BitString& pi) {
  std::vector<std::vector<int>> sets;
  sets.reserve(family.num_parties());
  for (int i = 0; i < family.num_parties(); ++i) {
    sets.push_back(FeasibleSet(family, i, pi));
  }
  return sets;
}

}  // namespace noisybeeps
