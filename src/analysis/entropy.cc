#include "analysis/entropy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.h"

namespace noisybeeps {

double EntropyBits(std::span<const double> probabilities) {
  double h = 0.0;
  for (double p : probabilities) {
    NB_REQUIRE(p >= 0.0, "negative probability");
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

double LogSumExp2(std::span<const double> values) {
  NB_REQUIRE(!values.empty(), "LogSumExp2 of an empty set");
  const double peak = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(peak)) return peak;  // all -inf (or a stray +inf)
  double sum = 0.0;
  for (double v : values) sum += std::exp2(v - peak);
  return peak + std::log2(sum);
}

std::vector<double> NormalizeLog2Weights(std::span<const double> log2_weights) {
  const double total = LogSumExp2(log2_weights);
  NB_REQUIRE(std::isfinite(total), "no finite weight to normalize");
  std::vector<double> probs;
  probs.reserve(log2_weights.size());
  for (double w : log2_weights) probs.push_back(std::exp2(w - total));
  return probs;
}

}  // namespace noisybeeps
