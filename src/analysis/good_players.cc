#include "analysis/good_players.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "analysis/feasible_sets.h"
#include "util/require.h"

namespace noisybeeps {

std::vector<int> UniqueInputPlayers(const std::vector<int>& x) {
  std::unordered_map<int, int> counts;
  for (int v : x) ++counts[v];
  std::vector<int> unique;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (counts[x[i]] == 1) unique.push_back(static_cast<int>(i));
  }
  return unique;
}

std::vector<int> LargeFeasiblePlayers(
    const std::vector<std::vector<int>>& feasible_sets) {
  const int n = static_cast<int>(feasible_sets.size());
  const double threshold = std::sqrt(static_cast<double>(n));
  std::vector<int> large;
  for (int i = 0; i < n; ++i) {
    if (static_cast<double>(feasible_sets[i].size()) > threshold) {
      large.push_back(i);
    }
  }
  return large;
}

std::vector<int> GoodPlayers(const ProtocolFamily& family,
                             const std::vector<int>& x, const BitString& pi) {
  NB_REQUIRE(static_cast<int>(x.size()) == family.num_parties(),
             "one input per party");
  const std::vector<int> g1 = UniqueInputPlayers(x);
  const std::vector<int> g2 = LargeFeasiblePlayers(AllFeasibleSets(family, pi));
  std::vector<int> good;
  std::set_intersection(g1.begin(), g1.end(), g2.begin(), g2.end(),
                        std::back_inserter(good));
  return good;
}

bool EventGoodHolds(std::size_t num_good, int n) {
  return 4 * num_good >= static_cast<std::size_t>(n);
}

}  // namespace noisybeeps
