// Feasible sets S^i(pi) (Appendix C.2).
//
// Under one-sided-up noise, a received 0 certifies that every party beeped
// 0.  Given a transcript pi, the inputs of party i that are still possible
// are exactly those y for which party i would have beeped 0 in EVERY round
// j with pi_j = 0 (given the prefix pi_<j):
//     S^i(pi) = intersect_{j : pi_j = 0} { y : f_j^i(y, pi_<j) = 0 }.
// The sizes |S^i(pi)| drive both sides of the paper's tension: the
// information-theoretic argument (Lemma C.5) forces most of them to stay
// polynomially large for short protocols, and that largeness is what makes
// the progress measure's denominator big.
#ifndef NOISYBEEPS_ANALYSIS_FEASIBLE_SETS_H_
#define NOISYBEEPS_ANALYSIS_FEASIBLE_SETS_H_

#include <vector>

#include "protocol/protocol_family.h"
#include "util/bitstring.h"

namespace noisybeeps {

// The members of S^i(pi), ascending.  Replays party i's pure beep function
// for every candidate input along pi.  Precondition: pi.size() <=
// family.length(), 0 <= party < family.num_parties().
[[nodiscard]] std::vector<int> FeasibleSet(const ProtocolFamily& family,
                                           int party, const BitString& pi);

// S^i(pi) for every party i.
[[nodiscard]] std::vector<std::vector<int>> AllFeasibleSets(
    const ProtocolFamily& family, const BitString& pi);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ANALYSIS_FEASIBLE_SETS_H_
