// Good players (Appendix C.2): the set over which the progress measure
// sums.
//
//   G_1(x)   = parties whose input is unique in x,
//   G_2(pi)  = parties whose feasible set S^i(pi) exceeds sqrt(n),
//   G(x,pi)  = G_1 ∩ G_2,   and the event  𝒢 ≡ |G(x,pi)| >= n/4.
//
// Lemma C.5 shows Pr[not 𝒢] <= 2/3 for short protocols: |G_1| >= n/3 with
// probability >= 2/5 (Lemma B.8) and |G_2| > 19n/20 with probability
// >= 49/50 (entropy counting).  Both facts are checked empirically by the
// tests and by bench_sensitivity / bench_progress_measure.
#ifndef NOISYBEEPS_ANALYSIS_GOOD_PLAYERS_H_
#define NOISYBEEPS_ANALYSIS_GOOD_PLAYERS_H_

#include <vector>

#include "protocol/protocol_family.h"
#include "util/bitstring.h"

namespace noisybeeps {

// G_1(x): indices of parties whose input appears exactly once in x.
[[nodiscard]] std::vector<int> UniqueInputPlayers(const std::vector<int>& x);

// G_2(pi): parties with |S^i(pi)| > sqrt(n), given precomputed feasible
// sets (one per party).
[[nodiscard]] std::vector<int> LargeFeasiblePlayers(
    const std::vector<std::vector<int>>& feasible_sets);

// G(x, pi) = G_1 ∩ G_2, computed from x and pi directly.
[[nodiscard]] std::vector<int> GoodPlayers(const ProtocolFamily& family,
                                           const std::vector<int>& x,
                                           const BitString& pi);

// The event 𝒢: |good| >= n/4.
[[nodiscard]] bool EventGoodHolds(std::size_t num_good, int n);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ANALYSIS_GOOD_PLAYERS_H_
