// Neighbor-sensitivity of the InputSet function L (Section 2.3).
//
// Two inputs x, x' are neighbors when they differ in at most one party's
// input; N(x) is the set of neighbors with L(x') != L(x), partitioned as
// N^i(x) by the party whose input changed.  The proof sketch leans on
// |N(x)| = Theta(n^2) for a constant fraction of inputs -- the function is
// sensitive at Theta(n) parties, each contributing Theta(n) differing
// neighbors.  These counters make the claim checkable.
#ifndef NOISYBEEPS_ANALYSIS_NEIGHBORS_H_
#define NOISYBEEPS_ANALYSIS_NEIGHBORS_H_

#include <cstddef>
#include <vector>

#include "tasks/input_set.h"

namespace noisybeeps {

// |N^i(x)| for every party i: the number of values y != x^i such that
// changing party i's input to y changes L(x).
[[nodiscard]] std::vector<std::size_t> NeighborCountsPerParty(
    const InputSetInstance& instance);

// |N(x)| = sum_i |N^i(x)|.
[[nodiscard]] std::size_t TotalNeighborCount(const InputSetInstance& instance);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ANALYSIS_NEIGHBORS_H_
