#include "analysis/progress_measure.h"

#include <cmath>
#include <limits>

#include "analysis/entropy.h"
#include "analysis/feasible_sets.h"
#include "analysis/good_players.h"
#include "util/require.h"

namespace noisybeeps {

RoundClasses ClassifyRounds(const ProtocolFamily& family,
                            const std::vector<int>& x, const BitString& pi) {
  const int n = family.num_parties();
  NB_REQUIRE(static_cast<int>(x.size()) == n, "one input per party");
  NB_REQUIRE(pi.size() <= static_cast<std::size_t>(family.length()),
             "transcript longer than protocol");

  RoundClasses classes;
  classes.beep_count.assign(pi.size(), 0);
  classes.a_single.assign(n, 0);
  classes.beeped.assign(n, BitString());

  // Replay every party once along pi (the transcript is shared, so each
  // party's beeps are a function of its input and the prefix only).
  for (int i = 0; i < n; ++i) {
    const std::unique_ptr<Party> party = family.MakeParty(i, x[i]);
    BitString prefix;
    for (std::size_t m = 0; m < pi.size(); ++m) {
      const bool b = party->ChooseBeep(prefix);
      classes.beeped[i].PushBack(b);
      if (b) ++classes.beep_count[m];
      prefix.PushBack(pi[m]);
    }
  }

  for (std::size_t m = 0; m < pi.size(); ++m) {
    const int count = classes.beep_count[m];
    if (!pi[m]) {
      if (count > 0) classes.consistent = false;
      ++classes.a0;
    } else if (count == 0) {
      ++classes.a0_prime;
    } else if (count >= 2) {
      ++classes.a_multi;
    } else {
      // Exactly one beeper: find it (A_i membership).
      for (int i = 0; i < n; ++i) {
        if (classes.beeped[i][m]) {
          ++classes.a_single[i];
          break;
        }
      }
    }
  }
  return classes;
}

double Log2ProbPiGivenX(const RoundClasses& classes, double eps) {
  NB_REQUIRE(eps > 0.0 && eps < 1.0, "noise rate must lie in (0,1)");
  if (!classes.consistent) {
    return -std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(classes.a0) * std::log2(1.0 - eps) +
         static_cast<double>(classes.a0_prime) * std::log2(eps);
}

namespace {

// log2 Pr(pi | x^{i=y}): re-derives the classification cheaply from the
// baseline.  Only party i's beeps change; a round's factor depends only on
// whether ANYONE beeps, so count' = count - b_i + b'_i decides it.
double Log2ProbNeighbor(const ProtocolFamily& family,
                        const RoundClasses& base, const BitString& pi,
                        int party, int y, double eps) {
  const std::unique_ptr<Party> candidate = family.MakeParty(party, y);
  BitString prefix;
  double log2p = 0.0;
  const double log2_silent0 = std::log2(1.0 - eps);
  const double log2_silent1 = std::log2(eps);
  for (std::size_t m = 0; m < pi.size(); ++m) {
    const bool b_new = candidate->ChooseBeep(prefix);
    const int count = base.beep_count[m] -
                      (base.beeped[party][m] ? 1 : 0) + (b_new ? 1 : 0);
    if (!pi[m]) {
      if (count > 0) return -std::numeric_limits<double>::infinity();
      log2p += log2_silent0;
    } else if (count == 0) {
      log2p += log2_silent1;
    }
    prefix.PushBack(pi[m]);
  }
  return log2p;
}

}  // namespace

ZetaResult ComputeZeta(const ProtocolFamily& family, const std::vector<int>& x,
                       const BitString& pi, double eps) {
  const int n = family.num_parties();
  ZetaResult result;

  const RoundClasses classes = ClassifyRounds(family, x, pi);
  result.log2_prob_pi_given_x = Log2ProbPiGivenX(classes, eps);

  const std::vector<std::vector<int>> feasible = AllFeasibleSets(family, pi);
  const std::vector<int> g1 = UniqueInputPlayers(x);
  const std::vector<int> g2 = LargeFeasiblePlayers(feasible);
  std::vector<std::uint8_t> in_g2(n, 0);
  for (int i : g2) in_g2[i] = 1;
  for (int i : g1) {
    if (in_g2[i]) result.good.push_back(i);
  }
  result.event_good = EventGoodHolds(result.good.size(), n);

  if (!classes.consistent) {
    result.zeta = 0.0;
    result.log2_zeta = -std::numeric_limits<double>::infinity();
    return result;
  }

  // log2 Z(x,pi) / Pr(x): the uniform prior Pr(x) = Pr(x^{i=y}) cancels in
  // zeta, so we accumulate log2 of sum_i (1/|S^i|) sum_{y in S^i}
  // Pr(pi | x^{i=y}).
  std::vector<double> log2_terms;
  for (int i : result.good) {
    NB_REQUIRE(!feasible[i].empty(),
               "good player with empty feasible set (contradiction)");
    const double log2_avg_denominator =
        std::log2(static_cast<double>(feasible[i].size()));
    for (int y : feasible[i]) {
      log2_terms.push_back(
          Log2ProbNeighbor(family, classes, pi, i, y, eps) -
          log2_avg_denominator);
    }
  }
  if (log2_terms.empty()) {
    // G(x, pi) is empty: Z = 0 and zeta is undefined (the paper only
    // evaluates zeta under the event 𝒢).  Surface +infinity so callers
    // that forgot to guard on event_good fail loudly in comparisons.
    result.zeta = std::numeric_limits<double>::infinity();
    result.log2_zeta = std::numeric_limits<double>::infinity();
    return result;
  }
  const double log2_z = LogSumExp2(log2_terms);
  result.log2_zeta = result.log2_prob_pi_given_x - log2_z;
  result.zeta = std::exp2(result.log2_zeta);
  return result;
}

double TheoremC2Bound(int n, int protocol_len, double eps) {
  NB_REQUIRE(n >= 1 && protocol_len >= 0, "bad parameters");
  NB_REQUIRE(eps > 0.0 && eps < 1.0, "noise rate must lie in (0,1)");
  const double exponent =
      4.0 * static_cast<double>(protocol_len) / static_cast<double>(n);
  return 4.0 / static_cast<double>(n) *
         std::pow(1.0 / eps, exponent);
}

}  // namespace noisybeeps
