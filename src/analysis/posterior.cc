#include "analysis/posterior.h"

#include <bit>
#include <cmath>
#include <limits>

#include "analysis/entropy.h"
#include "util/require.h"

namespace noisybeeps {
namespace {

// Packed per-round bits, word-parallel for speed: enumeration touches
// every input vector, so the inner loop works on 64 rounds at a time.
using WordMask = std::vector<std::uint64_t>;

WordMask PackRoundWords(const BitString& bits) {
  WordMask words((bits.size() + 63) / 64, 0);
  for (std::size_t m = 0; m < bits.size(); ++m) {
    if (bits[m]) words[m / 64] |= std::uint64_t{1} << (m % 64);
  }
  return words;
}

}  // namespace

PosteriorResult ExactPosterior(const ProtocolFamily& family,
                               const BitString& pi, double eps) {
  NB_REQUIRE(eps > 0.0 && eps < 1.0, "noise rate must lie in (0,1)");
  const int n = family.num_parties();
  const int q = family.num_inputs();
  NB_REQUIRE(pi.size() <= static_cast<std::size_t>(family.length()),
             "transcript longer than protocol");

  double total_vectors = 1.0;
  for (int i = 0; i < n; ++i) total_vectors *= q;
  NB_REQUIRE(total_vectors <= 2.1e7,
             "input space too large for exact enumeration");

  // Precompute each (party, input)'s beep pattern along pi.
  std::vector<std::vector<WordMask>> pattern(n);
  for (int i = 0; i < n; ++i) {
    pattern[i].reserve(q);
    for (int y = 0; y < q; ++y) {
      const std::unique_ptr<Party> party = family.MakeParty(i, y);
      BitString beeps;
      BitString prefix;
      for (std::size_t m = 0; m < pi.size(); ++m) {
        beeps.PushBack(party->ChooseBeep(prefix));
        prefix.PushBack(pi[m]);
      }
      pattern[i].push_back(PackRoundWords(beeps));
    }
  }

  const WordMask ones_mask = PackRoundWords(pi);
  const std::size_t num_words = ones_mask.size();
  std::size_t num_zeros = 0;
  for (std::size_t m = 0; m < pi.size(); ++m) num_zeros += pi[m] ? 0 : 1;
  const double log2_eps = std::log2(eps);
  const double log2_one_minus_eps = std::log2(1.0 - eps);
  // |A_0| is shared by every consistent input vector.
  const double log2_base = static_cast<double>(num_zeros) * log2_one_minus_eps;
  // log2 of the uniform prior of one input vector.
  const double log2_prior = -static_cast<double>(n) *
                            std::log2(static_cast<double>(q));

  const auto total = static_cast<std::size_t>(total_vectors);
  std::vector<double> log2_joint(total,
                                 -std::numeric_limits<double>::infinity());

  // Odometer enumeration of x' in [q]^n.
  std::vector<int> x(n, 0);
  WordMask or_words(num_words, 0);
  // slack bits beyond pi.size() in the last word are zero in all masks.
  for (std::size_t index = 0; index < total; ++index) {
    bool consistent = true;
    std::size_t silent_ones = 0;  // |A'_0|: pi_m = 1 but nobody beeps
    for (std::size_t w = 0; w < num_words; ++w) {
      std::uint64_t orw = 0;
      for (int i = 0; i < n; ++i) orw |= pattern[i][x[i]][w];
      // A beeper in a zero round kills the vector under one-sided-up noise.
      if ((orw & ~ones_mask[w]) != 0) {
        consistent = false;
        break;
      }
      silent_ones += std::popcount(ones_mask[w] & ~orw);
      or_words[w] = orw;
    }
    if (consistent) {
      log2_joint[index] = log2_prior + log2_base +
                          static_cast<double>(silent_ones) * log2_eps;
    }
    // Advance the odometer.
    for (int i = 0; i < n; ++i) {
      if (++x[i] < q) break;
      x[i] = 0;
    }
  }

  PosteriorResult result;
  result.log2_prob_pi = LogSumExp2(log2_joint);
  if (!std::isfinite(result.log2_prob_pi)) {
    // No input is consistent with pi: a zero-probability transcript.
    result.feasible = false;
    result.marginal_entropy_bits.assign(n, 0.0);
    result.support_size.assign(n, 0);
    return result;
  }
  const std::vector<double> posterior = NormalizeLog2Weights(log2_joint);
  result.entropy_bits = EntropyBits(posterior);

  // Marginals: fold the posterior over each coordinate.
  result.marginal_entropy_bits.assign(n, 0.0);
  result.support_size.assign(n, 0);
  std::vector<double> marginal(q, 0.0);
  for (int i = 0; i < n; ++i) {
    std::fill(marginal.begin(), marginal.end(), 0.0);
    // Coordinate i cycles with period prod_{j<i} q.
    std::size_t period = 1;
    for (int j = 0; j < i; ++j) period *= q;
    for (std::size_t index = 0; index < total; ++index) {
      marginal[(index / period) % q] += posterior[index];
    }
    result.marginal_entropy_bits[i] = EntropyBits(marginal);
    for (double p : marginal) {
      if (p > 0.0) ++result.support_size[i];
    }
  }
  return result;
}

}  // namespace noisybeeps
