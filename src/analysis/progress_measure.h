// The progress measure of the lower-bound proof (Appendix C.2/C.3):
// round classification, exact transcript probabilities under one-sided-up
// noise, Z(x,pi), and zeta(x,pi) = Pr(x,pi) / Z(x,pi).
//
// Everything here is EXACT (no Monte Carlo): under the one-sided-up
// epsilon-noisy channel with a deterministic protocol, Pr(pi | x) factors
// in closed form over the round classification
//   A_0  = rounds with pi_m = 0                      -> factor (1-eps)
//   A'_0 = rounds with pi_m = 1, nobody beeped       -> factor eps
//   A_i  = rounds where exactly party i beeped 1     -> factor 1
//   A_n+1= rounds with >= 2 beepers                  -> factor 1
// (a round with a beeper and pi_m = 0 is impossible: one-sided noise never
// kills a 1).  Theorem C.2 bounds zeta <= (4/n) * (1/eps)^{4T/n} whenever
// the good-players event holds; Theorem C.3 forces E[zeta | G] >= n^{-3/4}
// for correct protocols.  The tension between the two is the paper's
// Omega(log n), and bench_progress_measure reproduces it numerically.
#ifndef NOISYBEEPS_ANALYSIS_PROGRESS_MEASURE_H_
#define NOISYBEEPS_ANALYSIS_PROGRESS_MEASURE_H_

#include <vector>

#include "protocol/protocol_family.h"
#include "util/bitstring.h"

namespace noisybeeps {

struct RoundClasses {
  // Number of parties beeping 1 in each round, given x and the prefix.
  std::vector<int> beep_count;
  // beeped[i][m]: whether party i beeps in round m (given x, prefix).
  std::vector<BitString> beeped;
  std::size_t a0 = 0;        // |A_0|
  std::size_t a0_prime = 0;  // |A'_0|
  std::size_t a_multi = 0;   // |A_{n+1}|
  std::vector<std::size_t> a_single;  // |A_i| per party
  // False iff some round has pi_m = 0 with a beeper, i.e. Pr(x,pi) = 0
  // under one-sided-up noise.
  bool consistent = true;
};

// Replays all parties along pi and classifies every round.
// Precondition: x.size() == num_parties, pi.size() <= length.
[[nodiscard]] RoundClasses ClassifyRounds(const ProtocolFamily& family,
                                          const std::vector<int>& x,
                                          const BitString& pi);

// log2 Pr(pi | x) under one-sided-up noise rate eps; -infinity when
// inconsistent.  Precondition: 0 < eps < 1.
[[nodiscard]] double Log2ProbPiGivenX(const RoundClasses& classes,
                                      double eps);

struct ZetaResult {
  double zeta = 0.0;       // zeta(x, pi); 0 when Pr(x,pi) = 0
  double log2_zeta = 0.0;  // log2 of the above (-inf when zeta = 0)
  std::vector<int> good;   // G(x, pi)
  bool event_good = false; // |G| >= n/4
  double log2_prob_pi_given_x = 0.0;
};

// Exact zeta(x, pi) for the uniform input prior (the priors cancel in the
// ratio).  Sums over all i in G(x,pi) and all y in S^i(pi), each term via
// the closed-form probability above.  Cost O(n * num_inputs * T).
[[nodiscard]] ZetaResult ComputeZeta(const ProtocolFamily& family,
                                     const std::vector<int>& x,
                                     const BitString& pi, double eps);

// The Theorem C.2 ceiling (4/n) * (1/eps)^{4T/n}; the paper states it for
// eps = 1/3, where the base is 3.
[[nodiscard]] double TheoremC2Bound(int n, int protocol_len, double eps);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ANALYSIS_PROGRESS_MEASURE_H_
