#include "analysis/neighbors.h"

#include <unordered_map>

namespace noisybeeps {

std::vector<std::size_t> NeighborCountsPerParty(
    const InputSetInstance& instance) {
  const int n = instance.num_parties();
  const int universe = instance.universe_size();
  std::unordered_map<int, int> multiplicity;
  for (int v : instance.inputs) ++multiplicity[v];
  const auto distinct = static_cast<int>(multiplicity.size());

  std::vector<std::size_t> counts(n, 0);
  for (int i = 0; i < n; ++i) {
    const int xi = instance.inputs[i];
    const bool xi_unique = multiplicity[xi] == 1;
    // Changing x^i to y alters L(x) iff x^i leaves the set (x^i unique and
    // y != x^i) or y enters it (y not already in L(x)).
    //   - If x^i is unique: any y != x^i removes x^i, so all 2n-1 values
    //     change L.
    //   - Otherwise: only y outside L(x) change it; there are
    //     universe - |L(x)| such values.
    counts[i] = xi_unique
                    ? static_cast<std::size_t>(universe - 1)
                    : static_cast<std::size_t>(universe - distinct);
  }
  return counts;
}

std::size_t TotalNeighborCount(const InputSetInstance& instance) {
  std::size_t total = 0;
  for (std::size_t c : NeighborCountsPerParty(instance)) total += c;
  return total;
}

}  // namespace noisybeeps
