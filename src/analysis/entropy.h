// Information-theoretic primitives for the Appendix B/C arguments:
// Shannon entropy over explicit distributions and stable log-space sums.
// All entropies are in bits (log base 2), matching the paper.
#ifndef NOISYBEEPS_ANALYSIS_ENTROPY_H_
#define NOISYBEEPS_ANALYSIS_ENTROPY_H_

#include <span>
#include <vector>

namespace noisybeeps {

// H(p) = sum p_i log2(1/p_i) over the positive entries.
// Precondition: entries non-negative; callers pass normalized
// distributions (the function does not re-normalize).
[[nodiscard]] double EntropyBits(std::span<const double> probabilities);

// log2(sum_i 2^{values[i]}), computed stably (useful when the values are
// log-probabilities spanning hundreds of orders of magnitude).
// Precondition: non-empty.
[[nodiscard]] double LogSumExp2(std::span<const double> values);

// Normalizes a vector of log2-weights into a probability distribution.
// Precondition: non-empty, at least one finite entry.
[[nodiscard]] std::vector<double> NormalizeLog2Weights(
    std::span<const double> log2_weights);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ANALYSIS_ENTROPY_H_
