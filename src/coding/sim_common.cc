#include "coding/sim_common.h"

#include "util/require.h"

namespace noisybeeps::internal {

void AppendAttempt(CommitState& state, const ChunkAttempt& attempt) {
  const int n = state.num_parties();
  NB_REQUIRE(static_cast<int>(attempt.candidate.size()) == n,
             "attempt party count mismatch");
  const std::size_t chunk_len = attempt.candidate.front().size();
  for (int i = 0; i < n; ++i) {
    state.committed[i].Append(attempt.candidate[i]);
    if (attempt.owners.empty()) {
      state.owners[i].insert(state.owners[i].end(), chunk_len, -1);
    } else {
      state.owners[i].insert(state.owners[i].end(), attempt.owners[i].begin(),
                             attempt.owners[i].end());
    }
  }
}

void TruncateTo(CommitState& state,
                const std::vector<std::size_t>& prefix_len) {
  const int n = state.num_parties();
  NB_REQUIRE(static_cast<int>(prefix_len.size()) == n,
             "one prefix length per party");
  for (int i = 0; i < n; ++i) {
    NB_REQUIRE(prefix_len[i] <= state.committed[i].size(),
               "verified prefix longer than committed transcript");
    state.committed[i].Truncate(prefix_len[i]);
    state.owners[i].resize(prefix_len[i]);
  }
}

void InjectScheduleOwners(ChunkAttempt& attempt,
                          const std::vector<int>& schedule, int start) {
  const std::size_t chunk_len = attempt.candidate.front().size();
  NB_REQUIRE(start >= 0 &&
                 static_cast<std::size_t>(start) + chunk_len <=
                     schedule.size(),
             "chunk extends past the owner schedule");
  attempt.owners.assign(attempt.candidate.size(), std::vector<int>());
  for (auto& per_party : attempt.owners) {
    per_party.assign(schedule.begin() + start,
                     schedule.begin() + start + chunk_len);
  }
}

void RequireValidSchedule(const Protocol& protocol,
                          const std::vector<int>& schedule) {
  NB_REQUIRE(static_cast<int>(schedule.size()) == protocol.length(),
             "owner schedule must cover every protocol round");
  const int n = protocol.num_parties();
  BitString pi;
  for (int m = 0; m < protocol.length(); ++m) {
    NB_REQUIRE(schedule[m] >= 0 && schedule[m] < n,
               "schedule owner out of range");
    for (int i = 0; i < n; ++i) {
      const bool beeps = protocol.party(i).ChooseBeep(pi);
      NB_REQUIRE(!beeps || i == schedule[m],
                 "party beeps in a round it does not own: the protocol is "
                 "not scheduled");
    }
    pi.PushBack(protocol.party(schedule[m]).ChooseBeep(pi));
  }
}

std::vector<std::size_t> AllFirstViolations(const Protocol& protocol,
                                            const CommitState& state,
                                            std::size_t from,
                                            NoiseRegime regime) {
  const int n = state.num_parties();
  std::vector<std::size_t> result(n);
  for (int i = 0; i < n; ++i) {
    result[i] = FirstViolation(protocol, i, state.committed[i],
                               state.owners[i], regime, from);
  }
  return result;
}

}  // namespace noisybeeps::internal
