#include "coding/repetition_sim.h"

#include "coding/sim_common.h"
#include "fault/injection.h"
#include "util/math.h"
#include "util/require.h"

namespace noisybeeps {

RepetitionSimulator::RepetitionSimulator(RepetitionSimOptions options)
    : options_(options) {
  NB_REQUIRE(options_.rep_factor >= 0, "rep_factor must be non-negative");
  NB_REQUIRE(options_.rep_c >= 1, "rep_c must be positive");
}

int RepetitionSimulator::EffectiveRepFactor(int num_parties) const {
  if (options_.rep_factor > 0) return options_.rep_factor;
  const int log_n = CeilLog2(static_cast<std::uint64_t>(
      num_parties < 2 ? 2 : num_parties));
  return options_.rep_c * log_n + 1;
}

SimulationResult RepetitionSimulator::Simulate(const Protocol& protocol,
                                               const Channel& channel,
                                               const FaultPlan& faults,
                                               Rng& rng) const {
  const int n = protocol.num_parties();
  const int reps = EffectiveRepFactor(n);
  FaultyRoundEngine engine(channel, rng, n, faults);
  engine.SetPhase("repetition");
  internal::DivergenceTracker tracker;

  SimulationResult result;
  result.transcripts.assign(n, BitString());

  std::vector<std::uint8_t> beeps(n, 0);
  std::vector<std::uint8_t> decoded(n, 0);
  std::vector<std::size_t> ones(n, 0);
  for (int m = 0; m < protocol.length(); ++m) {
    // Each party fixes its beep for logical round m from its own
    // reconstructed prefix (pure f_m^i), then beeps it `reps` times.
    for (int i = 0; i < n; ++i) {
      beeps[i] = protocol.party(i).ChooseBeep(result.transcripts[i]) ? 1 : 0;
    }
    std::fill(ones.begin(), ones.end(), 0);
    for (int t = 0; t < reps; ++t) {
      const auto received = engine.Round(beeps);
      for (int i = 0; i < n; ++i) ones[i] += received[i];
    }
    for (int i = 0; i < n; ++i) {
      decoded[i] = 2 * ones[i] >= static_cast<std::size_t>(reps) ? 1 : 0;
      result.transcripts[i].PushBack(decoded[i] != 0);
    }
    tracker.Observe(decoded, "repetition", engine.rounds_used());
  }

  result.outputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    result.outputs.push_back(
        protocol.party(i).ComputeOutput(result.transcripts[i]));
  }
  result.noisy_rounds_used = engine.rounds_used();
  result.phase_rounds = engine.phase_rounds();
  result.verdict = ComputeVerdict(result.transcripts, protocol.length(),
                                  /*budget_exhausted=*/false);
  tracker.Export(result.verdict);
  return result;
}

std::string RepetitionSimulator::name() const {
  return options_.rep_factor > 0
             ? "repetition(r=" + std::to_string(options_.rep_factor) + ")"
             : "repetition(r=" + std::to_string(options_.rep_c) + "log n+1)";
}

}  // namespace noisybeeps
