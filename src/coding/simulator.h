// The simulator interface: the objects Theorems 1.1 and 1.2 are about.
//
// A Simulator takes a protocol Pi designed for the NOISELESS beeping model
// and executes it over a NOISY channel, spending noisy rounds to produce,
// at every party, a reconstruction of Pi's noiseless transcript (and hence
// Pi's outputs).  The figure of merit is the blowup
//     noisy_rounds_used / Pi.length(),
// which Theorem 1.2 upper-bounds by O(log n) and Theorem 1.1 lower-bounds
// by Omega(log n) for some Pi.
//
// Simulators are written imperatively against protocol/round_engine.h; the
// distributed discipline (party i's decisions depend only on party i's
// input, local state, and the bits party i received) is maintained by code
// structure: all cross-party information flows through RoundEngine::Round.
#ifndef NOISYBEEPS_CODING_SIMULATOR_H_
#define NOISYBEEPS_CODING_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "channel/channel.h"
#include "protocol/protocol.h"

namespace noisybeeps {

struct SimulationResult {
  // Party i's reconstruction of the noiseless transcript of Pi.  Under a
  // correlated channel all reconstructions coincide unless the simulation
  // failed.
  std::vector<BitString> transcripts;
  // Party i's view of the owner of each transcript round (-1 = no owner
  // recorded).  Only chunk-based simulators populate owners; for others
  // the vectors are empty.
  std::vector<std::vector<int>> owners;
  // g^i evaluated on party i's reconstructed transcript.
  std::vector<PartyOutput> outputs;
  // Rounds consumed on the noisy channel -- the quantity the theorems
  // bound.
  std::int64_t noisy_rounds_used = 0;
  // Set when the simulator hit its internal round budget before finishing;
  // the transcripts are then whatever was committed (tests assert this
  // stays false at documented budgets).
  bool budget_exhausted = false;
  // Where the noisy rounds went, by phase label ("chunk-sim",
  // "owner-finding", "verify-flags", "audit", "repetition"); sums to
  // noisy_rounds_used.
  std::map<std::string, std::int64_t> phase_rounds;

  // True iff every party reconstructed exactly `reference`.
  [[nodiscard]] bool AllMatch(const BitString& reference) const {
    for (const BitString& t : transcripts) {
      if (t != reference) return false;
    }
    return true;
  }
};

class Simulator {
 public:
  virtual ~Simulator() = default;

  // Simulates `protocol` over `channel`.  The protocol's parties must be
  // pure (see protocol/party.h); the channel may be correlated or
  // independent.
  [[nodiscard]] virtual SimulationResult Simulate(const Protocol& protocol,
                                                  const Channel& channel,
                                                  Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_SIMULATOR_H_
