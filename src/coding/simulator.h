// The simulator interface: the objects Theorems 1.1 and 1.2 are about.
//
// A Simulator takes a protocol Pi designed for the NOISELESS beeping model
// and executes it over a NOISY channel, spending noisy rounds to produce,
// at every party, a reconstruction of Pi's noiseless transcript (and hence
// Pi's outputs).  The figure of merit is the blowup
//     noisy_rounds_used / Pi.length(),
// which Theorem 1.2 upper-bounds by O(log n) and Theorem 1.1 lower-bounds
// by Omega(log n) for some Pi.
//
// Simulators are written imperatively against protocol/round_engine.h; the
// distributed discipline (party i's decisions depend only on party i's
// input, local state, and the bits party i received) is maintained by code
// structure: all cross-party information flows through RoundEngine::Round.
//
// Beyond channel noise, every simulator also accepts a FaultPlan
// (fault/fault_plan.h): a deterministic description of misbehaving parties
// (crash-stop, sleepy, stuck-beeper, babbler, deaf-receiver) injected at
// the round boundary.  The outcome is reported as a structured
// SimulationVerdict -- ok / degraded / failed with per-party agreement
// counts and majority-transcript recovery -- instead of a lone boolean.
#ifndef NOISYBEEPS_CODING_SIMULATOR_H_
#define NOISYBEEPS_CODING_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "channel/channel.h"
#include "fault/fault_plan.h"
#include "protocol/protocol.h"

namespace noisybeeps {

// The graceful-degradation ladder.  kOk: every party reconstructed the
// same full-length transcript within budget.  kDegraded: a strict majority
// of parties still agree on one transcript (so majority-vote recovery
// works, and under a correlated channel the committed prefix is
// consistent), but some party diverged or the round budget ran out.
// kFailed: no strict majority agrees -- the execution is unrecoverable.
enum class SimulationStatus { kOk, kDegraded, kFailed };

[[nodiscard]] std::string SimulationStatusName(SimulationStatus status);

struct SimulationVerdict {
  SimulationStatus status = SimulationStatus::kOk;
  // The simulator hit its internal round budget before finishing; the
  // transcripts are then whatever was committed.
  bool budget_exhausted = false;
  // agreement[i] = number of parties (including i itself) whose final
  // transcript equals party i's.
  std::vector<int> agreement;
  // max(agreement): the size of the largest group of agreeing parties.
  int majority_size = 0;
  // The plurality transcript (ties broken toward the lexicographically
  // least): what majority-vote recovery would return.  Under a correlated
  // channel this is the consistent committed prefix.
  BitString majority_transcript;
  // The engine phase in which per-party state was first observed to
  // diverge ("" = never diverged): "chunk-sim", "owner-finding",
  // "verify-flags", "audit", or "repetition".
  std::string first_divergent_phase;
  // Noisy rounds consumed when that divergence was first observed
  // (-1 = never diverged).
  std::int64_t first_divergence_round = -1;

  [[nodiscard]] bool ok() const { return status == SimulationStatus::kOk; }
};

// Fills status / agreement / majority fields from the final per-party
// transcripts.  `full_length` is the simulated protocol's length T (a
// transcript shorter than T -- a budget-exhausted run -- cannot be kOk).
// The divergence fields are left untouched; simulators record those
// in-flight.  Precondition: transcripts is non-empty.
[[nodiscard]] SimulationVerdict ComputeVerdict(
    const std::vector<BitString>& transcripts, int full_length,
    bool budget_exhausted);

struct SimulationResult {
  // Party i's reconstruction of the noiseless transcript of Pi.  Under a
  // correlated channel all reconstructions coincide unless the simulation
  // failed.
  std::vector<BitString> transcripts;
  // Party i's view of the owner of each transcript round (-1 = no owner
  // recorded).  Only chunk-based simulators populate owners; for others
  // the vectors are empty.
  std::vector<std::vector<int>> owners;
  // g^i evaluated on party i's reconstructed transcript.
  std::vector<PartyOutput> outputs;
  // Rounds consumed on the noisy channel -- the quantity the theorems
  // bound.
  std::int64_t noisy_rounds_used = 0;
  // The structured outcome: ok / degraded / failed, agreement counts,
  // majority recovery, and first divergence (see SimulationVerdict).
  SimulationVerdict verdict;
  // Where the noisy rounds went, by phase label ("chunk-sim",
  // "owner-finding", "verify-flags", "audit", "repetition"); sums to
  // noisy_rounds_used.
  std::map<std::string, std::int64_t> phase_rounds;

  // Source-compatible accessor for the old lone failure bool (tests assert
  // this stays false at documented budgets).
  [[nodiscard]] bool budget_exhausted() const {
    return verdict.budget_exhausted;
  }

  // True iff every party reconstructed exactly `reference`.
  [[nodiscard]] bool AllMatch(const BitString& reference) const {
    for (const BitString& t : transcripts) {
      if (t != reference) return false;
    }
    return true;
  }
};

class Simulator {
 public:
  virtual ~Simulator() = default;

  // Simulates `protocol` over `channel` with `faults` injected at the
  // round boundary (an empty plan is a bit-for-bit no-op).  The protocol's
  // parties must be pure (see protocol/party.h); the channel may be
  // correlated or independent.
  [[nodiscard]] virtual SimulationResult Simulate(const Protocol& protocol,
                                                  const Channel& channel,
                                                  const FaultPlan& faults,
                                                  Rng& rng) const = 0;

  // Fault-free convenience overload.
  [[nodiscard]] SimulationResult Simulate(const Protocol& protocol,
                                          const Channel& channel,
                                          Rng& rng) const {
    return Simulate(protocol, channel, FaultPlan(), rng);
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_SIMULATOR_H_
