#include "coding/verification.h"

#include "util/require.h"

namespace noisybeeps {

std::size_t FirstViolation(const Protocol& protocol, int party_index,
                           const BitString& transcript,
                           const std::vector<int>& owners,
                           NoiseRegime regime, std::size_t from) {
  NB_REQUIRE(party_index >= 0 && party_index < protocol.num_parties(),
             "party index out of range");
  if (regime == NoiseRegime::kTwoSided) {
    NB_REQUIRE(owners.size() == transcript.size(),
               "two-sided verification needs an owner per round");
  }
  const Party& party = protocol.party(party_index);
  BitString prefix;
  for (std::size_t m = 0; m < transcript.size(); ++m) {
    const bool beeped = m < from ? false : party.ChooseBeep(prefix);
    if (m >= from) {
      if (!transcript[m]) {
        // A 0 claims nobody beeped; this party knows better if it beeped 1.
        if (beeped) return m;
      } else if (regime == NoiseRegime::kTwoSided) {
        const int owner = owners[m];
        if (owner < 0) return m;  // unowned 1: anyone may flag
        if (owner == party_index && !beeped) return m;  // my 1, but I didn't
      }
      // In kDownOnly a received 1 is self-certifying: nothing to check.
    }
    prefix.PushBack(transcript[m]);
  }
  return transcript.size();
}

std::vector<std::uint8_t> CommunicateFlags(RoundEngine& engine,
                                           const std::vector<std::uint8_t>& flags,
                                           int reps, FlagRule rule) {
  const auto n = static_cast<int>(engine.num_parties());
  NB_REQUIRE(static_cast<int>(flags.size()) == n, "one flag per party");
  NB_REQUIRE(reps >= 1, "flag repetitions must be positive");
  std::vector<std::size_t> ones(n, 0);
  for (int t = 0; t < reps; ++t) {
    const auto received = engine.Round(flags);
    for (int i = 0; i < n; ++i) ones[i] += received[i];
  }
  std::vector<std::uint8_t> verdict(n, 0);
  for (int i = 0; i < n; ++i) {
    const bool raised = rule == FlagRule::kMajority
                            ? 2 * ones[i] >= static_cast<std::size_t>(reps)
                            : ones[i] > 0;
    verdict[i] = raised ? 1 : 0;
  }
  return verdict;
}

std::vector<std::size_t> BinarySearchVerifiedPrefix(
    RoundEngine& engine, const std::vector<std::size_t>& first_violation,
    std::size_t total_len, int reps, FlagRule rule) {
  const auto n = static_cast<int>(engine.num_parties());
  NB_REQUIRE(static_cast<int>(first_violation.size()) == n,
             "one local violation index per party");

  // Each party maintains its own [lo, hi] bracket on the verified prefix
  // length; under a correlated channel all brackets evolve identically.
  struct Bracket {
    std::size_t lo;
    std::size_t hi;
  };
  std::vector<Bracket> bracket(n, Bracket{0, total_len});

  // Fixed iteration count so every party runs the same number of flag
  // exchanges regardless of how its own bracket narrows.
  int iterations = 0;
  for (std::size_t range = total_len; range > 0; range /= 2) ++iterations;

  std::vector<std::uint8_t> flags(n, 0);
  for (int it = 0; it < iterations; ++it) {
    for (int i = 0; i < n; ++i) {
      if (bracket[i].hi <= bracket[i].lo) {
        flags[i] = 0;  // bracket converged; stay silent in the exchange
        continue;
      }
      const std::size_t probe =
          bracket[i].lo + (bracket[i].hi - bracket[i].lo + 1) / 2;
      // Probe p asks: "is the prefix of length p clear?"  Party i flags
      // iff its first violation falls inside that prefix.
      flags[i] = first_violation[i] < probe ? 1 : 0;
    }
    const std::vector<std::uint8_t> verdict =
        CommunicateFlags(engine, flags, reps, rule);
    for (int i = 0; i < n; ++i) {
      if (bracket[i].hi <= bracket[i].lo) continue;
      const std::size_t probe =
          bracket[i].lo + (bracket[i].hi - bracket[i].lo + 1) / 2;
      if (verdict[i]) {
        bracket[i].hi = probe - 1;  // some party objects within `probe`
      } else {
        bracket[i].lo = probe;  // prefix of length `probe` looks clear
      }
    }
  }

  std::vector<std::size_t> result(n);
  for (int i = 0; i < n; ++i) result[i] = bracket[i].lo;
  return result;
}

}  // namespace noisybeeps
