#include "coding/rewind_sim.h"

#include <map>

#include "coding/sim_common.h"
#include "fault/injection.h"
#include "util/math.h"
#include "util/require.h"

namespace noisybeeps {

using internal::AllFirstViolations;
using internal::AppendAttempt;
using internal::CommitState;

RewindSimulator::RewindSimulator(RewindSimOptions options)
    : options_(options) {
  NB_REQUIRE(options_.chunk_len >= 0 && options_.rep_factor >= 0 &&
                 options_.flag_reps >= 0 && options_.max_rounds >= 0,
             "negative option");
  NB_REQUIRE(options_.rep_c >= 1 && options_.code_length_factor >= 1,
             "multipliers must be positive");
}

int RewindSimulator::EffectiveChunkLen(int n) const {
  if (options_.chunk_len > 0) return options_.chunk_len;
  if (options_.regime == NoiseRegime::kDownOnly || options_.scheduled()) {
    return 8;
  }
  return n;
}

int RewindSimulator::EffectiveRepFactor(int n) const {
  if (options_.rep_factor > 0) return options_.rep_factor;
  if (options_.regime == NoiseRegime::kDownOnly || options_.scheduled()) {
    return 1;
  }
  return options_.rep_c * CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n)) +
         1;
}

int RewindSimulator::EffectiveFlagReps(int n) const {
  if (options_.flag_reps > 0) return options_.flag_reps;
  if (options_.regime == NoiseRegime::kDownOnly) return 5;
  if (options_.scheduled()) return 9;  // two-sided majority needs headroom
  return 4 * CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n)) + 8;
}

SimulationResult RewindSimulator::Simulate(const Protocol& protocol,
                                           const Channel& channel,
                                           const FaultPlan& faults,
                                           Rng& rng) const {
  const int n = protocol.num_parties();
  const int T = protocol.length();
  const int flag_reps = EffectiveFlagReps(n);
  const int rep_factor = EffectiveRepFactor(n);
  const int base_chunk = EffectiveChunkLen(n);
  const std::int64_t max_rounds =
      options_.max_rounds > 0
          ? options_.max_rounds
          : 300LL * (T + 64) *
                (CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n)) + 2);

  if (options_.scheduled()) {
    internal::RequireValidSchedule(protocol, options_.owner_schedule);
  }

  FaultyRoundEngine engine(channel, rng, n, faults);
  CommitState state(n);
  internal::DivergenceTracker tracker;
  // Beep codes are deterministic functions of (chunk length, seed): part
  // of the protocol description, shared by all parties.
  std::map<int, BeepCode> codes;

  SimulationResult result;
  int start = 0;
  bool exhausted = false;
  while (start < T) {
    if (engine.rounds_used() > max_rounds) {
      exhausted = true;
      break;
    }
    const int chunk_len = std::min(base_chunk, T - start);

    // With a pre-assigned owner schedule there is nothing to find; the
    // owner-finding phase (and its beep code) is skipped entirely.
    const BeepCode* code = nullptr;
    if (options_.regime == NoiseRegime::kTwoSided && !options_.scheduled()) {
      auto it = codes.find(chunk_len);
      if (it == codes.end()) {
        it = codes
                 .emplace(chunk_len,
                          BeepCode(chunk_len, options_.code_length_factor,
                                   options_.code_seed + chunk_len))
                 .first;
      }
      code = &it->second;
    }

    ChunkAttempt attempt = SimulateChunk(
        protocol, state.committed, start, chunk_len, rep_factor, code, engine);
    if (options_.scheduled()) {
      internal::InjectScheduleOwners(attempt, options_.owner_schedule, start);
    }
    tracker.Observe(attempt.candidate, "chunk-sim", engine.rounds_used());
    if (code != nullptr) {
      tracker.Observe(attempt.owners, "owner-finding", engine.rounds_used());
    }

    // Verification: each party checks the candidate extension against its
    // own beeps (and its owned 1s), then the flags are OR'd noisily.
    CommitState trial = state;
    AppendAttempt(trial, attempt);
    const std::vector<std::size_t> first_violation = AllFirstViolations(
        protocol, trial, static_cast<std::size_t>(start), options_.regime);
    std::vector<std::uint8_t> flags(n, 0);
    for (int i = 0; i < n; ++i) {
      flags[i] =
          first_violation[i] < trial.committed[i].size() ? 1 : 0;
    }
    engine.SetPhase("verify-flags");
    const std::vector<std::uint8_t> verdict =
        CommunicateFlags(engine, flags, flag_reps, options_.flag_rule);
    tracker.Observe(verdict, "verify-flags", engine.rounds_used());

    // Commit/rewind follows party 0's verdict (see sim_common.h on
    // control-flow synchronization).
    if (verdict[0] == 0) {
      state = std::move(trial);
      start += chunk_len;
    }
  }

  result.transcripts = std::move(state.committed);
  result.owners = std::move(state.owners);
  result.outputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    // On budget exhaustion the committed transcript may be short; pad with
    // zeros so output functions see a full-length transcript.
    BitString pi = result.transcripts[i];
    while (static_cast<int>(pi.size()) < T) pi.PushBack(false);
    result.outputs.push_back(protocol.party(i).ComputeOutput(pi));
  }
  result.noisy_rounds_used = engine.rounds_used();
  result.phase_rounds = engine.phase_rounds();
  result.verdict = ComputeVerdict(result.transcripts, T, exhausted);
  tracker.Export(result.verdict);
  return result;
}

std::string RewindSimulator::name() const {
  if (options_.scheduled()) return "rewind(scheduled)";
  return options_.regime == NoiseRegime::kTwoSided ? "rewind(two-sided)"
                                                   : "rewind(down-only)";
}

}  // namespace noisybeeps
