// Internal helpers shared by the rewind-if-error simulators.
//
// CommitState is the per-party progress of a chunked simulation: each
// party's committed reconstruction of the noiseless transcript plus its
// owner records.  Under a correlated channel all per-party entries stay
// identical (every decision below is a deterministic function of shared
// received bits); under the independent channel they may diverge, which
// surfaces as a simulation failure in the caller's success metric.
//
// Control-flow synchronization: commit/rewind decisions are taken from
// party 0's decoded verdict.  Under correlated noise this is exactly the
// paper's scheme (all verdicts coincide).  Under independent noise it
// stands in for the event "the parties stayed synchronized"; a party whose
// own verdict differed carries a divergent transcript from then on, which
// is precisely how desynchronization manifests in the real protocol.
#ifndef NOISYBEEPS_CODING_SIM_COMMON_H_
#define NOISYBEEPS_CODING_SIM_COMMON_H_

#include <vector>

#include "coding/chunk_sim.h"
#include "coding/verification.h"
#include "protocol/protocol.h"

namespace noisybeeps::internal {

struct CommitState {
  std::vector<BitString> committed;        // per-party transcripts
  std::vector<std::vector<int>> owners;    // per-party owner records

  explicit CommitState(int num_parties)
      : committed(num_parties), owners(num_parties) {}

  [[nodiscard]] int num_parties() const {
    return static_cast<int>(committed.size());
  }
};

// Appends a chunk attempt to every party's state.  When the attempt has no
// owner phase, owners extend with -1 (kDownOnly needs none).
void AppendAttempt(CommitState& state, const ChunkAttempt& attempt);

// Truncates party i's state to its verified prefix length.
void TruncateTo(CommitState& state,
                const std::vector<std::size_t>& prefix_len);

// first-violation index for every party over its own committed transcript,
// ignoring violations before round `from` (already-committed rounds a flat
// scheme cannot revisit).
[[nodiscard]] std::vector<std::size_t> AllFirstViolations(
    const Protocol& protocol, const CommitState& state, std::size_t from,
    NoiseRegime regime);

// For scheduled (broadcast-like) protocols: fills every party's owner
// records for chunk rounds [start, start + chunk_len) straight from the
// pre-assigned schedule, in place of Algorithm 1's owner-finding phase.
void InjectScheduleOwners(ChunkAttempt& attempt,
                          const std::vector<int>& schedule, int start);

// Validates a schedule against a protocol: size == length, owners in
// range, and in every round only the scheduled owner ever beeps (checked
// by replaying the reference execution).  Throws on violation.
void RequireValidSchedule(const Protocol& protocol,
                          const std::vector<int>& schedule);

}  // namespace noisybeeps::internal

#endif  // NOISYBEEPS_CODING_SIM_COMMON_H_
