// Internal helpers shared by the rewind-if-error simulators.
//
// CommitState is the per-party progress of a chunked simulation: each
// party's committed reconstruction of the noiseless transcript plus its
// owner records.  Under a correlated channel all per-party entries stay
// identical (every decision below is a deterministic function of shared
// received bits); under the independent channel they may diverge, which
// surfaces as a simulation failure in the caller's success metric.
//
// Control-flow synchronization: commit/rewind decisions are taken from
// party 0's decoded verdict.  Under correlated noise this is exactly the
// paper's scheme (all verdicts coincide).  Under independent noise it
// stands in for the event "the parties stayed synchronized"; a party whose
// own verdict differed carries a divergent transcript from then on, which
// is precisely how desynchronization manifests in the real protocol.
#ifndef NOISYBEEPS_CODING_SIM_COMMON_H_
#define NOISYBEEPS_CODING_SIM_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "coding/chunk_sim.h"
#include "coding/simulator.h"
#include "coding/verification.h"
#include "protocol/protocol.h"

namespace noisybeeps::internal {

// Records the first engine phase in which per-party state stopped being
// identical -- the SimulationVerdict's "which phase first diverged"
// answer.  Simulators call Observe at each synchronization point (decoded
// chunk bits, owner records, flag verdicts, audit results); once a
// divergence is recorded all further calls are no-ops, so the steady-state
// cost is one branch.
class DivergenceTracker {
 public:
  // Observes one per-party vector of values that SHOULD agree across
  // parties.  `phase` labels the phase that produced them; `round` is the
  // engine's rounds_used() at the observation.
  template <typename T>
  void Observe(const std::vector<T>& per_party, const char* phase,
               std::int64_t round) {
    if (diverged_) return;
    for (std::size_t i = 1; i < per_party.size(); ++i) {
      if (!(per_party[i] == per_party[0])) {
        diverged_ = true;
        first_phase_ = phase;
        first_round_ = round;
        return;
      }
    }
  }

  [[nodiscard]] bool diverged() const { return diverged_; }

  // Copies the divergence fields into a verdict (whose status/agreement
  // fields were already filled by ComputeVerdict).
  void Export(SimulationVerdict& verdict) const {
    verdict.first_divergent_phase = first_phase_;
    verdict.first_divergence_round = first_round_;
  }

 private:
  bool diverged_ = false;
  std::string first_phase_;
  std::int64_t first_round_ = -1;
};

struct CommitState {
  std::vector<BitString> committed;        // per-party transcripts
  std::vector<std::vector<int>> owners;    // per-party owner records

  explicit CommitState(int num_parties)
      : committed(num_parties), owners(num_parties) {}

  [[nodiscard]] int num_parties() const {
    return static_cast<int>(committed.size());
  }
};

// Appends a chunk attempt to every party's state.  When the attempt has no
// owner phase, owners extend with -1 (kDownOnly needs none).
void AppendAttempt(CommitState& state, const ChunkAttempt& attempt);

// Truncates party i's state to its verified prefix length.
void TruncateTo(CommitState& state,
                const std::vector<std::size_t>& prefix_len);

// first-violation index for every party over its own committed transcript,
// ignoring violations before round `from` (already-committed rounds a flat
// scheme cannot revisit).
[[nodiscard]] std::vector<std::size_t> AllFirstViolations(
    const Protocol& protocol, const CommitState& state, std::size_t from,
    NoiseRegime regime);

// For scheduled (broadcast-like) protocols: fills every party's owner
// records for chunk rounds [start, start + chunk_len) straight from the
// pre-assigned schedule, in place of Algorithm 1's owner-finding phase.
void InjectScheduleOwners(ChunkAttempt& attempt,
                          const std::vector<int>& schedule, int start);

// Validates a schedule against a protocol: size == length, owners in
// range, and in every round only the scheduled owner ever beeps (checked
// by replaying the reference execution).  Throws on violation.
void RequireValidSchedule(const Protocol& protocol,
                          const std::vector<int>& schedule);

}  // namespace noisybeeps::internal

#endif  // NOISYBEEPS_CODING_SIM_COMMON_H_
