// The "finding owners" phase of Algorithm 1 (Section D.1, Theorem D.1).
//
// Input: each party i knows the bits b^i_m it beeped during a simulated
// chunk and shares (its view of) the chunk transcript pi.  The parties
// must agree, for every round m with pi_m = 1, on an OWNER: a party that
// actually beeped 1 in round m.  Owners are what later lets the
// verification phase check the 1s of the transcript (the owner of a 1 is
// responsible for confirming it), closing the gap that makes 0->1 noise
// hard (Section 2.1).
//
// Protocol (verbatim from Algorithm 1): turn-passing over
// chunk_len + num_parties iterations.  The party whose turn it is beeps
// the codeword C(j) for the smallest not-yet-claimed round j it can own
// (b^i_j = 1 and its view has pi_j = 1), or C(Next) to pass the turn.
// Everyone decodes each codeword from the noisy bits; on Next the turn
// advances, on j the decoded round is recorded as owned by the current
// turn-holder.  Under a correlated channel all parties decode identical
// words, so their turn counters and owner maps never diverge; Theorem D.1
// bounds the failure probability by n^-10 for suitable code length.
#ifndef NOISYBEEPS_CODING_OWNER_FINDING_H_
#define NOISYBEEPS_CODING_OWNER_FINDING_H_

#include <vector>

#include "coding/beep_code.h"
#include "protocol/round_engine.h"

namespace noisybeeps {

struct OwnerFindingResult {
  // owners[i][m]: party i's record of the owner of chunk round m
  // (-1 = no owner recorded).
  std::vector<std::vector<int>> owners;
};

// Preconditions: pi_view and beeped have one entry per party, all of the
// same length == code.chunk_len().
[[nodiscard]] OwnerFindingResult FindOwners(
    RoundEngine& engine, const BeepCode& code,
    const std::vector<BitString>& pi_view,
    const std::vector<BitString>& beeped);

// Checks Theorem D.1's postcondition against ground truth: every round m
// of `true_pi` with value 1 has, at every party, a recorded owner o with
// true_beeped[o][m] == 1, and all parties agree on it.  Returns false on
// any violation.  (Used by tests and benches; not part of the protocol.)
[[nodiscard]] bool OwnersValid(const OwnerFindingResult& result,
                               const BitString& true_pi,
                               const std::vector<BitString>& true_beeped);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_OWNER_FINDING_H_
