#include "coding/beep_code.h"

#include "util/math.h"
#include "util/require.h"

namespace noisybeeps {

BeepCode::BeepCode(int chunk_len, int length_factor, std::uint64_t seed)
    : chunk_len_(chunk_len) {
  NB_REQUIRE(chunk_len >= 1, "chunk length must be positive");
  NB_REQUIRE(length_factor >= 1, "length factor must be positive");
  const std::uint64_t num_messages = static_cast<std::uint64_t>(chunk_len) + 1;
  const std::size_t length =
      static_cast<std::size_t>(length_factor) *
      (CeilLog2(num_messages < 2 ? 2 : num_messages) + 1);
  code_ = std::make_unique<CodebookCode>(
      CodebookCode::Random(num_messages, length, seed));
}

}  // namespace noisybeeps
