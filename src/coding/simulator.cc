#include "coding/simulator.h"

#include "util/require.h"

namespace noisybeeps {

namespace {

// Deterministic tie-break for the plurality transcript: true when a is
// lexicographically less than b (shorter prefix wins on a tie).
bool BitsLess(const BitString& a, const BitString& b) {
  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) return !a[i];
  }
  return a.size() < b.size();
}

}  // namespace

std::string SimulationStatusName(SimulationStatus status) {
  switch (status) {
    case SimulationStatus::kOk:
      return "ok";
    case SimulationStatus::kDegraded:
      return "degraded";
    case SimulationStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

SimulationVerdict ComputeVerdict(const std::vector<BitString>& transcripts,
                                 int full_length, bool budget_exhausted) {
  NB_REQUIRE(!transcripts.empty(), "need at least one transcript");
  const int n = static_cast<int>(transcripts.size());

  SimulationVerdict verdict;
  verdict.budget_exhausted = budget_exhausted;
  verdict.agreement.assign(n, 0);
  // O(n^2) transcript comparisons; n is the party count (tens to a few
  // hundred) and comparisons are word-wise, so this is cheap next to the
  // simulation itself.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (transcripts[i] == transcripts[j]) ++verdict.agreement[i];
    }
  }
  int best = 0;
  for (int i = 0; i < n; ++i) {
    const bool bigger = verdict.agreement[i] > verdict.agreement[best];
    const bool tie_less =
        verdict.agreement[i] == verdict.agreement[best] &&
        BitsLess(transcripts[i], transcripts[best]);
    if (bigger || tie_less) best = i;
  }
  verdict.majority_size = verdict.agreement[best];
  verdict.majority_transcript = transcripts[best];

  if (!budget_exhausted && verdict.majority_size == n &&
      static_cast<int>(verdict.majority_transcript.size()) == full_length) {
    verdict.status = SimulationStatus::kOk;
  } else if (2 * verdict.majority_size > n) {
    verdict.status = SimulationStatus::kDegraded;
  } else {
    verdict.status = SimulationStatus::kFailed;
  }
  return verdict;
}

}  // namespace noisybeeps
