#include "coding/chunk_sim.h"

#include "coding/owner_finding.h"
#include "util/require.h"

namespace noisybeeps {

ChunkAttempt SimulateChunk(const Protocol& protocol,
                           const std::vector<BitString>& committed, int start,
                           int chunk_len, int rep_factor, const BeepCode* code,
                           RoundEngine& engine) {
  const int n = protocol.num_parties();
  NB_REQUIRE(static_cast<int>(committed.size()) == n,
             "need one committed prefix per party");
  NB_REQUIRE(start >= 0 && chunk_len >= 1 &&
                 start + chunk_len <= protocol.length(),
             "chunk out of protocol range");
  NB_REQUIRE(rep_factor >= 1, "repetition factor must be positive");
  for (const BitString& prefix : committed) {
    NB_REQUIRE(static_cast<int>(prefix.size()) == start,
               "committed prefixes must cover exactly the rounds before the "
               "chunk");
  }
  if (code != nullptr) {
    NB_REQUIRE(code->chunk_len() == chunk_len,
               "owner code sized for a different chunk length");
  }

  ChunkAttempt attempt;
  attempt.candidate.assign(n, BitString());
  attempt.beeped.assign(n, BitString());

  // Phase 1: simulation by repetition.  working[i] = committed[i] extended
  // by the candidate bits decoded so far; the party's pure f_m^i reads it.
  engine.SetPhase("chunk-sim");
  std::vector<BitString> working = committed;
  std::vector<std::uint8_t> beeps(n, 0);
  std::vector<std::size_t> ones(n, 0);
  for (int m = 0; m < chunk_len; ++m) {
    for (int i = 0; i < n; ++i) {
      const bool b = protocol.party(i).ChooseBeep(working[i]);
      beeps[i] = b ? 1 : 0;
      attempt.beeped[i].PushBack(b);
    }
    std::fill(ones.begin(), ones.end(), 0);
    for (int t = 0; t < rep_factor; ++t) {
      const auto received = engine.Round(beeps);
      for (int i = 0; i < n; ++i) ones[i] += received[i];
    }
    for (int i = 0; i < n; ++i) {
      const bool bit = 2 * ones[i] >= static_cast<std::size_t>(rep_factor);
      attempt.candidate[i].PushBack(bit);
      working[i].PushBack(bit);
    }
  }

  // Phase 2: finding owners.
  if (code != nullptr) {
    OwnerFindingResult found =
        FindOwners(engine, *code, attempt.candidate, attempt.beeped);
    attempt.owners = std::move(found.owners);
  }
  return attempt;
}

}  // namespace noisybeeps
