// The hierarchical simulator: the full Section D.2 construction, sound for
// protocols of ARBITRARY length at O(log n) overhead.
//
// The flat rewind scheme trusts each chunk's verification verdict forever;
// one corrupted flag exchange plants a permanent error, so its soundness
// degrades linearly with protocol length.  The paper's A_l hierarchy fixes
// this by re-checking progress at geometrically spaced scales with
// geometrically increasing strength: the protocol A_l runs two copies of
// A_{l-1} and then a progress check that binary-searches for the longest
// correctly simulated prefix, using Theta(l)-fold repetition so that a
// level-l check fails with probability exponentially small in l.  Summing
// the (cost x frequency) series over levels keeps the total overhead
// logarithmic while the error per simulated round vanishes.
//
// This implementation realizes the same accounting iteratively: after
// every 2^l-th committed chunk it audits the ENTIRE committed transcript
// with a binary-search progress check at strength (base + slope*l),
// truncating to the verified prefix (the rewind).  A final maximal-
// strength audit gates termination.  Errors that slip a level-0 verdict
// are caught by a level-l audit within 2^l chunks, exactly the
// almost-doubling progress measure of the paper's analysis.
#ifndef NOISYBEEPS_CODING_HIERARCHICAL_SIM_H_
#define NOISYBEEPS_CODING_HIERARCHICAL_SIM_H_

#include "coding/rewind_sim.h"

namespace noisybeeps {

struct HierarchicalSimOptions {
  // Chunking / repetition / flag parameters, as for the flat scheme.
  RewindSimOptions base;
  // Flag repetitions for a level-l audit: audit_flag_base + l *
  // audit_flag_slope (0 base => the flat scheme's default flag reps).
  int audit_flag_base = 0;
  int audit_flag_slope = 4;
  // Levels above this never fire (2^max_level chunks is beyond any
  // realistic run; this only bounds the escalation).
  int max_level = 30;

  static HierarchicalSimOptions TwoSided() { return {}; }
  static HierarchicalSimOptions DownOnly() {
    HierarchicalSimOptions o;
    o.base = RewindSimOptions::DownOnly();
    return o;
  }
};

class HierarchicalSimulator final : public Simulator {
 public:
  explicit HierarchicalSimulator(HierarchicalSimOptions options = {});

  using Simulator::Simulate;
  [[nodiscard]] SimulationResult Simulate(const Protocol& protocol,
                                          const Channel& channel,
                                          const FaultPlan& faults,
                                          Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const HierarchicalSimOptions& options() const {
    return options_;
  }

 private:
  HierarchicalSimOptions options_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_HIERARCHICAL_SIM_H_
