// Algorithm 1: simulating one chunk of a noiseless protocol over the noisy
// channel (Section D.1).
//
// Phase 1 (simulation): each of the chunk's rounds is repeated rep_factor
// times; parties majority-decode each round and feed the decoded bit back
// into their broadcast functions, extending their local candidate
// transcript.
//
// Phase 2 (finding owners, optional): the Algorithm 1 turn-passing
// protocol records an owner for every 1 of the candidate chunk -- see
// coding/owner_finding.h.
//
// The result is per-party: a candidate transcript extension, the bits the
// party itself beeped, and the owner map.  Whether the candidate is
// CORRECT is decided afterwards by the verification phase
// (coding/verification.h); the rewind schemes stitch these pieces together.
#ifndef NOISYBEEPS_CODING_CHUNK_SIM_H_
#define NOISYBEEPS_CODING_CHUNK_SIM_H_

#include <vector>

#include "coding/beep_code.h"
#include "protocol/protocol.h"
#include "protocol/round_engine.h"

namespace noisybeeps {

struct ChunkAttempt {
  // candidate[i]: the chunk bits party i decoded (its transcript extension).
  std::vector<BitString> candidate;
  // beeped[i]: the bits party i itself beeped during the chunk.
  std::vector<BitString> beeped;
  // owners[i][m]: party i's owner record for chunk round m (-1 = none);
  // empty when the owner phase was skipped.
  std::vector<std::vector<int>> owners;
};

// Simulates rounds [start, start + chunk_len) of `protocol`.
// `committed[i]` is party i's committed transcript prefix (its view of the
// first `start` simulated rounds); all committed prefixes must have length
// == start.  rep_factor >= 1.  When `code` is non-null the owner phase
// runs with that code (code->chunk_len() must equal chunk_len).
[[nodiscard]] ChunkAttempt SimulateChunk(const Protocol& protocol,
                                         const std::vector<BitString>& committed,
                                         int start, int chunk_len,
                                         int rep_factor, const BeepCode* code,
                                         RoundEngine& engine);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_CHUNK_SIM_H_
