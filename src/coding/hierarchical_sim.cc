#include "coding/hierarchical_sim.h"

#include <map>

#include "coding/sim_common.h"
#include "fault/injection.h"
#include "util/math.h"
#include "util/require.h"

namespace noisybeeps {

using internal::AllFirstViolations;
using internal::AppendAttempt;
using internal::CommitState;
using internal::DivergenceTracker;
using internal::TruncateTo;

HierarchicalSimulator::HierarchicalSimulator(HierarchicalSimOptions options)
    : options_(options) {
  NB_REQUIRE(options_.audit_flag_base >= 0 && options_.audit_flag_slope >= 0,
             "negative audit parameter");
  NB_REQUIRE(options_.max_level >= 1, "need at least one audit level");
}

namespace {

// Runs one binary-search audit over the full committed transcript and
// truncates every party's state to its verified prefix.  Returns party 0's
// verified prefix length (the scheme's working view of progress).
std::size_t Audit(const Protocol& protocol, CommitState& state,
                  RoundEngine& engine, NoiseRegime regime, FlagRule rule,
                  int flag_reps, DivergenceTracker& tracker) {
  const std::size_t len = state.committed.front().size();
  if (len == 0) return 0;
  const std::vector<std::size_t> first_violation =
      AllFirstViolations(protocol, state, 0, regime);
  engine.SetPhase("audit");
  const std::vector<std::size_t> verified =
      BinarySearchVerifiedPrefix(engine, first_violation, len, flag_reps, rule);
  tracker.Observe(verified, "audit", engine.rounds_used());
  // All parties truncate to the SAME length (party 0's verified prefix):
  // the orchestration keeps per-party transcript lengths equal, and under
  // a correlated channel the verified lengths coincide anyway.  A party
  // whose own verdict differed simply carries its divergent content
  // forward, as it would in a desynchronized real execution.
  const std::vector<std::size_t> uniform(state.committed.size(), verified[0]);
  TruncateTo(state, uniform);
  return verified[0];
}

}  // namespace

SimulationResult HierarchicalSimulator::Simulate(const Protocol& protocol,
                                                 const Channel& channel,
                                                 const FaultPlan& faults,
                                                 Rng& rng) const {
  const int n = protocol.num_parties();
  const int T = protocol.length();
  const RewindSimulator flat(options_.base);  // reuse parameter resolution
  const int rep_factor = flat.EffectiveRepFactor(n);
  const int base_chunk = flat.EffectiveChunkLen(n);
  const int level0_flag_reps = flat.EffectiveFlagReps(n);
  const int audit_base = options_.audit_flag_base > 0
                             ? options_.audit_flag_base
                             : level0_flag_reps;
  const std::int64_t max_rounds =
      options_.base.max_rounds > 0
          ? options_.base.max_rounds
          : 400LL * (T + 64) *
                (CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n)) + 2);

  if (options_.base.scheduled()) {
    internal::RequireValidSchedule(protocol, options_.base.owner_schedule);
  }

  FaultyRoundEngine engine(channel, rng, n, faults);
  CommitState state(n);
  internal::DivergenceTracker tracker;
  std::map<int, BeepCode> codes;

  std::int64_t commits = 0;
  int start = 0;
  bool exhausted = false;
  bool final_audit_passed = false;
  while (!final_audit_passed) {
    if (engine.rounds_used() > max_rounds) {
      exhausted = true;
      break;
    }

    if (start < T) {
      const int chunk_len = std::min(base_chunk, T - start);
      const BeepCode* code = nullptr;
      if (options_.base.regime == NoiseRegime::kTwoSided &&
          !options_.base.scheduled()) {
        auto it = codes.find(chunk_len);
        if (it == codes.end()) {
          it = codes
                   .emplace(chunk_len,
                            BeepCode(chunk_len,
                                     options_.base.code_length_factor,
                                     options_.base.code_seed + chunk_len))
                   .first;
        }
        code = &it->second;
      }

      ChunkAttempt attempt =
          SimulateChunk(protocol, state.committed, start, chunk_len,
                        rep_factor, code, engine);
      if (options_.base.scheduled()) {
        internal::InjectScheduleOwners(attempt, options_.base.owner_schedule,
                                       start);
      }
      tracker.Observe(attempt.candidate, "chunk-sim", engine.rounds_used());
      if (code != nullptr) {
        tracker.Observe(attempt.owners, "owner-finding",
                        engine.rounds_used());
      }
      CommitState trial = state;
      AppendAttempt(trial, attempt);
      const std::vector<std::size_t> first_violation = AllFirstViolations(
          protocol, trial, static_cast<std::size_t>(start),
          options_.base.regime);
      std::vector<std::uint8_t> flags(n, 0);
      for (int i = 0; i < n; ++i) {
        flags[i] = first_violation[i] < trial.committed[i].size() ? 1 : 0;
      }
      engine.SetPhase("verify-flags");
      const std::vector<std::uint8_t> verdict = CommunicateFlags(
          engine, flags, level0_flag_reps, options_.base.flag_rule);
      tracker.Observe(verdict, "verify-flags", engine.rounds_used());
      if (verdict[0] == 0) {
        state = std::move(trial);
        start += chunk_len;
        ++commits;
        // Escalating audits: a level-l audit after every 2^l-th commit.
        for (int l = 1; l <= options_.max_level && commits % (1LL << l) == 0;
             ++l) {
          const int reps = audit_base + l * options_.audit_flag_slope;
          start = static_cast<int>(Audit(protocol, state, engine,
                                         options_.base.regime,
                                         options_.base.flag_rule, reps,
                                         tracker));
        }
      }
      continue;
    }

    // start == T: the final gate.  Audit at maximal strength; pass iff the
    // whole transcript survives.
    const int final_level =
        CeilLog2(static_cast<std::uint64_t>(commits < 2 ? 2 : commits)) + 2;
    const int reps = audit_base + final_level * options_.audit_flag_slope;
    start = static_cast<int>(Audit(protocol, state, engine,
                                   options_.base.regime,
                                   options_.base.flag_rule, reps, tracker));
    final_audit_passed = start == T;
  }

  SimulationResult result;
  result.transcripts = std::move(state.committed);
  result.owners = std::move(state.owners);
  result.outputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    BitString pi = result.transcripts[i];
    while (static_cast<int>(pi.size()) < T) pi.PushBack(false);
    result.outputs.push_back(protocol.party(i).ComputeOutput(pi));
  }
  result.noisy_rounds_used = engine.rounds_used();
  result.phase_rounds = engine.phase_rounds();
  result.verdict = ComputeVerdict(result.transcripts, T, exhausted);
  tracker.Export(result.verdict);
  return result;
}

std::string HierarchicalSimulator::name() const {
  return options_.base.regime == NoiseRegime::kTwoSided
             ? "hierarchical(two-sided)"
             : "hierarchical(down-only)";
}

}  // namespace noisybeeps
