// The code C : [chunk_len] ∪ {Next} -> {0,1}^L used by Algorithm 1's
// owner-finding phase.
//
// The paper asks for "a constant rate error correcting code"; every
// message is either a round index inside the chunk or the special Next
// token that passes the turn.  We realize C as a seeded-random codebook of
// chunk_len + 1 words of length L = factor * (ceil(log2(chunk_len+1)) + 1)
// with exact nearest-codeword (maximum-likelihood) decoding, which is the
// optimal decoder on any memoryless binary channel with flip rates below
// 1/2.  A random codebook meets the Gilbert-Varshamov distance with high
// probability, and the seed makes the codebook common knowledge (it is
// part of the protocol, shared by all parties).
#ifndef NOISYBEEPS_CODING_BEEP_CODE_H_
#define NOISYBEEPS_CODING_BEEP_CODE_H_

#include <memory>

#include "ecc/codebook.h"

namespace noisybeeps {

class BeepCode {
 public:
  // Message values: rounds 0..chunk_len-1, plus Next == chunk_len.
  // Preconditions: chunk_len >= 1, length_factor >= 1.
  BeepCode(int chunk_len, int length_factor, std::uint64_t seed);

  [[nodiscard]] int chunk_len() const { return chunk_len_; }
  [[nodiscard]] std::uint64_t next_token() const { return chunk_len_; }
  [[nodiscard]] std::size_t codeword_length() const {
    return code_->codeword_length();
  }

  [[nodiscard]] BitString Encode(std::uint64_t message) const {
    return code_->Encode(message);
  }
  [[nodiscard]] std::uint64_t Decode(const BitString& received) const {
    return code_->Decode(received);
  }

  [[nodiscard]] const CodebookCode& codebook() const { return *code_; }

 private:
  int chunk_len_;
  std::unique_ptr<CodebookCode> code_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_BEEP_CODE_H_
