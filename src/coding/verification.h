// The verification phase of the rewind-if-error schemes (Sections 2.1 and
// D.2): deciding whether a simulated transcript (prefix) is consistent
// with what the parties actually beeped, and communicating the verdict
// over the noisy channel as an OR of error flags.
//
// Who checks what (the paper's key idea):
//   - pi_m = 0: every party checks that it beeped 0 in round m.  A party
//     that beeped 1 knows the 0 is wrong and flags.
//   - pi_m = 1 with a recorded owner: the OWNER checks that it indeed
//     beeped 1 (given the candidate prefix).  If the owner would not have
//     beeped 1, the 1 is unsubstantiated and the owner flags.
//   - pi_m = 1 with no recorded owner: flagged by every party (Section
//     2.1: "an error flag for rounds with no owner can be raised by any
//     player").
// Under one-sided 1->0 noise owners are unnecessary (a received 1 is
// always genuine), which is regime kDownOnly -- the source of the paper's
// constant-overhead claim for that direction.
//
// A cleared verification certifies exact correctness: if no party flags,
// then every 0 had all-silent beeps and every 1 had its owner beeping, so
// the candidate equals the noiseless transcript continuation round for
// round.
#ifndef NOISYBEEPS_CODING_VERIFICATION_H_
#define NOISYBEEPS_CODING_VERIFICATION_H_

#include <vector>

#include "protocol/protocol.h"
#include "protocol/round_engine.h"

namespace noisybeeps {

enum class NoiseRegime {
  kTwoSided,  // 0->1 flips possible: verification needs owners
  kDownOnly,  // only 1->0 flips: received 1s are self-certifying
};

enum class FlagRule {
  kMajority,  // decoded flag = majority of the repetitions (two-sided ML)
  kAnyOne,    // decoded flag = 1 iff any repetition read 1 (exact under
              // one-sided-down noise, where a received 1 is never spurious)
};

// The first round index m in [from, transcript.size()) at which party
// `party_index` detects an inconsistency per the rules above, or
// transcript.size() if it detects none.  Rounds before `from` are replayed
// (they set the context for f_m^i) but not checked -- a flat rewind scheme
// cannot revisit rounds it already committed.  `owners[m]` is the party's
// owner record for round m (-1 = none); required (same size as transcript)
// in regime kTwoSided, ignored in kDownOnly.  Replays the party's pure
// beep function along the transcript, so cost is one pass.
[[nodiscard]] std::size_t FirstViolation(const Protocol& protocol,
                                         int party_index,
                                         const BitString& transcript,
                                         const std::vector<int>& owners,
                                         NoiseRegime regime,
                                         std::size_t from = 0);

// One flag exchange: parties with flag != 0 beep in each of `reps` rounds;
// returns each party's decoded verdict under `rule`.
// Precondition: flags.size() == engine.num_parties(), reps >= 1.
[[nodiscard]] std::vector<std::uint8_t> CommunicateFlags(
    RoundEngine& engine, const std::vector<std::uint8_t>& flags, int reps,
    FlagRule rule);

// Binary search for the longest verified prefix (the progress check of
// Section D.2).  first_violation[i] is party i's local first-bad-round
// index (from FirstViolation) over a transcript of length `total_len`.
// Runs ceil(log2(total_len + 1)) flag exchanges of `reps` rounds each; all
// parties follow the same probe schedule, so under a correlated channel
// they return identical results.  Returns each party's view of the
// verified prefix length.
[[nodiscard]] std::vector<std::size_t> BinarySearchVerifiedPrefix(
    RoundEngine& engine, const std::vector<std::size_t>& first_violation,
    std::size_t total_len, int reps, FlagRule rule);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_VERIFICATION_H_
