#include "coding/owner_finding.h"

#include "util/require.h"

namespace noisybeeps {
namespace {

// Party-local owner-finding state; everything here is derived from the
// party's input and the bits it received, never from other parties' state.
struct LocalState {
  int turn = 0;                    // whose turn this party believes it is
  std::vector<std::uint8_t> claimed;  // rounds this party has seen claimed
  std::vector<int> owner;          // recorded owners, -1 = none
};

// The smallest round this party can still claim, or the Next token.
std::uint64_t NextMessage(int party, const LocalState& state,
                          const BitString& pi_view, const BitString& beeped,
                          const BeepCode& code) {
  if (state.turn == party) {
    for (std::size_t j = 0; j < beeped.size(); ++j) {
      if (beeped[j] && pi_view[j] && state.claimed[j] == 0) {
        return j;
      }
    }
  }
  return code.next_token();
}

}  // namespace

OwnerFindingResult FindOwners(RoundEngine& engine, const BeepCode& code,
                              const std::vector<BitString>& pi_view,
                              const std::vector<BitString>& beeped) {
  const auto n = static_cast<int>(engine.num_parties());
  NB_REQUIRE(static_cast<int>(pi_view.size()) == n &&
                 static_cast<int>(beeped.size()) == n,
             "need one chunk view per party");
  const std::size_t chunk_len = code.chunk_len();
  for (int i = 0; i < n; ++i) {
    NB_REQUIRE(pi_view[i].size() == chunk_len &&
                   beeped[i].size() == chunk_len,
               "chunk views must match the code's chunk length");
  }

  std::vector<LocalState> state(n);
  for (auto& s : state) {
    s.claimed.assign(chunk_len, 0);
    s.owner.assign(chunk_len, -1);
  }

  engine.SetPhase("owner-finding");
  const std::size_t word_len = code.codeword_length();
  const int iterations = static_cast<int>(chunk_len) + n;
  std::vector<std::uint8_t> beeps(n, 0);
  std::vector<BitString> received(n);

  for (int l = 0; l < iterations; ++l) {
    // Transmission: each party that believes it holds the turn beeps its
    // codeword; everyone else is silent.  (Under correlated noise the turn
    // beliefs agree and exactly one party speaks; under independent noise
    // diverged beliefs can collide -- the OR then garbles the word, which
    // downstream verification treats as any other decoding error.)
    std::vector<BitString> words(n);
    for (int i = 0; i < n; ++i) {
      if (state[i].turn == i) {
        words[i] = code.Encode(
            NextMessage(i, state[i], pi_view[i], beeped[i], code));
      }
    }
    for (int i = 0; i < n; ++i) received[i] = BitString();
    for (std::size_t t = 0; t < word_len; ++t) {
      for (int i = 0; i < n; ++i) {
        beeps[i] = (!words[i].empty() && words[i][t]) ? 1 : 0;
      }
      const auto round_bits = engine.Round(beeps);
      for (int i = 0; i < n; ++i) received[i].PushBack(round_bits[i] != 0);
    }
    // Decoding + state update, per party, from that party's received bits.
    for (int i = 0; i < n; ++i) {
      // Once this party's turn counter has run past the last party (only
      // possible after decoding errors), every remaining iteration carries
      // no usable information for it: ignore locally rather than record
      // claims by a non-existent party.
      if (state[i].turn >= n) continue;
      const std::uint64_t sigma = code.Decode(received[i]);
      if (sigma == code.next_token()) {
        ++state[i].turn;
      } else {
        const auto j = static_cast<std::size_t>(sigma);
        state[i].claimed[j] = 1;
        state[i].owner[j] = state[i].turn;
      }
    }
  }

  OwnerFindingResult result;
  result.owners.reserve(n);
  for (int i = 0; i < n; ++i) result.owners.push_back(std::move(state[i].owner));
  return result;
}

bool OwnersValid(const OwnerFindingResult& result, const BitString& true_pi,
                 const std::vector<BitString>& true_beeped) {
  const std::size_t chunk_len = true_pi.size();
  for (std::size_t m = 0; m < chunk_len; ++m) {
    if (!true_pi[m]) continue;
    const int owner = result.owners.front()[m];
    if (owner < 0 || owner >= static_cast<int>(true_beeped.size())) {
      return false;
    }
    if (!true_beeped[owner][m]) return false;
    for (const auto& view : result.owners) {
      if (view[m] != owner) return false;
    }
  }
  return true;
}

}  // namespace noisybeeps
