// The naive O(log n)-overhead simulation: repeat every round of Pi
// `rep_factor` times over the noisy channel and majority-decode.
//
// This is footnote 1 of the paper: protocols of length polynomial in n are
// trivially simulated this way with rep_factor = Theta(log n) (a union
// bound over rounds).  It is also the simulation phase inside Algorithm 1.
// For protocols of arbitrary length the per-round failure accumulates --
// which is exactly why the chunked rewind schemes exist; the benchmarks
// exhibit the crossover.
#ifndef NOISYBEEPS_CODING_REPETITION_SIM_H_
#define NOISYBEEPS_CODING_REPETITION_SIM_H_

#include "coding/simulator.h"

namespace noisybeeps {

struct RepetitionSimOptions {
  // Repetitions per protocol round; 0 means the default
  // rep_c * ceil(log2(max(n, 2))) + 1 (odd, so majorities are strict).
  int rep_factor = 0;
  int rep_c = 4;
};

class RepetitionSimulator final : public Simulator {
 public:
  explicit RepetitionSimulator(RepetitionSimOptions options = {});

  using Simulator::Simulate;
  [[nodiscard]] SimulationResult Simulate(const Protocol& protocol,
                                          const Channel& channel,
                                          const FaultPlan& faults,
                                          Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  // The repetition factor used for an n-party protocol.
  [[nodiscard]] int EffectiveRepFactor(int num_parties) const;

 private:
  RepetitionSimOptions options_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_REPETITION_SIM_H_
