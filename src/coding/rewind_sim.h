// The flat rewind-if-error simulator (Section D.2, without the A_l
// hierarchy): simulate a chunk, verify it, commit on a clear verdict,
// retry otherwise.
//
// Two presets realize the paper's asymmetry between the noise directions:
//
//  * kTwoSided / one-sided-up channels (Theorem 1.2's O(log n) overhead):
//    chunks of ~n rounds are simulated with Theta(log n)-fold repetition,
//    owners are computed for every 1 via Algorithm 1, and verification
//    has owners vouch for 1s while everyone polices 0s.
//
//  * kDownOnly channels (the Section 2 constant-overhead direction):
//    chunks of O(1) rounds are simulated with NO repetition and NO owner
//    phase -- a received 1 is self-certifying, and a party whose beeped 1
//    was dropped raises the flag itself.  The resulting blowup is a
//    constant independent of n, which bench_asymmetry exhibits against
//    the up-noise preset's Theta(log n).
//
// The flat scheme's per-chunk verification error is made polynomially
// small, so it is sound for protocols of length poly(n) (a union bound
// over chunks); for arbitrary lengths use HierarchicalSimulator, which
// re-audits committed history at geometrically escalating strength.
#ifndef NOISYBEEPS_CODING_REWIND_SIM_H_
#define NOISYBEEPS_CODING_REWIND_SIM_H_

#include "coding/simulator.h"
#include "coding/verification.h"

namespace noisybeeps {

struct RewindSimOptions {
  NoiseRegime regime = NoiseRegime::kTwoSided;
  FlagRule flag_rule = FlagRule::kMajority;
  // Chunk length; 0 => n (two-sided, as in the paper) or 8 (down-only /
  // scheduled).
  int chunk_len = 0;
  // Per-round repetitions in the simulation phase; 0 => rep_c*log2(n)+1
  // (two-sided) or 1 (down-only / scheduled).
  int rep_factor = 0;
  int rep_c = 3;
  // Beep-code length factor for the owner phase (bits per symbol ~
  // factor * (log2(chunk_len+1)+1)).
  int code_length_factor = 6;
  // Rounds per flag exchange; 0 => 4*log2(n)+8 (two-sided) or 5 (down-only
  // / scheduled).
  int flag_reps = 0;
  std::uint64_t code_seed = 0x5eedbee9;
  // Hard budget of noisy rounds; 0 => 300*(T+64)*(log2(n)+2).  Exhaustion
  // sets SimulationResult::budget_exhausted.
  std::int64_t max_rounds = 0;
  // Pre-assigned round ownership for SCHEDULED (broadcast-like) protocols:
  // owner_schedule[m] is the only party that may beep in protocol round m.
  // When non-empty (size must equal the protocol length), Algorithm 1's
  // owner-finding phase is skipped entirely -- the schedule IS the owner
  // map -- and the cheap defaults (rep 1, short chunks, constant flags)
  // apply.  This is the Section 1.3 / 2.1 contrast with [EKS18] made
  // executable: when every transcript bit has a pre-assigned owner, both
  // 0s and 1s are verifiable by that owner alone, and constant-overhead
  // simulation is possible even under two-sided noise.  The Theta(log n)
  // of Theorems 1.1/1.2 is the price of the beeping model's simultaneity,
  // paid only by protocols that use it.
  std::vector<int> owner_schedule;

  [[nodiscard]] bool scheduled() const { return !owner_schedule.empty(); }

  // The paper's two presets, plus the EKS18-style scheduled preset.
  static RewindSimOptions TwoSided() { return {}; }
  static RewindSimOptions DownOnly() {
    RewindSimOptions o;
    o.regime = NoiseRegime::kDownOnly;
    o.flag_rule = FlagRule::kAnyOne;
    return o;
  }
  static RewindSimOptions Scheduled(std::vector<int> schedule) {
    RewindSimOptions o;
    o.owner_schedule = std::move(schedule);
    return o;
  }
};

class RewindSimulator final : public Simulator {
 public:
  explicit RewindSimulator(RewindSimOptions options = {});

  using Simulator::Simulate;
  [[nodiscard]] SimulationResult Simulate(const Protocol& protocol,
                                          const Channel& channel,
                                          const FaultPlan& faults,
                                          Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const RewindSimOptions& options() const { return options_; }

  // Effective parameters for an n-party protocol (defaults resolved).
  [[nodiscard]] int EffectiveChunkLen(int n) const;
  [[nodiscard]] int EffectiveRepFactor(int n) const;
  [[nodiscard]] int EffectiveFlagReps(int n) const;

 private:
  RewindSimOptions options_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CODING_REWIND_SIM_H_
