#include "channel/adversary.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

AdversarialCorrectionChannel::AdversarialCorrectionChannel(
    double epsilon, CorrectionPolicy policy)
    : epsilon_(epsilon), policy_(policy), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
             "noise rate must lie in [0, 1/2)");
}

bool AdversarialCorrectionChannel::SharedOutcome(std::int64_t num_beepers,
                                                 Rng& rng) const {
  const bool or_bit = num_beepers > 0;
  // The underlying two-sided channel decides on a flip...
  bool out = or_bit != noise_.Sample(rng);
  // ...then the adversary, knowing the truth, may revert it.
  if (out != or_bit) {
    const bool is_drop = or_bit;  // a flipped 1 (delivered as 0)
    const bool revert =
        policy_ == CorrectionPolicy::kCorrectAll ||
        (policy_ == CorrectionPolicy::kCorrectDrops && is_drop) ||
        (policy_ == CorrectionPolicy::kCorrectSpurious && !is_drop);
    if (revert) out = or_bit;
  }
  return out;
}

void AdversarialCorrectionChannel::Deliver(std::int64_t num_beepers,
                                           std::span<std::uint8_t> received,
                                           Rng& rng) const {
  FillShared(received, SharedOutcome(num_beepers, rng));
}

void AdversarialCorrectionChannel::DeliverWords(
    std::int64_t num_beepers, std::span<std::uint64_t> received,
    std::int64_t num_parties, WordMode mode, Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // one draw per round either way: the modes coincide
  FillSharedWords(received, num_parties, SharedOutcome(num_beepers, rng));
}

std::string AdversarialCorrectionChannel::name() const {
  const char* policy = "never";
  switch (policy_) {
    case CorrectionPolicy::kNever:
      policy = "never";
      break;
    case CorrectionPolicy::kCorrectDrops:
      policy = "drops";
      break;
    case CorrectionPolicy::kCorrectSpurious:
      policy = "spurious";
      break;
    case CorrectionPolicy::kCorrectAll:
      policy = "all";
      break;
  }
  return "adversary(eps=" + FormatDouble(epsilon_) + ",corrects=" + policy +
         ")";
}

}  // namespace noisybeeps
