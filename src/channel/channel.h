// The beeping channel abstraction.
//
// In every round, each of the n parties either beeps (1) or stays silent
// (0).  A Channel turns the round's BEEPER COUNT into the bit each party
// *receives*, applying its noise model.  The paper's beeping channels
// depend on the count only through the OR (count > 0); carrying the count
// additionally admits the neighbouring radio-network models the paper's
// related-work section situates itself against -- e.g. collision-as-
// silence, where two simultaneous beeps sound like none.  Correlated
// channels deliver the same bit to everyone (all parties share one
// transcript); the independent-noise channel delivers a per-party noisy
// copy (Section 1.2 of the paper).
#ifndef NOISYBEEPS_CHANNEL_CHANNEL_H_
#define NOISYBEEPS_CHANNEL_CHANNEL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "util/rng.h"

namespace noisybeeps {

// Fills every listener slot with the same received bit.  Shared-draw
// channels (everything except the independent-noise channel) hand one
// transcript to all parties; a memset is word-wide where the obvious
// byte loop is not.
inline void FillShared(std::span<std::uint8_t> received, bool bit) {
  if (!received.empty()) {
    std::memset(received.data(), bit ? 1 : 0, received.size());
  }
}

class Channel {
 public:
  virtual ~Channel() = default;

  // Delivers one round.  `num_beepers` is the number of parties beeping
  // this round (passing a bool works too: the OR converts to 0/1);
  // `received` has one slot per party and is filled with the bit each
  // party hears (0/1).  The rng drives the channel noise for this round.
  virtual void Deliver(int num_beepers, std::span<std::uint8_t> received,
                       Rng& rng) const = 0;

  // True when every party is guaranteed to receive the same bit, i.e. the
  // parties share a single transcript.
  [[nodiscard]] virtual bool is_correlated() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // Convenience for correlated channels: the single shared received bit.
  // Precondition: is_correlated().
  [[nodiscard]] bool DeliverShared(int num_beepers, Rng& rng) const;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_CHANNEL_H_
