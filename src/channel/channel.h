// The beeping channel abstraction.
//
// In every round, each of the n parties either beeps (1) or stays silent
// (0).  A Channel turns the round's BEEPER COUNT into the bit each party
// *receives*, applying its noise model.  The paper's beeping channels
// depend on the count only through the OR (count > 0); carrying the count
// additionally admits the neighbouring radio-network models the paper's
// related-work section situates itself against -- e.g. collision-as-
// silence, where two simultaneous beeps sound like none.  Correlated
// channels deliver the same bit to everyone (all parties share one
// transcript); the independent-noise channel delivers a per-party noisy
// copy (Section 1.2 of the paper).
//
// Two delivery representations coexist (docs/PERFORMANCE.md):
//   Deliver       one byte per listener -- the historical scalar path.
//   DeliverWords  64 listeners packed per u64 word -- the word-parallel
//                 path the mega-n round engine runs on.
// Party and beeper counts are std::int64_t throughout: the packed path
// simulates n in the millions and beyond, where `int` silently caps the
// count and invites overflow UB.
#ifndef NOISYBEEPS_CHANNEL_CHANNEL_H_
#define NOISYBEEPS_CHANNEL_CHANNEL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "util/rng.h"

namespace noisybeeps {

// How the word-level delivery path treats the random stream:
//   kStreamCompat  draw-for-draw identical to the scalar Deliver path:
//                  same seed => same bits AND the same number of NextU64
//                  calls, so every pre-word golden (channel stream tests,
//                  EXPERIMENTS.md numbers) stays valid.
//   kFast          batched noise sampling -- geometric skip-sampling for
//                  sparse noise, bit-sliced word draws otherwise -- with
//                  its own goldens, gated by perfguard baselines.
// Shared-draw channels consume one draw per round either way, so for them
// the modes coincide by construction; only per-listener noise (the
// independent channel) distinguishes them.
enum class WordMode : std::uint8_t { kStreamCompat, kFast };

// Bits per packed word; words needed for n parties; the valid-bit mask of
// the LAST word (all-ones when n is a multiple of 64).  These mirror
// BitString's packing so a BitString::words() span is directly usable as
// a beep-word span.
inline constexpr std::int64_t kWordBits = 64;

[[nodiscard]] constexpr std::size_t WordsForParties(std::int64_t n) {
  return static_cast<std::size_t>((n + kWordBits - 1) / kWordBits);
}

[[nodiscard]] constexpr std::uint64_t TailWordMask(std::int64_t n) {
  return n % kWordBits == 0
             ? ~std::uint64_t{0}
             : (std::uint64_t{1} << (n % kWordBits)) - 1;
}

// Fills every listener slot with the same received bit.  Shared-draw
// channels (everything except the independent-noise channel) hand one
// transcript to all parties; a memset is word-wide where the obvious
// byte loop is not.
inline void FillShared(std::span<std::uint8_t> received, bool bit) {
  if (!received.empty()) {
    std::memset(received.data(), bit ? 1 : 0, received.size());
  }
}

// Word-level counterpart of FillShared: all-ones (masked to the valid
// tail bits) or all-zeros.  Precondition: words.size() == WordsForParties(n).
void FillSharedWords(std::span<std::uint64_t> words, std::int64_t n,
                     bool bit);

// Packs one byte per listener into words (tail bits zeroed) and back.
// Preconditions: words.size() == WordsForParties(bytes.size()).
void PackBits(std::span<const std::uint8_t> bytes,
              std::span<std::uint64_t> words);
void UnpackBits(std::span<const std::uint64_t> words,
                std::span<std::uint8_t> bytes);

class Channel {
 public:
  virtual ~Channel() = default;

  // Delivers one round.  `num_beepers` is the number of parties beeping
  // this round (passing a bool works too: the OR converts to 0/1);
  // `received` has one slot per party and is filled with the bit each
  // party hears (0/1).  The rng drives the channel noise for this round.
  virtual void Deliver(std::int64_t num_beepers,
                       std::span<std::uint8_t> received, Rng& rng) const = 0;

  // Word-level delivery: `received` holds WordsForParties(num_parties)
  // words, bit i of word w is what party w*64+i hears, and the unused
  // tail bits of the last word come back zero (so callers can OR and
  // popcount the result without masking).  The default implementation
  // round-trips through the scalar Deliver -- bit-identical by
  // construction, not fast; every built-in channel overrides it.
  // Preconditions: num_parties >= 1, 0 <= num_beepers <= num_parties,
  // received.size() == WordsForParties(num_parties).
  virtual void DeliverWords(std::int64_t num_beepers,
                            std::span<std::uint64_t> received,
                            std::int64_t num_parties, WordMode mode,
                            Rng& rng) const;

  // True when every party is guaranteed to receive the same bit, i.e. the
  // parties share a single transcript.
  [[nodiscard]] virtual bool is_correlated() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // Convenience for correlated channels: the single shared received bit.
  // Precondition: is_correlated().
  [[nodiscard]] bool DeliverShared(std::int64_t num_beepers, Rng& rng) const;

 protected:
  // Shared precondition checks for DeliverWords implementations.
  static void CheckWordDelivery(std::int64_t num_beepers,
                                std::span<const std::uint64_t> received,
                                std::int64_t num_parties);
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_CHANNEL_H_
