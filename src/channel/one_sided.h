// One-sided noisy beeping channels (Appendix A.1.2).
//
// OneSidedUpChannel: noise only turns silence into a beep (0 -> 1 with
// probability eps; a transmitted 1 is always delivered).  This is the
// relaxation under which the paper proves its lower bound: a received 0
// certifies that all parties beeped 0.
//
// OneSidedDownChannel: the symmetric-opposite regime where noise only
// drops beeps (1 -> 0 with probability eps).  Section 2 observes that this
// direction admits constant-overhead simulation, because the party whose
// beep was dropped detects the error by itself.
#ifndef NOISYBEEPS_CHANNEL_ONE_SIDED_H_
#define NOISYBEEPS_CHANNEL_ONE_SIDED_H_

#include "channel/channel.h"

namespace noisybeeps {

class OneSidedUpChannel final : public Channel {
 public:
  // Precondition: 0 <= epsilon < 1.
  explicit OneSidedUpChannel(double epsilon);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double epsilon() const { return epsilon_; }

 private:
  // One draw at most per round (short-circuited on a beep), shared by
  // both delivery paths: the modes coincide.
  [[nodiscard]] bool SharedOutcome(std::int64_t num_beepers, Rng& rng) const;

  double epsilon_;
  BernoulliSampler noise_;
};

class OneSidedDownChannel final : public Channel {
 public:
  // Precondition: 0 <= epsilon < 1.
  explicit OneSidedDownChannel(double epsilon);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double epsilon() const { return epsilon_; }

 private:
  // One draw at most per round (short-circuited on silence), shared by
  // both delivery paths: the modes coincide.
  [[nodiscard]] bool SharedOutcome(std::int64_t num_beepers, Rng& rng) const;

  double epsilon_;
  BernoulliSampler noise_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_ONE_SIDED_H_
