// The paper's main model (Appendix A.1.1): the n-party epsilon-noisy
// beeping channel with correlated noise.  In every round the shared output
// is OR XOR N_eps where N_eps is 1 with probability eps, independently
// across rounds; all parties receive the same bit.
#ifndef NOISYBEEPS_CHANNEL_CORRELATED_H_
#define NOISYBEEPS_CHANNEL_CORRELATED_H_

#include "channel/channel.h"

namespace noisybeeps {

class CorrelatedNoisyChannel final : public Channel {
 public:
  // Precondition: 0 <= epsilon < 1/2 (epsilon = 0 degenerates to the
  // noiseless channel; >= 1/2 carries no information).
  explicit CorrelatedNoisyChannel(double epsilon);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double epsilon() const { return epsilon_; }

 private:
  // The single shared draw both delivery paths fill from: one Sample per
  // round, so scalar, stream-compat, and fast are one and the same stream.
  [[nodiscard]] bool SharedOutcome(std::int64_t num_beepers, Rng& rng) const;

  double epsilon_;
  BernoulliSampler noise_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_CORRELATED_H_
