#include "channel/one_sided.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

OneSidedUpChannel::OneSidedUpChannel(double epsilon)
    : epsilon_(epsilon), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "noise rate must lie in [0, 1)");
}

bool OneSidedUpChannel::SharedOutcome(std::int64_t num_beepers,
                                      Rng& rng) const {
  // Short-circuit is part of the stream contract: no draw when someone
  // beeped.
  return num_beepers > 0 || noise_.Sample(rng);
}

void OneSidedUpChannel::Deliver(std::int64_t num_beepers,
                                std::span<std::uint8_t> received,
                                Rng& rng) const {
  FillShared(received, SharedOutcome(num_beepers, rng));
}

void OneSidedUpChannel::DeliverWords(std::int64_t num_beepers,
                                     std::span<std::uint64_t> received,
                                     std::int64_t num_parties, WordMode mode,
                                     Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // one draw per round either way: the modes coincide
  FillSharedWords(received, num_parties, SharedOutcome(num_beepers, rng));
}

std::string OneSidedUpChannel::name() const {
  return "one-sided-up(eps=" + FormatDouble(epsilon_) + ")";
}

OneSidedDownChannel::OneSidedDownChannel(double epsilon)
    : epsilon_(epsilon), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "noise rate must lie in [0, 1)");
}

bool OneSidedDownChannel::SharedOutcome(std::int64_t num_beepers,
                                        Rng& rng) const {
  // Short-circuit on silence is part of the stream contract.
  return num_beepers > 0 && !noise_.Sample(rng);
}

void OneSidedDownChannel::Deliver(std::int64_t num_beepers,
                                  std::span<std::uint8_t> received,
                                  Rng& rng) const {
  FillShared(received, SharedOutcome(num_beepers, rng));
}

void OneSidedDownChannel::DeliverWords(std::int64_t num_beepers,
                                       std::span<std::uint64_t> received,
                                       std::int64_t num_parties,
                                       WordMode mode, Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // one draw per round either way: the modes coincide
  FillSharedWords(received, num_parties, SharedOutcome(num_beepers, rng));
}

std::string OneSidedDownChannel::name() const {
  return "one-sided-down(eps=" + FormatDouble(epsilon_) + ")";
}

}  // namespace noisybeeps
