#include "channel/one_sided.h"

#include "util/require.h"

namespace noisybeeps {

OneSidedUpChannel::OneSidedUpChannel(double epsilon) : epsilon_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "noise rate must lie in [0, 1)");
}

void OneSidedUpChannel::Deliver(int num_beepers,
                                std::span<std::uint8_t> received,
                                Rng& rng) const {
  const bool out = num_beepers > 0 || rng.Bernoulli(epsilon_);
  for (auto& bit : received) bit = out ? 1 : 0;
}

std::string OneSidedUpChannel::name() const {
  return "one-sided-up(eps=" + std::to_string(epsilon_) + ")";
}

OneSidedDownChannel::OneSidedDownChannel(double epsilon) : epsilon_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "noise rate must lie in [0, 1)");
}

void OneSidedDownChannel::Deliver(int num_beepers,
                                  std::span<std::uint8_t> received,
                                  Rng& rng) const {
  const bool out = num_beepers > 0 && !rng.Bernoulli(epsilon_);
  for (auto& bit : received) bit = out ? 1 : 0;
}

std::string OneSidedDownChannel::name() const {
  return "one-sided-down(eps=" + std::to_string(epsilon_) + ")";
}

}  // namespace noisybeeps
