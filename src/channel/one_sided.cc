#include "channel/one_sided.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

OneSidedUpChannel::OneSidedUpChannel(double epsilon)
    : epsilon_(epsilon), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "noise rate must lie in [0, 1)");
}

void OneSidedUpChannel::Deliver(int num_beepers,
                                std::span<std::uint8_t> received,
                                Rng& rng) const {
  const bool out = num_beepers > 0 || noise_.Sample(rng);
  FillShared(received, out);
}

std::string OneSidedUpChannel::name() const {
  return "one-sided-up(eps=" + FormatDouble(epsilon_) + ")";
}

OneSidedDownChannel::OneSidedDownChannel(double epsilon)
    : epsilon_(epsilon), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "noise rate must lie in [0, 1)");
}

void OneSidedDownChannel::Deliver(int num_beepers,
                                  std::span<std::uint8_t> received,
                                  Rng& rng) const {
  const bool out = num_beepers > 0 && !noise_.Sample(rng);
  FillShared(received, out);
}

std::string OneSidedDownChannel::name() const {
  return "one-sided-down(eps=" + FormatDouble(epsilon_) + ")";
}

}  // namespace noisybeeps
