// Burst noise: a Gilbert-Elliott two-state Markov channel.
//
// The paper's model draws noise iid per round.  Real interference is
// bursty: quiet stretches punctuated by bad episodes.  The classical
// Gilbert-Elliott model captures this with a hidden GOOD/BAD state: the
// output bit is flipped with rate eps_good or eps_bad depending on the
// state, and the state evolves as a two-state Markov chain with
// transition probabilities p (good->bad) and q (bad->good).  Stationary
// noise rate: (q * eps_good + p * eps_bad) / (p + q).
//
// This is an EXTENSION experiment (E10): none of the paper's theorems
// assume independence across rounds in the adversary's favour, and the
// rewind schemes' verification is exact regardless of how the noise was
// produced -- only the retry/flag failure rates degrade when errors
// cluster.  bench_burst measures how much.
//
// The Markov state lives inside the channel (mutable): like the Rng it is
// part of the stochastic environment the channel models, not of the
// channel's logical configuration.  Channels are not thread-safe.
#ifndef NOISYBEEPS_CHANNEL_BURST_H_
#define NOISYBEEPS_CHANNEL_BURST_H_

#include "channel/channel.h"

namespace noisybeeps {

class BurstNoisyChannel final : public Channel {
 public:
  // Preconditions: rates in [0, 1); transition probabilities in (0, 1].
  BurstNoisyChannel(double eps_good, double eps_bad, double p_good_to_bad,
                    double p_bad_to_good);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return true; }
  [[nodiscard]] std::string name() const override;

  // The long-run average flip rate.
  [[nodiscard]] double StationaryNoiseRate() const;
  // Expected burst (BAD-state dwell) length, 1 / p_bad_to_good.
  [[nodiscard]] double MeanBurstLength() const;

  // Resets the hidden state to GOOD (e.g. between trials).
  void Reset() const { in_bad_state_ = false; }

 private:
  // Transition draw then emission draw -- two Samples per round on both
  // delivery paths (the modes coincide), advancing the Markov state.
  [[nodiscard]] bool SharedOutcome(std::int64_t num_beepers, Rng& rng) const;

  double eps_good_;
  double eps_bad_;
  double p_gb_;
  double p_bg_;
  BernoulliSampler noise_good_;
  BernoulliSampler noise_bad_;
  BernoulliSampler trans_gb_;
  BernoulliSampler trans_bg_;
  mutable bool in_bad_state_ = false;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_BURST_H_
