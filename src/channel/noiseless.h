// The noiseless beeping channel: every party receives exactly the OR.
#ifndef NOISYBEEPS_CHANNEL_NOISELESS_H_
#define NOISYBEEPS_CHANNEL_NOISELESS_H_

#include "channel/channel.h"

namespace noisybeeps {

class NoiselessChannel final : public Channel {
 public:
  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return true; }
  [[nodiscard]] std::string name() const override { return "noiseless"; }
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_NOISELESS_H_
