#include "channel/channel.h"

#include <algorithm>
#include <vector>

#include "util/require.h"

namespace noisybeeps {

void FillSharedWords(std::span<std::uint64_t> words, std::int64_t n,
                     bool bit) {
  if (words.empty()) return;
  const std::uint64_t fill = bit ? ~std::uint64_t{0} : 0;
  for (std::uint64_t& w : words) w = fill;
  words.back() &= TailWordMask(n);
}

void PackBits(std::span<const std::uint8_t> bytes,
              std::span<std::uint64_t> words) {
  NB_REQUIRE(words.size() ==
                 WordsForParties(static_cast<std::int64_t>(bytes.size())),
             "word span does not match the byte span's party count");
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::size_t base = w * 64;
    const std::size_t lanes = std::min<std::size_t>(64, bytes.size() - base);
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < lanes; ++b) {
      word |= static_cast<std::uint64_t>(bytes[base + b] != 0) << b;
    }
    words[w] = word;
  }
}

void UnpackBits(std::span<const std::uint64_t> words,
                std::span<std::uint8_t> bytes) {
  NB_REQUIRE(words.size() ==
                 WordsForParties(static_cast<std::int64_t>(bytes.size())),
             "word span does not match the byte span's party count");
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>((words[i / 64] >> (i % 64)) & 1u);
  }
}

void Channel::CheckWordDelivery(std::int64_t num_beepers,
                                std::span<const std::uint64_t> received,
                                std::int64_t num_parties) {
  NB_REQUIRE(num_parties >= 1, "need at least one listener");
  NB_REQUIRE(num_beepers >= 0 && num_beepers <= num_parties,
             "beeper count out of [0, num_parties]");
  NB_REQUIRE(received.size() == WordsForParties(num_parties),
             "received word span does not match the party count");
}

void Channel::DeliverWords(std::int64_t num_beepers,
                           std::span<std::uint64_t> received,
                           std::int64_t num_parties, WordMode mode,
                           Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // the scalar path has only one stream
  // Compatibility fallback for channel implementations that predate the
  // word path: round-trip through the scalar Deliver.  Allocates a byte
  // per listener per call -- correct for wrappers and external channels,
  // never the hot path (every built-in channel overrides DeliverWords).
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(num_parties), 0);
  Deliver(num_beepers, bytes, rng);
  PackBits(bytes, received);
}

bool Channel::DeliverShared(std::int64_t num_beepers, Rng& rng) const {
  NB_REQUIRE(is_correlated(),
             "DeliverShared is only meaningful for correlated channels");
  std::uint8_t bit = 0;
  Deliver(num_beepers, std::span<std::uint8_t>(&bit, 1), rng);
  return bit != 0;
}

}  // namespace noisybeeps
