#include "channel/channel.h"

#include "util/require.h"

namespace noisybeeps {

bool Channel::DeliverShared(int num_beepers, Rng& rng) const {
  NB_REQUIRE(is_correlated(),
             "DeliverShared is only meaningful for correlated channels");
  std::uint8_t bit = 0;
  Deliver(num_beepers, std::span<std::uint8_t>(&bit, 1), rng);
  return bit != 0;
}

}  // namespace noisybeeps
