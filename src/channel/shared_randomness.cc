#include "channel/shared_randomness.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

SharedRandomnessOneSidedAdapter::SharedRandomnessOneSidedAdapter(
    double up_eps, double flip_prob)
    : inner_(up_eps), flip_prob_(flip_prob), flip_(flip_prob) {
  NB_REQUIRE(flip_prob >= 0.0 && flip_prob < 1.0,
             "shared flip probability must lie in [0, 1)");
}

bool SharedRandomnessOneSidedAdapter::SharedOutcome(std::int64_t num_beepers,
                                                    Rng& rng) const {
  // Step 1: the underlying one-sided-up channel.
  bool bit = inner_.DeliverShared(num_beepers, rng);
  // Step 2: shared-randomness downward flip applied by the parties
  // themselves.  Because the randomness is shared, everyone flips (or not)
  // in unison, so the channel stays correlated.  The short-circuit (no
  // draw on a received 0) is part of the stream contract.
  if (bit && flip_.Sample(rng)) bit = false;
  return bit;
}

void SharedRandomnessOneSidedAdapter::Deliver(std::int64_t num_beepers,
                                              std::span<std::uint8_t> received,
                                              Rng& rng) const {
  FillShared(received, SharedOutcome(num_beepers, rng));
}

void SharedRandomnessOneSidedAdapter::DeliverWords(
    std::int64_t num_beepers, std::span<std::uint64_t> received,
    std::int64_t num_parties, WordMode mode, Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // at most two draws per round either way: the modes coincide
  FillSharedWords(received, num_parties, SharedOutcome(num_beepers, rng));
}

std::string SharedRandomnessOneSidedAdapter::name() const {
  return "shared-randomness(up=" + FormatDouble(inner_.epsilon()) +
         ",flip=" + FormatDouble(flip_prob_) + ")";
}

}  // namespace noisybeeps
