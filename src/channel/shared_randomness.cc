#include "channel/shared_randomness.h"

#include "util/require.h"

namespace noisybeeps {

SharedRandomnessOneSidedAdapter::SharedRandomnessOneSidedAdapter(
    double up_eps, double flip_prob)
    : inner_(up_eps), flip_prob_(flip_prob) {
  NB_REQUIRE(flip_prob >= 0.0 && flip_prob < 1.0,
             "shared flip probability must lie in [0, 1)");
}

void SharedRandomnessOneSidedAdapter::Deliver(int num_beepers,
                                              std::span<std::uint8_t> received,
                                              Rng& rng) const {
  // Step 1: the underlying one-sided-up channel.
  bool bit = inner_.DeliverShared(num_beepers, rng);
  // Step 2: shared-randomness downward flip applied by the parties
  // themselves.  Because the randomness is shared, everyone flips (or not)
  // in unison, so the channel stays correlated.
  if (bit && rng.Bernoulli(flip_prob_)) bit = false;
  for (auto& b : received) b = bit ? 1 : 0;
}

std::string SharedRandomnessOneSidedAdapter::name() const {
  return "shared-randomness(up=" + std::to_string(inner_.epsilon()) +
         ",flip=" + std::to_string(flip_prob_) + ")";
}

}  // namespace noisybeeps
