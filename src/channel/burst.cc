#include "channel/burst.h"

#include "util/require.h"

namespace noisybeeps {

BurstNoisyChannel::BurstNoisyChannel(double eps_good, double eps_bad,
                                     double p_good_to_bad,
                                     double p_bad_to_good)
    : eps_good_(eps_good),
      eps_bad_(eps_bad),
      p_gb_(p_good_to_bad),
      p_bg_(p_bad_to_good) {
  NB_REQUIRE(eps_good >= 0.0 && eps_good < 1.0, "good-state rate out of range");
  NB_REQUIRE(eps_bad >= 0.0 && eps_bad < 1.0, "bad-state rate out of range");
  NB_REQUIRE(p_good_to_bad > 0.0 && p_good_to_bad <= 1.0,
             "good->bad probability out of range");
  NB_REQUIRE(p_bad_to_good > 0.0 && p_bad_to_good <= 1.0,
             "bad->good probability out of range");
}

void BurstNoisyChannel::Deliver(int num_beepers,
                                std::span<std::uint8_t> received,
                                Rng& rng) const {
  // State transition first, then emission: dwell times are geometric.
  if (in_bad_state_) {
    if (rng.Bernoulli(p_bg_)) in_bad_state_ = false;
  } else {
    if (rng.Bernoulli(p_gb_)) in_bad_state_ = true;
  }
  const double eps = in_bad_state_ ? eps_bad_ : eps_good_;
  const bool out = (num_beepers > 0) != rng.Bernoulli(eps);
  for (auto& bit : received) bit = out ? 1 : 0;
}

std::string BurstNoisyChannel::name() const {
  return "burst(good=" + std::to_string(eps_good_) +
         ",bad=" + std::to_string(eps_bad_) +
         ",burst_len=" + std::to_string(MeanBurstLength()) + ")";
}

double BurstNoisyChannel::StationaryNoiseRate() const {
  return (p_bg_ * eps_good_ + p_gb_ * eps_bad_) / (p_gb_ + p_bg_);
}

double BurstNoisyChannel::MeanBurstLength() const { return 1.0 / p_bg_; }

}  // namespace noisybeeps
