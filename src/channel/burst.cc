#include "channel/burst.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

BurstNoisyChannel::BurstNoisyChannel(double eps_good, double eps_bad,
                                     double p_good_to_bad,
                                     double p_bad_to_good)
    : eps_good_(eps_good),
      eps_bad_(eps_bad),
      p_gb_(p_good_to_bad),
      p_bg_(p_bad_to_good),
      noise_good_(eps_good),
      noise_bad_(eps_bad),
      trans_gb_(p_good_to_bad),
      trans_bg_(p_bad_to_good) {
  NB_REQUIRE(eps_good >= 0.0 && eps_good < 1.0, "good-state rate out of range");
  NB_REQUIRE(eps_bad >= 0.0 && eps_bad < 1.0, "bad-state rate out of range");
  NB_REQUIRE(p_good_to_bad > 0.0 && p_good_to_bad <= 1.0,
             "good->bad probability out of range");
  NB_REQUIRE(p_bad_to_good > 0.0 && p_bad_to_good <= 1.0,
             "bad->good probability out of range");
}

bool BurstNoisyChannel::SharedOutcome(std::int64_t num_beepers,
                                      Rng& rng) const {
  // State transition first, then emission: dwell times are geometric.
  if (in_bad_state_) {
    if (trans_bg_.Sample(rng)) in_bad_state_ = false;
  } else {
    if (trans_gb_.Sample(rng)) in_bad_state_ = true;
  }
  const BernoulliSampler& noise = in_bad_state_ ? noise_bad_ : noise_good_;
  return (num_beepers > 0) != noise.Sample(rng);
}

void BurstNoisyChannel::Deliver(std::int64_t num_beepers,
                                std::span<std::uint8_t> received,
                                Rng& rng) const {
  FillShared(received, SharedOutcome(num_beepers, rng));
}

void BurstNoisyChannel::DeliverWords(std::int64_t num_beepers,
                                     std::span<std::uint64_t> received,
                                     std::int64_t num_parties, WordMode mode,
                                     Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // two draws per round either way: the modes coincide
  FillSharedWords(received, num_parties, SharedOutcome(num_beepers, rng));
}

std::string BurstNoisyChannel::name() const {
  return "burst(good=" + FormatDouble(eps_good_) +
         ",bad=" + FormatDouble(eps_bad_) +
         ",burst_len=" + FormatDouble(MeanBurstLength()) + ")";
}

double BurstNoisyChannel::StationaryNoiseRate() const {
  return (p_bg_ * eps_good_ + p_gb_ * eps_bad_) / (p_gb_ + p_bg_);
}

double BurstNoisyChannel::MeanBurstLength() const { return 1.0 / p_bg_; }

}  // namespace noisybeeps
