#include "channel/correlated.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

CorrelatedNoisyChannel::CorrelatedNoisyChannel(double epsilon)
    : epsilon_(epsilon), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
             "noise rate must lie in [0, 1/2)");
}

bool CorrelatedNoisyChannel::SharedOutcome(std::int64_t num_beepers,
                                           Rng& rng) const {
  return (num_beepers > 0) != noise_.Sample(rng);
}

void CorrelatedNoisyChannel::Deliver(std::int64_t num_beepers,
                                     std::span<std::uint8_t> received,
                                     Rng& rng) const {
  FillShared(received, SharedOutcome(num_beepers, rng));
}

void CorrelatedNoisyChannel::DeliverWords(std::int64_t num_beepers,
                                          std::span<std::uint64_t> received,
                                          std::int64_t num_parties,
                                          WordMode mode, Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // one draw per round either way: the modes coincide
  FillSharedWords(received, num_parties, SharedOutcome(num_beepers, rng));
}

std::string CorrelatedNoisyChannel::name() const {
  return "correlated(eps=" + FormatDouble(epsilon_) + ")";
}

}  // namespace noisybeeps
