#include "channel/correlated.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

CorrelatedNoisyChannel::CorrelatedNoisyChannel(double epsilon)
    : epsilon_(epsilon), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
             "noise rate must lie in [0, 1/2)");
}

void CorrelatedNoisyChannel::Deliver(int num_beepers,
                                     std::span<std::uint8_t> received,
                                     Rng& rng) const {
  const bool flipped = (num_beepers > 0) != noise_.Sample(rng);
  FillShared(received, flipped);
}

std::string CorrelatedNoisyChannel::name() const {
  return "correlated(eps=" + FormatDouble(epsilon_) + ")";
}

}  // namespace noisybeeps
