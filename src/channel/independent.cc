#include "channel/independent.h"

#include <algorithm>

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

IndependentNoisyChannel::IndependentNoisyChannel(double epsilon)
    : epsilon_(epsilon),
      noise_(epsilon),
      word_noise_(epsilon),
      skip_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
             "noise rate must lie in [0, 1/2)");
}

void IndependentNoisyChannel::Deliver(std::int64_t num_beepers,
                                      std::span<std::uint8_t> received,
                                      Rng& rng) const {
  // One draw per listener, in listener order (the stream contract); the
  // precomputed sampler turns each draw into a single integer compare.
  const std::uint8_t or_bit = num_beepers > 0 ? 1 : 0;
  for (auto& bit : received) {
    bit = or_bit ^ static_cast<std::uint8_t>(noise_.Sample(rng));
  }
}

void IndependentNoisyChannel::DeliverWords(std::int64_t num_beepers,
                                           std::span<std::uint64_t> received,
                                           std::int64_t num_parties,
                                           WordMode mode, Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  const bool or_bit = num_beepers > 0;

  if (mode == WordMode::kStreamCompat) {
    // Draw-for-draw replay of the scalar path: one Sample per listener in
    // listener order, packed as we go.  Same seed => same bits and the
    // same number of NextU64 calls as Deliver.
    for (std::size_t w = 0; w < received.size(); ++w) {
      const std::int64_t base = static_cast<std::int64_t>(w) * kWordBits;
      const std::int64_t lanes = std::min(kWordBits, num_parties - base);
      std::uint64_t noise = 0;
      for (std::int64_t b = 0; b < lanes; ++b) {
        noise |= static_cast<std::uint64_t>(noise_.Sample(rng)) << b;
      }
      const std::uint64_t lane_mask =
          lanes == kWordBits ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << lanes) - 1;
      received[w] = or_bit ? (~noise & lane_mask) : noise;
    }
    return;
  }

  // kFast: start from the shared OR and XOR in the flips.
  FillSharedWords(received, num_parties, or_bit);
  if (epsilon_ <= 0.0) return;  // no flips, no draws

  if (epsilon_ * static_cast<double>(kWordBits) < 1.0) {
    // Sparse flips: geometric skip-sampling walks directly from one
    // flipped listener to the next (expected draws eps * n per round).
    // The walk is over the whole round's bit range, so a gap straddling a
    // word boundary is a single draw by construction.
    std::int64_t pos = -1;
    for (;;) {
      const std::uint64_t gap = skip_.NextGap(rng);
      if (gap == GeometricSkipSampler::kNoSuccess ||
          gap >= static_cast<std::uint64_t>(num_parties - pos) - 1) {
        break;
      }
      pos += static_cast<std::int64_t>(gap) + 1;
      received[static_cast<std::size_t>(pos / kWordBits)] ^=
          std::uint64_t{1} << (pos % kWordBits);
    }
    return;
  }

  // Dense flips: bit-sliced word draws, ~log2(64) + 2 NextU64 per 64
  // listeners regardless of eps.  Mask the tail word so slack bits stay
  // zero.
  const std::size_t last = received.size() - 1;
  for (std::size_t w = 0; w < received.size(); ++w) {
    std::uint64_t flips = word_noise_.NoiseWord(rng);
    if (w == last) flips &= TailWordMask(num_parties);
    received[w] ^= flips;
  }
}

std::string IndependentNoisyChannel::name() const {
  return "independent(eps=" + FormatDouble(epsilon_) + ")";
}

}  // namespace noisybeeps

