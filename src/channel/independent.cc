#include "channel/independent.h"

#include "util/require.h"

namespace noisybeeps {

IndependentNoisyChannel::IndependentNoisyChannel(double epsilon)
    : epsilon_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
             "noise rate must lie in [0, 1/2)");
}

void IndependentNoisyChannel::Deliver(int num_beepers,
                                      std::span<std::uint8_t> received,
                                      Rng& rng) const {
  const bool or_bit = num_beepers > 0;
  for (auto& bit : received) {
    bit = (or_bit != rng.Bernoulli(epsilon_)) ? 1 : 0;
  }
}

std::string IndependentNoisyChannel::name() const {
  return "independent(eps=" + std::to_string(epsilon_) + ")";
}

}  // namespace noisybeeps
