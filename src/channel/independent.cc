#include "channel/independent.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

IndependentNoisyChannel::IndependentNoisyChannel(double epsilon)
    : epsilon_(epsilon), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
             "noise rate must lie in [0, 1/2)");
}

void IndependentNoisyChannel::Deliver(int num_beepers,
                                      std::span<std::uint8_t> received,
                                      Rng& rng) const {
  // One draw per listener, in listener order (the stream contract); the
  // precomputed sampler turns each draw into a single integer compare.
  const std::uint8_t or_bit = num_beepers > 0 ? 1 : 0;
  for (auto& bit : received) {
    bit = or_bit ^ static_cast<std::uint8_t>(noise_.Sample(rng));
  }
}

std::string IndependentNoisyChannel::name() const {
  return "independent(eps=" + FormatDouble(epsilon_) + ")";
}

}  // namespace noisybeeps
