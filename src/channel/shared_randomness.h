// The Appendix A.1.2 reduction, as a channel adapter.
//
// The paper shows that the two-sided 1/4-noisy channel can be emulated on
// top of the one-sided-up 1/3-noisy channel plus shared randomness: the
// parties run the one-sided channel, and whenever they receive a 1 they
// flip it to 0 with probability 1/4 using the shared random string.  Then
//   Pr[output 0 | someone beeped 1] = 1/4   (only the shared flip), and
//   Pr[output 1 | all beeped 0]     = (1/3) * (3/4) = 1/4,
// i.e. the composite is exactly the two-sided 1/4-noisy channel.  This is
// how a lower bound for the one-sided model transfers to the two-sided
// model.  The adapter generalizes the constants: on top of a one-sided-up
// channel with rate `up_eps` and a shared downward flip with rate
// `flip_prob`, the composite is two-sided with
//   Pr[1 -> 0] = flip_prob,  Pr[0 -> 1] = up_eps * (1 - flip_prob),
// which are equal exactly when flip_prob = up_eps / (1 + up_eps).
#ifndef NOISYBEEPS_CHANNEL_SHARED_RANDOMNESS_H_
#define NOISYBEEPS_CHANNEL_SHARED_RANDOMNESS_H_

#include "channel/one_sided.h"

namespace noisybeeps {

class SharedRandomnessOneSidedAdapter final : public Channel {
 public:
  // Preconditions: 0 <= up_eps < 1, 0 <= flip_prob < 1.
  SharedRandomnessOneSidedAdapter(double up_eps, double flip_prob);

  // The paper's instantiation: one-sided 1/3 + shared 1/4 flip = 1/4-noisy.
  static SharedRandomnessOneSidedAdapter PaperInstance() {
    return SharedRandomnessOneSidedAdapter(1.0 / 3.0, 0.25);
  }

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return true; }
  [[nodiscard]] std::string name() const override;

  // The effective two-sided flip rates of the composite channel.
  [[nodiscard]] double EffectiveDownRate() const { return flip_prob_; }
  [[nodiscard]] double EffectiveUpRate() const {
    return inner_.epsilon() * (1.0 - flip_prob_);
  }

 private:
  // Inner one-sided draw then conditional shared flip (short-circuited on
  // a received 0), shared by both delivery paths: the modes coincide.
  [[nodiscard]] bool SharedOutcome(std::int64_t num_beepers, Rng& rng) const;

  OneSidedUpChannel inner_;
  double flip_prob_;
  BernoulliSampler flip_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_SHARED_RANDOMNESS_H_
