// The noise-correcting adversary of Appendix A.1.2.
//
// The paper's second argument that one-sided-up noise is the hard core of
// the model: take the two-sided eps-noisy channel and add an adversary
// that may CORRECT any bit the channel flipped (but can never introduce a
// new error).  Against such an adversary, a protocol cannot rely on the
// noise "being exactly what it is"; and the adversary that corrects
// exactly the 1->0 flips turns the two-sided channel into precisely the
// one-sided-up channel.
//
// AdversarialCorrectionChannel wraps a two-sided noise decision and asks a
// CorrectionPolicy, per flipped round, whether to revert the flip.  The
// policy sees the true OR and the flipped value -- i.e. full knowledge of
// this round, the strongest adversary of this type.  Policies provided:
//   kNever          -- plain two-sided eps noise;
//   kCorrectDrops   -- revert all 1->0 flips: EXACTLY OneSidedUpChannel(eps);
//   kCorrectSpurious-- revert all 0->1 flips: EXACTLY OneSidedDownChannel(eps);
//   kCorrectAll     -- revert everything: the noiseless channel.
// The distributional identities are verified statistically in the tests.
#ifndef NOISYBEEPS_CHANNEL_ADVERSARY_H_
#define NOISYBEEPS_CHANNEL_ADVERSARY_H_

#include "channel/channel.h"

namespace noisybeeps {

enum class CorrectionPolicy {
  kNever,
  kCorrectDrops,     // fix 1 -> 0 flips
  kCorrectSpurious,  // fix 0 -> 1 flips
  kCorrectAll,
};

class AdversarialCorrectionChannel final : public Channel {
 public:
  // Precondition: 0 <= epsilon < 1/2.
  AdversarialCorrectionChannel(double epsilon, CorrectionPolicy policy);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double epsilon() const { return epsilon_; }
  [[nodiscard]] CorrectionPolicy policy() const { return policy_; }

 private:
  // One draw per round (flip, then maybe reverted for free), shared by
  // both delivery paths: the modes coincide.
  [[nodiscard]] bool SharedOutcome(std::int64_t num_beepers, Rng& rng) const;

  double epsilon_;
  CorrectionPolicy policy_;
  BernoulliSampler noise_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_ADVERSARY_H_
