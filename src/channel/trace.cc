#include "channel/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/require.h"

namespace noisybeeps {

void WriteTraceCsv(const Trace& trace, std::ostream& os) {
  os << "round,or_bit,delivered\n";
  for (std::size_t r = 0; r < trace.size(); ++r) {
    os << r << ',' << (trace[r].or_bit ? 1 : 0) << ',';
    for (std::uint8_t b : trace[r].delivered) os << (b ? '1' : '0');
    os << '\n';
  }
}

Trace ReadTraceCsv(std::istream& is) {
  std::string line;
  NB_REQUIRE(static_cast<bool>(std::getline(is, line)) &&
                 line == "round,or_bit,delivered",
             "missing or malformed trace CSV header");
  Trace trace;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string round_str;
    std::string or_str;
    std::string delivered_str;
    NB_REQUIRE(static_cast<bool>(std::getline(row, round_str, ',')) &&
                   static_cast<bool>(std::getline(row, or_str, ',')) &&
                   static_cast<bool>(std::getline(row, delivered_str)),
               "malformed trace CSV row: " + line);
    // Comparing against the expected rendering catches out-of-order rows,
    // non-numeric indices, and indices too large to have been written by
    // WriteTraceCsv (which emits consecutive ones from 0) -- without ever
    // parsing an attacker-sized integer.
    NB_REQUIRE(round_str == std::to_string(trace.size()),
               "trace CSV rows out of order at: " + line);
    NB_REQUIRE(or_str == "0" || or_str == "1",
               "bad or_bit in trace CSV row: " + line);
    NB_REQUIRE(!delivered_str.empty(),
               "empty delivered column in trace CSV row: " + line);
    NB_REQUIRE(trace.empty() ||
                   delivered_str.size() == trace.front().delivered.size(),
               "ragged trace CSV: delivered width changed at: " + line);
    TraceRound round;
    round.or_bit = or_str == "1";
    round.delivered.reserve(delivered_str.size());
    for (char c : delivered_str) {
      NB_REQUIRE(c == '0' || c == '1',
                 "bad delivered bit in trace CSV row: " + line);
      round.delivered.push_back(c == '1' ? 1 : 0);
    }
    trace.push_back(std::move(round));
  }
  return trace;
}

std::size_t CountNoisyRounds(const Trace& trace) {
  std::size_t noisy = 0;
  for (const TraceRound& round : trace) {
    for (std::uint8_t b : round.delivered) {
      if ((b != 0) != round.or_bit) {
        ++noisy;
        break;
      }
    }
  }
  return noisy;
}

RecordingChannel::RecordingChannel(const Channel& inner) : inner_(&inner) {}

void RecordingChannel::Deliver(std::int64_t num_beepers,
                               std::span<std::uint8_t> received,
                               Rng& rng) const {
  inner_->Deliver(num_beepers, received, rng);
  TraceRound round;
  round.or_bit = num_beepers > 0;
  round.delivered.assign(received.begin(), received.end());
  trace_.push_back(std::move(round));
}

void RecordingChannel::DeliverWords(std::int64_t num_beepers,
                                    std::span<std::uint64_t> received,
                                    std::int64_t num_parties, WordMode mode,
                                    Rng& rng) const {
  inner_->DeliverWords(num_beepers, received, num_parties, mode, rng);
  TraceRound round;
  round.or_bit = num_beepers > 0;
  round.delivered.resize(static_cast<std::size_t>(num_parties));
  UnpackBits(received, round.delivered);
  trace_.push_back(std::move(round));
}

std::string RecordingChannel::name() const {
  return "recording(" + inner_->name() + ")";
}

ReplayChannel::ReplayChannel(Trace trace, bool correlated)
    : trace_(std::move(trace)), correlated_(correlated) {
  for (std::size_t r = 0; r < trace_.size(); ++r) {
    NB_REQUIRE(!trace_[r].delivered.empty(),
               "replay trace has a round with no delivered bits (round " +
                   std::to_string(r) + ")");
    NB_REQUIRE(trace_[r].delivered.size() == trace_.front().delivered.size(),
               "replay trace is ragged: party count changes at round " +
                   std::to_string(r));
  }
}

void ReplayChannel::Deliver(std::int64_t num_beepers,
                            std::span<std::uint8_t> received,
                            Rng& rng) const {
  (void)num_beepers;  // the recording dictates the outcome
  (void)rng;
  NB_REQUIRE(next_ < trace_.size(),
             "ReplayChannel: trace exhausted after " +
                 std::to_string(trace_.size()) +
                 " rounds -- the replayed execution asked for more rounds "
                 "than were recorded");
  const TraceRound& round = trace_[next_++];
  NB_REQUIRE(round.delivered.size() == received.size(),
             "replaying a trace recorded with a different party count");
  std::copy(round.delivered.begin(), round.delivered.end(), received.begin());
}

void ReplayChannel::DeliverWords(std::int64_t num_beepers,
                                 std::span<std::uint64_t> received,
                                 std::int64_t num_parties, WordMode mode,
                                 Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // the recording dictates the outcome
  (void)rng;
  NB_REQUIRE(next_ < trace_.size(),
             "ReplayChannel: trace exhausted after " +
                 std::to_string(trace_.size()) +
                 " rounds -- the replayed execution asked for more rounds "
                 "than were recorded");
  const TraceRound& round = trace_[next_++];
  NB_REQUIRE(round.delivered.size() ==
                 static_cast<std::size_t>(num_parties),
             "replaying a trace recorded with a different party count");
  PackBits(round.delivered, received);
}

std::string ReplayChannel::name() const {
  return "replay(" + std::to_string(trace_.size()) + " rounds)";
}

}  // namespace noisybeeps
