#include "channel/collision.h"

#include "util/require.h"

namespace noisybeeps {

CollisionAsSilenceChannel::CollisionAsSilenceChannel(double epsilon)
    : epsilon_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
             "noise rate must lie in [0, 1/2)");
}

void CollisionAsSilenceChannel::Deliver(int num_beepers,
                                        std::span<std::uint8_t> received,
                                        Rng& rng) const {
  // A round is a 1 only for a lone transmitter; collisions (>= 2) and
  // silence (0) both deliver 0, before noise.
  const bool clean = num_beepers == 1;
  const bool out =
      epsilon_ > 0.0 ? clean != rng.Bernoulli(epsilon_) : clean;
  for (auto& bit : received) bit = out ? 1 : 0;
}

std::string CollisionAsSilenceChannel::name() const {
  return "collision-as-silence(eps=" + std::to_string(epsilon_) + ")";
}

}  // namespace noisybeeps
