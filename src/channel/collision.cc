#include "channel/collision.h"

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

CollisionAsSilenceChannel::CollisionAsSilenceChannel(double epsilon)
    : epsilon_(epsilon), noise_(epsilon) {
  NB_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
             "noise rate must lie in [0, 1/2)");
}

bool CollisionAsSilenceChannel::SharedOutcome(std::int64_t num_beepers,
                                              Rng& rng) const {
  // A round is a 1 only for a lone transmitter; collisions (>= 2) and
  // silence (0) both deliver 0, before noise.  The eps == 0 case consumes
  // no randomness (the historical stream contract).
  const bool clean = num_beepers == 1;
  return epsilon_ > 0.0 ? clean != noise_.Sample(rng) : clean;
}

void CollisionAsSilenceChannel::Deliver(std::int64_t num_beepers,
                                        std::span<std::uint8_t> received,
                                        Rng& rng) const {
  FillShared(received, SharedOutcome(num_beepers, rng));
}

void CollisionAsSilenceChannel::DeliverWords(std::int64_t num_beepers,
                                             std::span<std::uint64_t> received,
                                             std::int64_t num_parties,
                                             WordMode mode, Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)mode;  // at most one draw per round either way: the modes coincide
  FillSharedWords(received, num_parties, SharedOutcome(num_beepers, rng));
}

std::string CollisionAsSilenceChannel::name() const {
  return "collision-as-silence(eps=" + FormatDouble(epsilon_) + ")";
}

}  // namespace noisybeeps
