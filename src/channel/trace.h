// Execution tracing: record every round a channel delivers, and replay a
// recorded trace deterministically.
//
// RecordingChannel wraps any channel and logs (or-of-beeps, per-party
// delivered bits) for each round -- the raw material for debugging a
// simulator run, for offline noise statistics, and for regression
// fixtures.  ReplayChannel plays a recorded trace back verbatim (ignoring
// its Rng), so a puzzling noisy execution can be re-run bit-identically
// under a debugger or across code changes.
//
// Like the noise state of BurstNoisyChannel, the recording buffer is
// `mutable`: it is observational, not part of the channel's logical
// configuration.  Channels are not thread-safe.
#ifndef NOISYBEEPS_CHANNEL_TRACE_H_
#define NOISYBEEPS_CHANNEL_TRACE_H_

#include <iosfwd>
#include <vector>

#include "channel/channel.h"

namespace noisybeeps {

struct TraceRound {
  bool or_bit = false;                    // what the parties jointly sent
  std::vector<std::uint8_t> delivered;    // what each party received
};

using Trace = std::vector<TraceRound>;

// Writes "round,or,delivered..." CSV rows (one per round).
void WriteTraceCsv(const Trace& trace, std::ostream& os);

// Parses the format WriteTraceCsv emits (round-trip inverse).  Throws
// std::invalid_argument on malformed input.
[[nodiscard]] Trace ReadTraceCsv(std::istream& is);

// The number of rounds where some party's delivered bit differs from the
// OR that was sent (i.e. rounds the noise touched).
[[nodiscard]] std::size_t CountNoisyRounds(const Trace& trace);

class RecordingChannel final : public Channel {
 public:
  // Borrows `inner`; it must outlive this object.
  explicit RecordingChannel(const Channel& inner);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  // Forwards to the inner channel's word path, then unpacks the result
  // into the trace (the trace format is byte-per-party either way).
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override {
    return inner_->is_correlated();
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Trace& trace() const { return trace_; }
  void ClearTrace() const { trace_.clear(); }

 private:
  const Channel* inner_;
  mutable Trace trace_;
};

class ReplayChannel final : public Channel {
 public:
  // Plays `trace` back round by round.  `correlated` declares what the
  // original channel was.
  // Precondition: every round of `trace` delivers to the same non-zero
  // number of parties (a ragged trace is rejected at construction).
  // Deliver fails loudly (std::invalid_argument via NB_REQUIRE) when asked
  // for more rounds than the trace holds or when the party count differs
  // from the recording -- replay divergence is a bug in the caller, never
  // silently absorbed.
  ReplayChannel(Trace trace, bool correlated);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  // Packs the next recorded round into words; ignores mode and rng like
  // the scalar replay.
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return correlated_; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t rounds_remaining() const {
    return trace_.size() - next_;
  }
  void Rewind() const { next_ = 0; }

 private:
  Trace trace_;
  bool correlated_;
  mutable std::size_t next_ = 0;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_TRACE_H_
