// The independent-noise beeping channel (Section 1.2): every party
// receives its own epsilon-noisy copy of the OR, with noise independent
// across parties and rounds.  Parties may witness different transcripts.
//
// This is the one built-in channel whose word modes are distinct streams:
// per-listener noise means kStreamCompat replays the scalar listener-order
// draws exactly, while kFast batches -- geometric skip-sampling when
// flips are sparse (expected draws ~ eps * n), bit-sliced word draws
// otherwise (~7.5 draws per 64 listeners).  Both modes sample each
// listener's flip from the identical fixed-point Bernoulli(eps)
// distribution; only the draw order and count differ.
#ifndef NOISYBEEPS_CHANNEL_INDEPENDENT_H_
#define NOISYBEEPS_CHANNEL_INDEPENDENT_H_

#include "channel/channel.h"

namespace noisybeeps {

class IndependentNoisyChannel final : public Channel {
 public:
  // Precondition: 0 <= epsilon < 1/2.
  explicit IndependentNoisyChannel(double epsilon);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return false; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  BernoulliSampler noise_;
  BernoulliWordSampler word_noise_;
  GeometricSkipSampler skip_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_INDEPENDENT_H_
