// The independent-noise beeping channel (Section 1.2): every party
// receives its own epsilon-noisy copy of the OR, with noise independent
// across parties and rounds.  Parties may witness different transcripts.
#ifndef NOISYBEEPS_CHANNEL_INDEPENDENT_H_
#define NOISYBEEPS_CHANNEL_INDEPENDENT_H_

#include "channel/channel.h"

namespace noisybeeps {

class IndependentNoisyChannel final : public Channel {
 public:
  // Precondition: 0 <= epsilon < 1/2.
  explicit IndependentNoisyChannel(double epsilon);

  void Deliver(int num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return false; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  BernoulliSampler noise_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_INDEPENDENT_H_
