#include "channel/noiseless.h"

namespace noisybeeps {

void NoiselessChannel::Deliver(int num_beepers,
                               std::span<std::uint8_t> received,
                               Rng& rng) const {
  (void)rng;
  FillShared(received, num_beepers > 0);
}

}  // namespace noisybeeps
