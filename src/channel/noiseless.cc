#include "channel/noiseless.h"

namespace noisybeeps {

void NoiselessChannel::Deliver(std::int64_t num_beepers,
                               std::span<std::uint8_t> received,
                               Rng& rng) const {
  (void)rng;
  FillShared(received, num_beepers > 0);
}

void NoiselessChannel::DeliverWords(std::int64_t num_beepers,
                                    std::span<std::uint64_t> received,
                                    std::int64_t num_parties, WordMode mode,
                                    Rng& rng) const {
  CheckWordDelivery(num_beepers, received, num_parties);
  (void)rng;   // deterministic: no draws on any path
  (void)mode;  // the modes coincide
  FillSharedWords(received, num_parties, num_beepers > 0);
}

}  // namespace noisybeeps
