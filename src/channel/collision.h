// The collision-as-silence radio-network channel.
//
// In the multi-hop radio-network models of the paper's related work
// ([CHHZ17, CHHZ18, EKS19]; "collision-as-silence"), a round is heard as
// a 1 only when EXACTLY ONE party transmits: two or more simultaneous
// transmissions collide and sound like silence.  This channel is the
// single-hop instance, with optional two-sided eps noise on top.
//
// It demonstrates what the beeper-count channel interface buys, and makes
// a model boundary of the paper concrete: protocols whose rounds never
// carry more than one beeper (schedule-owned ones like BitExchange)
// behave identically here and on the beeping channel, while protocols
// that lean on the OR of simultaneous beeps (InputSet with duplicate
// inputs, the verification flag exchanges, Lemma-style counting tricks)
// break -- which is exactly why the paper's results do not transfer to
// radio networks verbatim (EKS19 proves that model needs its own
// logarithmic overhead).  The interactive-coding schemes in coding/ are
// specified for OR channels only; this channel is provided as an
// execution substrate, not as a coding target.
#ifndef NOISYBEEPS_CHANNEL_COLLISION_H_
#define NOISYBEEPS_CHANNEL_COLLISION_H_

#include "channel/channel.h"

namespace noisybeeps {

class CollisionAsSilenceChannel final : public Channel {
 public:
  // Precondition: 0 <= epsilon < 1/2 (0 = the noiseless collision model).
  explicit CollisionAsSilenceChannel(double epsilon);

  void Deliver(std::int64_t num_beepers, std::span<std::uint8_t> received,
               Rng& rng) const override;
  void DeliverWords(std::int64_t num_beepers,
                    std::span<std::uint64_t> received,
                    std::int64_t num_parties, WordMode mode,
                    Rng& rng) const override;
  [[nodiscard]] bool is_correlated() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double epsilon() const { return epsilon_; }

 private:
  // At most one draw per round (none when eps == 0), shared by both
  // delivery paths: the modes coincide.
  [[nodiscard]] bool SharedOutcome(std::int64_t num_beepers, Rng& rng) const;

  double epsilon_;
  BernoulliSampler noise_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_CHANNEL_COLLISION_H_
