// Small mathematical helpers shared across the library, including the two
// combinatorial lemmas of the paper's Appendix B that the analysis and the
// tests rely on.
#ifndef NOISYBEEPS_UTIL_MATH_H_
#define NOISYBEEPS_UTIL_MATH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace noisybeeps {

// ceil(log2(x)) for x >= 1; CeilLog2(1) == 0.
[[nodiscard]] int CeilLog2(std::uint64_t x);

// floor(log2(x)) for x >= 1.
[[nodiscard]] int FloorLog2(std::uint64_t x);

// Majority vote over 0/1 values; ties (possible only for even counts)
// resolve to 1 so that the decision is deterministic.
// Precondition: non-empty.
[[nodiscard]] bool Majority(std::span<const std::uint8_t> bits);

// Pr[Binomial(trials, p) >= threshold], computed by direct summation in
// double precision.  Used to size repetition factors and to compare
// measured error rates against analytic tails.
[[nodiscard]] double BinomialUpperTail(int trials, double p, int threshold);

// log2 of the binomial coefficient C(n, k), via lgamma.
[[nodiscard]] double Log2Binomial(int n, int k);

// Left side minus right side of Lemma B.7 (Cauchy-Schwarz form):
//   (sum a_i)^2 / (sum b_i)  <=  sum a_i^2 / b_i
// Returns sum a_i^2/b_i - (sum a_i)^2/(sum b_i), which the lemma asserts is
// non-negative.  Preconditions: equal sizes, all b_i > 0, non-empty.
[[nodiscard]] double LemmaB7Slack(std::span<const double> a,
                                  std::span<const double> b);

// |I| from Lemma B.8: the number of entries of `values` that appear exactly
// once.  The lemma bounds Pr[|I| <= k/3] when values are k iid uniform draws
// from a set of size |S| > k.
[[nodiscard]] std::size_t CountUniqueElements(
    std::span<const std::uint64_t> values);

// The right-hand side of Lemma B.8: (3/2) * (1 - exp(-k/|S|)).
[[nodiscard]] double LemmaB8Bound(std::size_t k, std::size_t set_size);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_MATH_H_
