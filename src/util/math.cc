#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/require.h"

namespace noisybeeps {

int CeilLog2(std::uint64_t x) {
  NB_REQUIRE(x >= 1, "CeilLog2 requires x >= 1");
  int bits = 0;
  std::uint64_t value = 1;
  while (value < x) {
    value <<= 1;
    ++bits;
  }
  return bits;
}

int FloorLog2(std::uint64_t x) {
  NB_REQUIRE(x >= 1, "FloorLog2 requires x >= 1");
  int bits = 0;
  while (x > 1) {
    x >>= 1;
    ++bits;
  }
  return bits;
}

bool Majority(std::span<const std::uint8_t> bits) {
  NB_REQUIRE(!bits.empty(), "Majority of an empty sample is undefined");
  std::size_t ones = 0;
  for (std::uint8_t b : bits) ones += (b != 0);
  return 2 * ones >= bits.size();
}

double BinomialUpperTail(int trials, double p, int threshold) {
  NB_REQUIRE(trials >= 0, "negative trial count");
  NB_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  if (threshold <= 0) return 1.0;
  if (threshold > trials) return 0.0;
  // Sum Pr[X = k] for k in [threshold, trials] in log space for stability.
  double total = 0.0;
  for (int k = threshold; k <= trials; ++k) {
    const double log_term = Log2Binomial(trials, k) +
                            k * std::log2(std::max(p, 1e-300)) +
                            (trials - k) * std::log2(std::max(1.0 - p, 1e-300));
    total += std::exp2(log_term);
  }
  return std::min(total, 1.0);
}

double Log2Binomial(int n, int k) {
  NB_REQUIRE(n >= 0 && k >= 0 && k <= n, "invalid binomial arguments");
  constexpr double kLog2E = 1.4426950408889634;
  return (std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
          std::lgamma(n - k + 1.0)) *
         kLog2E;
}

double LemmaB7Slack(std::span<const double> a, std::span<const double> b) {
  NB_REQUIRE(!a.empty() && a.size() == b.size(),
             "Lemma B.7 needs matched non-empty sequences");
  double sum_a = 0.0;
  double sum_b = 0.0;
  double sum_ratio = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    NB_REQUIRE(b[i] > 0.0, "Lemma B.7 requires positive b_i");
    sum_a += a[i];
    sum_b += b[i];
    sum_ratio += a[i] * a[i] / b[i];
  }
  return sum_ratio - sum_a * sum_a / sum_b;
}

std::size_t CountUniqueElements(std::span<const std::uint64_t> values) {
  std::unordered_map<std::uint64_t, int> counts;
  counts.reserve(values.size());
  for (std::uint64_t v : values) ++counts[v];
  std::size_t unique = 0;
  for (const auto& [value, count] : counts) {
    (void)value;
    if (count == 1) ++unique;
  }
  return unique;
}

double LemmaB8Bound(std::size_t k, std::size_t set_size) {
  NB_REQUIRE(set_size > 0, "Lemma B.8 requires a non-empty set");
  const double ratio = static_cast<double>(k) / static_cast<double>(set_size);
  return 1.5 * (1.0 - std::exp(-ratio));
}

}  // namespace noisybeeps
