// Deterministic, splittable random number generation.
//
// Every stochastic component of the library (channel noise, randomized
// protocols, workload generators, Monte Carlo experiments) draws from an
// Rng that is explicitly seeded, so that every test, example, and benchmark
// is reproducible bit-for-bit.  The generator is xoshiro256** seeded via
// SplitMix64; Split() derives an independent child stream, which is how the
// executor hands private randomness to parties without correlating them.
#ifndef NOISYBEEPS_UTIL_RNG_H_
#define NOISYBEEPS_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace noisybeeps {

class Rng {
 public:
  // Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next 64 uniform random bits.
  std::uint64_t NextU64();

  // Uniform integer in [0, bound).  Precondition: bound > 0.
  // Uses rejection sampling (Lemire-style) and is exactly uniform.
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  // True with probability p.  Precondition: 0 <= p <= 1.
  // Consumes exactly one NextU64 and decides via the fixed-point
  // threshold (see BernoulliThreshold), which is bit-identical to the
  // historical `UniformDouble() < p` comparison.
  bool Bernoulli(double p);

  // Uniform random bit.
  bool Bit() { return (NextU64() >> 63) != 0; }

  // Derives an independent generator.  The child stream is decorrelated
  // from the parent's subsequent output (distinct SplitMix64 seed chain).
  Rng Split();

  // The full 256-bit generator state, for checkpointing (resilience
  // layer).  Restore(SaveState()) reconstructs a generator that emits the
  // identical stream from this point on.
  [[nodiscard]] std::array<std::uint64_t, 4> SaveState() const {
    return state_;
  }

  // Rebuilds a generator from a saved state.
  // Precondition: state is not all-zero (the xoshiro256** fixed point).
  [[nodiscard]] static Rng Restore(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_;
};

// The fixed-point threshold t(p) = ceil(p * 2^53), so that for the 53-bit
// draw k = NextU64() >> 11 the comparisons
//
//     k < t(p)      and      k * 2^-53 < p
//
// agree for EVERY double p in [0, 1] and every k in [0, 2^53):  k * 2^-53
// and p * 2^53 are both exact in IEEE double (power-of-two scaling, no
// overflow since p <= 1, and a subnormal p scales up to a normal value),
// so `k * 2^-53 < p  <=>  k < p * 2^53  <=>  k < ceil(p * 2^53)` for
// integer k.  This lets hot paths replace a u64->double conversion,
// multiply, and double compare per sample with a single integer compare
// against a precomputed constant -- without changing a single random
// stream.  Precondition: 0 <= p <= 1.
[[nodiscard]] std::uint64_t BernoulliThreshold(double p);

// Precomputed Bernoulli(p) sampler for hot loops that draw from one fixed
// p many times (the channel Deliver implementations).  Sample() consumes
// exactly one NextU64 and is bit-identical to Rng::Bernoulli(p) -- and to
// the historical `UniformDouble() < p` path -- so threading a sampler
// through a hot loop never perturbs a seeded stream.
class BernoulliSampler {
 public:
  // Precondition: 0 <= p <= 1.
  explicit BernoulliSampler(double p = 0.0);

  // True with probability p(); consumes exactly one NextU64.
  [[nodiscard]] bool Sample(Rng& rng) const {
    return (rng.NextU64() >> 11) < threshold_;
  }

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }

 private:
  double p_;
  std::uint64_t threshold_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_RNG_H_
