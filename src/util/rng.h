// Deterministic, splittable random number generation.
//
// Every stochastic component of the library (channel noise, randomized
// protocols, workload generators, Monte Carlo experiments) draws from an
// Rng that is explicitly seeded, so that every test, example, and benchmark
// is reproducible bit-for-bit.  The generator is xoshiro256** seeded via
// SplitMix64; Split() derives an independent child stream, which is how the
// executor hands private randomness to parties without correlating them.
#ifndef NOISYBEEPS_UTIL_RNG_H_
#define NOISYBEEPS_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace noisybeeps {

class Rng {
 public:
  // Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next 64 uniform random bits.
  std::uint64_t NextU64();

  // Uniform integer in [0, bound).  Precondition: bound > 0.
  // Uses rejection sampling (Lemire-style) and is exactly uniform.
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  // True with probability p.  Precondition: 0 <= p <= 1.
  // Consumes exactly one NextU64 and decides via the fixed-point
  // threshold (see BernoulliThreshold), which is bit-identical to the
  // historical `UniformDouble() < p` comparison.
  bool Bernoulli(double p);

  // Uniform random bit.
  bool Bit() { return (NextU64() >> 63) != 0; }

  // Derives an independent generator.  The child stream is decorrelated
  // from the parent's subsequent output (distinct SplitMix64 seed chain).
  Rng Split();

  // The full 256-bit generator state, for checkpointing (resilience
  // layer).  Restore(SaveState()) reconstructs a generator that emits the
  // identical stream from this point on.
  [[nodiscard]] std::array<std::uint64_t, 4> SaveState() const {
    return state_;
  }

  // Rebuilds a generator from a saved state.
  // Precondition: state is not all-zero (the xoshiro256** fixed point).
  [[nodiscard]] static Rng Restore(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_;
};

// The fixed-point threshold t(p) = ceil(p * 2^53), so that for the 53-bit
// draw k = NextU64() >> 11 the comparisons
//
//     k < t(p)      and      k * 2^-53 < p
//
// agree for EVERY double p in [0, 1] and every k in [0, 2^53):  k * 2^-53
// and p * 2^53 are both exact in IEEE double (power-of-two scaling, no
// overflow since p <= 1, and a subnormal p scales up to a normal value),
// so `k * 2^-53 < p  <=>  k < p * 2^53  <=>  k < ceil(p * 2^53)` for
// integer k.  This lets hot paths replace a u64->double conversion,
// multiply, and double compare per sample with a single integer compare
// against a precomputed constant -- without changing a single random
// stream.  Precondition: 0 <= p <= 1.
[[nodiscard]] std::uint64_t BernoulliThreshold(double p);

// Precomputed Bernoulli(p) sampler for hot loops that draw from one fixed
// p many times (the channel Deliver implementations).  Sample() consumes
// exactly one NextU64 and is bit-identical to Rng::Bernoulli(p) -- and to
// the historical `UniformDouble() < p` path -- so threading a sampler
// through a hot loop never perturbs a seeded stream.
class BernoulliSampler {
 public:
  // Precondition: 0 <= p <= 1.
  explicit BernoulliSampler(double p = 0.0);

  // True with probability p(); consumes exactly one NextU64.
  [[nodiscard]] bool Sample(Rng& rng) const {
    return (rng.NextU64() >> 11) < threshold_;
  }

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }

 private:
  double p_;
  std::uint64_t threshold_;
};

// Word-parallel Bernoulli sampler for the fast word-delivery mode
// (docs/PERFORMANCE.md): one NoiseWord() call yields 64 i.i.d.
// Bernoulli(p) lanes packed into a u64.
//
// Each lane conceptually compares a fresh 53-bit uniform k against the
// same fixed-point threshold t(p) = BernoulliThreshold(p) the scalar
// sampler uses, so every lane is EXACTLY Bernoulli(t(p)/2^53) -- the
// identical distribution BernoulliSampler::Sample realizes per draw
// (same distribution, different stream: fast mode has its own goldens).
// The uniforms are generated bit-sliced, MSB first: bit j of one NextU64
// supplies bit j of EVERY lane's uniform, and a lane is decided the
// first time its uniform bit differs from the threshold bit.  Undecided
// lanes halve per draw in expectation, so a word costs ~log2(64) + 2
// (about 7.5) NextU64 calls regardless of p -- versus 64 for the scalar
// per-listener loop.  p == 0 and p == 1 consume no draws at all.
class BernoulliWordSampler {
 public:
  // Precondition: 0 <= p <= 1.
  explicit BernoulliWordSampler(double p = 0.0);

  // 64 i.i.d. Bernoulli(p()) bits.  Consumes between 0 and 53 NextU64
  // calls (deterministic given the rng state).
  [[nodiscard]] std::uint64_t NoiseWord(Rng& rng) const;

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }

 private:
  double p_;
  std::uint64_t threshold_;
};

// Geometric skip-sampling for sparse noise (fast word-delivery mode,
// small epsilon): instead of flipping a coin per position, NextGap
// returns the number of Bernoulli(p) failures strictly before the next
// success, sampled by inversion (floor(log(1-U) / log(1-p))).  Walking
// positions pos += gap + 1 visits exactly the success positions of an
// i.i.d. Bernoulli(p) sequence (up to double rounding in the logs --
// documented in docs/PERFORMANCE.md), at a cost of one NextU64 per
// SUCCESS rather than one per position.
//
// Edge cases, pinned by tests/channel_words_test.cc: p == 0 returns
// kNoSuccess ("skip to infinity") WITHOUT consuming a draw; p == 1
// returns 0 without consuming a draw; gaps too large for the caller's
// range saturate at kNoSuccess instead of overflowing.
class GeometricSkipSampler {
 public:
  static constexpr std::uint64_t kNoSuccess = ~std::uint64_t{0};

  // Precondition: 0 <= p <= 1.
  explicit GeometricSkipSampler(double p = 0.0);

  // Failures before the next success; kNoSuccess when p == 0 (no draw).
  [[nodiscard]] std::uint64_t NextGap(Rng& rng) const;

  [[nodiscard]] double p() const { return p_; }

 private:
  double p_;
  double inv_log_q_ = 0.0;  // 1 / log(1 - p); 0 when degenerate
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_RNG_H_
