// Deterministic, splittable random number generation.
//
// Every stochastic component of the library (channel noise, randomized
// protocols, workload generators, Monte Carlo experiments) draws from an
// Rng that is explicitly seeded, so that every test, example, and benchmark
// is reproducible bit-for-bit.  The generator is xoshiro256** seeded via
// SplitMix64; Split() derives an independent child stream, which is how the
// executor hands private randomness to parties without correlating them.
#ifndef NOISYBEEPS_UTIL_RNG_H_
#define NOISYBEEPS_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace noisybeeps {

class Rng {
 public:
  // Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next 64 uniform random bits.
  std::uint64_t NextU64();

  // Uniform integer in [0, bound).  Precondition: bound > 0.
  // Uses rejection sampling (Lemire-style) and is exactly uniform.
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  // True with probability p.  Precondition: 0 <= p <= 1.
  bool Bernoulli(double p);

  // Uniform random bit.
  bool Bit() { return (NextU64() >> 63) != 0; }

  // Derives an independent generator.  The child stream is decorrelated
  // from the parent's subsequent output (distinct SplitMix64 seed chain).
  Rng Split();

  // The full 256-bit generator state, for checkpointing (resilience
  // layer).  Restore(SaveState()) reconstructs a generator that emits the
  // identical stream from this point on.
  [[nodiscard]] std::array<std::uint64_t, 4> SaveState() const {
    return state_;
  }

  // Rebuilds a generator from a saved state.
  // Precondition: state is not all-zero (the xoshiro256** fixed point).
  [[nodiscard]] static Rng Restore(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_RNG_H_
