// Streaming statistics used by benchmarks and Monte Carlo experiments:
// running moments (Welford) and binomial confidence intervals (Wilson).
#ifndef NOISYBEEPS_UTIL_STATS_H_
#define NOISYBEEPS_UTIL_STATS_H_

#include <cstddef>

namespace noisybeeps {

// Numerically stable running mean / variance (Welford's algorithm).
class RunningStat {
 public:
  void Add(double value);

  // Folds `other` into this accumulator (Chan et al. pairwise combine), as
  // if every sample added to `other` had been added here instead.  Count,
  // min, and max merge exactly; mean and variance agree with one-shot
  // accumulation up to floating-point rounding.  Needed to fold
  // checkpointed partial aggregates (src/resilience/) back into one stat.
  void Merge(const RunningStat& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// A two-sided Wilson score interval for a binomial proportion.
struct WilsonInterval {
  double low;
  double high;
};

// Wilson interval at confidence level given by z (1.96 ~ 95%).
// Preconditions: trials > 0, 0 <= successes <= trials.
[[nodiscard]] WilsonInterval WilsonScoreInterval(std::size_t successes,
                                                 std::size_t trials,
                                                 double z = 1.96);

// Counter for success/failure experiments.
class SuccessCounter {
 public:
  void Record(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  // Folds `other` into this counter; exact and associative.
  void Merge(const SuccessCounter& other) {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

  [[nodiscard]] std::size_t trials() const { return trials_; }
  [[nodiscard]] std::size_t successes() const { return successes_; }
  [[nodiscard]] double rate() const {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(successes_) /
                              static_cast<double>(trials_);
  }
  // With zero trials there is no data: the interval is the vacuous [0, 1]
  // (every proportion is consistent with an empty sample), NOT a Wilson
  // interval for a fabricated one-trial sample.
  [[nodiscard]] WilsonInterval interval(double z = 1.96) const {
    if (trials_ == 0) return WilsonInterval{0.0, 1.0};
    return WilsonScoreInterval(successes_, trials_, z);
  }

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_STATS_H_
