// A minimal command-line flag parser for the library's tools and
// examples: --key=value and --key value forms, typed accessors with
// defaults, and unknown-flag detection.  Deliberately tiny -- no external
// dependency, no registration globals.
#ifndef NOISYBEEPS_UTIL_FLAGS_H_
#define NOISYBEEPS_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace noisybeeps {

class Flags {
 public:
  // Parses argv[1..).  Throws std::invalid_argument on malformed input
  // (a non--- token where a flag was expected).
  Flags(int argc, const char* const* argv);

  // Typed accessors; the flag is marked as consumed.  Value conversion
  // errors throw std::invalid_argument.
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& default_value);
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t default_value);
  [[nodiscard]] double GetDouble(const std::string& name,
                                 double default_value);
  // Present-without-value flags ("--verbose") and explicit
  // "--verbose=true/false" both work.
  [[nodiscard]] bool GetBool(const std::string& name, bool default_value);

  [[nodiscard]] bool Has(const std::string& name) const;

  // Flags that were supplied but never consumed by a Get* call -- use to
  // reject typos.
  [[nodiscard]] std::vector<std::string> UnconsumedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
};

// Strict base-10 parse of the ENTIRE string into `out`.  Fails (returns
// false, leaves `out` untouched) on empty input, non-numeric input,
// trailing garbage ("12x", "all"), and values outside int64 range --
// unlike bare strtoll, which silently returns 0 or a clamped value.
[[nodiscard]] bool TryParseInt64(const std::string& text, std::int64_t& out);

// Strict parse of the ENTIRE string into `out` as a finite double.
// Fails (returns false, leaves `out` untouched) on empty input, trailing
// garbage ("0.5x"), and on overflow: bare strtod happily turns "1e999"
// into +inf and sets errno, which callers never checked.  "inf" and
// "nan" are rejected by the finiteness check too -- no experiment
// parameter in this repo is meaningfully infinite, so a value that
// overflows or spells out inf/nan is always a typo worth failing on.
[[nodiscard]] bool TryParseDouble(const std::string& text, double& out);

// Integer-valued environment variable: `fallback` when unset or empty.
// A set-but-unparseable value throws std::invalid_argument naming the
// variable, so a typo like NB_BENCH_MAX_ATTEMPTS=all fails the run
// loudly instead of silently becoming 0 and changing policy.
[[nodiscard]] std::int64_t EnvInt64(const char* name, std::int64_t fallback);

// Double-valued environment variable with the same contract as EnvInt64:
// `fallback` when unset or empty, std::invalid_argument (naming the
// variable) when set but unparseable under TryParseDouble.
[[nodiscard]] double EnvDouble(const char* name, double fallback);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_FLAGS_H_
