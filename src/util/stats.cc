#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace noisybeeps {

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

WilsonInterval WilsonScoreInterval(std::size_t successes, std::size_t trials,
                                   double z) {
  NB_REQUIRE(trials > 0, "Wilson interval needs at least one trial");
  NB_REQUIRE(successes <= trials, "more successes than trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return WilsonInterval{std::max(0.0, (center - margin) / denom),
                        std::min(1.0, (center + margin) / denom)};
}

}  // namespace noisybeeps
