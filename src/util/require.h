// Precondition checking for the noisybeeps library.
//
// NB_REQUIRE(cond, msg) throws std::invalid_argument when a documented API
// precondition is violated.  Preconditions are part of every public contract
// in this library and are always checked (they guard O(1) conditions only;
// expensive invariants are checked in tests instead).
#ifndef NOISYBEEPS_UTIL_REQUIRE_H_
#define NOISYBEEPS_UTIL_REQUIRE_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace noisybeeps::internal {

[[noreturn]] inline void RequireFailed(const char* condition, const char* file,
                                       int line, const std::string& message) {
  std::ostringstream os;
  os << "precondition violated: (" << condition << ") at " << file << ":"
     << line;
  if (!message.empty()) os << " -- " << message;
  throw std::invalid_argument(os.str());
}

}  // namespace noisybeeps::internal

#define NB_REQUIRE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::noisybeeps::internal::RequireFailed(#cond, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)

#endif  // NOISYBEEPS_UTIL_REQUIRE_H_
