#include "util/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/require.h"

namespace noisybeeps {
namespace {

bool IsFlagToken(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    NB_REQUIRE(IsFlagToken(token), "expected --flag, got: " + token);
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !IsFlagToken(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare boolean flag
    }
  }
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  return it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  std::int64_t value = 0;
  NB_REQUIRE(TryParseInt64(it->second, value),
             "flag --" + name + " is not an integer: " + it->second);
  return value;
}

double Flags::GetDouble(const std::string& name, double default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  double value = 0.0;
  NB_REQUIRE(TryParseDouble(it->second, value),
             "flag --" + name + " is not a finite number: " + it->second);
  return value;
}

bool Flags::GetBool(const std::string& name, bool default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  NB_REQUIRE(false, "flag --" + name + " is not a boolean: " + it->second);
  return default_value;  // unreachable
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

bool TryParseInt64(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  // end must have consumed the whole string: this rejects "12x", "all",
  // and strings with an embedded NUL.  ERANGE catches clamped overflow.
  if (end != text.c_str() + text.size()) return false;
  if (errno == ERANGE) return false;
  out = value;
  return true;
}

bool TryParseDouble(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  // ERANGE covers both overflow (clamped to +-HUGE_VAL) and underflow;
  // underflow to a denormal-or-zero is harmless, so only reject values
  // strtod could not represent finitely.  The isfinite check then drops
  // explicit "inf"/"nan" spellings, which set no errno at all.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return false;
  }
  if (!std::isfinite(value)) return false;
  out = value;
  return true;
}

std::int64_t EnvInt64(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::int64_t value = 0;
  NB_REQUIRE(TryParseInt64(raw, value),
             std::string("environment variable ") + name +
                 " is not an integer: \"" + raw + "\"");
  return value;
}

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  double value = 0.0;
  NB_REQUIRE(TryParseDouble(raw, value),
             std::string("environment variable ") + name +
                 " is not a finite number: \"" + raw + "\"");
  return value;
}

std::vector<std::string> Flags::UnconsumedFlags() const {
  std::vector<std::string> unconsumed;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!consumed_.count(name)) unconsumed.push_back(name);
  }
  return unconsumed;
}

}  // namespace noisybeeps
