#include "util/bitstring.h"

#include <bit>

#include "util/require.h"

namespace noisybeeps {

BitString::BitString(std::initializer_list<int> bits) {
  words_.reserve(WordCount(bits.size()));
  for (int b : bits) {
    NB_REQUIRE(b == 0 || b == 1, "bits must be 0 or 1");
    PushBack(b != 0);
  }
}

BitString BitString::FromString(const std::string& bits) {
  BitString out;
  out.words_.reserve(WordCount(bits.size()));
  for (char c : bits) {
    NB_REQUIRE(c == '0' || c == '1', "bit characters must be '0' or '1'");
    out.PushBack(c == '1');
  }
  return out;
}

bool BitString::operator[](std::size_t pos) const {
  NB_REQUIRE(pos < size_, "bit index out of range");
  return (words_[pos / 64] >> (pos % 64)) & 1u;
}

void BitString::Set(std::size_t pos, bool value) {
  NB_REQUIRE(pos < size_, "bit index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (pos % 64);
  if (value) {
    words_[pos / 64] |= mask;
  } else {
    words_[pos / 64] &= ~mask;
  }
}

void BitString::PushBack(bool bit) {
  if (size_ % 64 == 0) words_.push_back(0);
  if (bit) words_[size_ / 64] |= std::uint64_t{1} << (size_ % 64);
  ++size_;
}

void BitString::Append(const BitString& other) {
  // Bit-by-bit is fine: appends in this library are O(protocol length) and
  // never on a hot path compared to channel simulation.
  for (std::size_t i = 0; i < other.size_; ++i) PushBack(other[i]);
}

void BitString::Truncate(std::size_t new_size) {
  NB_REQUIRE(new_size <= size_, "cannot truncate to a larger size");
  size_ = new_size;
  words_.resize(WordCount(size_));
  ClearSlack();
}

BitString BitString::Prefix(std::size_t count) const {
  NB_REQUIRE(count <= size_, "prefix longer than string");
  BitString out = *this;
  out.Truncate(count);
  return out;
}

BitString BitString::Substring(std::size_t begin, std::size_t end) const {
  NB_REQUIRE(begin <= end && end <= size_, "invalid substring range");
  BitString out;
  out.words_.reserve(WordCount(end - begin));
  for (std::size_t i = begin; i < end; ++i) out.PushBack((*this)[i]);
  return out;
}

std::uint64_t BitString::Word(std::size_t wi) const {
  NB_REQUIRE(wi < words_.size(), "word index out of range");
  return words_[wi];
}

void BitString::SetWord(std::size_t wi, std::uint64_t value) {
  NB_REQUIRE(wi < words_.size(), "word index out of range");
  words_[wi] = value;
  // Unconditionally re-establish the tail-bit invariant: masking only the
  // last word keeps a full-word write O(1) while making it impossible for
  // a caller to park garbage in the slack.
  if (wi + 1 == words_.size()) words_.back() &= TailMask(size_);
}

void BitString::Resize(std::size_t size) {
  if (size <= size_) {
    Truncate(size);
    return;
  }
  // Growth appends zero bits: the slack of the old last word is zero by
  // invariant, and vector::resize zero-fills the new words.
  words_.resize(WordCount(size), 0);
  size_ = size;
}

std::size_t BitString::PopCount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::size_t BitString::HammingDistance(const BitString& other) const {
  NB_REQUIRE(size_ == other.size_,
             "Hamming distance requires equal-length strings");
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += std::popcount(words_[w] ^ other.words_[w]);
  }
  return total;
}

bool BitString::StartsWith(const BitString& prefix) const {
  if (prefix.size_ > size_) return false;
  for (std::size_t i = 0; i < prefix.size_; ++i) {
    if ((*this)[i] != prefix[i]) return false;
  }
  return true;
}

std::string BitString::ToString() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i] ? '1' : '0');
  return out;
}

void BitString::ClearSlack() {
  if (size_ % 64 != 0 && !words_.empty()) {
    const std::uint64_t mask =
        (std::uint64_t{1} << (size_ % 64)) - 1;
    words_.back() &= mask;
  }
}

bool operator==(const BitString& a, const BitString& b) {
  return a.size_ == b.size_ && a.words_ == b.words_;
}

}  // namespace noisybeeps
