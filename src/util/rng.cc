#include "util/rng.h"

#include <bit>
#include <cmath>

#include "util/require.h"

namespace noisybeeps {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  NB_REQUIRE(bound > 0, "UniformInt bound must be positive");
  // Lemire's multiply-shift method with rejection for exact uniformity.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  // Validate before drawing: an out-of-range p must not advance the
  // stream (comparison operand order is unspecified).
  const std::uint64_t threshold = BernoulliThreshold(p);
  return (NextU64() >> 11) < threshold;
}

std::uint64_t BernoulliThreshold(double p) {
  NB_REQUIRE(p >= 0.0 && p <= 1.0, "Bernoulli parameter out of [0,1]");
  // p * 2^53 is exact (power-of-two scaling of a double in [0, 1]), so
  // ceil introduces no rounding; the result fits in 54 bits.
  return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
}

BernoulliSampler::BernoulliSampler(double p) : p_(p), threshold_(0) {
  NB_REQUIRE(p >= 0.0 && p <= 1.0, "Bernoulli parameter out of [0,1]");
  threshold_ = BernoulliThreshold(p);
}

Rng Rng::Restore(const std::array<std::uint64_t, 4>& state) {
  NB_REQUIRE(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0,
             "all-zero state is the xoshiro256** fixed point");
  Rng rng(0);
  rng.state_ = state;
  return rng;
}

BernoulliWordSampler::BernoulliWordSampler(double p) : p_(p), threshold_(0) {
  NB_REQUIRE(p >= 0.0 && p <= 1.0, "Bernoulli parameter out of [0,1]");
  threshold_ = BernoulliThreshold(p);
}

std::uint64_t BernoulliWordSampler::NoiseWord(Rng& rng) const {
  if (threshold_ == 0) return 0;                          // p == 0: no draw
  if (threshold_ >= (std::uint64_t{1} << 53)) {           // p == 1: no draw
    return ~std::uint64_t{0};
  }
  // Lane l is true iff its 53-bit uniform k_l < threshold_.  Generate the
  // k_l bit-sliced from the MSB (bit 52) down: draw r supplies bit j of
  // every lane's uniform.  While a lane's bits have matched the
  // threshold's, it is undecided; the first differing bit decides it
  // (uniform bit 0 under threshold bit 1 => below; 1 under 0 => above).
  // Lanes still undecided after all 53 bits equal the threshold exactly,
  // and k == t is not k < t: they stay 0.
  std::uint64_t result = 0;
  std::uint64_t undecided = ~std::uint64_t{0};
  for (int j = 52; j >= 0; --j) {
    const std::uint64_t r = rng.NextU64();
    if ((threshold_ >> j) & 1u) {
      result |= undecided & ~r;
      undecided &= r;
    } else {
      undecided &= ~r;
    }
    if (undecided == 0) break;
  }
  return result;
}

GeometricSkipSampler::GeometricSkipSampler(double p) : p_(p) {
  NB_REQUIRE(p >= 0.0 && p <= 1.0, "Bernoulli parameter out of [0,1]");
  if (p > 0.0 && p < 1.0) inv_log_q_ = 1.0 / std::log1p(-p);
}

std::uint64_t GeometricSkipSampler::NextGap(Rng& rng) const {
  if (p_ <= 0.0) return kNoSuccess;  // skip to infinity, stream untouched
  if (p_ >= 1.0) return 0;           // every position succeeds, no draw
  const double u = rng.UniformDouble();  // [0, 1): log1p(-u) is finite
  const double gap = std::log1p(-u) * inv_log_q_;
  // For tiny p the inverted gap can exceed any caller's range (and even
  // u64); saturate rather than wrap.  9e18 < 2^63 keeps the cast exact.
  if (!(gap < 9.0e18)) return kNoSuccess;
  return static_cast<std::uint64_t>(gap);
}

Rng Rng::Split() {
  // Seed the child from fresh output; the child reseeds through SplitMix64
  // so parent and child trajectories are decorrelated.
  return Rng(NextU64());
}

}  // namespace noisybeeps
