// Locale-stable number formatting.
//
// Channel and simulator name() strings embed their parameters (e.g.
// "independent(eps=0.1)"), and those names end up in logs, CSV rows, and
// config fingerprints.  std::to_string and printf-family formatting honor
// the process's C locale, so a locale that spells the decimal point ","
// would silently change every such string.  FormatDouble goes through
// std::to_chars, which is locale-independent by specification and emits
// the shortest representation that round-trips.
#ifndef NOISYBEEPS_UTIL_FORMAT_H_
#define NOISYBEEPS_UTIL_FORMAT_H_

#include <charconv>
#include <cstdint>
#include <string>

namespace noisybeeps {

// Shortest round-trip decimal rendering of `value`, independent of the
// global locale ("0.1", "0.33333333333333331", "1e-300", "inf").
[[nodiscard]] inline std::string FormatDouble(double value) {
  char buffer[64];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  return std::string(buffer, result.ptr);
}

// Fixed-width lowercase hex rendering of a 64-bit value ("00000000000004d2"),
// locale-independent.  Used for result-cache file names and protocol
// fingerprint fields, where a stable 16-character spelling matters.
[[nodiscard]] inline std::string FormatHex64(std::uint64_t value) {
  char buffer[16];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof buffer, value, 16);
  const std::string digits(buffer, result.ptr);
  return std::string(16 - digits.size(), '0') + digits;
}

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_FORMAT_H_
