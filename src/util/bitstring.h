// BitString: a compact, append-friendly sequence of bits.
//
// Transcripts of beeping protocols, codewords of binary error-correcting
// codes, and per-party beep histories are all BitStrings.  The type is a
// regular value type (copyable, movable, equality-comparable) backed by
// packed 64-bit words, with the operations the rest of the library needs:
// append, random access, prefix extraction, concatenation, Hamming
// distance, and population count.
#ifndef NOISYBEEPS_UTIL_BITSTRING_H_
#define NOISYBEEPS_UTIL_BITSTRING_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace noisybeeps {

class BitString {
 public:
  // Bits per backing word.  The word-parallel round engine packs one
  // party per bit, 64 parties per word.
  static constexpr std::size_t kWordBits = 64;
  BitString() = default;

  // A string of `size` zero bits.
  explicit BitString(std::size_t size) : size_(size), words_(WordCount(size)) {}

  // Construction from explicit bits, e.g. BitString({1, 0, 1}).
  BitString(std::initializer_list<int> bits);

  // Parses a string of '0'/'1' characters.  Throws on any other character.
  static BitString FromString(const std::string& bits);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Random access.  Precondition: pos < size().
  [[nodiscard]] bool operator[](std::size_t pos) const;
  void Set(std::size_t pos, bool value);

  // Pre-allocates backing storage for at least `bits` total bits, so a
  // loop of PushBack calls (the per-round transcript append in the
  // executors) never reallocates mid-run.  Size is unchanged.
  void Reserve(std::size_t bits) { words_.reserve(WordCount(bits)); }

  // Appends one bit at the end.
  void PushBack(bool bit);

  // Appends all of `other` at the end.
  void Append(const BitString& other);

  // Removes the last `count` bits.  Precondition: count <= size().
  void Truncate(std::size_t new_size);

  // The first `count` bits as a new BitString.  Precondition: count <= size().
  [[nodiscard]] BitString Prefix(std::size_t count) const;

  // Bits [begin, end) as a new BitString.  Precondition: begin <= end <= size.
  [[nodiscard]] BitString Substring(std::size_t begin, std::size_t end) const;

  // --- the word-span API ----------------------------------------------
  //
  // The packed representation is part of the public contract: bit i lives
  // at bit (i % 64) of word (i / 64), and the TAIL-BIT INVARIANT holds at
  // all times -- every bit of the last word at position >= size() % 64 is
  // zero.  Every mutator (Set, PushBack, Append, Truncate, FromString,
  // SetWord, Resize) re-establishes the invariant, so word-level readers
  // (PopCount, HammingDistance, operator==, the word-parallel round
  // engine's OR/popcount loops) never see garbage in the slack.  The
  // property tests in tests/util_bitstring_test.cc drive randomized
  // mutation sequences against a bit-by-bit reference to hold this to
  // account.

  // Number of backing words, WordCount(size()).
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  // Read-only view of the packed words (tail-bit invariant guaranteed).
  [[nodiscard]] std::span<const std::uint64_t> words() const {
    return words_;
  }

  // Word `wi` of the packed representation.  Precondition: wi < word_count().
  [[nodiscard]] std::uint64_t Word(std::size_t wi) const;

  // Overwrites word `wi` wholesale.  Bits beyond size() in the last word
  // are masked off, so the tail-bit invariant survives every write -- a
  // caller cannot smuggle garbage into the slack even on purpose.
  // Precondition: wi < word_count().
  void SetWord(std::size_t wi, std::uint64_t value);

  // Grows (with zero bits) or shrinks to exactly `size` bits.
  void Resize(std::size_t size);

  // The mask of in-range bits for the LAST word of a `bits`-bit string
  // (all-ones when bits is a multiple of 64).
  [[nodiscard]] static std::uint64_t TailMask(std::size_t bits) {
    const std::size_t rem = bits % kWordBits;
    return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
  }

  // Number of 1 bits.
  [[nodiscard]] std::size_t PopCount() const;

  // Number of positions where *this and other differ.
  // Precondition: same size.
  [[nodiscard]] std::size_t HammingDistance(const BitString& other) const;

  // True iff `prefix` equals the first prefix.size() bits of *this.
  [[nodiscard]] bool StartsWith(const BitString& prefix) const;

  // "0101..." rendering (for logs and test failure messages).
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const BitString& a, const BitString& b);
  friend bool operator!=(const BitString& a, const BitString& b) {
    return !(a == b);
  }

 private:
  static std::size_t WordCount(std::size_t bits) { return (bits + 63) / 64; }
  // Zeroes the unused high bits of the last word so that equality and
  // popcount can operate word-wise.
  void ClearSlack();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_BITSTRING_H_
