// Deterministic parallel trial execution.
//
// Monte Carlo sweeps dominate this library's tools and benches; they are
// embarrassingly parallel ACROSS trials but must stay bit-reproducible.
// ParallelTrials guarantees that by construction: the caller's Rng is
// split into one child PER TRIAL up front (a pure function of the parent
// state and the trial index), so results are identical for any worker
// count, including 1.  Workers pull trial indices from a shared atomic
// counter; the per-trial results vector is pre-sized so there is no
// cross-thread contention on anything but the counter.
#ifndef NOISYBEEPS_UTIL_PARALLEL_H_
#define NOISYBEEPS_UTIL_PARALLEL_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "util/require.h"
#include "util/rng.h"

namespace noisybeeps {

// Runs `body(trial_index, trial_rng)` for every trial in [0, num_trials),
// on up to `num_workers` threads (0 = hardware concurrency).  Each trial
// gets an independent Rng split deterministically from `rng`; `rng` is
// advanced by exactly num_trials splits regardless of scheduling.
// The body must not touch shared mutable state (write only through its
// own return slot or captured per-trial storage).
template <typename Result>
std::vector<Result> ParallelTrials(
    int num_trials, Rng& rng,
    const std::function<Result(int, Rng&)>& body, int num_workers = 0) {
  NB_REQUIRE(num_trials >= 0, "negative trial count");
  std::vector<Rng> trial_rngs;
  trial_rngs.reserve(num_trials);
  for (int t = 0; t < num_trials; ++t) trial_rngs.push_back(rng.Split());

  std::vector<Result> results(num_trials);
  if (num_trials == 0) return results;

  int workers = num_workers > 0
                    ? num_workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (workers > num_trials) workers = num_trials;

  if (workers == 1) {
    for (int t = 0; t < num_trials; ++t) {
      results[t] = body(t, trial_rngs[t]);
    }
    return results;
  }

  std::atomic<int> next{0};
  auto worker = [&] {
    for (int t = next.fetch_add(1); t < num_trials; t = next.fetch_add(1)) {
      results[t] = body(t, trial_rngs[t]);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return results;
}

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_PARALLEL_H_
