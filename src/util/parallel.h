// Deterministic parallel trial execution.
//
// Monte Carlo sweeps dominate this library's tools and benches; they are
// embarrassingly parallel ACROSS trials but must stay bit-reproducible.
// ParallelTrials guarantees that by construction: the caller's Rng is
// split into one child PER TRIAL up front (a pure function of the parent
// state and the trial index), so results are identical for any worker
// count, including 1.  Workers pull trial indices from a shared atomic
// counter; the per-trial result slots are pre-sized so there is no
// cross-thread contention on anything but the counter.
//
// The engine is layered so the resilience wrapper (src/resilience/) can
// reuse it on arbitrary index subsets without spawning threads of its own:
//   SplitTrialRngs   derive the per-trial generators (the pure function)
//   ParallelForEach  run body(i) for i in [0, count) across workers
//   ParallelTrials   the composition most callers want
//
// This header is the ONLY place in the library that may spawn threads
// (nblint rule raw-thread); tests/determinism_audit_test.cc holds the
// guarantee above to account across representative workloads.
#ifndef NOISYBEEPS_UTIL_PARALLEL_H_
#define NOISYBEEPS_UTIL_PARALLEL_H_

#include <atomic>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/require.h"
#include "util/rng.h"

namespace noisybeeps {

// Derives one independent child generator per trial, advancing `rng` by
// exactly num_trials splits.  trial_rngs[t] is a pure function of (rng's
// state at entry, t) -- the root of the determinism contract below.
// Precondition: num_trials >= 0.
inline std::vector<Rng> SplitTrialRngs(int num_trials, Rng& rng) {
  NB_REQUIRE(num_trials >= 0, "negative trial count");
  std::vector<Rng> trial_rngs;
  trial_rngs.reserve(static_cast<std::size_t>(num_trials));
  for (int t = 0; t < num_trials; ++t) trial_rngs.push_back(rng.Split());
  return trial_rngs;
}

// Runs `body(i)` for every i in [0, count) on up to `num_workers` threads
// (0 = hardware concurrency) and returns the results in index order.
// `body` is any callable of signature Result(int); Result must be
// move-constructible.  The body must not touch shared mutable state (write
// only through its own return value or captured per-index storage); under
// that contract the returned vector is identical for every worker count.
// If `body` throws, the exception propagates to the CALLER at every worker
// count (never std::terminate): workers stop pulling new indices and one
// captured exception is rethrown after the join.  Which indices ran before
// the stop is unspecified; no partial results are returned.
// Preconditions: count >= 0 and num_workers >= 0.
template <typename Body,
          typename Result = std::decay_t<std::invoke_result_t<Body&, int>>>
std::vector<Result> ParallelForEach(int count, Body&& body,
                                    int num_workers = 0) {
  NB_REQUIRE(count >= 0, "negative trial count");
  NB_REQUIRE(num_workers >= 0,
             "num_workers must be >= 0 (0 = hardware concurrency); results "
             "are bit-identical for every worker count");
  if (count == 0) return {};

  int workers = num_workers > 0
                    ? num_workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (workers > count) workers = count;

  if (workers == 1) {
    std::vector<Result> results;
    results.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      results.push_back(body(i));
    }
    return results;
  }

  // Each slot is written by exactly one worker (the one that pulled its
  // index off the counter) and read only after all joins: no data race,
  // and no default-constructibility requirement on Result.  A body
  // exception must never escape a thread's start function (that would be
  // std::terminate, killing the process with no diagnostic): each worker
  // captures its first exception into its own slot and raises the shared
  // stop flag, and the captured exception is rethrown on the calling
  // thread after the join.
  std::vector<std::optional<Result>> slots(static_cast<std::size_t>(count));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  std::atomic<int> next{0};
  std::atomic<bool> stop{false};
  auto worker = [&](int w) {
    for (int i = next.fetch_add(1, std::memory_order_relaxed);
         i < count && !stop.load(std::memory_order_relaxed);
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        slots[static_cast<std::size_t>(i)].emplace(body(i));
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  std::vector<Result> results;
  results.reserve(static_cast<std::size_t>(count));
  for (std::optional<Result>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

// Runs `body(trial_index, trial_rng)` for every trial in [0, num_trials),
// on up to `num_workers` threads (0 = hardware concurrency).  `body` is
// any callable of signature Result(int, Rng&); Result must be
// move-constructible (results are constructed in place -- no
// default-construct-then-assign).
//
// Determinism contract (verified by tests/determinism_audit_test.cc):
// results[t] depends only on (rng's state at entry, t) -- each trial gets
// an Rng split deterministically from `rng` before any worker starts, and
// `rng` is advanced by exactly num_trials splits regardless of scheduling.
// Hence the returned vector is bit-identical for every num_workers value,
// including 1.
//
// Preconditions: num_trials >= 0 and num_workers >= 0.
// The body must not touch shared mutable state (write only through its
// own return value or captured per-trial storage).
template <typename Body,
          typename Result = std::decay_t<std::invoke_result_t<Body&, int, Rng&>>>
std::vector<Result> ParallelTrials(int num_trials, Rng& rng, Body&& body,
                                   int num_workers = 0) {
  NB_REQUIRE(num_workers >= 0,
             "num_workers must be >= 0 (0 = hardware concurrency); results "
             "are bit-identical for every worker count");
  std::vector<Rng> trial_rngs = SplitTrialRngs(num_trials, rng);
  return ParallelForEach(
      num_trials, [&](int t) { return body(t, trial_rngs[t]); }, num_workers);
}

}  // namespace noisybeeps

#endif  // NOISYBEEPS_UTIL_PARALLEL_H_
