#include "tasks/or_vector.h"

#include "util/require.h"

namespace noisybeeps {
namespace {

class OrVectorParty final : public Party {
 public:
  OrVectorParty(BitString row) : row_(std::move(row)) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    return row_[prefix.size()];
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    PartyOutput packed((pi.size() + 63) / 64, 0);
    for (std::size_t m = 0; m < pi.size(); ++m) {
      if (pi[m]) packed[m / 64] |= std::uint64_t{1} << (m % 64);
    }
    return packed;
  }

 private:
  BitString row_;
};

}  // namespace

OrVectorInstance SampleOrVector(int n, int width, double density, Rng& rng) {
  NB_REQUIRE(n >= 1, "need at least one party");
  NB_REQUIRE(width >= 1, "width must be positive");
  NB_REQUIRE(density >= 0.0 && density <= 1.0, "density out of [0,1]");
  OrVectorInstance instance;
  instance.rows.assign(n, BitString());
  for (int i = 0; i < n; ++i) {
    for (int m = 0; m < width; ++m) {
      instance.rows[i].PushBack(rng.Bernoulli(density));
    }
  }
  return instance;
}

PartyOutput OrVectorExpectedOutput(const OrVectorInstance& instance) {
  const int width = instance.width();
  PartyOutput packed((width + 63) / 64, 0);
  for (int m = 0; m < width; ++m) {
    bool any = false;
    for (const BitString& row : instance.rows) any = any || row[m];
    if (any) packed[m / 64] |= std::uint64_t{1} << (m % 64);
  }
  return packed;
}

std::unique_ptr<Protocol> MakeOrVectorProtocol(
    const OrVectorInstance& instance) {
  NB_REQUIRE(!instance.rows.empty(), "empty instance");
  const std::size_t width = instance.rows.front().size();
  NB_REQUIRE(width >= 1, "rows must be non-empty");
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(instance.rows.size());
  for (const BitString& row : instance.rows) {
    NB_REQUIRE(row.size() == width, "ragged rows");
    parties.push_back(std::make_unique<OrVectorParty>(row));
  }
  return std::make_unique<BasicProtocol>(std::move(parties),
                                         static_cast<int>(width));
}

bool OrVectorAllCorrect(const OrVectorInstance& instance,
                        const std::vector<PartyOutput>& outputs) {
  const PartyOutput expected = OrVectorExpectedOutput(instance);
  for (const PartyOutput& out : outputs) {
    if (out != expected) return false;
  }
  return true;
}

}  // namespace noisybeeps
