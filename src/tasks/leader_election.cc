#include "tasks/leader_election.h"

#include <algorithm>
#include <unordered_set>

#include "util/require.h"

namespace noisybeeps {
namespace {

class LeaderElectionParty final : public Party {
 public:
  LeaderElectionParty(std::uint64_t id, int id_bits)
      : id_(id), id_bits_(id_bits) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    const int round = static_cast<int>(prefix.size());
    if (!ActiveAfter(prefix, round)) return false;
    return BitAt(round);
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    // The transcript spells the winner id, most significant bit first.
    std::uint64_t winner = 0;
    for (int r = 0; r < id_bits_; ++r) {
      winner = (winner << 1) | (pi[r] ? 1u : 0u);
    }
    const bool leader = ActiveAfter(pi, id_bits_) && winner == id_;
    return PartyOutput{winner, leader ? std::uint64_t{1} : std::uint64_t{0}};
  }

 private:
  // Bit beeped in round r: id bit (id_bits-1-r), MSB first.
  [[nodiscard]] bool BitAt(int round) const {
    return ((id_ >> (id_bits_ - 1 - round)) & 1) != 0;
  }

  // Whether this party is still active entering round `round`, replaying
  // the drop-out rule on the first `round` transcript bits.
  [[nodiscard]] bool ActiveAfter(const BitString& transcript,
                                 int round) const {
    for (int r = 0; r < round; ++r) {
      if (transcript[r] && !BitAt(r)) return false;
    }
    return true;
  }

  std::uint64_t id_;
  int id_bits_;
};

}  // namespace

LeaderElectionInstance SampleLeaderElection(int n, int id_bits, Rng& rng) {
  NB_REQUIRE(n >= 1, "need at least one party");
  NB_REQUIRE(id_bits >= 1 && id_bits <= 63, "id width out of range");
  NB_REQUIRE(id_bits >= 63 || (std::uint64_t{1} << id_bits) >=
                                  static_cast<std::uint64_t>(n),
             "id space too small for distinct ids");
  LeaderElectionInstance instance;
  instance.id_bits = id_bits;
  std::unordered_set<std::uint64_t> seen;
  while (static_cast<int>(instance.ids.size()) < n) {
    const std::uint64_t id = rng.UniformInt(std::uint64_t{1} << id_bits);
    if (seen.insert(id).second) instance.ids.push_back(id);
  }
  return instance;
}

std::uint64_t LeaderElectionWinner(const LeaderElectionInstance& instance) {
  NB_REQUIRE(!instance.ids.empty(), "empty instance");
  return *std::max_element(instance.ids.begin(), instance.ids.end());
}

std::unique_ptr<Protocol> MakeLeaderElectionProtocol(
    const LeaderElectionInstance& instance) {
  NB_REQUIRE(!instance.ids.empty(), "empty instance");
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(instance.ids.size());
  for (std::uint64_t id : instance.ids) {
    parties.push_back(
        std::make_unique<LeaderElectionParty>(id, instance.id_bits));
  }
  return std::make_unique<BasicProtocol>(std::move(parties),
                                         instance.id_bits);
}

bool LeaderElectionAllCorrect(const LeaderElectionInstance& instance,
                              const std::vector<PartyOutput>& outputs) {
  const std::uint64_t winner = LeaderElectionWinner(instance);
  int leaders = 0;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].size() != 2 || outputs[i][0] != winner) return false;
    if (outputs[i][1] == 1) {
      ++leaders;
      if (instance.ids[i] != winner) return false;
    }
  }
  return leaders == 1;
}

}  // namespace noisybeeps
