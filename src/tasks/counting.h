// Approximate network-size estimation by geometric beeping
// [BKK+16-style]: in phase k, each party beeps with probability 2^-k
// (coins fixed by its private seed, so the party stays a pure function).
// Each phase is repeated `reps` times; the estimate is 2^(k*) where k* is
// the first phase in which fewer than half the repetitions carried a beep.
// On the noiseless channel the estimate is within a constant factor of n
// with high probability; under noise the phase counters corrupt -- which
// is exactly what the simulation schemes repair.
#ifndef NOISYBEEPS_TASKS_COUNTING_H_
#define NOISYBEEPS_TASKS_COUNTING_H_

#include <memory>
#include <vector>

#include "protocol/protocol.h"
#include "util/rng.h"

namespace noisybeeps {

struct CountingInstance {
  std::vector<std::uint64_t> seeds;  // one private seed per party
  int max_log = 0;                   // phases k = 0 .. max_log (inclusive)
  int reps = 0;                      // repetitions per phase
};

[[nodiscard]] CountingInstance SampleCounting(int n, int max_log, int reps,
                                              Rng& rng);

// T = (max_log + 1) * reps rounds; every party outputs {estimate}.
[[nodiscard]] std::unique_ptr<Protocol> MakeCountingProtocol(
    const CountingInstance& instance);

// True iff every party's estimate is within [n / tolerance, n * tolerance].
[[nodiscard]] bool CountingAllWithinFactor(
    const CountingInstance& instance, const std::vector<PartyOutput>& outputs,
    double tolerance);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_TASKS_COUNTING_H_
