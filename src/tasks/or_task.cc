#include "tasks/or_task.h"

#include "util/require.h"

namespace noisybeeps {
namespace {

class OrParty final : public Party {
 public:
  explicit OrParty(bool bit) : bit_(bit) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    (void)prefix;
    return bit_;
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    return PartyOutput{pi[0] ? std::uint64_t{1} : std::uint64_t{0}};
  }

 private:
  bool bit_;
};

}  // namespace

std::unique_ptr<Protocol> MakeOrProtocol(const std::vector<std::uint8_t>& bits) {
  NB_REQUIRE(!bits.empty(), "need at least one party");
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(bits.size());
  for (std::uint8_t b : bits) {
    parties.push_back(std::make_unique<OrParty>(b != 0));
  }
  return std::make_unique<BasicProtocol>(std::move(parties), 1);
}

bool OrExpected(const std::vector<std::uint8_t>& bits) {
  for (std::uint8_t b : bits) {
    if (b != 0) return true;
  }
  return false;
}

}  // namespace noisybeeps
