// AdaptiveFind: locate the highest-indexed party holding a 1, by a
// transcript-adaptive binary search.
//
// Round 0 asks "anyone?"; afterwards the live index range [lo, hi) halves
// each round: parties in the upper half holding a 1 beep, and the range
// follows the received bit.  Who beeps in round m depends on the bits
// received in rounds < m, which makes this the library's canonical
// *adaptive* protocol -- the case Section 2.2 of the paper contrasts with
// its oblivious lower-bound construction, and the acid test for the
// simulators' rewind logic (a mis-simulated early round derails every
// later beep decision).
#ifndef NOISYBEEPS_TASKS_ADAPTIVE_FIND_H_
#define NOISYBEEPS_TASKS_ADAPTIVE_FIND_H_

#include <memory>
#include <vector>

#include "protocol/protocol.h"
#include "util/rng.h"

namespace noisybeeps {

struct AdaptiveFindInstance {
  std::vector<std::uint8_t> bits;  // bits[i] in {0, 1}
};

// Each bit is 1 independently with probability `density`.
[[nodiscard]] AdaptiveFindInstance SampleAdaptiveFind(int n, double density,
                                                      Rng& rng);

// The expected answer: highest index holding 1, or n if all bits are 0
// (encoded as "not found").
[[nodiscard]] std::uint64_t AdaptiveFindAnswer(
    const AdaptiveFindInstance& instance);

// T = 1 + ceil(log2 n) rounds; every party outputs {answer}.
[[nodiscard]] std::unique_ptr<Protocol> MakeAdaptiveFindProtocol(
    const AdaptiveFindInstance& instance);

[[nodiscard]] bool AdaptiveFindAllCorrect(
    const AdaptiveFindInstance& instance,
    const std::vector<PartyOutput>& outputs);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_TASKS_ADAPTIVE_FIND_H_
