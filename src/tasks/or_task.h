// The OR task: each party holds one bit; everyone must learn the OR.
//
// The beeping channel computes OR natively, so the noiseless protocol is a
// single round -- the "(extremely) efficient protocol for the or of n
// bits" that Section 2.1 of the paper identifies as the beeping model's
// distinguishing power, and the primitive the coding schemes' verification
// phases lean on (error flags are OR'd).
#ifndef NOISYBEEPS_TASKS_OR_TASK_H_
#define NOISYBEEPS_TASKS_OR_TASK_H_

#include <memory>
#include <vector>

#include "protocol/protocol.h"
#include "util/rng.h"

namespace noisybeeps {

// One round; every party outputs {or_of_bits}.
[[nodiscard]] std::unique_ptr<Protocol> MakeOrProtocol(
    const std::vector<std::uint8_t>& bits);

[[nodiscard]] bool OrExpected(const std::vector<std::uint8_t>& bits);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_TASKS_OR_TASK_H_
