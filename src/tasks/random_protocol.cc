#include "tasks/random_protocol.h"

#include "util/require.h"

namespace noisybeeps {
namespace {

std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Rolling digest of a transcript prefix; recomputed per call to keep the
// party pure (cost O(|prefix|), fine at library scales).
std::uint64_t PrefixDigest(const BitString& prefix) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    h = Mix(h ^ (prefix[i] ? 0x9e3779b97f4a7c15ULL : 0x7f4a7c159e3779b9ULL) ^
            (i * 0xff51afd7ed558ccdULL));
  }
  return h;
}

class RandomParty final : public Party {
 public:
  RandomParty(std::uint64_t seed, int threshold, bool adaptive)
      : seed_(seed), threshold_(threshold), adaptive_(adaptive) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    std::uint64_t key = seed_ ^ (prefix.size() * 0xc2b2ae3d27d4eb4fULL);
    if (adaptive_) key ^= PrefixDigest(prefix);
    return static_cast<int>(Mix(key) & 0xff) < threshold_;
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    return PartyOutput{TranscriptDigest(pi)};
  }

 private:
  std::uint64_t seed_;
  int threshold_;  // beep iff hash byte < threshold (density * 256)
  bool adaptive_;
};

}  // namespace

RandomProtocolSpec SampleRandomProtocol(int n, int length, double density,
                                        bool adaptive, Rng& rng) {
  NB_REQUIRE(n >= 1, "need at least one party");
  NB_REQUIRE(length >= 0, "negative length");
  NB_REQUIRE(density >= 0.0 && density <= 1.0, "density out of [0,1]");
  RandomProtocolSpec spec;
  spec.length = length;
  spec.density = density;
  spec.adaptive = adaptive;
  spec.seeds.reserve(n);
  for (int i = 0; i < n; ++i) spec.seeds.push_back(rng.NextU64());
  return spec;
}

std::unique_ptr<Protocol> MakeRandomProtocol(const RandomProtocolSpec& spec) {
  NB_REQUIRE(!spec.seeds.empty(), "empty spec");
  NB_REQUIRE(spec.density >= 0.0 && spec.density <= 1.0,
             "density out of [0,1]");
  const int threshold = static_cast<int>(spec.density * 256.0);
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(spec.seeds.size());
  for (std::uint64_t seed : spec.seeds) {
    parties.push_back(
        std::make_unique<RandomParty>(seed, threshold, spec.adaptive));
  }
  return std::make_unique<BasicProtocol>(std::move(parties), spec.length);
}

std::uint64_t TranscriptDigest(const BitString& pi) {
  return Mix(PrefixDigest(pi) ^ pi.size());
}

}  // namespace noisybeeps
