#include "tasks/adaptive_find.h"

#include "util/math.h"
#include "util/require.h"

namespace noisybeeps {
namespace {

struct Range {
  int lo;
  int hi;  // half-open [lo, hi)
};

// Replays the binary search against a transcript prefix.  Round 0 is the
// "anyone?" probe; rounds r >= 1 halve the range according to the bit
// received in round r.  `rounds` transcript bits must be available.
Range ReplayRange(const BitString& transcript, int rounds, int n) {
  Range range{0, n};
  for (int r = 1; r < rounds; ++r) {
    const int mid = (range.lo + range.hi + 1) / 2;
    if (mid == range.hi) continue;  // range already a singleton
    if (transcript[r]) {
      range.lo = mid;
    } else {
      range.hi = mid;
    }
  }
  return range;
}

class AdaptiveFindParty final : public Party {
 public:
  AdaptiveFindParty(int index, bool bit, int n, int length)
      : index_(index), bit_(bit), n_(n), length_(length) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    if (!bit_) return false;
    const int m = static_cast<int>(prefix.size());
    if (m == 0) return true;  // the "anyone?" probe
    if (prefix[0] == 0) return false;  // search aborted: nobody has a 1
    const Range range = ReplayRange(prefix, m, n_);
    const int mid = (range.lo + range.hi + 1) / 2;
    // Beep iff this party sits in the upper half being probed this round.
    return index_ >= mid && index_ < range.hi;
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    if (pi[0] == 0) return PartyOutput{static_cast<std::uint64_t>(n_)};
    const Range range = ReplayRange(pi, length_, n_);
    return PartyOutput{static_cast<std::uint64_t>(range.lo)};
  }

 private:
  int index_;
  bool bit_;
  int n_;
  int length_;
};

}  // namespace

AdaptiveFindInstance SampleAdaptiveFind(int n, double density, Rng& rng) {
  NB_REQUIRE(n >= 1, "need at least one party");
  AdaptiveFindInstance instance;
  instance.bits.reserve(n);
  for (int i = 0; i < n; ++i) {
    instance.bits.push_back(rng.Bernoulli(density) ? 1 : 0);
  }
  return instance;
}

std::uint64_t AdaptiveFindAnswer(const AdaptiveFindInstance& instance) {
  const int n = static_cast<int>(instance.bits.size());
  for (int i = n - 1; i >= 0; --i) {
    if (instance.bits[i] != 0) return static_cast<std::uint64_t>(i);
  }
  return static_cast<std::uint64_t>(n);
}

std::unique_ptr<Protocol> MakeAdaptiveFindProtocol(
    const AdaptiveFindInstance& instance) {
  const int n = static_cast<int>(instance.bits.size());
  NB_REQUIRE(n >= 1, "empty instance");
  const int length = 1 + (n > 1 ? CeilLog2(static_cast<std::uint64_t>(n)) : 0);
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(n);
  for (int i = 0; i < n; ++i) {
    parties.push_back(std::make_unique<AdaptiveFindParty>(
        i, instance.bits[i] != 0, n, length));
  }
  return std::make_unique<BasicProtocol>(std::move(parties), length);
}

bool AdaptiveFindAllCorrect(const AdaptiveFindInstance& instance,
                            const std::vector<PartyOutput>& outputs) {
  const std::uint64_t answer = AdaptiveFindAnswer(instance);
  for (const PartyOutput& out : outputs) {
    if (out.size() != 1 || out[0] != answer) return false;
  }
  return true;
}

}  // namespace noisybeeps
