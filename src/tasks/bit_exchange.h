// BitExchange: every party broadcasts a k-bit payload in rounds it owns.
//
// The canonical non-adaptive beeping workload: T = n*k rounds; party i
// owns rounds [i*k, (i+1)*k) and beeps its payload bit by bit; everyone
// else is silent, so the noiseless transcript is the concatenation of all
// payloads and every party learns every payload.  Matches the structure
// the paper's Section 2.2 uses (each party "owns" disjoint transcript
// bits) and is the stress workload for simulators: every 1 has a unique
// owner, and a single flipped bit corrupts somebody's payload.
#ifndef NOISYBEEPS_TASKS_BIT_EXCHANGE_H_
#define NOISYBEEPS_TASKS_BIT_EXCHANGE_H_

#include <memory>
#include <vector>

#include "protocol/protocol.h"
#include "util/rng.h"

namespace noisybeeps {

struct BitExchangeInstance {
  // payloads[i] holds party i's k low bits.
  std::vector<std::uint64_t> payloads;
  int bits_per_party = 0;  // k, 1 <= k <= 64
};

[[nodiscard]] BitExchangeInstance SampleBitExchange(int n, int bits_per_party,
                                                    Rng& rng);

// Expected output: all payloads, in party order (what every party learns).
[[nodiscard]] PartyOutput BitExchangeExpectedOutput(
    const BitExchangeInstance& instance);

[[nodiscard]] std::unique_ptr<Protocol> MakeBitExchangeProtocol(
    const BitExchangeInstance& instance);

[[nodiscard]] bool BitExchangeAllCorrect(
    const BitExchangeInstance& instance,
    const std::vector<PartyOutput>& outputs);

// The protocol's (static, publicly known) round-ownership schedule:
// schedule[m] = m / bits_per_party.  Feeding this to
// RewindSimOptions::Scheduled turns the simulation into the EKS18-style
// broadcast regime where ownership is free.
[[nodiscard]] std::vector<int> BitExchangeSchedule(int n, int bits_per_party);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_TASKS_BIT_EXCHANGE_H_
