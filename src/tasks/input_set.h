// The InputSet_n communication task (Appendix A.2) -- the task witnessing
// the paper's lower bound.
//
// Each of the n parties holds a number x^i in [2n] (0-based here), drawn
// uniformly and independently; all parties must output the set
// L(x) = { x^i : i in [n] }.  The task has a trivial 2n-round protocol on
// the noiseless channel (party i beeps exactly in round x^i, so the
// transcript IS the indicator vector of L(x)), and Theorem C.1 shows any
// protocol solving it over the one-sided 1/3-noisy channel needs
// Omega(n log n) rounds.
//
// This header provides the instance type, the trivial protocol, and the
// natural r-repetition protocol family whose required r the lower-bound
// benchmark sweeps.
#ifndef NOISYBEEPS_TASKS_INPUT_SET_H_
#define NOISYBEEPS_TASKS_INPUT_SET_H_

#include <memory>
#include <vector>

#include "protocol/protocol.h"
#include "protocol/protocol_family.h"
#include "util/rng.h"

namespace noisybeeps {

struct InputSetInstance {
  // inputs[i] in [0, 2n); n == inputs.size().
  std::vector<int> inputs;

  [[nodiscard]] int num_parties() const {
    return static_cast<int>(inputs.size());
  }
  [[nodiscard]] int universe_size() const { return 2 * num_parties(); }
};

// Samples x^i uniformly from [2n], iid -- the paper's input distribution.
[[nodiscard]] InputSetInstance SampleInputSet(int n, Rng& rng);

// L(x) encoded as a bitmask over [2n]: word w bit b covers element 64w+b.
// This is the PartyOutput every InputSet protocol produces.
[[nodiscard]] PartyOutput InputSetExpectedOutput(
    const InputSetInstance& instance);

// How transcripts decode to outputs.  With the trivial protocol, logical
// round m of the transcript indicates membership of m in L(x).
enum class RoundDecision {
  kMajority,   // 1 iff at least half the repetitions read 1 (two-sided ML)
  kAllOnes,    // 1 iff every repetition reads 1 (ML for one-sided-up noise,
               // where a true 1 is never flipped)
};

// The trivial noiseless protocol: T = 2n; party i beeps iff round == x^i.
[[nodiscard]] std::unique_ptr<Protocol> MakeInputSetProtocol(
    const InputSetInstance& instance);

// The r-repetition protocol: T = 2n * r; logical round m is repeated r
// times and decoded per `decision`.  r = 1 with kMajority reproduces the
// trivial protocol.  This is the natural hand-rolled noise defence whose
// required r the lower bound says must grow like log n.
[[nodiscard]] std::unique_ptr<Protocol> MakeRepeatedInputSetProtocol(
    const InputSetInstance& instance, int repetitions,
    RoundDecision decision = RoundDecision::kMajority);

// True iff every party's output equals InputSetExpectedOutput(instance).
[[nodiscard]] bool InputSetAllCorrect(const InputSetInstance& instance,
                                      const std::vector<PartyOutput>& outputs);

// The r-repetition InputSet protocol as a ProtocolFamily (inputs
// switchable per party) -- the object the Appendix C analysis machinery
// (feasible sets, progress measure, exact posteriors) operates on.
[[nodiscard]] std::unique_ptr<ProtocolFamily> MakeInputSetFamily(
    int n, int repetitions = 1,
    RoundDecision decision = RoundDecision::kMajority);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_TASKS_INPUT_SET_H_
