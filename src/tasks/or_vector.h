// The unrestricted Section 2.2 task: every party i holds a bit vector
// b^i over [M]; everyone must learn pi_m = OR_i b^i_m for all m.
//
// This is the task the paper derives InputSet from -- "observe how
// b^i_1 ... b^i_2n corresponds to the sequence of bits beeped by party i
// in some noiseless protocol" -- before restricting to the promise that
// each party has exactly one 1 (which makes the inputs describable by an
// index and the lower bound provable).  The trivial noiseless protocol is
// M rounds: in round m, party i beeps b^i_m; the transcript IS the
// answer.  InputSet is the special case M = 2n with one-hot rows.
#ifndef NOISYBEEPS_TASKS_OR_VECTOR_H_
#define NOISYBEEPS_TASKS_OR_VECTOR_H_

#include <memory>
#include <vector>

#include "protocol/protocol.h"
#include "util/rng.h"

namespace noisybeeps {

struct OrVectorInstance {
  // rows[i] is party i's bit vector; all rows have the same length M.
  std::vector<BitString> rows;

  [[nodiscard]] int num_parties() const {
    return static_cast<int>(rows.size());
  }
  [[nodiscard]] int width() const {
    return rows.empty() ? 0 : static_cast<int>(rows.front().size());
  }
};

// Each bit 1 independently with probability `density`.
[[nodiscard]] OrVectorInstance SampleOrVector(int n, int width,
                                              double density, Rng& rng);

// The column-wise OR, packed into words (same layout as InputSet masks).
[[nodiscard]] PartyOutput OrVectorExpectedOutput(
    const OrVectorInstance& instance);

// T = width rounds; party i beeps b^i_m in round m; outputs the packed OR.
[[nodiscard]] std::unique_ptr<Protocol> MakeOrVectorProtocol(
    const OrVectorInstance& instance);

[[nodiscard]] bool OrVectorAllCorrect(const OrVectorInstance& instance,
                                      const std::vector<PartyOutput>& outputs);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_TASKS_OR_VECTOR_H_
