#include "tasks/counting.h"

#include "util/require.h"

namespace noisybeeps {
namespace {

// Stateless per-(seed, phase, rep) coin: a SplitMix64-style mix keeps the
// party a pure function of its input.
std::uint64_t MixCoin(std::uint64_t seed, int phase, int rep) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (phase * 1315423911ULL +
                                                    rep * 2654435761ULL + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class CountingParty final : public Party {
 public:
  CountingParty(std::uint64_t seed, int max_log, int reps)
      : seed_(seed), max_log_(max_log), reps_(reps) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    const int m = static_cast<int>(prefix.size());
    const int phase = m / reps_;
    const int rep = m % reps_;
    // Beep with probability 2^-phase: phase low bits of the coin all zero.
    if (phase == 0) return true;
    const std::uint64_t coin = MixCoin(seed_, phase, rep);
    const std::uint64_t mask = (std::uint64_t{1} << phase) - 1;
    return (coin & mask) == 0;
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    for (int phase = 0; phase <= max_log_; ++phase) {
      std::size_t beeps = 0;
      for (int rep = 0; rep < reps_; ++rep) {
        if (pi[static_cast<std::size_t>(phase) * reps_ + rep]) ++beeps;
      }
      if (2 * beeps < static_cast<std::size_t>(reps_)) {
        return PartyOutput{std::uint64_t{1} << phase};
      }
    }
    return PartyOutput{std::uint64_t{1} << (max_log_ + 1)};
  }

 private:
  std::uint64_t seed_;
  int max_log_;
  int reps_;
};

}  // namespace

CountingInstance SampleCounting(int n, int max_log, int reps, Rng& rng) {
  NB_REQUIRE(n >= 1, "need at least one party");
  NB_REQUIRE(max_log >= 1 && max_log <= 62, "phase count out of range");
  NB_REQUIRE(reps >= 1, "repetitions must be positive");
  CountingInstance instance;
  instance.max_log = max_log;
  instance.reps = reps;
  instance.seeds.reserve(n);
  for (int i = 0; i < n; ++i) instance.seeds.push_back(rng.NextU64());
  return instance;
}

std::unique_ptr<Protocol> MakeCountingProtocol(
    const CountingInstance& instance) {
  NB_REQUIRE(!instance.seeds.empty(), "empty instance");
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(instance.seeds.size());
  for (std::uint64_t seed : instance.seeds) {
    parties.push_back(std::make_unique<CountingParty>(seed, instance.max_log,
                                                      instance.reps));
  }
  return std::make_unique<BasicProtocol>(
      std::move(parties), (instance.max_log + 1) * instance.reps);
}

bool CountingAllWithinFactor(const CountingInstance& instance,
                             const std::vector<PartyOutput>& outputs,
                             double tolerance) {
  NB_REQUIRE(tolerance >= 1.0, "tolerance must be >= 1");
  const double n = static_cast<double>(instance.seeds.size());
  for (const PartyOutput& out : outputs) {
    if (out.size() != 1) return false;
    const double estimate = static_cast<double>(out[0]);
    if (estimate < n / tolerance || estimate > n * tolerance) return false;
  }
  return true;
}

}  // namespace noisybeeps
