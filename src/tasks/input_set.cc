#include "tasks/input_set.h"

#include "util/require.h"

namespace noisybeeps {
namespace {

// Party for the r-repetition protocol (r = 1 is the trivial protocol).
class RepeatedInputSetParty final : public Party {
 public:
  RepeatedInputSetParty(int input, int universe, int repetitions,
                        RoundDecision decision)
      : input_(input),
        universe_(universe),
        repetitions_(repetitions),
        decision_(decision) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    const std::size_t m = prefix.size();  // 0-based round index
    const int logical_round = static_cast<int>(m) / repetitions_;
    return logical_round == input_;
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    PartyOutput mask((universe_ + 63) / 64, 0);
    for (int element = 0; element < universe_; ++element) {
      std::size_t ones = 0;
      for (int t = 0; t < repetitions_; ++t) {
        if (pi[static_cast<std::size_t>(element) * repetitions_ + t]) ++ones;
      }
      const bool member = decision_ == RoundDecision::kMajority
                              ? 2 * ones >= static_cast<std::size_t>(repetitions_)
                              : ones == static_cast<std::size_t>(repetitions_);
      if (member) {
        mask[element / 64] |= std::uint64_t{1} << (element % 64);
      }
    }
    return mask;
  }

 private:
  int input_;
  int universe_;
  int repetitions_;
  RoundDecision decision_;
};

class InputSetFamily final : public ProtocolFamily {
 public:
  InputSetFamily(int n, int repetitions, RoundDecision decision)
      : n_(n), repetitions_(repetitions), decision_(decision) {}

  [[nodiscard]] int num_parties() const override { return n_; }
  [[nodiscard]] int num_inputs() const override { return 2 * n_; }
  [[nodiscard]] int length() const override { return 2 * n_ * repetitions_; }
  [[nodiscard]] std::unique_ptr<Party> MakeParty(int i,
                                                 int input) const override {
    NB_REQUIRE(i >= 0 && i < n_, "party index out of range");
    NB_REQUIRE(input >= 0 && input < 2 * n_, "input out of range");
    return std::make_unique<RepeatedInputSetParty>(input, 2 * n_,
                                                   repetitions_, decision_);
  }

 private:
  int n_;
  int repetitions_;
  RoundDecision decision_;
};

}  // namespace

InputSetInstance SampleInputSet(int n, Rng& rng) {
  NB_REQUIRE(n >= 1, "need at least one party");
  InputSetInstance instance;
  instance.inputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    instance.inputs.push_back(static_cast<int>(rng.UniformInt(2 * n)));
  }
  return instance;
}

PartyOutput InputSetExpectedOutput(const InputSetInstance& instance) {
  const int universe = instance.universe_size();
  PartyOutput mask((universe + 63) / 64, 0);
  for (int x : instance.inputs) {
    NB_REQUIRE(x >= 0 && x < universe, "input out of range");
    mask[x / 64] |= std::uint64_t{1} << (x % 64);
  }
  return mask;
}

std::unique_ptr<Protocol> MakeInputSetProtocol(
    const InputSetInstance& instance) {
  return MakeRepeatedInputSetProtocol(instance, 1, RoundDecision::kMajority);
}

std::unique_ptr<Protocol> MakeRepeatedInputSetProtocol(
    const InputSetInstance& instance, int repetitions,
    RoundDecision decision) {
  NB_REQUIRE(repetitions >= 1, "repetition factor must be positive");
  const int universe = instance.universe_size();
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(instance.inputs.size());
  for (int x : instance.inputs) {
    NB_REQUIRE(x >= 0 && x < universe, "input out of range");
    parties.push_back(std::make_unique<RepeatedInputSetParty>(
        x, universe, repetitions, decision));
  }
  return std::make_unique<BasicProtocol>(std::move(parties),
                                         universe * repetitions);
}

std::unique_ptr<ProtocolFamily> MakeInputSetFamily(int n, int repetitions,
                                                   RoundDecision decision) {
  NB_REQUIRE(n >= 1, "need at least one party");
  NB_REQUIRE(repetitions >= 1, "repetition factor must be positive");
  return std::make_unique<InputSetFamily>(n, repetitions, decision);
}

bool InputSetAllCorrect(const InputSetInstance& instance,
                        const std::vector<PartyOutput>& outputs) {
  const PartyOutput expected = InputSetExpectedOutput(instance);
  for (const PartyOutput& out : outputs) {
    if (out != expected) return false;
  }
  return true;
}

}  // namespace noisybeeps
