// Pseudorandom adaptive protocols: the simulator stress test.
//
// Theorem 1.2 quantifies over EVERY noiseless protocol, so the simulators
// must reconstruct arbitrary transcript-adaptive behaviour, not just the
// structured tasks.  A RandomProtocol party beeps a pseudorandom function
// of (its seed, the round, a digest of the transcript prefix): still a
// pure function -- the protocol is deterministic given the seeds -- but
// with no structure a scheme could silently exploit.  `density` controls
// the marginal beep probability, steering the 0/1 mix of the transcript
// (sparse transcripts stress the 0->1 defences, dense ones the owner
// machinery).  Output: a digest of the transcript, so task-level
// correctness == transcript correctness.
#ifndef NOISYBEEPS_TASKS_RANDOM_PROTOCOL_H_
#define NOISYBEEPS_TASKS_RANDOM_PROTOCOL_H_

#include <memory>
#include <vector>

#include "protocol/protocol.h"
#include "util/rng.h"

namespace noisybeeps {

struct RandomProtocolSpec {
  std::vector<std::uint64_t> seeds;  // one per party
  int length = 0;                    // T
  // Per-(party, round) marginal beep probability, quantized to 1/256.
  double density = 0.1;
  // When true, the beep decision also hashes the transcript prefix, so a
  // single mis-simulated round reshuffles every later beep (maximal
  // adaptivity).  When false the protocol is oblivious.
  bool adaptive = true;
};

[[nodiscard]] RandomProtocolSpec SampleRandomProtocol(int n, int length,
                                                      double density,
                                                      bool adaptive, Rng& rng);

// Every party outputs {digest(pi)}; all parties agree iff their
// reconstructed transcripts agree.
[[nodiscard]] std::unique_ptr<Protocol> MakeRandomProtocol(
    const RandomProtocolSpec& spec);

// The digest the parties output, for external comparison.
[[nodiscard]] std::uint64_t TranscriptDigest(const BitString& pi);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_TASKS_RANDOM_PROTOCOL_H_
