// Bitwise leader election in the single-hop beeping model.
//
// Each party holds a distinct id of `id_bits` bits.  The protocol scans id
// bits from the most significant down; in the round for bit b, every still-
// active party whose bit b is 1 beeps.  A party that hears a beep while its
// own bit is 0 drops out.  On the noiseless channel the transcript spells
// out the maximum id bit by bit, every party learns it, and exactly the
// max-id party survives -- the classical O(log id-space) election
// [FSW14-style].  Activity is recomputed from the transcript prefix, so the
// party is a pure function and the protocol is simulation-friendly.
#ifndef NOISYBEEPS_TASKS_LEADER_ELECTION_H_
#define NOISYBEEPS_TASKS_LEADER_ELECTION_H_

#include <memory>
#include <vector>

#include "protocol/protocol.h"
#include "util/rng.h"

namespace noisybeeps {

struct LeaderElectionInstance {
  std::vector<std::uint64_t> ids;  // pairwise distinct
  int id_bits = 0;                 // 1 <= id_bits <= 63
};

// Samples n distinct ids uniformly from [0, 2^id_bits).
// Precondition: 2^id_bits >= n.
[[nodiscard]] LeaderElectionInstance SampleLeaderElection(int n, int id_bits,
                                                          Rng& rng);

// The winner (maximum id).
[[nodiscard]] std::uint64_t LeaderElectionWinner(
    const LeaderElectionInstance& instance);

// T = id_bits rounds; every party outputs {winner_id, am_i_leader}.
[[nodiscard]] std::unique_ptr<Protocol> MakeLeaderElectionProtocol(
    const LeaderElectionInstance& instance);

// True iff all parties output the max id and exactly the max-id party
// claims leadership.
[[nodiscard]] bool LeaderElectionAllCorrect(
    const LeaderElectionInstance& instance,
    const std::vector<PartyOutput>& outputs);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_TASKS_LEADER_ELECTION_H_
