#include "tasks/bit_exchange.h"

#include "util/require.h"

namespace noisybeeps {
namespace {

class BitExchangeParty final : public Party {
 public:
  BitExchangeParty(int index, std::uint64_t payload, int bits_per_party,
                   int num_parties)
      : index_(index),
        payload_(payload),
        bits_(bits_per_party),
        num_parties_(num_parties) {}

  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    const std::size_t m = prefix.size();
    const int owner = static_cast<int>(m) / bits_;
    if (owner != index_) return false;
    const int bit = static_cast<int>(m) % bits_;
    return ((payload_ >> bit) & 1) != 0;
  }

  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    PartyOutput learned(num_parties_, 0);
    for (int j = 0; j < num_parties_; ++j) {
      std::uint64_t w = 0;
      for (int b = 0; b < bits_; ++b) {
        if (pi[static_cast<std::size_t>(j) * bits_ + b]) {
          w |= std::uint64_t{1} << b;
        }
      }
      learned[j] = w;
    }
    return learned;
  }

 private:
  int index_;
  std::uint64_t payload_;
  int bits_;
  int num_parties_;
};

}  // namespace

BitExchangeInstance SampleBitExchange(int n, int bits_per_party, Rng& rng) {
  NB_REQUIRE(n >= 1, "need at least one party");
  NB_REQUIRE(bits_per_party >= 1 && bits_per_party <= 64,
             "payload width out of range");
  BitExchangeInstance instance;
  instance.bits_per_party = bits_per_party;
  instance.payloads.reserve(n);
  const std::uint64_t mask = bits_per_party == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << bits_per_party) - 1;
  for (int i = 0; i < n; ++i) {
    instance.payloads.push_back(rng.NextU64() & mask);
  }
  return instance;
}

PartyOutput BitExchangeExpectedOutput(const BitExchangeInstance& instance) {
  return instance.payloads;
}

std::unique_ptr<Protocol> MakeBitExchangeProtocol(
    const BitExchangeInstance& instance) {
  const int n = static_cast<int>(instance.payloads.size());
  NB_REQUIRE(n >= 1, "need at least one party");
  NB_REQUIRE(instance.bits_per_party >= 1 && instance.bits_per_party <= 64,
             "payload width out of range");
  std::vector<std::unique_ptr<Party>> parties;
  parties.reserve(n);
  for (int i = 0; i < n; ++i) {
    parties.push_back(std::make_unique<BitExchangeParty>(
        i, instance.payloads[i], instance.bits_per_party, n));
  }
  return std::make_unique<BasicProtocol>(std::move(parties),
                                         n * instance.bits_per_party);
}

std::vector<int> BitExchangeSchedule(int n, int bits_per_party) {
  NB_REQUIRE(n >= 1 && bits_per_party >= 1, "bad schedule shape");
  std::vector<int> schedule;
  schedule.reserve(static_cast<std::size_t>(n) * bits_per_party);
  for (int i = 0; i < n; ++i) {
    schedule.insert(schedule.end(), bits_per_party, i);
  }
  return schedule;
}

bool BitExchangeAllCorrect(const BitExchangeInstance& instance,
                           const std::vector<PartyOutput>& outputs) {
  const PartyOutput expected = BitExchangeExpectedOutput(instance);
  for (const PartyOutput& out : outputs) {
    if (out != expected) return false;
  }
  return true;
}

}  // namespace noisybeeps
