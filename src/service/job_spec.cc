#include "service/job_spec.h"

#include <sstream>

#include "resilience/checkpoint.h"
#include "util/format.h"

namespace noisybeeps::service {

FaultPlan JobSpec::ParsedFaultPlan() const {
  if (fault_plan.empty()) return FaultPlan();
  return FaultPlan::Parse(fault_plan, fault_seed);
}

failpoint::FailPlan JobSpec::ParsedFailPlan() const {
  if (fail_plan.empty()) return failpoint::FailPlan();
  return failpoint::FailPlan::Parse(fail_plan, fail_seed);
}

std::string JobSpec::CanonicalConfigString() const {
  // Field order is nbsim's historical checkpoint-guard string (PR 3)
  // extended with the fail-plan fields (PR 8, satellite: a chaos run must
  // not resume a clean run's checkpoint).  Plans are normalized through
  // Parse()->ToString() so "@file" expansions and spelling variants hash
  // identically.
  std::ostringstream config;
  config << "task=" << task << "|channel=" << channel << "|sim=" << sim
         << "|n=" << n << "|eps=" << FormatDouble(eps)
         << "|faults=" << ParsedFaultPlan().ToString()
         << "|fault_seed=" << fault_seed
         << "|max_attempts=" << max_attempts
         << "|round_budget=" << trial_round_budget
         << "|timeout_ms=" << trial_timeout_millis
         << "|backoff_ms=" << retry_backoff_millis
         << "|fail=" << ParsedFailPlan().ToString()
         << "|fail_seed=" << fail_seed;
  return config.str();
}

std::uint64_t JobSpec::ConfigHash() const {
  return resilience::Fnv1a64(CanonicalConfigString());
}

std::uint64_t JobSpec::CacheKey() const {
  std::ostringstream keyed;
  keyed << CanonicalConfigString() << "|trials=" << trials
        << "|seed=" << seed;
  return resilience::Fnv1a64(keyed.str());
}

}  // namespace noisybeeps::service
