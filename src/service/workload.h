// The service workload layer: JobSpec -> deterministic trial execution.
//
// This is the library home of what used to live inside tools/nbsim.cc:
// the task/channel/simulator factories, the TrialPoint checkpoint codec,
// and the resilient trial loop.  nbsim is now a thin front-end over
// RunJob, and the trial service (service/service.h) executes every job
// through the same path -- one implementation, two transports.
//
// Determinism contract: RunJob is a pure function of (JobSpec, resumable
// checkpoint state).  Same spec => bit-identical JobResult (including
// results_fingerprint) at any worker count and any interrupt/resume
// schedule, because everything flows through ResilientTrials
// (src/resilience/resilient_trials.h).
#ifndef NOISYBEEPS_SERVICE_WORKLOAD_H_
#define NOISYBEEPS_SERVICE_WORKLOAD_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "channel/channel.h"
#include "coding/simulator.h"
#include "failpoint/fs.h"
#include "protocol/protocol.h"
#include "resilience/checkpoint.h"
#include "resilience/clock.h"
#include "resilience/outcome.h"
#include "service/job_spec.h"
#include "util/rng.h"

namespace noisybeeps::service {

// A sampled task instance plus its correctness judge.
struct Workload {
  std::unique_ptr<Protocol> protocol;
  std::function<bool(const SimulationResult&)> judge;
};

// Factories over the built-in names (the nbsim flag vocabulary).  All
// throw std::invalid_argument on an unknown name; MakeSimulator also
// rejects sim="scheduled" for any task other than bit_exchange.
[[nodiscard]] Workload MakeWorkload(const std::string& task, int n, Rng& rng);
[[nodiscard]] std::unique_ptr<Channel> MakeChannel(const std::string& channel,
                                                   double eps);
[[nodiscard]] std::unique_ptr<Simulator> MakeSimulator(const std::string& sim,
                                                       const std::string& task,
                                                       int n);

[[nodiscard]] bool IsKnownTask(const std::string& task);
[[nodiscard]] bool IsKnownChannel(const std::string& channel);
[[nodiscard]] bool IsKnownSim(const std::string& sim);

// Validates a spec without running it: known names, sane numeric ranges,
// well-formed plan grammars, fault-plan parties within n.  Throws
// std::invalid_argument with an operator-readable message.
void ValidateJobSpec(const JobSpec& spec);

// One trial's distilled outcome: everything the end-of-run aggregation
// needs, in a form the checkpoint codec can round-trip byte-exactly.
struct TrialPoint {
  bool success = false;
  std::uint8_t status = 0;  // SimulationStatus as a wire byte
  std::int64_t rounds = 0;
  double blowup = 0;
  std::map<std::string, std::int64_t> phases;
};

struct TrialPointAdapter {
  [[nodiscard]] std::string Encode(const TrialPoint& p) const {
    std::string out;
    resilience::AppendU64(out, p.success ? 1 : 0);
    resilience::AppendU64(out, p.status);
    resilience::AppendU64(out, static_cast<std::uint64_t>(p.rounds));
    resilience::AppendF64(out, p.blowup);
    resilience::AppendU64(out, p.phases.size());
    for (const auto& [phase, count] : p.phases) {
      resilience::AppendBytes(out, phase);
      resilience::AppendU64(out, static_cast<std::uint64_t>(count));
    }
    return out;
  }
  [[nodiscard]] TrialPoint Decode(std::string_view bytes) const {
    resilience::ByteReader reader(bytes);
    TrialPoint p;
    p.success = reader.U64() != 0;
    p.status = static_cast<std::uint8_t>(reader.U64());
    p.rounds = static_cast<std::int64_t>(reader.U64());
    p.blowup = reader.F64();
    const std::uint64_t num_phases = reader.U64();
    for (std::uint64_t i = 0; i < num_phases; ++i) {
      const std::string phase(reader.Bytes());
      p.phases[phase] = static_cast<std::int64_t>(reader.U64());
    }
    if (!reader.AtEnd()) {
      throw resilience::CheckpointError("trailing bytes in trial payload");
    }
    return p;
  }
  [[nodiscard]] resilience::TrialAssessment Assess(const TrialPoint& p) const {
    resilience::TrialAssessment assessment;
    // The graceful-degradation ladder maps directly: a kFailed simulation
    // verdict is retried (with max_attempts > 1), kDegraded is kept as
    // a reportable outcome.  The task-level judge does NOT drive retries:
    // an unlucky-noise failure is a legitimate sample, not a transient.
    if (p.status == 2) assessment.verdict = resilience::TrialVerdict::kFailed;
    assessment.rounds_used = p.rounds;
    return assessment;
  }
};

// The aggregated outcome of one job, and the payload the ResultCache
// stores.  When a job is served from cache, `report` is the ORIGINAL
// run's report (its metadata describes the run that produced the bits).
struct JobResult {
  std::int64_t trials = 0;
  std::int64_t successes = 0;
  // SimulationStatus histogram: ok / degraded / failed.
  std::array<std::int64_t, 3> verdicts{};
  double mean_rounds = 0;
  double mean_blowup = 0;
  std::map<std::string, std::int64_t> phases;
  // FNV-1a over the adapter-encoded per-trial results, in index order:
  // bit-stable across every worker count and interrupt/resume schedule.
  std::uint64_t results_fingerprint = 0;
  resilience::RunReport report;

  // Cache codec (byte-exact round trip; Decode throws CheckpointError on
  // malformed bytes, which the service treats as bit rot).
  [[nodiscard]] std::string EncodePayload() const;
  [[nodiscard]] static JobResult DecodePayload(std::string_view bytes);

  friend bool operator==(const JobResult&, const JobResult&) = default;
};

// Execution environment for one job -- everything that is NOT part of the
// job's identity (none of these fields may change the results).
struct JobExecution {
  // Empty = no checkpointing.  The service points this at
  // ResultCache::CheckpointPath(CacheKey) so a killed job resumes.
  std::string checkpoint_path;
  int checkpoint_every = 0;
  int num_workers = 0;
  // Soak/test hook, forwarded to ResilienceOptions.
  int halt_after_checkpoints = 0;
  // The job's I/O seam (null = RealFs).  Callers that want the spec's
  // fail plan applied wrap their Fs in a FaultingFs first (nbsim and the
  // service both do).
  failpoint::Fs* fs = nullptr;
  const resilience::Clock* clock = nullptr;
  // Cooperative cancellation + absolute deadline, forwarded to
  // ResilienceOptions (see resilient_trials.h for the batch-boundary
  // semantics).
  const std::atomic<bool>* cancel = nullptr;
  std::int64_t deadline_at_millis = 0;
};

// Runs the spec's trials through ResilientTrials and aggregates.
// Validates the spec first.  Propagates RunInterrupted (halt_after),
// RunCancelled, RunDeadlineExceeded, CheckpointError (foreign
// checkpoint), and InjectedCrash (simulated kill).
[[nodiscard]] JobResult RunJob(const JobSpec& spec, const JobExecution& exec);

}  // namespace noisybeeps::service

#endif  // NOISYBEEPS_SERVICE_WORKLOAD_H_
