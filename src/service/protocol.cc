#include "service/protocol.h"

#include <charconv>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/format.h"

namespace noisybeeps::service {
namespace {

std::vector<std::string> SplitTokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < line.size()) {
    const std::size_t space = line.find(' ', start);
    const std::size_t end = space == std::string_view::npos ? line.size()
                                                            : space;
    if (end > start) {
      tokens.emplace_back(line.substr(start, end - start));
    }
    start = end + 1;
  }
  return tokens;
}

struct KeyValue {
  std::string key;
  std::string value;
};

KeyValue SplitKeyValue(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("malformed token (want key=value): " + token);
  }
  return KeyValue{token.substr(0, eq), token.substr(eq + 1)};
}

std::int64_t RequireInt64(const KeyValue& kv) {
  std::int64_t out = 0;
  if (!TryParseInt64(kv.value, out)) {
    throw std::invalid_argument("bad integer for " + kv.key + ": " + kv.value);
  }
  return out;
}

int RequireInt(const KeyValue& kv) {
  const std::int64_t wide = RequireInt64(kv);
  const int narrow = static_cast<int>(wide);
  if (static_cast<std::int64_t>(narrow) != wide) {
    throw std::invalid_argument("integer out of range for " + kv.key + ": " +
                                kv.value);
  }
  return narrow;
}

std::uint64_t RequireUint64(const KeyValue& kv) {
  std::uint64_t out = 0;
  const char* const first = kv.value.data();
  const char* const last = first + kv.value.size();
  const std::from_chars_result result = std::from_chars(first, last, out);
  if (result.ec != std::errc() || result.ptr != last) {
    throw std::invalid_argument("bad unsigned integer for " + kv.key + ": " +
                                kv.value);
  }
  return out;
}

std::uint64_t RequireHex64(const KeyValue& kv) {
  std::uint64_t out = 0;
  const char* const first = kv.value.data();
  const char* const last = first + kv.value.size();
  const std::from_chars_result result = std::from_chars(first, last, out, 16);
  if (result.ec != std::errc() || result.ptr != last || kv.value.empty()) {
    throw std::invalid_argument("bad hex value for " + kv.key + ": " +
                                kv.value);
  }
  return out;
}

double RequireDouble(const KeyValue& kv) {
  double out = 0.0;
  if (!TryParseDouble(kv.value, out)) {
    throw std::invalid_argument("bad number for " + kv.key + ": " + kv.value);
  }
  return out;
}

ReplyStatus StatusFromName(const std::string& name) {
  if (name == "ok") return ReplyStatus::kOk;
  if (name == "shed") return ReplyStatus::kShed;
  if (name == "timeout") return ReplyStatus::kTimeout;
  if (name == "cancelled") return ReplyStatus::kCancelled;
  if (name == "error") return ReplyStatus::kError;
  throw std::invalid_argument("unknown reply status: " + name);
}

ShedReason ReasonFromName(const std::string& name) {
  if (name == "none") return ShedReason::kNone;
  if (name == "queue_full") return ShedReason::kQueueFull;
  if (name == "deadline") return ShedReason::kDeadline;
  if (name == "draining") return ShedReason::kDraining;
  throw std::invalid_argument("unknown shed reason: " + name);
}

// "s/t" from the ok reply's success= field.
void ParseSuccessRatio(const KeyValue& kv, JobResult& result) {
  const std::size_t slash = kv.value.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("bad success ratio: " + kv.value);
  }
  result.successes =
      RequireInt64(KeyValue{kv.key, kv.value.substr(0, slash)});
  result.trials = RequireInt64(KeyValue{kv.key, kv.value.substr(slash + 1)});
}

}  // namespace

Request ParseRequestLine(std::string_view line) {
  Request request;
  bool saw_id = false;
  for (const std::string& token : SplitTokens(line)) {
    const KeyValue kv = SplitKeyValue(token);
    if (kv.key == "id") {
      request.id = kv.value;
      saw_id = true;
    } else if (kv.key == "task") {
      request.spec.task = kv.value;
    } else if (kv.key == "channel") {
      request.spec.channel = kv.value;
    } else if (kv.key == "sim") {
      request.spec.sim = kv.value;
    } else if (kv.key == "n") {
      request.spec.n = RequireInt64(kv);
    } else if (kv.key == "eps") {
      request.spec.eps = RequireDouble(kv);
    } else if (kv.key == "trials") {
      request.spec.trials = RequireInt(kv);
    } else if (kv.key == "seed") {
      request.spec.seed = RequireUint64(kv);
    } else if (kv.key == "fault-plan") {
      request.spec.fault_plan = kv.value;
    } else if (kv.key == "fault-seed") {
      request.spec.fault_seed = RequireUint64(kv);
    } else if (kv.key == "fail-plan") {
      request.spec.fail_plan = kv.value;
    } else if (kv.key == "fail-seed") {
      request.spec.fail_seed = RequireUint64(kv);
    } else if (kv.key == "max-attempts") {
      request.spec.max_attempts = RequireInt(kv);
    } else if (kv.key == "retry-backoff-ms") {
      request.spec.retry_backoff_millis = RequireInt64(kv);
    } else if (kv.key == "trial-round-budget") {
      request.spec.trial_round_budget = RequireInt64(kv);
    } else if (kv.key == "trial-timeout-ms") {
      request.spec.trial_timeout_millis = RequireInt64(kv);
    } else if (kv.key == "deadline-ms") {
      request.spec.deadline_millis = RequireInt64(kv);
    } else {
      throw std::invalid_argument("unknown request key: " + kv.key);
    }
  }
  if (!saw_id || request.id.empty()) {
    throw std::invalid_argument("request line needs id=<name>");
  }
  return request;
}

std::string FormatRequestLine(const Request& request) {
  const JobSpec& spec = request.spec;
  std::ostringstream out;
  out << "id=" << request.id << " task=" << spec.task
      << " channel=" << spec.channel << " sim=" << spec.sim << " n=" << spec.n
      << " eps=" << FormatDouble(spec.eps) << " trials=" << spec.trials
      << " seed=" << spec.seed;
  if (!spec.fault_plan.empty()) out << " fault-plan=" << spec.fault_plan;
  if (spec.fault_seed != 0) out << " fault-seed=" << spec.fault_seed;
  if (!spec.fail_plan.empty()) out << " fail-plan=" << spec.fail_plan;
  if (spec.fail_seed != 0) out << " fail-seed=" << spec.fail_seed;
  if (spec.max_attempts != 1) out << " max-attempts=" << spec.max_attempts;
  if (spec.retry_backoff_millis != 0) {
    out << " retry-backoff-ms=" << spec.retry_backoff_millis;
  }
  if (spec.trial_round_budget != 0) {
    out << " trial-round-budget=" << spec.trial_round_budget;
  }
  if (spec.trial_timeout_millis != 0) {
    out << " trial-timeout-ms=" << spec.trial_timeout_millis;
  }
  if (spec.deadline_millis != 0) out << " deadline-ms=" << spec.deadline_millis;
  return out.str();
}

std::string FormatReplyLine(const Reply& reply) {
  std::ostringstream out;
  out << "id=" << reply.id << " status=" << ReplyStatusName(reply.status);
  switch (reply.status) {
    case ReplyStatus::kShed:
      out << " reason=" << ShedReasonName(reply.shed_reason)
          << " retry_after_ms=" << reply.retry_after_millis;
      break;
    case ReplyStatus::kOk: {
      const JobResult& result = reply.result;
      out << " cached=" << (reply.cached ? 1 : 0)
          << " fingerprint=" << FormatHex64(result.results_fingerprint)
          << " success=" << result.successes << "/" << result.trials
          << " ok=" << result.verdicts[0] << " degraded=" << result.verdicts[1]
          << " failed=" << result.verdicts[2]
          << " mean_rounds=" << FormatDouble(result.mean_rounds)
          << " mean_blowup=" << FormatDouble(result.mean_blowup)
          << " retried=" << result.report.retried
          << " abandoned=" << result.report.abandoned;
      break;
    }
    case ReplyStatus::kTimeout:
    case ReplyStatus::kCancelled:
      break;
    case ReplyStatus::kError:
      // Last field by design: the message may contain spaces.
      out << " error=" << reply.error;
      break;
  }
  return out.str();
}

Reply ParseReplyLine(std::string_view line) {
  Reply reply;
  bool saw_id = false;
  bool saw_status = false;
  const std::vector<std::string> tokens = SplitTokens(line);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const KeyValue kv = SplitKeyValue(tokens[i]);
    if (kv.key == "id") {
      reply.id = kv.value;
      saw_id = true;
    } else if (kv.key == "status") {
      reply.status = StatusFromName(kv.value);
      saw_status = true;
    } else if (kv.key == "reason") {
      reply.shed_reason = ReasonFromName(kv.value);
    } else if (kv.key == "retry_after_ms") {
      reply.retry_after_millis = RequireInt64(kv);
    } else if (kv.key == "cached") {
      reply.cached = RequireInt64(kv) != 0;
    } else if (kv.key == "fingerprint") {
      reply.result.results_fingerprint = RequireHex64(kv);
    } else if (kv.key == "success") {
      ParseSuccessRatio(kv, reply.result);
    } else if (kv.key == "ok") {
      reply.result.verdicts[0] = RequireInt64(kv);
    } else if (kv.key == "degraded") {
      reply.result.verdicts[1] = RequireInt64(kv);
    } else if (kv.key == "failed") {
      reply.result.verdicts[2] = RequireInt64(kv);
    } else if (kv.key == "mean_rounds") {
      reply.result.mean_rounds = RequireDouble(kv);
    } else if (kv.key == "mean_blowup") {
      reply.result.mean_blowup = RequireDouble(kv);
    } else if (kv.key == "retried") {
      reply.result.report.retried = RequireInt64(kv);
    } else if (kv.key == "abandoned") {
      reply.result.report.abandoned = RequireInt64(kv);
    } else if (kv.key == "error") {
      // error= swallows the rest of the line, spaces included.
      const std::size_t at = line.find("error=");
      reply.error = std::string(line.substr(at + 6));
      break;
    } else {
      throw std::invalid_argument("unknown reply key: " + kv.key);
    }
  }
  if (!saw_id || !saw_status) {
    throw std::invalid_argument("reply line needs id= and status=");
  }
  return reply;
}

}  // namespace noisybeeps::service
