// ServiceReport: end-of-run accounting for the trial service, mirroring
// resilience::RunReport.
//
// The same split applies: fields that are a pure function of the request
// sequence (admission verdicts, completion taxonomy, the accumulated
// reply fingerprint) are covered by Fingerprint() and must be
// bit-identical across worker counts and kill/restart schedules; I/O and
// resume metadata (cache quarantines, write failures, resumed trials)
// legitimately differs between a clean run and a battered one and is
// excluded.  The determinism audit holds the deterministic half to
// account (tests/determinism_audit_test.cc).
#ifndef NOISYBEEPS_SERVICE_REPORT_H_
#define NOISYBEEPS_SERVICE_REPORT_H_

#include <cstdint>
#include <string>

namespace noisybeeps::service {

struct ServiceReport {
  // -- deterministic fields (covered by Fingerprint) -----------------------
  std::int64_t submitted = 0;  // every request seen, no silent drops
  std::int64_t rejected = 0;   // malformed specs (error replies)
  std::int64_t admitted = 0;
  // Load-shedding taxonomy: every shed is an explicit verdict.
  std::int64_t shed_queue_full = 0;
  std::int64_t shed_deadline = 0;
  std::int64_t shed_draining = 0;
  std::int64_t completed = 0;   // ok replies: cache_hits + recomputed
  std::int64_t cache_hits = 0;
  std::int64_t recomputed = 0;
  std::int64_t timed_out = 0;   // deadline passed (before or during work)
  std::int64_t cancelled = 0;   // cooperative cancel observed
  // Summed from each executed job's RunReport:
  std::int64_t trial_retried = 0;
  std::int64_t trial_abandoned = 0;
  // FNV-1a accumulated over each ok reply's results fingerprint, in
  // completion order: one word that pins every byte of every answer.
  std::uint64_t replies_fingerprint = 1469598103934665603ULL;
  // -- execution metadata (NOT covered by Fingerprint) ---------------------
  std::int64_t resumed_trials = 0;
  std::int64_t checkpoints_written = 0;
  std::int64_t checkpoint_quarantined = 0;
  std::int64_t checkpoint_write_failures = 0;
  std::int64_t cache_quarantined = 0;
  std::int64_t cache_write_failures = 0;

  // Folds one ok reply's results fingerprint into replies_fingerprint.
  void MixReply(std::uint64_t results_fingerprint);

  // FNV-1a over the deterministic fields only.
  [[nodiscard]] std::uint64_t Fingerprint() const;

  friend bool operator==(const ServiceReport&, const ServiceReport&) = default;
};

// "submitted=12 rejected=1 admitted=8 shed[queue_full=2 deadline=1
//  draining=0] completed=7 cache[hits=3 recomputed=4 quarantined=0
//  write_failures=0] timed_out=1 cancelled=0 trials[retried=0 abandoned=0
//  resumed=0 checkpoints=2 quarantined=0 write_failures=0]"
[[nodiscard]] std::string FormatServiceReport(const ServiceReport& report);

}  // namespace noisybeeps::service

#endif  // NOISYBEEPS_SERVICE_REPORT_H_
