// ResultCache: a crash-safe, content-addressed store for job results.
//
// Entries are keyed on JobSpec::CacheKey() and written with the
// checksummed atomic checkpoint writer (resilience/checkpoint.h) through
// the failpoint::Fs seam -- so every durability promise the checkpoint
// layer makes (kill -9 at any instant leaves the old entry or the new
// one, never a torn file; bit rot is detected by checksum) holds for the
// cache too, and every failure mode is injectable via a FailPlan.
//
// On-disk layout under `dir` (which must already exist -- directory
// creation is a front-end concern, outside the Fs seam):
//   <hex key>.nbres    a completed entry: a TrialCheckpoint whose
//                      config_hash IS the cache key, holding exactly one
//                      record with the encoded JobResult payload
//   <hex key>.nbckpt   the in-flight trial checkpoint of a job being
//                      (re)computed -- crash-safe partial work, resumed
//                      when the job is re-submitted after a kill
//   *.corrupt          quarantined rot, kept for forensics
//
// Graceful degradation: a missing entry is a miss; an unreadable, torn,
// corrupt, or mis-keyed entry is quarantined ("<path>.corrupt", best
// effort) and reported as a miss so the caller recomputes; a failed
// insert is counted and the caller's result is simply not cached.
// InjectedCrash always propagates (simulated kill).  All methods are
// thread-safe: one internal mutex serializes every Fs touch, which both
// keeps FaultingFs hit indices deterministic and makes the cache safe to
// hammer from ParallelForEach workers (tests/service_cache_test.cc).
#ifndef NOISYBEEPS_SERVICE_RESULT_CACHE_H_
#define NOISYBEEPS_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "failpoint/fs.h"

namespace noisybeeps::service {

class ResultCache {
 public:
  struct Counters {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t inserts = 0;
    std::int64_t quarantined = 0;
    std::int64_t write_failures = 0;

    friend bool operator==(const Counters&, const Counters&) = default;
  };

  // `fs` must outlive the cache; `dir` must exist.
  ResultCache(failpoint::Fs* fs, std::string dir);

  [[nodiscard]] std::string EntryPath(std::uint64_t key) const;
  [[nodiscard]] std::string CheckpointPath(std::uint64_t key) const;

  // The entry's payload, or nullopt on miss (absent, rotten -- rot is
  // quarantined first -- or mis-keyed).
  [[nodiscard]] std::optional<std::string> Lookup(std::uint64_t key);

  // Atomically writes the entry.  False (and a counted write failure)
  // when the write failed; the cache is then simply one entry colder.
  bool Insert(std::uint64_t key, std::string_view payload);

  // Quarantines the entry explicitly (rename to ".corrupt", best effort)
  // -- for callers that discover rot the checksum missed, e.g. a payload
  // that fails to decode.
  void Quarantine(std::uint64_t key);

  // Best-effort removal of the in-flight trial checkpoint, called after
  // its job's entry has landed.
  void RemoveCheckpoint(std::uint64_t key);

  [[nodiscard]] Counters counters() const;

 private:
  failpoint::Fs* fs_;
  std::string dir_;
  mutable std::mutex mu_;
  Counters counters_;
};

}  // namespace noisybeeps::service

#endif  // NOISYBEEPS_SERVICE_RESULT_CACHE_H_
