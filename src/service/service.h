// TrialService: the transport-agnostic, overload-robust service core.
//
// A request enters a BOUNDED admission-controlled queue.  Admission is an
// explicit verdict, never a silent drop: a full queue or an unmeetable
// deadline sheds the request with a deterministic retry-after hint, and a
// draining service sheds with reason=draining.  Admitted jobs execute
// IN ADMISSION ORDER, one at a time -- parallelism lives INSIDE a job
// (ResilientTrials workers), which is exactly what keeps the service
// deterministic: same request sequence => same replies, same
// ServiceReport fingerprint, at every worker count (the determinism
// audit proves it).
//
// Execution of one job:
//   1. deadline check (a job past its admission deadline is reported
//      timed-out without touching the cache -- late answers are not
//      answers),
//   2. ResultCache lookup on JobSpec::CacheKey() (hit => reply from
//      cache; rot quarantines and falls through),
//   3. recompute through RunJob with a per-job FaultingFs (the spec's
//      fail plan applied over the service Fs), checkpointing into
//      ResultCache::CheckpointPath(key) so a killed job resumes on
//      re-submission, with the deadline and the service cancel flag
//      propagated to the batch boundaries,
//   4. insert into the cache (failure = counted, non-fatal) and drop the
//      trial checkpoint.
//
// InjectedCrash always propagates -- the process is "dead", and the
// crash-consistency oracle (tests/service_oracle_test.cc) proves a
// restart into the same cache directory yields bit-identical replies.
//
// Threading: the service itself is single-threaded by design (call it
// from one thread); the cancel flag may be set from anywhere (signal
// handler, other thread), and the ResultCache is independently
// thread-safe.
#ifndef NOISYBEEPS_SERVICE_SERVICE_H_
#define NOISYBEEPS_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "failpoint/fs.h"
#include "resilience/clock.h"
#include "service/job_spec.h"
#include "service/report.h"
#include "service/result_cache.h"
#include "service/workload.h"

namespace noisybeeps::service {

enum class ReplyStatus : std::uint8_t {
  kOk = 0,
  kShed = 1,
  kTimeout = 2,
  kCancelled = 3,
  kError = 4,
};

enum class ShedReason : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,
  kDeadline = 2,
  kDraining = 3,
};

[[nodiscard]] const char* ReplyStatusName(ReplyStatus status);
[[nodiscard]] const char* ShedReasonName(ShedReason reason);

// One request: a correlation id (echoed in the reply) plus the job.
struct Request {
  std::string id;
  JobSpec spec;

  friend bool operator==(const Request&, const Request&) = default;
};

struct Reply {
  std::string id;
  ReplyStatus status = ReplyStatus::kError;
  ShedReason shed_reason = ShedReason::kNone;
  // For shed replies: when to try again (0 = retrying will not help
  // until conditions change -- a draining service or a never-meetable
  // deadline).
  std::int64_t retry_after_millis = 0;
  bool cached = false;      // ok replies: served from the ResultCache
  JobResult result;         // meaningful when status == kOk
  std::string error;        // meaningful when status == kError

  friend bool operator==(const Reply&, const Reply&) = default;
};

struct ServiceOptions {
  // Required; the directory must exist.
  std::string cache_dir;
  // The service I/O seam (cache entries AND job checkpoints flow through
  // it); null = RealFs.  Wrap in a FaultingFs to batter the cache.
  failpoint::Fs* fs = nullptr;
  const resilience::Clock* clock = nullptr;  // null = SteadyClock
  // Bounded admission queue depth; a request arriving at a full queue is
  // shed, never dropped.
  int max_queue = 8;
  // Floor for shed retry-after hints.
  std::int64_t retry_after_base_millis = 25;
  // Deterministic per-job cost estimate used for deadline admission and
  // retry-after hints (0 disables deadline admission control).
  std::int64_t job_cost_hint_millis = 200;
  // Workers INSIDE each job (0 = hardware concurrency).  Never changes
  // results, per the ResilientTrials contract.
  int num_workers = 1;
  int checkpoint_every = 4;
};

class TrialService {
 public:
  explicit TrialService(const ServiceOptions& options);

  // Admission.  Returns a reply NOW for rejected (malformed) and shed
  // requests; nullopt means the job is queued and its reply will come
  // from RunNext()/RunQueued() in admission order.
  [[nodiscard]] std::optional<Reply> Submit(const Request& request);

  // Executes the job at the front of the queue (nullopt = queue empty).
  [[nodiscard]] std::optional<Reply> RunNext();

  // Executes everything queued, in admission order.
  [[nodiscard]] std::vector<Reply> RunQueued();

  // Graceful drain: stop admitting (subsequent Submits shed with
  // reason=draining); already-admitted jobs still run to completion.
  void BeginDrain();
  [[nodiscard]] bool draining() const { return draining_; }

  // The cooperative cancel seam, observed by the in-flight job at its
  // next batch boundary (after the checkpoint write).  Safe to set from a
  // signal handler or another thread.
  [[nodiscard]] std::atomic<bool>& cancel_flag() { return cancel_; }

  [[nodiscard]] std::size_t QueueDepth() const { return queue_.size(); }

  // A snapshot with the cache counters folded into the metadata fields.
  [[nodiscard]] ServiceReport report() const;

  [[nodiscard]] ResultCache& cache() { return cache_; }

 private:
  struct QueuedJob {
    std::string id;
    JobSpec spec;
    // Absolute (injectable-clock) deadline fixed at admission; 0 = none.
    std::int64_t deadline_at_millis = 0;
  };

  [[nodiscard]] std::int64_t RetryAfterMillis() const;

  ServiceOptions options_;
  failpoint::Fs* fs_;
  const resilience::Clock* clock_;
  ResultCache cache_;
  std::deque<QueuedJob> queue_;
  std::atomic<bool> cancel_{false};
  bool draining_ = false;
  ServiceReport report_;
};

}  // namespace noisybeeps::service

#endif  // NOISYBEEPS_SERVICE_SERVICE_H_
