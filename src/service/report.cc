#include "service/report.h"

#include <sstream>

#include "resilience/checkpoint.h"

namespace noisybeeps::service {

void ServiceReport::MixReply(std::uint64_t results_fingerprint) {
  for (int byte = 0; byte < 8; ++byte) {
    replies_fingerprint =
        (replies_fingerprint ^ ((results_fingerprint >> (8 * byte)) & 0xff)) *
        0x100000001b3ULL;
  }
}

std::uint64_t ServiceReport::Fingerprint() const {
  std::string bytes;
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(submitted));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(rejected));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(admitted));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(shed_queue_full));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(shed_deadline));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(shed_draining));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(completed));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(cache_hits));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(recomputed));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(timed_out));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(cancelled));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(trial_retried));
  resilience::AppendU64(bytes, static_cast<std::uint64_t>(trial_abandoned));
  resilience::AppendU64(bytes, replies_fingerprint);
  return resilience::Fnv1a64(bytes);
}

std::string FormatServiceReport(const ServiceReport& report) {
  std::ostringstream out;
  out << "submitted=" << report.submitted << " rejected=" << report.rejected
      << " admitted=" << report.admitted
      << " shed[queue_full=" << report.shed_queue_full
      << " deadline=" << report.shed_deadline
      << " draining=" << report.shed_draining << "]"
      << " completed=" << report.completed
      << " cache[hits=" << report.cache_hits
      << " recomputed=" << report.recomputed
      << " quarantined=" << report.cache_quarantined
      << " write_failures=" << report.cache_write_failures << "]"
      << " timed_out=" << report.timed_out
      << " cancelled=" << report.cancelled
      << " trials[retried=" << report.trial_retried
      << " abandoned=" << report.trial_abandoned
      << " resumed=" << report.resumed_trials
      << " checkpoints=" << report.checkpoints_written
      << " quarantined=" << report.checkpoint_quarantined
      << " write_failures=" << report.checkpoint_write_failures << "]";
  return out.str();
}

}  // namespace noisybeeps::service
