// The nbserved line protocol: one request per line, one reply per line,
// space-separated key=value tokens.
//
// Request line (id is required; everything else defaults like nbsim):
//   id=job1 task=input_set channel=correlated sim=rewind n=16 eps=0.05
//   trials=10 seed=1 fault-plan=crash:3@2 fault-seed=7 fail-plan=...
//   fail-seed=0 max-attempts=2 retry-backoff-ms=5 trial-round-budget=0
//   trial-timeout-ms=0 deadline-ms=500
//
// Reply lines always start "id=<id> status=<name>" and then:
//   shed       reason=<queue_full|deadline|draining> retry_after_ms=<n>
//   ok         cached=<0|1> fingerprint=<16-hex> success=<s>/<t> ok=<n>
//              degraded=<n> failed=<n> mean_rounds=<d> mean_blowup=<d>
//              retried=<n> abandoned=<n>
//   timeout    (nothing further)
//   cancelled  (nothing further)
//   error      error=<message, runs to end of line>
//
// Parsing is strict: an unknown key, an unparseable value, or a missing
// id throws std::invalid_argument.  The protocol is deliberately dumb --
// every robustness decision lives in TrialService; this file only moves
// bytes -- and text-stable: replies round-trip through Parse/Format so
// the soak scripts can diff them.
#ifndef NOISYBEEPS_SERVICE_PROTOCOL_H_
#define NOISYBEEPS_SERVICE_PROTOCOL_H_

#include <string>
#include <string_view>

#include "service/service.h"

namespace noisybeeps::service {

// Throws std::invalid_argument on unknown keys, bad values, missing id.
[[nodiscard]] Request ParseRequestLine(std::string_view line);

// The canonical one-line spelling of a request (every field explicit).
[[nodiscard]] std::string FormatRequestLine(const Request& request);

[[nodiscard]] std::string FormatReplyLine(const Reply& reply);

// Inverse of FormatReplyLine for the summary fields (the full JobResult
// payload does not travel over the wire; decoded ok-replies carry the
// fingerprint and summary counters only).
[[nodiscard]] Reply ParseReplyLine(std::string_view line);

}  // namespace noisybeeps::service

#endif  // NOISYBEEPS_SERVICE_PROTOCOL_H_
