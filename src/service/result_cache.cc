#include "service/result_cache.h"

#include <utility>

#include "resilience/checkpoint.h"
#include "util/format.h"
#include "util/require.h"

namespace noisybeeps::service {

ResultCache::ResultCache(failpoint::Fs* fs, std::string dir)
    : fs_(fs), dir_(std::move(dir)) {
  NB_REQUIRE(fs_ != nullptr, "ResultCache needs an Fs");
  NB_REQUIRE(!dir_.empty(), "ResultCache needs a directory");
}

std::string ResultCache::EntryPath(std::uint64_t key) const {
  return dir_ + "/" + FormatHex64(key) + ".nbres";
}

std::string ResultCache::CheckpointPath(std::uint64_t key) const {
  return dir_ + "/" + FormatHex64(key) + ".nbckpt";
}

std::optional<std::string> ResultCache::Lookup(std::uint64_t key) {
  const std::string path = EntryPath(key);
  const std::lock_guard<std::mutex> lock(mu_);
  std::optional<resilience::TrialCheckpoint> loaded;
  bool rotten = false;
  try {
    loaded = resilience::LoadCheckpoint(*fs_, path);
  } catch (const resilience::CheckpointError&) {
    rotten = true;
  } catch (const failpoint::FsError&) {
    // An entry that cannot be read serves nobody: out of the lookup path.
    rotten = true;
  }
  if (!rotten && loaded.has_value()) {
    // Our own naming scheme guarantees config_hash == key and exactly one
    // record; anything else is rot (or tampering) the checksum happened to
    // miss, and quarantines like rot.
    if (loaded->config_hash != key || loaded->num_trials != 1 ||
        loaded->records.size() != 1 || loaded->records[0].trial_index != 0) {
      rotten = true;
    }
  }
  if (rotten) {
    ++counters_.quarantined;
    try {
      fs_->RenameFile(path, path + ".corrupt");
    } catch (const failpoint::FsError&) {  // NOLINT(bugprone-empty-catch)
      // Best effort; the recompute's insert will replace it anyway.
    }
    ++counters_.misses;
    return std::nullopt;
  }
  if (!loaded.has_value()) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  return std::string(loaded->records[0].payload);
}

bool ResultCache::Insert(std::uint64_t key, std::string_view payload) {
  resilience::TrialCheckpoint entry;
  entry.config_hash = key;
  entry.num_trials = 1;
  // The checkpoint format requires at least one attempt per record; a
  // cache entry is by definition one clean "attempt".
  resilience::TrialRecord record;
  record.ledger.attempts.push_back(resilience::AttemptRecord{});
  record.payload = std::string(payload);
  entry.records.push_back(std::move(record));
  const std::lock_guard<std::mutex> lock(mu_);
  try {
    resilience::WriteCheckpointAtomic(*fs_, EntryPath(key), entry);
  } catch (const resilience::CheckpointError&) {
    ++counters_.write_failures;
    return false;
  }
  ++counters_.inserts;
  return true;
}

void ResultCache::Quarantine(std::uint64_t key) {
  const std::string path = EntryPath(key);
  const std::lock_guard<std::mutex> lock(mu_);
  ++counters_.quarantined;
  try {
    fs_->RenameFile(path, path + ".corrupt");
  } catch (const failpoint::FsError&) {  // NOLINT(bugprone-empty-catch)
    // Best effort, same as the Lookup path.
  }
}

void ResultCache::RemoveCheckpoint(std::uint64_t key) {
  const std::string path = CheckpointPath(key);
  const std::lock_guard<std::mutex> lock(mu_);
  try {
    fs_->RemoveFile(path);
  } catch (const failpoint::FsError&) {  // NOLINT(bugprone-empty-catch)
    // Best effort: a leftover trial checkpoint only costs disk, never
    // correctness (its config hash guards any future resume).
  }
}

ResultCache::Counters ResultCache::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace noisybeeps::service
