// JobSpec: the canonical description of one trial-service job.
//
// A JobSpec reuses the nbsim flag grammars verbatim -- task/channel/sim
// names, the fault-plan grammar (src/fault/fault_plan.h), and the
// fail-plan grammar (src/failpoint/fail_plan.h) -- so a request to the
// service describes exactly what a CLI invocation would.  Two hashes are
// derived from it:
//
//   ConfigHash()  guards checkpoint RESUMES: everything that changes the
//                 computation EXCEPT trials/seed (those are checked
//                 separately from the checkpoint's parent Rng state and
//                 trial count, exactly as nbsim has always done).  Since
//                 PR 8 this INCLUDES the fail plan and fail seed: a chaos
//                 run must not silently resume from an incompatible
//                 clean-run checkpoint (see docs/SERVICE.md).
//   CacheKey()    content-addresses the RESULT cache: the full canonical
//                 config plus trials and seed, so identical requests are
//                 served from cache and near-identical ones never collide.
//
// deadline_millis is quality-of-service only and is part of NEITHER hash:
// identical work under different deadlines shares cache entries.
#ifndef NOISYBEEPS_SERVICE_JOB_SPEC_H_
#define NOISYBEEPS_SERVICE_JOB_SPEC_H_

#include <cstdint>
#include <string>

#include "failpoint/fail_plan.h"
#include "fault/fault_plan.h"

namespace noisybeeps::service {

struct JobSpec {
  std::string task = "input_set";
  std::string channel = "correlated";
  std::string sim = "rewind";
  std::int64_t n = 16;  // party count: the word path reaches mega-n
  double eps = 0.05;
  int trials = 10;
  std::uint64_t seed = 1;
  // Compact plan grammars only (no @file indirection -- front-ends expand
  // files before building a spec, so the service core never opens one).
  std::string fault_plan;
  std::uint64_t fault_seed = 0;
  std::string fail_plan;
  std::uint64_t fail_seed = 0;
  int max_attempts = 1;
  std::int64_t retry_backoff_millis = 0;
  std::int64_t trial_round_budget = 0;
  std::int64_t trial_timeout_millis = 0;
  // Relative QoS deadline granted at admission (0 = none).  Deliberately
  // part of NEITHER hash.
  std::int64_t deadline_millis = 0;

  // Parses the plan texts (throws std::invalid_argument on bad grammar).
  [[nodiscard]] FaultPlan ParsedFaultPlan() const;
  [[nodiscard]] failpoint::FailPlan ParsedFailPlan() const;

  // The canonical config string, extending nbsim's historical field order
  // with the fail-plan fields:
  //   task=|channel=|sim=|n=|eps=|faults=|fault_seed=|max_attempts=|
  //   round_budget=|timeout_ms=|backoff_ms=|fail=|fail_seed=
  // Plans appear in their Parse()->ToString() normalized spelling.
  [[nodiscard]] std::string CanonicalConfigString() const;

  // FNV-1a of CanonicalConfigString(): the checkpoint resume guard.
  [[nodiscard]] std::uint64_t ConfigHash() const;
  // FNV-1a of CanonicalConfigString() + "|trials=|seed=": the result-cache
  // content address.
  [[nodiscard]] std::uint64_t CacheKey() const;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

}  // namespace noisybeeps::service

#endif  // NOISYBEEPS_SERVICE_JOB_SPEC_H_
