#include "service/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "resilience/checkpoint.h"
#include "resilience/resilient_trials.h"
#include "util/require.h"

namespace noisybeeps::service {

const char* ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk:
      return "ok";
    case ReplyStatus::kShed:
      return "shed";
    case ReplyStatus::kTimeout:
      return "timeout";
    case ReplyStatus::kCancelled:
      return "cancelled";
    case ReplyStatus::kError:
      return "error";
  }
  return "unknown";
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kDraining:
      return "draining";
  }
  return "unknown";
}

TrialService::TrialService(const ServiceOptions& options)
    : options_(options),
      fs_(options.fs != nullptr ? options.fs : failpoint::RealFs::Instance()),
      clock_(options.clock != nullptr ? options.clock
                                      : resilience::SteadyClock::Instance()),
      cache_(fs_, options.cache_dir) {
  NB_REQUIRE(options_.max_queue >= 1, "max_queue must be at least 1");
}

std::int64_t TrialService::RetryAfterMillis() const {
  // A deterministic function of queue depth: deeper queue, later retry.
  // Never below the base so clients cannot hot-loop on an empty hint.
  const auto depth = static_cast<std::int64_t>(queue_.size());
  return std::max(options_.retry_after_base_millis,
                  options_.job_cost_hint_millis * depth);
}

std::optional<Reply> TrialService::Submit(const Request& request) {
  ++report_.submitted;
  Reply reply;
  reply.id = request.id;
  try {
    ValidateJobSpec(request.spec);
  } catch (const std::invalid_argument& error) {
    ++report_.rejected;
    reply.status = ReplyStatus::kError;
    reply.error = error.what();
    return reply;
  }
  if (draining_) {
    ++report_.shed_draining;
    reply.status = ReplyStatus::kShed;
    reply.shed_reason = ShedReason::kDraining;
    reply.retry_after_millis = 0;  // retrying here will not help
    return reply;
  }
  if (queue_.size() >= static_cast<std::size_t>(options_.max_queue)) {
    ++report_.shed_queue_full;
    reply.status = ReplyStatus::kShed;
    reply.shed_reason = ShedReason::kQueueFull;
    reply.retry_after_millis = RetryAfterMillis();
    return reply;
  }
  if (request.spec.deadline_millis > 0 && options_.job_cost_hint_millis > 0) {
    // Admission control: everything already queued runs first, so this
    // job's expected start is depth * cost_hint from now.  A deadline
    // that cannot cover queue wait plus one job is shed immediately --
    // better an honest "no" now than a timeout reply after the wait.
    const auto depth = static_cast<std::int64_t>(queue_.size());
    const std::int64_t needed = (depth + 1) * options_.job_cost_hint_millis;
    if (request.spec.deadline_millis < needed) {
      ++report_.shed_deadline;
      reply.status = ReplyStatus::kShed;
      reply.shed_reason = ShedReason::kDeadline;
      // A deadline too short for even an unqueued job can never be met:
      // retry_after 0 = "don't bother until you relax the deadline".
      reply.retry_after_millis =
          request.spec.deadline_millis <= options_.job_cost_hint_millis
              ? 0
              : RetryAfterMillis();
      return reply;
    }
  }
  ++report_.admitted;
  QueuedJob job;
  job.id = request.id;
  job.spec = request.spec;
  job.deadline_at_millis =
      request.spec.deadline_millis > 0
          ? clock_->NowMillis() + request.spec.deadline_millis
          : 0;
  queue_.push_back(std::move(job));
  return std::nullopt;
}

std::optional<Reply> TrialService::RunNext() {
  if (queue_.empty()) {
    return std::nullopt;
  }
  QueuedJob job = std::move(queue_.front());
  queue_.pop_front();

  Reply reply;
  reply.id = job.id;

  // Deadline first: a job whose deadline passed while it queued is
  // reported timed-out without touching the cache -- not even a lookup.
  // A late answer is not an answer, and skipping the lookup keeps the
  // FaultingFs hit sequence identical whether or not the entry exists.
  if (job.deadline_at_millis > 0 &&
      clock_->NowMillis() >= job.deadline_at_millis) {
    ++report_.timed_out;
    reply.status = ReplyStatus::kTimeout;
    return reply;
  }

  const std::uint64_t key = job.spec.CacheKey();
  if (std::optional<std::string> payload = cache_.Lookup(key)) {
    try {
      reply.result = JobResult::DecodePayload(*payload);
      ++report_.cache_hits;
      ++report_.completed;
      report_.MixReply(reply.result.results_fingerprint);
      reply.status = ReplyStatus::kOk;
      reply.cached = true;
      return reply;
    } catch (const resilience::CheckpointError&) {
      // The checksum passed but the payload does not decode: rot the
      // checkpoint layer cannot see.  Quarantine and recompute.
      cache_.Quarantine(key);
    }
  }

  // Recompute.  The job's own fail plan is layered over the service Fs,
  // so a request can carry its private storm while the cache stays on
  // whatever seam the service was built with.  Latency faults sleep on
  // the SERVICE clock, which lets tests drive mid-run deadline expiry
  // deterministically through a FakeClock.
  failpoint::FaultingFs job_fs(fs_, job.spec.ParsedFailPlan());
  const resilience::Clock* clock = clock_;
  job_fs.SetSleeper([clock](std::int64_t millis) { clock->Sleep(millis); });

  JobExecution exec;
  exec.checkpoint_path = cache_.CheckpointPath(key);
  exec.checkpoint_every = options_.checkpoint_every;
  exec.num_workers = options_.num_workers;
  exec.fs = &job_fs;
  exec.clock = clock_;
  exec.cancel = &cancel_;
  exec.deadline_at_millis = job.deadline_at_millis;

  JobResult result;
  try {
    result = RunJob(job.spec, exec);
  } catch (const resilience::RunDeadlineExceeded&) {
    // Partial work is checkpointed; a retry of the same spec resumes it.
    ++report_.timed_out;
    reply.status = ReplyStatus::kTimeout;
    return reply;
  } catch (const resilience::RunCancelled&) {
    ++report_.cancelled;
    reply.status = ReplyStatus::kCancelled;
    return reply;
  } catch (const resilience::CheckpointError& error) {
    // A poisoned trial checkpoint (hash mismatch, version skew).  The
    // resilience layer refuses to guess; surface it as an error reply.
    reply.status = ReplyStatus::kError;
    reply.error = error.what();
    return reply;
  }
  // InjectedCrash deliberately propagates: the process is "dead", and
  // recovery happens by restarting the service over the same cache dir.

  ++report_.recomputed;
  ++report_.completed;
  report_.MixReply(result.results_fingerprint);
  report_.trial_retried += result.report.retried;
  report_.trial_abandoned += result.report.abandoned;
  report_.resumed_trials += result.report.resumed_trials;
  report_.checkpoints_written += result.report.checkpoints_written;
  report_.checkpoint_quarantined += result.report.checkpoints_quarantined;
  report_.checkpoint_write_failures += result.report.checkpoint_write_failures;

  cache_.Insert(key, result.EncodePayload());
  cache_.RemoveCheckpoint(key);

  reply.status = ReplyStatus::kOk;
  reply.cached = false;
  reply.result = std::move(result);
  return reply;
}

std::vector<Reply> TrialService::RunQueued() {
  std::vector<Reply> replies;
  while (std::optional<Reply> reply = RunNext()) {
    replies.push_back(std::move(*reply));
  }
  return replies;
}

void TrialService::BeginDrain() { draining_ = true; }

ServiceReport TrialService::report() const {
  ServiceReport snapshot = report_;
  const ResultCache::Counters cache = cache_.counters();
  snapshot.cache_quarantined = cache.quarantined;
  snapshot.cache_write_failures = cache.write_failures;
  return snapshot;
}

}  // namespace noisybeeps::service
