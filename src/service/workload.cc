#include "service/workload.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "channel/burst.h"
#include "channel/collision.h"
#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "coding/hierarchical_sim.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "resilience/resilient_trials.h"
#include "tasks/adaptive_find.h"
#include "tasks/bit_exchange.h"
#include "tasks/counting.h"
#include "tasks/input_set.h"
#include "tasks/leader_election.h"
#include "tasks/or_vector.h"
#include "tasks/random_protocol.h"
#include "util/stats.h"

namespace noisybeeps::service {

Workload MakeWorkload(const std::string& task, int n, Rng& rng) {
  if (task == "input_set") {
    auto instance = std::make_shared<InputSetInstance>(SampleInputSet(n, rng));
    Workload w;
    w.protocol = MakeInputSetProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return InputSetAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "bit_exchange") {
    auto instance =
        std::make_shared<BitExchangeInstance>(SampleBitExchange(n, 8, rng));
    Workload w;
    w.protocol = MakeBitExchangeProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return BitExchangeAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "leader") {
    auto instance = std::make_shared<LeaderElectionInstance>(
        SampleLeaderElection(n, 12, rng));
    Workload w;
    w.protocol = MakeLeaderElectionProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return LeaderElectionAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "counting") {
    auto instance =
        std::make_shared<CountingInstance>(SampleCounting(n, 8, 9, rng));
    Workload w;
    w.protocol = MakeCountingProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return CountingAllWithinFactor(*instance, r.outputs, 8.0);
    };
    return w;
  }
  if (task == "adaptive") {
    auto instance = std::make_shared<AdaptiveFindInstance>(
        SampleAdaptiveFind(n, 0.2, rng));
    Workload w;
    w.protocol = MakeAdaptiveFindProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return AdaptiveFindAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "or_vector") {
    auto instance =
        std::make_shared<OrVectorInstance>(SampleOrVector(n, 2 * n, 0.1, rng));
    Workload w;
    w.protocol = MakeOrVectorProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return OrVectorAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "random") {
    auto spec = std::make_shared<RandomProtocolSpec>(
        SampleRandomProtocol(n, 4 * n, 0.1, /*adaptive=*/true, rng));
    Workload w;
    w.protocol = MakeRandomProtocol(*spec);
    const std::uint64_t expected =
        TranscriptDigest(ReferenceTranscript(*w.protocol));
    w.judge = [expected](const SimulationResult& r) {
      for (const PartyOutput& out : r.outputs) {
        if (out.size() != 1 || out[0] != expected) return false;
      }
      return true;
    };
    return w;
  }
  throw std::invalid_argument("unknown task: " + task);
}

std::unique_ptr<Channel> MakeChannel(const std::string& channel, double eps) {
  if (channel == "noiseless") return std::make_unique<NoiselessChannel>();
  if (channel == "correlated") {
    return std::make_unique<CorrelatedNoisyChannel>(eps);
  }
  if (channel == "up") return std::make_unique<OneSidedUpChannel>(eps);
  if (channel == "down") return std::make_unique<OneSidedDownChannel>(eps);
  if (channel == "independent") {
    return std::make_unique<IndependentNoisyChannel>(eps);
  }
  if (channel == "burst") {
    // A quiet floor (eps/10) punctuated by 0.4-rate bursts of mean length
    // ~7 rounds entered at rate eps/10: stationary noise stays near eps/3
    // but arrives clustered.
    return std::make_unique<BurstNoisyChannel>(eps / 10, 0.4, eps / 10, 0.15);
  }
  if (channel == "collision") {
    return std::make_unique<CollisionAsSilenceChannel>(eps);
  }
  throw std::invalid_argument("unknown channel: " + channel);
}

std::unique_ptr<Simulator> MakeSimulator(const std::string& sim,
                                         const std::string& task, int n) {
  if (sim == "scheduled") {
    if (task != "bit_exchange") {
      throw std::invalid_argument(
          "sim=scheduled requires task=bit_exchange (the built-in "
          "schedule-owned workload)");
    }
    return std::make_unique<RewindSimulator>(
        RewindSimOptions::Scheduled(BitExchangeSchedule(n, 8)));
  }
  if (sim == "raw") {
    return std::make_unique<RepetitionSimulator>(
        RepetitionSimOptions{.rep_factor = 1});
  }
  if (sim == "repetition") return std::make_unique<RepetitionSimulator>();
  if (sim == "rewind") return std::make_unique<RewindSimulator>();
  if (sim == "rewind_down") {
    return std::make_unique<RewindSimulator>(RewindSimOptions::DownOnly());
  }
  if (sim == "hierarchical") return std::make_unique<HierarchicalSimulator>();
  if (sim == "hierarchical_down") {
    return std::make_unique<HierarchicalSimulator>(
        HierarchicalSimOptions::DownOnly());
  }
  throw std::invalid_argument("unknown sim: " + sim);
}

namespace {

bool Contains(const std::vector<std::string_view>& names,
              const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

bool IsKnownTask(const std::string& task) {
  static const std::vector<std::string_view> kTasks = {
      "input_set", "bit_exchange", "leader",  "counting",
      "adaptive",  "or_vector",    "random"};
  return Contains(kTasks, task);
}

bool IsKnownChannel(const std::string& channel) {
  static const std::vector<std::string_view> kChannels = {
      "noiseless", "correlated", "up",       "down",
      "independent", "burst",    "collision"};
  return Contains(kChannels, channel);
}

bool IsKnownSim(const std::string& sim) {
  static const std::vector<std::string_view> kSims = {
      "raw",          "repetition",        "rewind", "rewind_down",
      "hierarchical", "hierarchical_down", "scheduled"};
  return Contains(kSims, sim);
}

void ValidateJobSpec(const JobSpec& spec) {
  if (!IsKnownTask(spec.task)) {
    throw std::invalid_argument("unknown task: " + spec.task);
  }
  if (!IsKnownChannel(spec.channel)) {
    throw std::invalid_argument("unknown channel: " + spec.channel);
  }
  if (!IsKnownSim(spec.sim)) {
    throw std::invalid_argument("unknown sim: " + spec.sim);
  }
  if (spec.sim == "scheduled" && spec.task != "bit_exchange") {
    throw std::invalid_argument(
        "sim=scheduled requires task=bit_exchange (the built-in "
        "schedule-owned workload)");
  }
  if (spec.n < 2) {
    throw std::invalid_argument("n must be >= 2, got " +
                                std::to_string(spec.n));
  }
  // The named workloads instantiate per-party Protocol objects (an
  // int-indexed layer); n beyond int range needs the word-parallel round
  // substrate directly, not a service workload.
  if (spec.n > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("n too large for a protocol workload: " +
                                std::to_string(spec.n));
  }
  if (!(spec.eps >= 0.0) || !(spec.eps < 1.0)) {
    throw std::invalid_argument("eps must be in [0, 1)");
  }
  if (spec.trials < 0) {
    throw std::invalid_argument("trials must be >= 0, got " +
                                std::to_string(spec.trials));
  }
  if (spec.max_attempts < 1) {
    throw std::invalid_argument("max_attempts must be >= 1, got " +
                                std::to_string(spec.max_attempts));
  }
  if (spec.retry_backoff_millis < 0 || spec.trial_round_budget < 0 ||
      spec.trial_timeout_millis < 0 || spec.deadline_millis < 0) {
    throw std::invalid_argument(
        "retry/budget/deadline values must be >= 0");
  }
  // Plan grammars parse (throws std::invalid_argument on bad syntax)...
  const FaultPlan faults = spec.ParsedFaultPlan();
  (void)spec.ParsedFailPlan();
  // ...and the fault plan only names parties that exist.
  if (faults.MaxParty() >= spec.n) {
    throw std::invalid_argument(
        "fault plan names party " + std::to_string(faults.MaxParty()) +
        " but n=" + std::to_string(spec.n));
  }
}

std::string JobResult::EncodePayload() const {
  std::string out;
  resilience::AppendU64(out, static_cast<std::uint64_t>(trials));
  resilience::AppendU64(out, static_cast<std::uint64_t>(successes));
  for (const std::int64_t v : verdicts) {
    resilience::AppendU64(out, static_cast<std::uint64_t>(v));
  }
  resilience::AppendF64(out, mean_rounds);
  resilience::AppendF64(out, mean_blowup);
  resilience::AppendU64(out, phases.size());
  for (const auto& [phase, count] : phases) {
    resilience::AppendBytes(out, phase);
    resilience::AppendU64(out, static_cast<std::uint64_t>(count));
  }
  resilience::AppendU64(out, results_fingerprint);
  resilience::AppendU64(out, static_cast<std::uint64_t>(report.total_trials));
  resilience::AppendU64(out, static_cast<std::uint64_t>(report.completed));
  resilience::AppendU64(out, static_cast<std::uint64_t>(report.retried));
  resilience::AppendU64(out, static_cast<std::uint64_t>(report.abandoned));
  resilience::AppendU64(out, static_cast<std::uint64_t>(report.attempts));
  resilience::AppendU64(out, static_cast<std::uint64_t>(report.timeouts));
  resilience::AppendU64(out, static_cast<std::uint64_t>(report.exceptions));
  resilience::AppendU64(out,
                        static_cast<std::uint64_t>(report.degraded_verdicts));
  resilience::AppendU64(out, static_cast<std::uint64_t>(report.resumed_trials));
  resilience::AppendU64(
      out, static_cast<std::uint64_t>(report.checkpoints_written));
  resilience::AppendU64(
      out, static_cast<std::uint64_t>(report.checkpoints_quarantined));
  resilience::AppendU64(
      out, static_cast<std::uint64_t>(report.checkpoint_write_failures));
  return out;
}

JobResult JobResult::DecodePayload(std::string_view bytes) {
  resilience::ByteReader reader(bytes);
  JobResult result;
  result.trials = static_cast<std::int64_t>(reader.U64());
  result.successes = static_cast<std::int64_t>(reader.U64());
  for (std::int64_t& v : result.verdicts) {
    v = static_cast<std::int64_t>(reader.U64());
  }
  result.mean_rounds = reader.F64();
  result.mean_blowup = reader.F64();
  const std::uint64_t num_phases = reader.U64();
  for (std::uint64_t i = 0; i < num_phases; ++i) {
    const std::string phase(reader.Bytes());
    result.phases[phase] = static_cast<std::int64_t>(reader.U64());
  }
  result.results_fingerprint = reader.U64();
  result.report.total_trials = static_cast<std::int64_t>(reader.U64());
  result.report.completed = static_cast<std::int64_t>(reader.U64());
  result.report.retried = static_cast<std::int64_t>(reader.U64());
  result.report.abandoned = static_cast<std::int64_t>(reader.U64());
  result.report.attempts = static_cast<std::int64_t>(reader.U64());
  result.report.timeouts = static_cast<std::int64_t>(reader.U64());
  result.report.exceptions = static_cast<std::int64_t>(reader.U64());
  result.report.degraded_verdicts = static_cast<std::int64_t>(reader.U64());
  result.report.resumed_trials = static_cast<std::int64_t>(reader.U64());
  result.report.checkpoints_written = static_cast<std::int64_t>(reader.U64());
  result.report.checkpoints_quarantined =
      static_cast<std::int64_t>(reader.U64());
  result.report.checkpoint_write_failures =
      static_cast<std::int64_t>(reader.U64());
  if (!reader.AtEnd()) {
    throw resilience::CheckpointError("trailing bytes in job payload");
  }
  return result;
}

JobResult RunJob(const JobSpec& spec, const JobExecution& exec) {
  ValidateJobSpec(spec);
  const FaultPlan faults = spec.ParsedFaultPlan();
  const std::unique_ptr<Channel> channel = MakeChannel(spec.channel, spec.eps);
  const std::unique_ptr<Simulator> sim =
      MakeSimulator(spec.sim, spec.task, static_cast<int>(spec.n));

  resilience::ResilienceOptions opts;
  opts.fs = exec.fs;
  opts.clock = exec.clock;
  opts.checkpoint_path = exec.checkpoint_path;
  opts.checkpoint_every = exec.checkpoint_every;
  opts.config_hash = spec.ConfigHash();
  opts.retry.max_attempts = spec.max_attempts;
  opts.retry.base_backoff_millis = spec.retry_backoff_millis;
  opts.budget.max_rounds = spec.trial_round_budget;
  opts.budget.max_wall_millis = spec.trial_timeout_millis;
  opts.num_workers = exec.num_workers;
  opts.halt_after_checkpoints = exec.halt_after_checkpoints;
  opts.cancel = exec.cancel;
  opts.deadline_at_millis = exec.deadline_at_millis;

  Rng rng(spec.seed);
  const auto body = [&](int, Rng& trial_rng) {
    const Workload workload =
        MakeWorkload(spec.task, static_cast<int>(spec.n), trial_rng);
    const SimulationResult result =
        sim->Simulate(*workload.protocol, *channel, faults, trial_rng);
    TrialPoint point;
    point.success = !result.budget_exhausted() && workload.judge(result);
    point.status = static_cast<std::uint8_t>(result.verdict.status);
    point.rounds = result.noisy_rounds_used;
    point.blowup = static_cast<double>(result.noisy_rounds_used) /
                   std::max(1, workload.protocol->length());
    for (const auto& [phase, count] : result.phase_rounds) {
      point.phases[phase] += count;
    }
    return point;
  };
  const TrialPointAdapter adapter;
  const resilience::RunOutput<TrialPoint> run =
      resilience::ResilientTrials(spec.trials, rng, body, adapter, opts);

  JobResult result;
  result.trials = spec.trials;
  result.report = run.report;
  RunningStat rounds;
  RunningStat blowup;
  std::string encoded_results;
  for (const TrialPoint& point : run.results) {
    if (point.success) ++result.successes;
    ++result.verdicts[static_cast<std::size_t>(
        point.status < 3 ? point.status : 2)];
    rounds.Add(static_cast<double>(point.rounds));
    blowup.Add(point.blowup);
    for (const auto& [phase, count] : point.phases) {
      result.phases[phase] += count;
    }
    encoded_results += adapter.Encode(point);
  }
  if (!run.results.empty()) {
    result.mean_rounds = rounds.mean();
    result.mean_blowup = blowup.mean();
  }
  result.results_fingerprint = resilience::Fnv1a64(encoded_results);
  return result;
}

}  // namespace noisybeeps::service
