#include "fault/injection.h"

#include <algorithm>

#include "util/require.h"

namespace noisybeeps {

FaultInjector::FaultInjector(const FaultPlan& plan, std::int64_t num_parties)
    : specs_(plan.specs()) {
  NB_REQUIRE(plan.MaxParty() < num_parties,
             "fault plan names a party the execution does not have");
  babbler_rngs_.reserve(specs_.size());
  for (std::size_t k = 0; k < specs_.size(); ++k) {
    // One decorrelated stream per spec: distinct SplitMix64 seed chains
    // keyed by (plan seed, spec index).  Never touches the channel rng, so
    // adding or removing a babbler cannot shift the noise realization.
    babbler_rngs_.emplace_back(plan.seed() ^
                               (0x9e3779b97f4a7c15ULL * (k + 1)));
  }
}

void FaultInjector::ApplySend(std::int64_t round,
                              std::span<std::uint8_t> beeps) {
  for (std::size_t k = 0; k < specs_.size(); ++k) {
    const FaultSpec& spec = specs_[k];
    if (!spec.ActiveAt(round)) continue;
    switch (spec.kind) {
      case FaultKind::kCrashStop:
      case FaultKind::kSleepy:
        beeps[spec.party] = 0;
        break;
      case FaultKind::kStuckBeeper:
        beeps[spec.party] = 1;
        break;
      case FaultKind::kBabbler:
        beeps[spec.party] = babbler_rngs_[k].Bernoulli(spec.beep_prob) ? 1 : 0;
        break;
      case FaultKind::kDeafReceiver:
        break;  // send side untouched
    }
  }
}

void FaultInjector::ApplyReceive(std::int64_t round,
                                 std::span<std::uint8_t> received) {
  for (const FaultSpec& spec : specs_) {
    if (!spec.ActiveAt(round)) continue;
    switch (spec.kind) {
      case FaultKind::kCrashStop:
      case FaultKind::kSleepy:
      case FaultKind::kDeafReceiver:
        received[spec.party] = 0;
        break;
      case FaultKind::kStuckBeeper:
      case FaultKind::kBabbler:
        break;  // receive side untouched
    }
  }
}

namespace {

inline void SetPackedBit(std::span<std::uint64_t> words, std::int64_t i,
                         bool value) {
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (value) {
    words[static_cast<std::size_t>(i / 64)] |= mask;
  } else {
    words[static_cast<std::size_t>(i / 64)] &= ~mask;
  }
}

}  // namespace

void FaultInjector::ApplySendWords(std::int64_t round,
                                   std::span<std::uint64_t> beeps) {
  for (std::size_t k = 0; k < specs_.size(); ++k) {
    const FaultSpec& spec = specs_[k];
    if (!spec.ActiveAt(round)) continue;
    switch (spec.kind) {
      case FaultKind::kCrashStop:
      case FaultKind::kSleepy:
        SetPackedBit(beeps, spec.party, false);
        break;
      case FaultKind::kStuckBeeper:
        SetPackedBit(beeps, spec.party, true);
        break;
      case FaultKind::kBabbler:
        // The draw happens unconditionally (as in ApplySend): the babbler
        // stream position stays a function of the round index alone.
        SetPackedBit(beeps, spec.party,
                     babbler_rngs_[k].Bernoulli(spec.beep_prob));
        break;
      case FaultKind::kDeafReceiver:
        break;  // send side untouched
    }
  }
}

void FaultInjector::ApplyReceiveWords(std::int64_t round,
                                      std::span<std::uint64_t> received) {
  for (const FaultSpec& spec : specs_) {
    if (!spec.ActiveAt(round)) continue;
    switch (spec.kind) {
      case FaultKind::kCrashStop:
      case FaultKind::kSleepy:
      case FaultKind::kDeafReceiver:
        SetPackedBit(received, spec.party, false);
        break;
      case FaultKind::kStuckBeeper:
      case FaultKind::kBabbler:
        break;  // receive side untouched
    }
  }
}

FaultyRoundEngine::FaultyRoundEngine(const Channel& channel, Rng& rng,
                                     std::int64_t num_parties,
                                     const FaultPlan& plan)
    : RoundEngine(channel, rng, num_parties),
      injector_(plan, num_parties),
      faulted_beeps_(static_cast<std::size_t>(num_parties), 0),
      faulted_received_(static_cast<std::size_t>(num_parties), 0),
      faulted_beep_words_(WordsForParties(num_parties), 0),
      faulted_received_words_(WordsForParties(num_parties), 0) {
  NB_REQUIRE(plan.MaxParty() < num_parties,
             "fault plan names a party the engine does not have");
}

std::span<const std::uint8_t> FaultyRoundEngine::Round(
    std::span<const std::uint8_t> beeps) {
  if (!injector_.active()) return RoundEngine::Round(beeps);
  const std::int64_t round = rounds_used();
  std::copy(beeps.begin(), beeps.end(), faulted_beeps_.begin());
  injector_.ApplySend(round, faulted_beeps_);
  const std::span<const std::uint8_t> received =
      RoundEngine::Round(faulted_beeps_);
  std::copy(received.begin(), received.end(), faulted_received_.begin());
  injector_.ApplyReceive(round, faulted_received_);
  return faulted_received_;
}

std::span<const std::uint64_t> FaultyRoundEngine::RoundWords(
    std::span<const std::uint64_t> beep_words) {
  if (!injector_.active()) return RoundEngine::RoundWords(beep_words);
  const std::int64_t round = rounds_used();
  std::copy(beep_words.begin(), beep_words.end(),
            faulted_beep_words_.begin());
  injector_.ApplySendWords(round, faulted_beep_words_);
  const std::span<const std::uint64_t> received =
      RoundEngine::RoundWords(faulted_beep_words_);
  std::copy(received.begin(), received.end(),
            faulted_received_words_.begin());
  injector_.ApplyReceiveWords(round, faulted_received_words_);
  return faulted_received_words_;
}

ExecutionResult Execute(const Protocol& protocol, const Channel& channel,
                        const FaultPlan& plan, Rng& rng) {
  const int n = protocol.num_parties();
  NB_REQUIRE(plan.MaxParty() < n,
             "fault plan names a party the protocol does not have");
  FaultInjector injector(plan, n);

  ExecutionResult result;
  result.transcripts.assign(n, BitString());
  for (BitString& transcript : result.transcripts) {
    transcript.Reserve(static_cast<std::size_t>(protocol.length()));
  }
  // Delivery runs on the packed word representation in stream-compat
  // mode, exactly as the fault-free Execute (protocol/executor.cc): with
  // an empty plan the two are bit-for-bit identical.
  std::vector<std::uint8_t> beeps(n, 0);
  std::vector<std::uint8_t> received(n, 0);
  std::vector<std::uint64_t> received_words(WordsForParties(n), 0);
  for (int m = 0; m < protocol.length(); ++m) {
    for (int i = 0; i < n; ++i) {
      beeps[i] = protocol.party(i).ChooseBeep(result.transcripts[i]) ? 1 : 0;
    }
    if (injector.active()) injector.ApplySend(m, beeps);
    std::int64_t num_beepers = 0;
    for (std::uint8_t b : beeps) num_beepers += b != 0;
    channel.DeliverWords(num_beepers, received_words, n,
                         WordMode::kStreamCompat, rng);
    UnpackBits(received_words, received);
    if (injector.active()) injector.ApplyReceive(m, received);
    for (int i = 0; i < n; ++i) {
      result.transcripts[i].PushBack(received[i] != 0);
    }
  }

  result.outputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    result.outputs.push_back(
        protocol.party(i).ComputeOutput(result.transcripts[i]));
  }
  return result;
}

}  // namespace noisybeeps
