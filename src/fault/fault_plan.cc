#include "fault/fault_plan.h"

#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps {

namespace {

void RequireWindow(std::int64_t party, std::int64_t first,
                   std::int64_t last) {
  NB_REQUIRE(party >= 0, "fault party index must be non-negative");
  NB_REQUIRE(first >= 0, "fault window must start at a non-negative round");
  NB_REQUIRE(last >= first, "fault window must not end before it starts");
}

// Parses a non-negative integer occupying ALL of `text`.  Throws
// std::invalid_argument otherwise (including on overflow).
std::int64_t ParseRound(const std::string& text, const std::string& context) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("FaultPlan: bad round index '" + text +
                                "' in " + context);
  }
  try {
    return std::stoll(text);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("FaultPlan: round index overflows in " +
                                context);
  }
}

double ParseProb(const std::string& text, const std::string& context) {
  std::size_t used = 0;
  double p = 0;
  try {
    p = std::stod(text, &used);
  } catch (const std::exception&) {
    used = std::string::npos;  // force the error below
  }
  if (used != text.size() || !(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("FaultPlan: bad beep probability '" + text +
                                "' in " + context);
  }
  return p;
}

}  // namespace

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashStop:
      return "crash";
    case FaultKind::kSleepy:
      return "sleepy";
    case FaultKind::kStuckBeeper:
      return "stuck";
    case FaultKind::kBabbler:
      return "babble";
    case FaultKind::kDeafReceiver:
      return "deaf";
  }
  throw std::invalid_argument("FaultKindName: unknown FaultKind");
}

FaultKind ParseFaultKind(const std::string& name) {
  if (name == "crash") return FaultKind::kCrashStop;
  if (name == "sleepy") return FaultKind::kSleepy;
  if (name == "stuck") return FaultKind::kStuckBeeper;
  if (name == "babble") return FaultKind::kBabbler;
  if (name == "deaf") return FaultKind::kDeafReceiver;
  throw std::invalid_argument("FaultPlan: unknown fault kind '" + name +
                              "' (expected crash|sleepy|stuck|babble|deaf)");
}

FaultPlan& FaultPlan::CrashStop(std::int64_t party,
                                std::int64_t from_round) {
  RequireWindow(party, from_round, FaultSpec::kNoLastRound);
  specs_.push_back({FaultKind::kCrashStop, party, from_round,
                    FaultSpec::kNoLastRound, 0.0});
  return *this;
}

FaultPlan& FaultPlan::Sleepy(std::int64_t party, std::int64_t first,
                             std::int64_t last) {
  RequireWindow(party, first, last);
  specs_.push_back({FaultKind::kSleepy, party, first, last, 0.0});
  return *this;
}

FaultPlan& FaultPlan::StuckBeeper(std::int64_t party, std::int64_t first,
                                  std::int64_t last) {
  RequireWindow(party, first, last);
  specs_.push_back({FaultKind::kStuckBeeper, party, first, last, 0.0});
  return *this;
}

FaultPlan& FaultPlan::Babbler(std::int64_t party, std::int64_t first,
                              std::int64_t last,
                              double beep_prob) {
  RequireWindow(party, first, last);
  NB_REQUIRE(beep_prob >= 0.0 && beep_prob <= 1.0,
             "babbler beep probability must be in [0, 1]");
  specs_.push_back({FaultKind::kBabbler, party, first, last, beep_prob});
  return *this;
}

FaultPlan& FaultPlan::DeafReceiver(std::int64_t party, std::int64_t first,
                                   std::int64_t last) {
  RequireWindow(party, first, last);
  specs_.push_back({FaultKind::kDeafReceiver, party, first, last, 0.0});
  return *this;
}

std::int64_t FaultPlan::MaxParty() const {
  std::int64_t max_party = -1;
  for (const FaultSpec& spec : specs_) {
    if (spec.party > max_party) max_party = spec.party;
  }
  return max_party;
}

std::int64_t FaultPlan::NumFaultyParties() const {
  std::set<std::int64_t> parties;
  for (const FaultSpec& spec : specs_) parties.insert(spec.party);
  return static_cast<std::int64_t>(parties.size());
}

FaultPlan FaultPlan::Parse(const std::string& text, std::uint64_t seed) {
  FaultPlan plan(seed);
  std::istringstream stream(text);
  std::string entry;
  while (std::getline(stream, entry, ';')) {
    if (entry.empty()) continue;
    const std::string context = "spec '" + entry + "'";
    const std::size_t colon = entry.find(':');
    const std::size_t at = entry.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      throw std::invalid_argument(
          "FaultPlan: expected kind:party@first[-last][:prob], got " +
          context);
    }
    const FaultKind kind = ParseFaultKind(entry.substr(0, colon));
    const std::int64_t party =
        ParseRound(entry.substr(colon + 1, at - colon - 1), context);

    std::string window = entry.substr(at + 1);
    double prob = 0.5;
    bool have_prob = false;
    const std::size_t prob_colon = window.find(':');
    if (prob_colon != std::string::npos) {
      prob = ParseProb(window.substr(prob_colon + 1), context);
      have_prob = true;
      window = window.substr(0, prob_colon);
    }
    std::int64_t first = 0;
    std::int64_t last = FaultSpec::kNoLastRound;
    const std::size_t dash = window.find('-');
    if (dash == std::string::npos) {
      first = ParseRound(window, context);
    } else {
      first = ParseRound(window.substr(0, dash), context);
      const std::string last_str = window.substr(dash + 1);
      if (!last_str.empty() && last_str != "*") {
        last = ParseRound(last_str, context);
      }
    }
    if (last < first) {
      throw std::invalid_argument("FaultPlan: window ends before it starts in " +
                                  context);
    }
    if (have_prob && kind != FaultKind::kBabbler) {
      throw std::invalid_argument(
          "FaultPlan: only babble specs take a probability, got " + context);
    }
    switch (kind) {
      case FaultKind::kCrashStop:
        if (last != FaultSpec::kNoLastRound) {
          throw std::invalid_argument(
              "FaultPlan: crash is open-ended, it takes no end round: " +
              context);
        }
        plan.CrashStop(party, first);
        break;
      case FaultKind::kSleepy:
        plan.Sleepy(party, first, last);
        break;
      case FaultKind::kStuckBeeper:
        plan.StuckBeeper(party, first, last);
        break;
      case FaultKind::kBabbler:
        plan.Babbler(party, first, last, prob);
        break;
      case FaultKind::kDeafReceiver:
        plan.DeafReceiver(party, first, last);
        break;
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < specs_.size(); ++k) {
    const FaultSpec& spec = specs_[k];
    if (k > 0) os << ';';
    os << FaultKindName(spec.kind) << ':' << spec.party << '@'
       << spec.first_round;
    if (spec.kind != FaultKind::kCrashStop) {
      os << '-';
      if (spec.last_round == FaultSpec::kNoLastRound) {
        os << '*';
      } else {
        os << spec.last_round;
      }
    }
    if (spec.kind == FaultKind::kBabbler) {
      os << ':' << FormatDouble(spec.beep_prob);
    }
  }
  return os.str();
}

void WriteFaultPlanCsv(const FaultPlan& plan, std::ostream& os) {
  os << "kind,party,first_round,last_round,beep_prob\n";
  for (const FaultSpec& spec : plan.specs()) {
    os << FaultKindName(spec.kind) << ',' << spec.party << ','
       << spec.first_round << ',';
    if (spec.last_round == FaultSpec::kNoLastRound) {
      os << '*';
    } else {
      os << spec.last_round;
    }
    os << ',' << FormatDouble(spec.beep_prob) << '\n';
  }
}

FaultPlan ReadFaultPlanCsv(std::istream& is, std::uint64_t seed) {
  std::string line;
  NB_REQUIRE(static_cast<bool>(std::getline(is, line)) &&
                 line == "kind,party,first_round,last_round,beep_prob",
             "missing or malformed fault-plan CSV header");
  FaultPlan plan(seed);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cells[5];
    for (int c = 0; c < 5; ++c) {
      NB_REQUIRE(static_cast<bool>(std::getline(row, cells[c], ',')),
                 "fault-plan CSV row has too few cells: " + line);
    }
    std::string extra;
    NB_REQUIRE(!std::getline(row, extra),
               "fault-plan CSV row has too many cells: " + line);
    const std::string context = "CSV row '" + line + "'";
    const FaultKind kind = ParseFaultKind(cells[0]);
    const std::int64_t party = ParseRound(cells[1], context);
    const std::int64_t first = ParseRound(cells[2], context);
    const std::int64_t last = cells[3] == "*"
                                  ? FaultSpec::kNoLastRound
                                  : ParseRound(cells[3], context);
    switch (kind) {
      case FaultKind::kCrashStop:
        NB_REQUIRE(last == FaultSpec::kNoLastRound,
                   "crash rows must have last_round='*': " + line);
        plan.CrashStop(party, first);
        break;
      case FaultKind::kSleepy:
        plan.Sleepy(party, first, last);
        break;
      case FaultKind::kStuckBeeper:
        plan.StuckBeeper(party, first, last);
        break;
      case FaultKind::kBabbler:
        plan.Babbler(party, first, last, ParseProb(cells[4], context));
        break;
      case FaultKind::kDeafReceiver:
        plan.DeafReceiver(party, first, last);
        break;
    }
  }
  return plan;
}

}  // namespace noisybeeps
