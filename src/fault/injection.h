// Applying a FaultPlan to an execution.
//
// Faults are injected at the round boundary, never inside a Channel:
// send-side faults rewrite a party's beep decision BEFORE the channel sees
// the beeper count, and receive-side faults rewrite the party's received
// bit AFTER Deliver.  Channel implementations therefore stay untouched and
// compose freely with every fault kind (a babbler over a burst channel is
// just both layers doing their job).
//
//   send side     crash/sleepy -> 0,  stuck -> 1,  babbler -> Bernoulli
//                 from its own adversarial Rng stream (derived from the
//                 plan seed, never from the channel rng)
//   receive side  crash/sleepy/deaf -> 0
//
// FaultyRoundEngine is the simulators' injection point: a RoundEngine that
// applies the plan around every noisy round.  With an empty plan it
// delegates straight to RoundEngine -- the zero-fault no-op the golden
// test pins down.  Execute(protocol, channel, plan, rng) is the same for
// direct (uncoded) execution.
//
// Overlapping specs compose in plan order: each active spec rewrites the
// value in turn, so the LAST active spec for a (party, round) wins.  A
// babbler draws from its stream in every round of its window even when a
// later spec overrides the result, keeping its stream position a function
// of the round index alone.
#ifndef NOISYBEEPS_FAULT_INJECTION_H_
#define NOISYBEEPS_FAULT_INJECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_plan.h"
#include "protocol/executor.h"
#include "protocol/round_engine.h"
#include "util/rng.h"

namespace noisybeeps {

// The runtime state of one execution under a plan (babbler stream
// positions).  Stateless apart from those streams: the same injector
// applied to the same round sequence rewrites identically.
class FaultInjector {
 public:
  // Preconditions: every spec's party < num_parties.
  FaultInjector(const FaultPlan& plan, std::int64_t num_parties);

  // True when the plan has any spec at all (the fast-path test: an
  // inactive injector's Apply* calls are skipped entirely).
  [[nodiscard]] bool active() const { return !specs_.empty(); }

  // Rewrites beep decisions for noisy round `round` in place.
  void ApplySend(std::int64_t round, std::span<std::uint8_t> beeps);
  // Rewrites received bits for noisy round `round` in place.
  void ApplyReceive(std::int64_t round, std::span<std::uint8_t> received);

  // Word-packed counterparts (bit i of word w is party w*64+i).  A fault
  // touches single bits, so the cost is per active spec, not per party --
  // the mega-n word path keeps its word-parallel round cost.  Babbler
  // streams advance identically to the scalar path: the same plan over
  // the same rounds rewrites the same bits on either representation.
  void ApplySendWords(std::int64_t round, std::span<std::uint64_t> beeps);
  void ApplyReceiveWords(std::int64_t round,
                         std::span<std::uint64_t> received);

 private:
  std::vector<FaultSpec> specs_;
  std::vector<Rng> babbler_rngs_;  // parallel to specs_ (unused slots for
                                   // non-babbler specs stay untouched)
};

// A RoundEngine that injects `plan` around every round.  With an empty
// plan, rounds are bit-identical to a plain RoundEngine over the same
// channel and rng.
class FaultyRoundEngine final : public RoundEngine {
 public:
  // The engine borrows channel, rng, and plan; all must outlive it.
  // Preconditions: plan.MaxParty() < num_parties.
  FaultyRoundEngine(const Channel& channel, Rng& rng,
                    std::int64_t num_parties, const FaultPlan& plan);

  std::span<const std::uint8_t> Round(
      std::span<const std::uint8_t> beeps) override;
  std::span<const std::uint64_t> RoundWords(
      std::span<const std::uint64_t> beep_words) override;

 private:
  FaultInjector injector_;
  std::vector<std::uint8_t> faulted_beeps_;
  std::vector<std::uint8_t> faulted_received_;
  std::vector<std::uint64_t> faulted_beep_words_;
  std::vector<std::uint64_t> faulted_received_words_;
};

// Fault-aware counterpart of Execute (protocol/executor.h): runs
// `protocol` for its full length over `channel` with `plan` injected
// around every round.  With an empty plan this reproduces
// Execute(protocol, channel, rng) bit-for-bit.
// Preconditions: plan.MaxParty() < protocol.num_parties().
[[nodiscard]] ExecutionResult Execute(const Protocol& protocol,
                                      const Channel& channel,
                                      const FaultPlan& plan, Rng& rng);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_FAULT_INJECTION_H_
