// FaultPlan: a deterministic, seed-driven description of party faults.
//
// The paper's theorems assume every party is alive, synchronized, and
// faithfully runs its broadcast functions; the only adversity is channel
// noise.  The fault layer asks the harsher question the related beeping
// literature raises (Noisy Beeping Networks, arXiv:1909.06811; Design
// Patterns in Beeping Algorithms, arXiv:1607.02951): what does a scheme do
// when a party MISBEHAVES?  A FaultPlan is a pure value describing, per
// party and per noisy-channel round, one of five behaviours:
//
//   crash-stop     from round r on, the party neither beeps nor listens
//                  (it hears all-zeros) -- a dead node
//   sleepy         crash-stop limited to a round window [first, last]
//   stuck-beeper   the party beeps in EVERY round of its window
//   babbler        the party beeps at random (Bernoulli, its own
//                  adversarial Rng stream derived from the plan seed) --
//                  a Byzantine jammer independent of the channel noise
//   deaf-receiver  the party's received bit is forced to 0 in its window
//                  (it still beeps faithfully)
//
// Rounds are NOISY-CHANNEL rounds (the rounds RoundEngine counts), not
// logical rounds of the simulated protocol.  Plans are applied by
// fault/injection.h; the Channel implementations never see them.
//
// Determinism: a FaultPlan is part of the experiment configuration.  The
// babbler streams are derived from (plan seed, spec index) only, so
// identical (protocol, channel, FaultPlan, seed) tuples reproduce
// bit-identical executions -- the same contract every other stochastic
// component of the library obeys.
#ifndef NOISYBEEPS_FAULT_FAULT_PLAN_H_
#define NOISYBEEPS_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace noisybeeps {

enum class FaultKind {
  kCrashStop,
  kSleepy,
  kStuckBeeper,
  kBabbler,
  kDeafReceiver,
};

// The canonical short name ("crash", "sleepy", "stuck", "babble", "deaf").
[[nodiscard]] std::string FaultKindName(FaultKind kind);
// Inverse of FaultKindName.  Throws std::invalid_argument on unknown names.
[[nodiscard]] FaultKind ParseFaultKind(const std::string& name);

// One fault: `party` behaves as `kind` in noisy rounds
// [first_round, last_round] (inclusive; kNoLastRound = forever).
struct FaultSpec {
  static constexpr std::int64_t kNoLastRound =
      std::numeric_limits<std::int64_t>::max();

  FaultKind kind = FaultKind::kCrashStop;
  std::int64_t party = 0;
  std::int64_t first_round = 0;
  std::int64_t last_round = kNoLastRound;
  double beep_prob = 0.5;  // babbler only

  [[nodiscard]] bool ActiveAt(std::int64_t round) const {
    return round >= first_round && round <= last_round;
  }

  friend bool operator==(const FaultSpec& a, const FaultSpec& b) = default;
};

class FaultPlan {
 public:
  // An empty plan: injecting it is a provable no-op (bit-for-bit identical
  // to the unfaulted execution; the golden test holds this to account).
  FaultPlan() = default;
  // `seed` drives the babbler Rng streams (unused by the other kinds).
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  // Builder API; all return *this for chaining.  Windows are inclusive.
  // Preconditions: party >= 0, first_round >= 0, last >= first, and for
  // Babbler 0 <= beep_prob <= 1.
  FaultPlan& CrashStop(std::int64_t party, std::int64_t from_round);
  FaultPlan& Sleepy(std::int64_t party, std::int64_t first, std::int64_t last);
  FaultPlan& StuckBeeper(std::int64_t party, std::int64_t first,
                         std::int64_t last);
  FaultPlan& Babbler(std::int64_t party, std::int64_t first, std::int64_t last,
                     double beep_prob = 0.5);
  FaultPlan& DeafReceiver(std::int64_t party, std::int64_t first,
                          std::int64_t last);

  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  // Largest party index any spec names (-1 when empty).  Executions must
  // have more parties than this.
  [[nodiscard]] std::int64_t MaxParty() const;
  // Number of distinct parties with at least one fault.
  [[nodiscard]] std::int64_t NumFaultyParties() const;

  // The compact flag grammar (round-trip inverse of ToString):
  //   plan  := spec (';' spec)*     |  "" (empty plan)
  //   spec  := kind ':' party '@' first ['-' last] [':' prob]
  //   kind  := crash | sleepy | stuck | babble | deaf
  // e.g. "crash:3@100;sleepy:1@10-20;babble:2@0-50:0.7".  `last` omitted
  // or '*' means forever; crash takes no `last` (it is forever by
  // definition).  Throws std::invalid_argument on malformed input.
  static FaultPlan Parse(const std::string& text, std::uint64_t seed = 0);
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) = default;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
};

// CSV serialization for tools: header "kind,party,first_round,last_round,
// beep_prob" with last_round = '*' for open-ended windows.  ReadFaultPlanCsv
// throws std::invalid_argument on malformed input (missing header, ragged
// rows, unknown kinds, non-numeric cells).
void WriteFaultPlanCsv(const FaultPlan& plan, std::ostream& os);
[[nodiscard]] FaultPlan ReadFaultPlanCsv(std::istream& is,
                                         std::uint64_t seed = 0);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_FAULT_FAULT_PLAN_H_
