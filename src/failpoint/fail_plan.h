// FailPlan: a deterministic, seed-driven description of I/O faults.
//
// The paper computes correctly over a substrate that fails on every beep;
// the resilience layer (checkpoint/resume, docs/RESILIENCE.md) makes the
// same promise about the filesystem -- and a promise about failure paths
// that have never failed is worthless.  A FailPlan is a pure value
// describing, per filesystem OPERATION and per invocation ("hit"), one of
// seven behaviours injected by failpoint::FaultingFs (fs.h):
//
//   fail      the operation throws FsError without touching the file --
//             a failed open, a rejected rename, EIO on read
//   enospc    a write lands only a prefix (param fraction of the bytes)
//             then throws FsError("no space left on device") -- the disk
//             filled mid-write but the process lives on
//   torn      a write lands only a prefix then throws InjectedCrash --
//             power was lost mid-write (write only)
//   crash     InjectedCrash is thrown BEFORE the operation executes --
//             the in-process stand-in for SIGKILL at that exact boundary
//   truncate  a read silently returns only a prefix (param fraction) --
//             the file rotted short and nothing reported it (read only)
//   corrupt   a read returns the true bytes with `param` byte flips at
//             positions derived from (plan seed, spec index, hit) --
//             deterministic bit rot (read only)
//   latency   the operation succeeds after `param` injected milliseconds
//             (recorded; FaultingFs sleeps only if given a sleeper)
//
// Hits are counted per operation, from 0, by each FaultingFs instance.
// All checkpoint I/O happens on the engine's main thread between trial
// batches, so hit indices are identical at every worker count -- the same
// plan injects the same faults whether a sweep runs on 1 worker or 64.
//
// Determinism: a FailPlan is part of the experiment configuration.  The
// corrupt byte positions derive from (plan seed, spec index, hit index)
// only, so identical (workload, FailPlan, seed) tuples reproduce
// bit-identical fault sequences -- the same contract fault/fault_plan.h
// gives party faults.
#ifndef NOISYBEEPS_FAILPOINT_FAIL_PLAN_H_
#define NOISYBEEPS_FAILPOINT_FAIL_PLAN_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace noisybeeps::failpoint {

// The faultable filesystem operations -- exactly the virtual methods of
// failpoint::Fs (fs.h).
enum class FailOp {
  kRead,    // Fs::ReadFile
  kWrite,   // Fs::WriteFile
  kSync,    // Fs::SyncFile
  kRename,  // Fs::RenameFile
  kRemove,  // Fs::RemoveFile
};
inline constexpr int kNumFailOps = 5;

// The canonical short name ("read", "write", "sync", "rename", "remove").
[[nodiscard]] std::string FailOpName(FailOp op);
// Inverse of FailOpName.  Throws std::invalid_argument on unknown names.
[[nodiscard]] FailOp ParseFailOp(const std::string& name);

enum class FailKind {
  kFail,
  kEnospc,
  kTorn,
  kCrash,
  kTruncate,
  kCorrupt,
  kLatency,
};

// "fail", "enospc", "torn", "crash", "truncate", "corrupt", "latency".
[[nodiscard]] std::string FailKindName(FailKind kind);
// Inverse of FailKindName.  Throws std::invalid_argument on unknown names.
[[nodiscard]] FailKind ParseFailKind(const std::string& name);

// One fault: operation `op` misbehaves as `kind` on invocations
// [first_hit, last_hit] (inclusive; kNoLastHit = forever).  `param` is
// kind-specific: the surviving fraction for enospc/torn/truncate, the
// flip count for corrupt, the milliseconds for latency, unused for
// fail/crash.
struct FailSpec {
  static constexpr std::int64_t kNoLastHit =
      std::numeric_limits<std::int64_t>::max();

  FailKind kind = FailKind::kFail;
  FailOp op = FailOp::kWrite;
  std::int64_t first_hit = 0;
  std::int64_t last_hit = kNoLastHit;
  double param = 0;

  [[nodiscard]] bool ActiveAt(std::int64_t hit) const {
    return hit >= first_hit && hit <= last_hit;
  }

  friend bool operator==(const FailSpec& a, const FailSpec& b) = default;
};

class FailPlan {
 public:
  // An empty plan: a FaultingFs carrying it is a pure pass-through (plus
  // hit counting; fs.h holds that to account).
  FailPlan() = default;
  // `seed` drives the corrupt-kind byte flips (unused by the other kinds).
  explicit FailPlan(std::uint64_t seed) : seed_(seed) {}

  // Builder API; all return *this for chaining.  Windows are inclusive
  // hit indices, counted per op from 0.
  // Preconditions: first >= 0, last >= first; fraction in [0, 1];
  // flips >= 1; millis >= 0; Torn/Enospc only on kWrite, Truncate/Corrupt
  // only on kRead.
  FailPlan& Fail(FailOp op, std::int64_t first,
                 std::int64_t last = FailSpec::kNoLastHit);
  FailPlan& Enospc(std::int64_t first, std::int64_t last, double fraction);
  FailPlan& Torn(std::int64_t first, std::int64_t last, double fraction);
  FailPlan& Crash(FailOp op, std::int64_t first,
                  std::int64_t last = FailSpec::kNoLastHit);
  FailPlan& Truncate(std::int64_t first, std::int64_t last, double fraction);
  FailPlan& Corrupt(std::int64_t first, std::int64_t last, int flips);
  FailPlan& Latency(FailOp op, std::int64_t first, std::int64_t last,
                    std::int64_t millis);

  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] const std::vector<FailSpec>& specs() const { return specs_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // The compact flag grammar (round-trip inverse of ToString):
  //   plan  := spec (';' spec)*     |  "" (empty plan)
  //   spec  := kind ':' op '@' first ['-' last] [':' param]
  //   kind  := fail | enospc | torn | crash | truncate | corrupt | latency
  //   op    := read | write | sync | rename | remove
  // e.g. "crash:write@2;torn:write@0-4:0.5;corrupt:read@0:3".  `last`
  // omitted or '*' means forever.  fail/crash take no param; the others
  // require one.  Throws std::invalid_argument on malformed input.
  static FailPlan Parse(const std::string& text, std::uint64_t seed = 0);
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const FailPlan& a, const FailPlan& b) = default;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FailSpec> specs_;
};

// CSV serialization for tools: header "kind,op,first_hit,last_hit,param"
// with last_hit = '*' for open-ended windows.  ReadFailPlanCsv throws
// std::invalid_argument on malformed input (missing header, ragged rows,
// unknown kinds or ops, non-numeric cells).
void WriteFailPlanCsv(const FailPlan& plan, std::ostream& os);
[[nodiscard]] FailPlan ReadFailPlanCsv(std::istream& is,
                                       std::uint64_t seed = 0);

}  // namespace noisybeeps::failpoint

#endif  // NOISYBEEPS_FAILPOINT_FAIL_PLAN_H_
