#include "failpoint/fail_plan.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/format.h"
#include "util/require.h"

namespace noisybeeps::failpoint {

namespace {

void RequireWindow(std::int64_t first, std::int64_t last) {
  NB_REQUIRE(first >= 0, "failpoint window must start at a non-negative hit");
  NB_REQUIRE(last >= first, "failpoint window must not end before it starts");
}

// Parses a non-negative integer occupying ALL of `text`.  Throws
// std::invalid_argument otherwise (including on overflow).
std::int64_t ParseHit(const std::string& text, const std::string& context) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("FailPlan: bad hit index '" + text + "' in " +
                                context);
  }
  try {
    return std::stoll(text);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("FailPlan: hit index overflows in " + context);
  }
}

double ParseParam(const std::string& text, const std::string& context) {
  std::size_t used = 0;
  double p = 0;
  try {
    p = std::stod(text, &used);
  } catch (const std::exception&) {
    used = std::string::npos;  // force the error below
  }
  if (used != text.size() || !(p >= 0.0)) {
    throw std::invalid_argument("FailPlan: bad parameter '" + text + "' in " +
                                context);
  }
  return p;
}

bool KindTakesParam(FailKind kind) {
  return kind != FailKind::kFail && kind != FailKind::kCrash;
}

}  // namespace

std::string FailOpName(FailOp op) {
  switch (op) {
    case FailOp::kRead:
      return "read";
    case FailOp::kWrite:
      return "write";
    case FailOp::kSync:
      return "sync";
    case FailOp::kRename:
      return "rename";
    case FailOp::kRemove:
      return "remove";
  }
  throw std::invalid_argument("FailOpName: unknown FailOp");
}

FailOp ParseFailOp(const std::string& name) {
  if (name == "read") return FailOp::kRead;
  if (name == "write") return FailOp::kWrite;
  if (name == "sync") return FailOp::kSync;
  if (name == "rename") return FailOp::kRename;
  if (name == "remove") return FailOp::kRemove;
  throw std::invalid_argument("FailPlan: unknown file operation '" + name +
                              "' (expected read|write|sync|rename|remove)");
}

std::string FailKindName(FailKind kind) {
  switch (kind) {
    case FailKind::kFail:
      return "fail";
    case FailKind::kEnospc:
      return "enospc";
    case FailKind::kTorn:
      return "torn";
    case FailKind::kCrash:
      return "crash";
    case FailKind::kTruncate:
      return "truncate";
    case FailKind::kCorrupt:
      return "corrupt";
    case FailKind::kLatency:
      return "latency";
  }
  throw std::invalid_argument("FailKindName: unknown FailKind");
}

FailKind ParseFailKind(const std::string& name) {
  if (name == "fail") return FailKind::kFail;
  if (name == "enospc") return FailKind::kEnospc;
  if (name == "torn") return FailKind::kTorn;
  if (name == "crash") return FailKind::kCrash;
  if (name == "truncate") return FailKind::kTruncate;
  if (name == "corrupt") return FailKind::kCorrupt;
  if (name == "latency") return FailKind::kLatency;
  throw std::invalid_argument(
      "FailPlan: unknown fault kind '" + name +
      "' (expected fail|enospc|torn|crash|truncate|corrupt|latency)");
}

FailPlan& FailPlan::Fail(FailOp op, std::int64_t first, std::int64_t last) {
  RequireWindow(first, last);
  specs_.push_back({FailKind::kFail, op, first, last, 0.0});
  return *this;
}

FailPlan& FailPlan::Enospc(std::int64_t first, std::int64_t last,
                           double fraction) {
  RequireWindow(first, last);
  NB_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
             "enospc surviving fraction must be in [0, 1]");
  specs_.push_back({FailKind::kEnospc, FailOp::kWrite, first, last, fraction});
  return *this;
}

FailPlan& FailPlan::Torn(std::int64_t first, std::int64_t last,
                         double fraction) {
  RequireWindow(first, last);
  NB_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
             "torn-write surviving fraction must be in [0, 1]");
  specs_.push_back({FailKind::kTorn, FailOp::kWrite, first, last, fraction});
  return *this;
}

FailPlan& FailPlan::Crash(FailOp op, std::int64_t first, std::int64_t last) {
  RequireWindow(first, last);
  specs_.push_back({FailKind::kCrash, op, first, last, 0.0});
  return *this;
}

FailPlan& FailPlan::Truncate(std::int64_t first, std::int64_t last,
                             double fraction) {
  RequireWindow(first, last);
  NB_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
             "truncate surviving fraction must be in [0, 1]");
  specs_.push_back({FailKind::kTruncate, FailOp::kRead, first, last, fraction});
  return *this;
}

FailPlan& FailPlan::Corrupt(std::int64_t first, std::int64_t last, int flips) {
  RequireWindow(first, last);
  NB_REQUIRE(flips >= 1, "corrupt must flip at least one byte");
  specs_.push_back({FailKind::kCorrupt, FailOp::kRead, first, last,
                    static_cast<double>(flips)});
  return *this;
}

FailPlan& FailPlan::Latency(FailOp op, std::int64_t first, std::int64_t last,
                            std::int64_t millis) {
  RequireWindow(first, last);
  NB_REQUIRE(millis >= 0, "injected latency must be non-negative");
  specs_.push_back(
      {FailKind::kLatency, op, first, last, static_cast<double>(millis)});
  return *this;
}

namespace {

// Dispatches one parsed spec through the builder so every entry point
// (grammar, CSV) funnels into the same precondition checks.
void AddSpec(FailPlan& plan, FailKind kind, FailOp op, std::int64_t first,
             std::int64_t last, bool have_param, double param,
             const std::string& context) {
  if (have_param != KindTakesParam(kind)) {
    throw std::invalid_argument(
        have_param
            ? "FailPlan: " + FailKindName(kind) +
                  " specs take no parameter, got " + context
            : "FailPlan: " + FailKindName(kind) +
                  " specs require a parameter (kind:op@first[-last]:param), "
                  "got " + context);
  }
  switch (kind) {
    case FailKind::kFail:
      plan.Fail(op, first, last);
      return;
    case FailKind::kEnospc:
    case FailKind::kTorn:
    case FailKind::kTruncate: {
      const FailOp required =
          kind == FailKind::kTruncate ? FailOp::kRead : FailOp::kWrite;
      if (op != required) {
        throw std::invalid_argument("FailPlan: " + FailKindName(kind) +
                                    " applies only to '" +
                                    FailOpName(required) + "', got " + context);
      }
      if (!(param <= 1.0)) {
        throw std::invalid_argument(
            "FailPlan: surviving fraction must be in [0, 1] in " + context);
      }
      if (kind == FailKind::kEnospc) plan.Enospc(first, last, param);
      if (kind == FailKind::kTorn) plan.Torn(first, last, param);
      if (kind == FailKind::kTruncate) plan.Truncate(first, last, param);
      return;
    }
    case FailKind::kCrash:
      plan.Crash(op, first, last);
      return;
    case FailKind::kCorrupt: {
      if (op != FailOp::kRead) {
        throw std::invalid_argument(
            "FailPlan: corrupt applies only to 'read', got " + context);
      }
      const int flips = static_cast<int>(param);
      if (param != static_cast<double>(flips) || flips < 1) {
        throw std::invalid_argument(
            "FailPlan: corrupt parameter must be a flip count >= 1 in " +
            context);
      }
      plan.Corrupt(first, last, flips);
      return;
    }
    case FailKind::kLatency: {
      const auto millis = static_cast<std::int64_t>(param);
      if (param != static_cast<double>(millis)) {
        throw std::invalid_argument(
            "FailPlan: latency parameter must be whole milliseconds in " +
            context);
      }
      plan.Latency(op, first, last, millis);
      return;
    }
  }
}

}  // namespace

FailPlan FailPlan::Parse(const std::string& text, std::uint64_t seed) {
  FailPlan plan(seed);
  std::istringstream stream(text);
  std::string entry;
  while (std::getline(stream, entry, ';')) {
    if (entry.empty()) continue;
    const std::string context = "spec '" + entry + "'";
    const std::size_t colon = entry.find(':');
    const std::size_t at = entry.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      throw std::invalid_argument(
          "FailPlan: expected kind:op@first[-last][:param], got " + context);
    }
    const FailKind kind = ParseFailKind(entry.substr(0, colon));
    const FailOp op = ParseFailOp(entry.substr(colon + 1, at - colon - 1));

    std::string window = entry.substr(at + 1);
    double param = 0;
    bool have_param = false;
    const std::size_t param_colon = window.find(':');
    if (param_colon != std::string::npos) {
      param = ParseParam(window.substr(param_colon + 1), context);
      have_param = true;
      window = window.substr(0, param_colon);
    }
    std::int64_t first = 0;
    std::int64_t last = FailSpec::kNoLastHit;
    const std::size_t dash = window.find('-');
    if (dash == std::string::npos) {
      first = ParseHit(window, context);
      last = first;  // a bare hit index faults exactly that invocation
    } else {
      first = ParseHit(window.substr(0, dash), context);
      const std::string last_str = window.substr(dash + 1);
      if (!last_str.empty() && last_str != "*") {
        last = ParseHit(last_str, context);
      }
    }
    if (last < first) {
      throw std::invalid_argument(
          "FailPlan: window ends before it starts in " + context);
    }
    AddSpec(plan, kind, op, first, last, have_param, param, context);
  }
  return plan;
}

std::string FailPlan::ToString() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < specs_.size(); ++k) {
    const FailSpec& spec = specs_[k];
    if (k > 0) os << ';';
    os << FailKindName(spec.kind) << ':' << FailOpName(spec.op) << '@'
       << spec.first_hit;
    if (spec.last_hit != spec.first_hit) {
      os << '-';
      if (spec.last_hit == FailSpec::kNoLastHit) {
        os << '*';
      } else {
        os << spec.last_hit;
      }
    }
    if (KindTakesParam(spec.kind)) {
      os << ':' << FormatDouble(spec.param);
    }
  }
  return os.str();
}

void WriteFailPlanCsv(const FailPlan& plan, std::ostream& os) {
  os << "kind,op,first_hit,last_hit,param\n";
  for (const FailSpec& spec : plan.specs()) {
    os << FailKindName(spec.kind) << ',' << FailOpName(spec.op) << ','
       << spec.first_hit << ',';
    if (spec.last_hit == FailSpec::kNoLastHit) {
      os << '*';
    } else {
      os << spec.last_hit;
    }
    os << ',' << FormatDouble(spec.param) << '\n';
  }
}

FailPlan ReadFailPlanCsv(std::istream& is, std::uint64_t seed) {
  std::string line;
  NB_REQUIRE(static_cast<bool>(std::getline(is, line)) &&
                 line == "kind,op,first_hit,last_hit,param",
             "missing or malformed fail-plan CSV header");
  FailPlan plan(seed);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cells[5];
    for (int c = 0; c < 5; ++c) {
      NB_REQUIRE(static_cast<bool>(std::getline(row, cells[c], ',')),
                 "fail-plan CSV row has too few cells: " + line);
    }
    std::string extra;
    NB_REQUIRE(!std::getline(row, extra),
               "fail-plan CSV row has too many cells: " + line);
    const std::string context = "CSV row '" + line + "'";
    const FailKind kind = ParseFailKind(cells[0]);
    const FailOp op = ParseFailOp(cells[1]);
    const std::int64_t first = ParseHit(cells[2], context);
    const std::int64_t last = cells[3] == "*" ? FailSpec::kNoLastHit
                                              : ParseHit(cells[3], context);
    const bool takes_param = KindTakesParam(kind);
    const double param =
        takes_param ? ParseParam(cells[4], context) : 0.0;
    AddSpec(plan, kind, op, first, last, takes_param, param, context);
  }
  return plan;
}

}  // namespace noisybeeps::failpoint
