#include "failpoint/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/require.h"
#include "util/rng.h"

namespace noisybeeps::failpoint {

// ---------------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------------

std::optional<std::string> RealFs::ReadFile(const std::string& path) {
  if (!std::filesystem::exists(path)) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FsError("cannot open " + path + " for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw FsError("error reading " + path);
  return std::move(buffer).str();
}

void RealFs::WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FsError("cannot open " + path + " for writing");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) throw FsError("short write to " + path);
}

void RealFs::SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw FsError("cannot open " + path + " for sync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw FsError("fsync failed for " + path);
}

void RealFs::RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    throw FsError("cannot rename " + from + " to " + to);
  }
}

void RealFs::RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    throw FsError("cannot remove " + path);
  }
}

RealFs* RealFs::Instance() {
  static RealFs fs;
  return &fs;
}

// ---------------------------------------------------------------------------
// FaultingFs
// ---------------------------------------------------------------------------

namespace {

// SplitMix64-style mix of (plan seed, spec index, hit index) into the
// corrupt-fault Rng seed, so byte flips are a pure function of the plan.
std::uint64_t CorruptSeed(std::uint64_t plan_seed, std::size_t spec_index,
                          std::int64_t hit) {
  std::uint64_t x = plan_seed;
  x = (x ^ (static_cast<std::uint64_t>(spec_index) + 0x9e3779b97f4a7c15ULL)) *
      0xbf58476d1ce4e5b9ULL;
  x = (x ^ (static_cast<std::uint64_t>(hit) + 0x94d049bb133111ebULL)) *
      0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t PrefixLength(double fraction, std::size_t size) {
  return static_cast<std::size_t>(fraction * static_cast<double>(size));
}

}  // namespace

FaultingFs::FaultingFs(Fs* inner, FailPlan plan)
    : inner_(inner),
      plan_(std::move(plan)),
      fires_(plan_.specs().size(), 0) {
  NB_REQUIRE(inner != nullptr, "FaultingFs requires an inner Fs");
}

std::int64_t FaultingFs::HitCount(FailOp op) const {
  return hits_[static_cast<std::size_t>(op)];
}

const FailSpec* FaultingFs::Match(FailOp op, std::int64_t hit,
                                  std::size_t* index) const {
  const std::vector<FailSpec>& specs = plan_.specs();
  for (std::size_t k = 0; k < specs.size(); ++k) {
    if (specs[k].op == op && specs[k].ActiveAt(hit)) {
      *index = k;
      return &specs[k];
    }
  }
  return nullptr;
}

const FailSpec* FaultingFs::NextHit(FailOp op, std::size_t* index,
                                    std::int64_t* hit) {
  *hit = hits_[static_cast<std::size_t>(op)]++;
  return Match(op, *hit, index);
}

void FaultingFs::Fired(std::size_t index) {
  ++fires_[index];
  ++injected_;
}

void FaultingFs::InjectSimple(const FailSpec* spec, std::size_t index,
                              const std::string& what) {
  if (spec == nullptr) return;
  switch (spec->kind) {
    case FailKind::kCrash:
      Fired(index);
      throw InjectedCrash("injected crash before " + what);
    case FailKind::kFail:
      Fired(index);
      throw FsError("injected failure: " + what);
    case FailKind::kLatency: {
      Fired(index);
      const auto millis = static_cast<std::int64_t>(spec->param);
      latency_millis_ += millis;
      if (sleeper_) sleeper_(millis);
      return;
    }
    default:
      // Builder preconditions keep payload kinds on read/write only.
      NB_REQUIRE(false, "FailPlan spec kind incompatible with " + what);
  }
}

std::optional<std::string> FaultingFs::ReadFile(const std::string& path) {
  std::size_t index = 0;
  std::int64_t hit = 0;
  const FailSpec* spec = NextHit(FailOp::kRead, &index, &hit);
  if (spec == nullptr) return inner_->ReadFile(path);
  switch (spec->kind) {
    case FailKind::kCrash:
      Fired(index);
      throw InjectedCrash("injected crash before read of " + path);
    case FailKind::kFail:
      Fired(index);
      throw FsError("injected failure: read of " + path);
    case FailKind::kLatency: {
      Fired(index);
      const auto millis = static_cast<std::int64_t>(spec->param);
      latency_millis_ += millis;
      if (sleeper_) sleeper_(millis);
      return inner_->ReadFile(path);
    }
    case FailKind::kTruncate: {
      std::optional<std::string> data = inner_->ReadFile(path);
      if (!data.has_value()) return data;  // nothing to damage: no fire
      Fired(index);
      data->resize(PrefixLength(spec->param, data->size()));
      return data;
    }
    case FailKind::kCorrupt: {
      std::optional<std::string> data = inner_->ReadFile(path);
      if (!data.has_value() || data->empty()) return data;
      Fired(index);
      Rng rng(CorruptSeed(plan_.seed(), index, hit));
      const int flips = static_cast<int>(spec->param);
      for (int k = 0; k < flips; ++k) {
        const auto pos = static_cast<std::size_t>(rng.UniformInt(data->size()));
        // XOR with a nonzero mask so every flip really changes the byte.
        const auto mask =
            static_cast<unsigned char>(1 + rng.UniformInt(255));
        (*data)[pos] = static_cast<char>(
            static_cast<unsigned char>((*data)[pos]) ^ mask);
      }
      return data;
    }
    default:
      NB_REQUIRE(false, "FailPlan spec kind incompatible with read");
  }
  return inner_->ReadFile(path);  // unreachable; keeps compilers satisfied
}

void FaultingFs::WriteFile(const std::string& path, std::string_view contents) {
  std::size_t index = 0;
  std::int64_t hit = 0;
  const FailSpec* spec = NextHit(FailOp::kWrite, &index, &hit);
  if (spec == nullptr) {
    inner_->WriteFile(path, contents);
    return;
  }
  switch (spec->kind) {
    case FailKind::kCrash:
      Fired(index);
      throw InjectedCrash("injected crash before write of " + path);
    case FailKind::kFail:
      Fired(index);
      throw FsError("injected failure: write of " + path);
    case FailKind::kLatency: {
      Fired(index);
      const auto millis = static_cast<std::int64_t>(spec->param);
      latency_millis_ += millis;
      if (sleeper_) sleeper_(millis);
      inner_->WriteFile(path, contents);
      return;
    }
    case FailKind::kEnospc:
      Fired(index);
      inner_->WriteFile(path,
                        contents.substr(0, PrefixLength(spec->param,
                                                        contents.size())));
      throw FsError("injected fault: no space left on device writing " + path);
    case FailKind::kTorn:
      Fired(index);
      inner_->WriteFile(path,
                        contents.substr(0, PrefixLength(spec->param,
                                                        contents.size())));
      throw InjectedCrash("injected crash mid-write (torn) of " + path);
    default:
      NB_REQUIRE(false, "FailPlan spec kind incompatible with write");
  }
}

void FaultingFs::SyncFile(const std::string& path) {
  std::size_t index = 0;
  std::int64_t hit = 0;
  const FailSpec* spec = NextHit(FailOp::kSync, &index, &hit);
  InjectSimple(spec, index, "sync of " + path);
  inner_->SyncFile(path);
}

void FaultingFs::RenameFile(const std::string& from, const std::string& to) {
  std::size_t index = 0;
  std::int64_t hit = 0;
  const FailSpec* spec = NextHit(FailOp::kRename, &index, &hit);
  InjectSimple(spec, index, "rename of " + from + " to " + to);
  inner_->RenameFile(from, to);
}

void FaultingFs::RemoveFile(const std::string& path) {
  std::size_t index = 0;
  std::int64_t hit = 0;
  const FailSpec* spec = NextHit(FailOp::kRemove, &index, &hit);
  InjectSimple(spec, index, "remove of " + path);
  inner_->RemoveFile(path);
}

}  // namespace noisybeeps::failpoint
