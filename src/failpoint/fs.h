// Injectable filesystem seam for the resilience layer.
//
// Checkpoint/resume (docs/RESILIENCE.md) promises that a run survives
// interruption -- but that promise is only as strong as the I/O paths
// underneath it, and those paths fail in ways unit tests never exercise:
// full disks, torn writes, rejected renames, files that rot on the shelf.
// Fs is the seam that makes those failures injectable, exactly as
// resilience/clock.h made time injectable: ALL checkpoint I/O goes
// through an Fs*, RealFs talks to the OS, and FaultingFs wraps any Fs
// and misbehaves according to a deterministic, seed-driven FailPlan
// (fail_plan.h).  The whole-program nblint rule `io-seam-discipline`
// proves no raw filesystem call escapes this file.
//
// Error model:
//   - FsError is the ordinary failure: the operation did not (fully)
//     happen and the caller may handle it -- wrap it, clean up, degrade.
//   - InjectedCrash is the simulated SIGKILL: the process is "dead" at
//     that exact boundary.  It must ALWAYS propagate; catching it (even
//     via catch (...) in cleanup paths) breaks crash simulation.  Test
//     harnesses catch it at the outermost level only, then "reboot" by
//     re-running against the surviving files.
#ifndef NOISYBEEPS_FAILPOINT_FS_H_
#define NOISYBEEPS_FAILPOINT_FS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "failpoint/fail_plan.h"

namespace noisybeeps::failpoint {

// An ordinary filesystem failure: open refused, disk full, rename
// rejected, I/O error.  Callers may catch and recover.
class FsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A simulated kill at a failpoint (crash/torn kinds).  Deliberately NOT
// an FsError: recovery code that catches FsError must let this escape,
// or the "crash" quietly turns into a handled error and the
// crash-consistency oracle proves nothing.
class InjectedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The filesystem operations the resilience layer is allowed to perform.
// Small on purpose: whole files in, whole files out, atomic rename --
// the temp+sync+rename checkpoint protocol needs nothing finer, and
// every method is a registered failpoint (fail_plan.h FailOp).
class Fs {
 public:
  virtual ~Fs() = default;

  // Reads the entire file.  Returns nullopt if the file does not exist;
  // throws FsError on any other failure.  Never returns partial data
  // silently -- except under an injected `truncate` fault, which is the
  // point.
  [[nodiscard]] virtual std::optional<std::string> ReadFile(
      const std::string& path) = 0;

  // Creates or replaces the file with exactly `contents`.
  virtual void WriteFile(const std::string& path, std::string_view contents) = 0;

  // Flushes the file's data to stable storage (fsync).
  virtual void SyncFile(const std::string& path) = 0;

  // Atomically replaces `to` with `from` (same filesystem).
  virtual void RenameFile(const std::string& from, const std::string& to) = 0;

  // Deletes the file.  A missing file is a no-op; any other failure
  // throws FsError.
  virtual void RemoveFile(const std::string& path) = 0;
};

// The production filesystem.
class RealFs final : public Fs {
 public:
  [[nodiscard]] std::optional<std::string> ReadFile(
      const std::string& path) override;
  void WriteFile(const std::string& path, std::string_view contents) override;
  void SyncFile(const std::string& path) override;
  void RenameFile(const std::string& from, const std::string& to) override;
  void RemoveFile(const std::string& path) override;

  // A shared instance (the default when ResilienceOptions.fs is null).
  [[nodiscard]] static RealFs* Instance();
};

// Wraps an inner Fs and injects the faults described by a FailPlan.
//
// Each operation increments that op's hit counter (counted from 0),
// then applies the FIRST plan spec whose (op, window) matches -- or
// passes through untouched if none does.  With an empty plan a
// FaultingFs is a pure counting pass-through, which is how the
// crash-consistency oracle enumerates the failpoints of a workload
// before attacking each one.
//
// A spec counts as "fired" only when it actually injected something: a
// truncate/corrupt spec matching a read of a MISSING file does not fire
// (there is nothing to damage) and the read passes through.  The chaos
// soak's coverage assertion leans on this distinction.
//
// Latency faults are recorded (InjectedLatencyMillis) and forwarded to
// an optional sleeper callback; FaultingFs never sleeps on its own, so
// tests stay fast and the failpoint layer stays below resilience (no
// dependency on resilience::Clock).
//
// Not thread-safe; the resilience layer performs all checkpoint I/O on
// the engine's main thread between batches, which is also what makes
// hit indices worker-count-independent.
class FaultingFs final : public Fs {
 public:
  // `inner` must outlive this object.
  explicit FaultingFs(Fs* inner, FailPlan plan = {});

  [[nodiscard]] std::optional<std::string> ReadFile(
      const std::string& path) override;
  void WriteFile(const std::string& path, std::string_view contents) override;
  void SyncFile(const std::string& path) override;
  void RenameFile(const std::string& from, const std::string& to) override;
  void RemoveFile(const std::string& path) override;

  [[nodiscard]] const FailPlan& plan() const { return plan_; }

  // Invocations of `op` seen so far (injected or not).
  [[nodiscard]] std::int64_t HitCount(FailOp op) const;

  // Per-spec injection counts, parallel to plan().specs().
  [[nodiscard]] const std::vector<std::int64_t>& SpecFires() const {
    return fires_;
  }

  // Total injections across all specs.
  [[nodiscard]] std::int64_t TotalInjected() const { return injected_; }

  // Sum of latency-fault milliseconds recorded so far.
  [[nodiscard]] std::int64_t InjectedLatencyMillis() const {
    return latency_millis_;
  }

  // Installs a callback invoked with the milliseconds of each latency
  // fault (e.g. to really sleep, or to advance a FakeClock).
  void SetSleeper(std::function<void(std::int64_t)> sleeper) {
    sleeper_ = std::move(sleeper);
  }

 private:
  // First spec matching (op, hit), or nullptr.  On match *index is the
  // spec's position in the plan.
  [[nodiscard]] const FailSpec* Match(FailOp op, std::int64_t hit,
                                      std::size_t* index) const;
  // Consumes this op's next hit index and resolves the matching spec.
  [[nodiscard]] const FailSpec* NextHit(FailOp op, std::size_t* index,
                                        std::int64_t* hit);
  void Fired(std::size_t index);
  // Shared fail/crash/latency handling for the no-payload operations
  // (sync/rename/remove).  Returns after recording any latency fault;
  // throws for fail/crash.
  void InjectSimple(const FailSpec* spec, std::size_t index,
                    const std::string& what);

  Fs* inner_;
  FailPlan plan_;
  std::array<std::int64_t, kNumFailOps> hits_{};
  std::vector<std::int64_t> fires_;
  std::int64_t injected_ = 0;
  std::int64_t latency_millis_ = 0;
  std::function<void(std::int64_t)> sleeper_;
};

}  // namespace noisybeeps::failpoint

#endif  // NOISYBEEPS_FAILPOINT_FS_H_
