#include "ecc/gf256.h"

#include "util/require.h"

namespace noisybeeps::gf256 {
namespace {

struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled to avoid a mod in Mul
  std::array<int, 256> log{};

  Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = -1;
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

std::uint8_t Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return T().exp[T().log[a] + T().log[b]];
}

std::uint8_t Inv(std::uint8_t a) {
  NB_REQUIRE(a != 0, "zero has no inverse in GF(256)");
  return T().exp[255 - T().log[a]];
}

std::uint8_t Div(std::uint8_t a, std::uint8_t b) {
  NB_REQUIRE(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  return T().exp[(T().log[a] - T().log[b] + 255) % 255];
}

std::uint8_t Exp(int power) {
  const int p = ((power % 255) + 255) % 255;
  return T().exp[p];
}

int Log(std::uint8_t a) {
  NB_REQUIRE(a != 0, "log of zero in GF(256)");
  return T().log[a];
}

std::uint8_t EvalPoly(const std::uint8_t* coeffs, std::size_t degree_plus_one,
                      std::uint8_t x) {
  // Horner's rule from the highest coefficient down.
  std::uint8_t acc = 0;
  for (std::size_t i = degree_plus_one; i-- > 0;) {
    acc = Add(Mul(acc, x), coeffs[i]);
  }
  return acc;
}

}  // namespace noisybeeps::gf256
