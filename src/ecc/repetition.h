// The r-fold repetition code on a single bit: the workhorse of the paper's
// "repeat every round Θ(log n) times and take the majority" simulation.
#ifndef NOISYBEEPS_ECC_REPETITION_H_
#define NOISYBEEPS_ECC_REPETITION_H_

#include "ecc/code.h"

namespace noisybeeps {

class RepetitionCode final : public BinaryCode {
 public:
  // Precondition: repetitions >= 1.
  explicit RepetitionCode(std::size_t repetitions);

  [[nodiscard]] std::uint64_t num_messages() const override { return 2; }
  [[nodiscard]] std::size_t codeword_length() const override {
    return repetitions_;
  }
  [[nodiscard]] BitString Encode(std::uint64_t message) const override;
  // Majority decoding; ties (even r) resolve to 1, matching util::Majority.
  [[nodiscard]] std::uint64_t Decode(const BitString& received) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t repetitions_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ECC_REPETITION_H_
