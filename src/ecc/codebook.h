// Explicit-codebook codes with exact maximum-likelihood decoding.
//
// Algorithm 1 needs a code C : [n] ∪ {Next} -> {0,1}^{Θ(log n)} with good
// relative distance.  For such small message spaces the pragmatic optimum
// is an explicit codebook: a seeded random construction (which achieves the
// Gilbert-Varshamov bound with high probability) or a greedy
// Gilbert-Varshamov construction with a *guaranteed* minimum distance.
// Decoding is exact nearest-codeword search, which is the maximum
// likelihood rule on any binary-symmetric channel with flip probability
// below 1/2.
#ifndef NOISYBEEPS_ECC_CODEBOOK_H_
#define NOISYBEEPS_ECC_CODEBOOK_H_

#include <cstdint>
#include <vector>

#include "ecc/code.h"
#include "util/rng.h"

namespace noisybeeps {

class CodebookCode final : public BinaryCode {
 public:
  // Takes ownership of an explicit codebook.  Preconditions: at least two
  // codewords, all of equal positive length, all distinct.
  explicit CodebookCode(std::vector<BitString> codebook);

  // A codebook of `num_messages` iid uniform codewords of `length` bits.
  // Codewords are re-drawn on collision so the book is always valid.
  static CodebookCode Random(std::uint64_t num_messages, std::size_t length,
                             std::uint64_t seed);

  // Greedy Gilbert-Varshamov construction: scans seeded-random candidates
  // and keeps those at Hamming distance >= min_distance from all kept
  // words.  Throws std::runtime_error if the book cannot be filled within
  // the attempt budget (the parameters are beyond the GV bound).
  static CodebookCode GilbertVarshamov(std::uint64_t num_messages,
                                       std::size_t length,
                                       std::size_t min_distance,
                                       std::uint64_t seed);

  [[nodiscard]] std::uint64_t num_messages() const override {
    return codebook_.size();
  }
  [[nodiscard]] std::size_t codeword_length() const override {
    return codebook_.front().size();
  }
  [[nodiscard]] BitString Encode(std::uint64_t message) const override;
  [[nodiscard]] std::uint64_t Decode(const BitString& received) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::vector<BitString> codebook_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ECC_CODEBOOK_H_
