#include "ecc/codebook.h"

#include <limits>
#include <stdexcept>

#include "util/require.h"

namespace noisybeeps {
namespace {

BitString RandomWord(std::size_t length, Rng& rng) {
  BitString word;
  for (std::size_t i = 0; i < length; ++i) word.PushBack(rng.Bit());
  return word;
}

bool Contains(const std::vector<BitString>& book, const BitString& word) {
  for (const BitString& w : book) {
    if (w == word) return true;
  }
  return false;
}

}  // namespace

CodebookCode::CodebookCode(std::vector<BitString> codebook)
    : codebook_(std::move(codebook)) {
  NB_REQUIRE(codebook_.size() >= 2, "codebook needs at least two words");
  const std::size_t length = codebook_.front().size();
  NB_REQUIRE(length > 0, "codewords must be non-empty");
  for (std::size_t i = 0; i < codebook_.size(); ++i) {
    NB_REQUIRE(codebook_[i].size() == length, "codeword lengths differ");
    for (std::size_t j = i + 1; j < codebook_.size(); ++j) {
      NB_REQUIRE(!(codebook_[i] == codebook_[j]), "duplicate codewords");
    }
  }
}

CodebookCode CodebookCode::Random(std::uint64_t num_messages,
                                  std::size_t length, std::uint64_t seed) {
  NB_REQUIRE(num_messages >= 2, "need at least two messages");
  NB_REQUIRE(length >= 64 || num_messages <= (std::uint64_t{1} << length),
             "message space larger than word space");
  Rng rng(seed);
  std::vector<BitString> book;
  book.reserve(num_messages);
  while (book.size() < num_messages) {
    BitString candidate = RandomWord(length, rng);
    if (!Contains(book, candidate)) book.push_back(std::move(candidate));
  }
  return CodebookCode(std::move(book));
}

CodebookCode CodebookCode::GilbertVarshamov(std::uint64_t num_messages,
                                            std::size_t length,
                                            std::size_t min_distance,
                                            std::uint64_t seed) {
  NB_REQUIRE(num_messages >= 2, "need at least two messages");
  NB_REQUIRE(min_distance >= 1 && min_distance <= length,
             "minimum distance out of range");
  Rng rng(seed);
  std::vector<BitString> book;
  book.reserve(num_messages);
  // Generous attempt budget: random candidates succeed with constant
  // probability while below the GV bound.
  const std::uint64_t max_attempts = 4096 * num_messages + 65536;
  std::uint64_t attempts = 0;
  while (book.size() < num_messages) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "GilbertVarshamov: could not build codebook; parameters exceed the "
          "GV bound for this length/distance");
    }
    BitString candidate = RandomWord(length, rng);
    bool ok = true;
    for (const BitString& w : book) {
      if (w.HammingDistance(candidate) < min_distance) {
        ok = false;
        break;
      }
    }
    if (ok) book.push_back(std::move(candidate));
  }
  return CodebookCode(std::move(book));
}

BitString CodebookCode::Encode(std::uint64_t message) const {
  NB_REQUIRE(message < codebook_.size(), "message out of range");
  return codebook_[message];
}

std::uint64_t CodebookCode::Decode(const BitString& received) const {
  NB_REQUIRE(received.size() == codeword_length(),
             "received word has wrong length");
  std::uint64_t best_message = 0;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (std::uint64_t m = 0; m < codebook_.size(); ++m) {
    const std::size_t d = codebook_[m].HammingDistance(received);
    if (d < best_distance) {
      best_distance = d;
      best_message = m;
    }
  }
  return best_message;
}

std::string CodebookCode::name() const {
  return "Codebook(q=" + std::to_string(codebook_.size()) +
         ",L=" + std::to_string(codeword_length()) + ")";
}

}  // namespace noisybeeps
