#include "ecc/reed_solomon.h"

#include <algorithm>

#include "ecc/gf256.h"
#include "util/require.h"

namespace noisybeeps {

using gf256::Add;
using gf256::Div;
using gf256::Exp;
using gf256::Inv;
using gf256::Mul;

ReedSolomon::ReedSolomon(int total_symbols, int data_symbols)
    : n_(total_symbols), k_(data_symbols) {
  NB_REQUIRE(1 <= k_ && k_ < n_ && n_ <= 255,
             "Reed-Solomon parameters out of range");
  // generator = prod_{i=0}^{n-k-1} (x + alpha^i); coefficients low->high.
  generator_ = {1};
  for (int i = 0; i < n_ - k_; ++i) {
    std::vector<std::uint8_t> next(generator_.size() + 1, 0);
    const std::uint8_t root = Exp(i);
    for (std::size_t j = 0; j < generator_.size(); ++j) {
      next[j + 1] = Add(next[j + 1], generator_[j]);        // x * g
      next[j] = Add(next[j], Mul(generator_[j], root));     // alpha^i * g
    }
    generator_ = std::move(next);
  }
}

std::vector<std::uint8_t> ReedSolomon::Encode(
    std::span<const std::uint8_t> data) const {
  NB_REQUIRE(static_cast<int>(data.size()) == k_, "wrong data length");
  // Systematic encoding: codeword c(x) = d(x)*x^(n-k) + rem(x), where rem
  // is the remainder of d(x)*x^(n-k) modulo the generator.  We store the
  // codeword as [data | parity] and evaluate positions so that symbol j of
  // the codeword is the coefficient of x^(n-1-j).
  const int parity = n_ - k_;
  std::vector<std::uint8_t> rem(parity, 0);
  for (int i = 0; i < k_; ++i) {
    const std::uint8_t feedback = Add(data[i], rem.empty() ? 0 : rem[0]);
    // Shift remainder left by one and add feedback * generator.
    for (int j = 0; j < parity - 1; ++j) {
      rem[j] = Add(rem[j + 1], Mul(feedback, generator_[parity - 1 - j]));
    }
    rem[parity - 1] = Mul(feedback, generator_[0]);
  }
  std::vector<std::uint8_t> codeword(data.begin(), data.end());
  codeword.insert(codeword.end(), rem.begin(), rem.end());
  return codeword;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::Decode(
    std::span<const std::uint8_t> received) const {
  NB_REQUIRE(static_cast<int>(received.size()) == n_, "wrong received length");
  const int parity = n_ - k_;

  // The codeword as a polynomial: received[j] is the coefficient of
  // x^(n-1-j).  Syndromes S_i = r(alpha^i) for i in [0, parity).
  std::vector<std::uint8_t> syndromes(parity, 0);
  bool all_zero = true;
  for (int i = 0; i < parity; ++i) {
    std::uint8_t s = 0;
    for (int j = 0; j < n_; ++j) {
      s = Add(Mul(s, Exp(i)), received[j]);
    }
    syndromes[i] = s;
    all_zero = all_zero && (s == 0);
  }
  if (all_zero) {
    return std::vector<std::uint8_t>(received.begin(), received.begin() + k_);
  }

  // Berlekamp-Massey: find the error locator polynomial sigma(x),
  // coefficients low->high, sigma(0) = 1.
  std::vector<std::uint8_t> sigma = {1};
  std::vector<std::uint8_t> prev = {1};
  std::uint8_t prev_discrepancy = 1;
  int shift = 1;
  for (int i = 0; i < parity; ++i) {
    std::uint8_t discrepancy = 0;
    for (std::size_t j = 0; j < sigma.size(); ++j) {
      if (i >= static_cast<int>(j)) {
        discrepancy = Add(discrepancy, Mul(sigma[j], syndromes[i - j]));
      }
    }
    if (discrepancy == 0) {
      ++shift;
      continue;
    }
    const std::vector<std::uint8_t> sigma_backup = sigma;
    const std::uint8_t scale = Div(discrepancy, prev_discrepancy);
    // sigma -= scale * x^shift * prev
    if (sigma.size() < prev.size() + shift) sigma.resize(prev.size() + shift, 0);
    for (std::size_t j = 0; j < prev.size(); ++j) {
      sigma[j + shift] = Add(sigma[j + shift], Mul(scale, prev[j]));
    }
    if (2 * (sigma_backup.size() - 1) <= static_cast<std::size_t>(i)) {
      prev = sigma_backup;
      prev_discrepancy = discrepancy;
      shift = 1;
    } else {
      ++shift;
    }
  }
  const int num_errors = static_cast<int>(sigma.size()) - 1;
  if (num_errors > correctable_errors()) return std::nullopt;

  // Chien search: roots of sigma are alpha^{-position-exponent}.  With our
  // coefficient convention, symbol j corresponds to x-power p = n-1-j and
  // an error at power p makes sigma(alpha^{-p}) = 0.
  std::vector<int> error_positions;  // indices into `received`
  for (int p = 0; p < n_; ++p) {
    const std::uint8_t x = Exp(-p);
    if (gf256::EvalPoly(sigma.data(), sigma.size(), x) == 0) {
      error_positions.push_back(n_ - 1 - p);
    }
  }
  if (static_cast<int>(error_positions.size()) != num_errors) {
    return std::nullopt;  // locator does not split -> uncorrectable
  }

  // Forney: error evaluator omega(x) = [S(x) * sigma(x)] mod x^parity.
  std::vector<std::uint8_t> omega(parity, 0);
  for (int i = 0; i < parity; ++i) {
    for (std::size_t j = 0; j < sigma.size() && static_cast<int>(j) <= i; ++j) {
      omega[i] = Add(omega[i], Mul(sigma[j], syndromes[i - j]));
    }
  }
  // Formal derivative of sigma.
  std::vector<std::uint8_t> sigma_deriv;
  for (std::size_t j = 1; j < sigma.size(); j += 2) {
    // Over GF(2^m), d/dx x^j = j * x^(j-1) = x^(j-1) when j is odd, 0 when
    // even; collect odd-degree terms.
    sigma_deriv.resize(j, 0);
    sigma_deriv[j - 1] = sigma[j];
  }
  if (sigma_deriv.empty()) return std::nullopt;

  std::vector<std::uint8_t> corrected(received.begin(), received.end());
  for (int pos : error_positions) {
    const int p = n_ - 1 - pos;
    const std::uint8_t x_inv = Exp(-p);
    const std::uint8_t denom =
        gf256::EvalPoly(sigma_deriv.data(), sigma_deriv.size(), x_inv);
    if (denom == 0) return std::nullopt;
    const std::uint8_t num =
        gf256::EvalPoly(omega.data(), omega.size(), x_inv);
    // Error magnitude (Forney, b = 0 first consecutive root): X_l *
    // omega(X_l^{-1}) / sigma'(X_l^{-1}).
    const std::uint8_t magnitude = Mul(Exp(p), Div(num, denom));
    corrected[pos] = Add(corrected[pos], magnitude);
  }

  // Verify: recompute syndromes on the corrected word.
  for (int i = 0; i < parity; ++i) {
    std::uint8_t s = 0;
    for (int j = 0; j < n_; ++j) s = Add(Mul(s, Exp(i)), corrected[j]);
    if (s != 0) return std::nullopt;
  }
  corrected.resize(k_);
  return corrected;
}

}  // namespace noisybeeps
