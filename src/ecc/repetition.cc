#include "ecc/repetition.h"

#include "util/require.h"

namespace noisybeeps {

RepetitionCode::RepetitionCode(std::size_t repetitions)
    : repetitions_(repetitions) {
  NB_REQUIRE(repetitions >= 1, "repetition factor must be at least 1");
}

BitString RepetitionCode::Encode(std::uint64_t message) const {
  NB_REQUIRE(message < 2, "repetition code carries a single bit");
  BitString word;
  for (std::size_t i = 0; i < repetitions_; ++i) {
    word.PushBack(message == 1);
  }
  return word;
}

std::uint64_t RepetitionCode::Decode(const BitString& received) const {
  NB_REQUIRE(received.size() == repetitions_, "wrong received length");
  return 2 * received.PopCount() >= repetitions_ ? 1 : 0;
}

std::string RepetitionCode::name() const {
  return "Repetition(" + std::to_string(repetitions_) + ")";
}

}  // namespace noisybeeps
