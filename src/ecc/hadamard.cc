#include "ecc/hadamard.h"

#include <bit>

#include "util/require.h"

namespace noisybeeps {

HadamardCode::HadamardCode(int message_bits) : message_bits_(message_bits) {
  NB_REQUIRE(message_bits >= 1 && message_bits <= 20,
             "Hadamard message size out of supported range");
}

BitString HadamardCode::Encode(std::uint64_t message) const {
  NB_REQUIRE(message < num_messages(), "message out of range");
  const std::size_t length = codeword_length();
  BitString word;
  for (std::size_t j = 0; j < length; ++j) {
    word.PushBack((std::popcount(message & j) & 1) != 0);
  }
  return word;
}

std::uint64_t HadamardCode::Decode(const BitString& received) const {
  return NearestCodewordDecode(*this, received);
}

std::string HadamardCode::name() const {
  return "Hadamard(k=" + std::to_string(message_bits_) + ")";
}

}  // namespace noisybeeps
