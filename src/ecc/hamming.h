// The [7,4,3] Hamming code and its extended [8,4,4] variant: the classic
// high-rate inner codes.  Syndrome decoding corrects any single bit error
// (the extended code additionally detects double errors before falling
// back to nearest-codeword behaviour under the BinaryCode ML contract).
#ifndef NOISYBEEPS_ECC_HAMMING_H_
#define NOISYBEEPS_ECC_HAMMING_H_

#include "ecc/code.h"

namespace noisybeeps {

class HammingCode final : public BinaryCode {
 public:
  // extended == false: [7,4,3]; extended == true: [8,4,4] (overall parity
  // bit appended).
  explicit HammingCode(bool extended = false);

  [[nodiscard]] std::uint64_t num_messages() const override { return 16; }
  [[nodiscard]] std::size_t codeword_length() const override {
    return extended_ ? 8 : 7;
  }
  [[nodiscard]] BitString Encode(std::uint64_t message) const override;
  [[nodiscard]] std::uint64_t Decode(const BitString& received) const override;
  [[nodiscard]] std::string name() const override;

 private:
  bool extended_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ECC_HAMMING_H_
