// Interface for binary block codes over small message spaces.
//
// Algorithm 1 of the paper transmits elements of [n] ∪ {Next} over the
// noisy beeping channel using "a constant rate error correcting code".
// A BinaryCode maps a message index in [0, num_messages) to a codeword of
// codeword_length() bits and decodes a (possibly corrupted) word back to
// the most likely message.  Because the message spaces in this library are
// small (n + 1 messages), exact nearest-codeword maximum-likelihood
// decoding is affordable and is the default decoding contract.
#ifndef NOISYBEEPS_ECC_CODE_H_
#define NOISYBEEPS_ECC_CODE_H_

#include <cstdint>
#include <string>

#include "util/bitstring.h"

namespace noisybeeps {

class BinaryCode {
 public:
  virtual ~BinaryCode() = default;

  // Number of distinct messages the code can carry.
  [[nodiscard]] virtual std::uint64_t num_messages() const = 0;

  // Length of every codeword, in bits.
  [[nodiscard]] virtual std::size_t codeword_length() const = 0;

  // Encodes `message`.  Precondition: message < num_messages().
  [[nodiscard]] virtual BitString Encode(std::uint64_t message) const = 0;

  // Decodes `received` to the message whose codeword is nearest in Hamming
  // distance (ties break toward the smaller message index).
  // Precondition: received.size() == codeword_length().
  [[nodiscard]] virtual std::uint64_t Decode(const BitString& received)
      const = 0;

  // Human-readable description for logs and benchmark labels.
  [[nodiscard]] virtual std::string name() const = 0;
};

// Exact minimum pairwise Hamming distance of the code, by enumeration over
// all codeword pairs.  Quadratic in num_messages(); intended for tests and
// for validating codebook constructions, not for hot paths.
[[nodiscard]] std::size_t MinimumDistance(const BinaryCode& code);

// Decodes by exhaustive nearest-codeword search; shared by implementations
// whose decoding has no better structure.  Ties break to the smaller index.
[[nodiscard]] std::uint64_t NearestCodewordDecode(const BinaryCode& code,
                                                  const BitString& received);

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ECC_CODE_H_
