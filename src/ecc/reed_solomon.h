// A systematic Reed-Solomon code RS(n, k) over GF(256).
//
// Encodes k data symbols into n = k + 2t codeword symbols and corrects up
// to t symbol errors using the Berlekamp-Massey / Chien / Forney pipeline.
// Used standalone as a substrate and as the outer code of ConcatenatedCode.
#ifndef NOISYBEEPS_ECC_REED_SOLOMON_H_
#define NOISYBEEPS_ECC_REED_SOLOMON_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace noisybeeps {

class ReedSolomon {
 public:
  // Preconditions: 1 <= data_symbols < total_symbols <= 255 and the parity
  // count (total - data) is even or odd alike (any positive count works;
  // the code corrects floor(parity/2) errors).
  ReedSolomon(int total_symbols, int data_symbols);

  [[nodiscard]] int total_symbols() const { return n_; }
  [[nodiscard]] int data_symbols() const { return k_; }
  [[nodiscard]] int parity_symbols() const { return n_ - k_; }
  // Maximum number of correctable symbol errors.
  [[nodiscard]] int correctable_errors() const { return (n_ - k_) / 2; }

  // Systematic encoding: the first k output symbols are the data, followed
  // by n-k parity symbols.  Precondition: data.size() == k.
  [[nodiscard]] std::vector<std::uint8_t> Encode(
      std::span<const std::uint8_t> data) const;

  // Decodes a received word of n symbols.  Returns the k data symbols, or
  // std::nullopt if the error pattern is beyond the code's correction
  // radius (decoder failure).  Precondition: received.size() == n.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> Decode(
      std::span<const std::uint8_t> received) const;

 private:
  int n_;
  int k_;
  // Generator polynomial prod_{i=0}^{n-k-1} (x - alpha^i), low degree first.
  std::vector<std::uint8_t> generator_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ECC_REED_SOLOMON_H_
