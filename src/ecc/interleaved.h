// Block interleaving: the classical defence that turns burst errors into
// scattered errors a short code can handle.
//
// An InterleavedCode carries `depth` messages of the inner code at once;
// the combined codeword writes the `depth` inner codewords column-wise
// (bit 0 of word 0, bit 0 of word 1, ..., bit 1 of word 0, ...), so a
// burst of b consecutive channel errors touches at most ceil(b / depth)
// bits of any single inner codeword.  Pairs with channel/burst.h: the
// tests show an inner code that collapses under bursts decoding cleanly
// once interleaved at depth >= burst length.
#ifndef NOISYBEEPS_ECC_INTERLEAVED_H_
#define NOISYBEEPS_ECC_INTERLEAVED_H_

#include <memory>
#include <vector>

#include "ecc/code.h"

namespace noisybeeps {

class InterleavedCode {
 public:
  // Preconditions: inner non-null, depth >= 1.
  InterleavedCode(std::shared_ptr<const BinaryCode> inner, int depth);

  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] std::size_t codeword_length() const {
    return inner_->codeword_length() * depth_;
  }
  [[nodiscard]] const BinaryCode& inner() const { return *inner_; }

  // Encodes `depth` messages into one interleaved word.
  // Precondition: messages.size() == depth, each < inner.num_messages().
  [[nodiscard]] BitString Encode(
      const std::vector<std::uint64_t>& messages) const;

  // De-interleaves and decodes each inner word.
  // Precondition: received.size() == codeword_length().
  [[nodiscard]] std::vector<std::uint64_t> Decode(
      const BitString& received) const;

 private:
  std::shared_ptr<const BinaryCode> inner_;
  int depth_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ECC_INTERLEAVED_H_
