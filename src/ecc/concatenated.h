// Code concatenation: a Reed-Solomon outer code over GF(256) whose symbols
// are transported by a binary inner code with 256 messages.  The classical
// way to get a constant-rate binary code with constant relative distance
// and fast decoding -- the shape of code Algorithm 1 asks for when the
// payload is more than one symbol.
#ifndef NOISYBEEPS_ECC_CONCATENATED_H_
#define NOISYBEEPS_ECC_CONCATENATED_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ecc/code.h"
#include "ecc/reed_solomon.h"

namespace noisybeeps {

class ConcatenatedCode {
 public:
  // Preconditions: inner carries exactly 256 messages (one byte per inner
  // codeword).  The outer code is RS(total_symbols, data_symbols).
  ConcatenatedCode(ReedSolomon outer, std::shared_ptr<const BinaryCode> inner);

  [[nodiscard]] int data_bytes() const { return outer_.data_symbols(); }
  [[nodiscard]] std::size_t codeword_bits() const {
    return static_cast<std::size_t>(outer_.total_symbols()) *
           inner_->codeword_length();
  }

  // Encodes data_bytes() bytes into codeword_bits() bits.
  [[nodiscard]] BitString Encode(std::span<const std::uint8_t> data) const;

  // Inner-decodes each symbol by nearest codeword, then RS-decodes.
  // Returns nullopt on outer decoder failure.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> Decode(
      const BitString& received) const;

 private:
  ReedSolomon outer_;
  std::shared_ptr<const BinaryCode> inner_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ECC_CONCATENATED_H_
