// The (augmented) Hadamard code: message m in [2^k] maps to the 2^k-bit
// word whose j-th bit is <m, j> (parity of m AND j).  Every pair of
// codewords is at distance exactly 2^(k-1), i.e. relative distance 1/2 --
// the classical inner code for concatenation.
#ifndef NOISYBEEPS_ECC_HADAMARD_H_
#define NOISYBEEPS_ECC_HADAMARD_H_

#include "ecc/code.h"

namespace noisybeeps {

class HadamardCode final : public BinaryCode {
 public:
  // Carries k-bit messages in codewords of 2^k bits.
  // Precondition: 1 <= message_bits <= 20 (codewords up to 1 Mbit).
  explicit HadamardCode(int message_bits);

  [[nodiscard]] std::uint64_t num_messages() const override {
    return std::uint64_t{1} << message_bits_;
  }
  [[nodiscard]] std::size_t codeword_length() const override {
    return std::size_t{1} << message_bits_;
  }
  [[nodiscard]] BitString Encode(std::uint64_t message) const override;
  [[nodiscard]] std::uint64_t Decode(const BitString& received) const override;
  [[nodiscard]] std::string name() const override;

 private:
  int message_bits_;
};

}  // namespace noisybeeps

#endif  // NOISYBEEPS_ECC_HADAMARD_H_
