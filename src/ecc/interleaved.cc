#include "ecc/interleaved.h"

#include "util/require.h"

namespace noisybeeps {

InterleavedCode::InterleavedCode(std::shared_ptr<const BinaryCode> inner,
                                 int depth)
    : inner_(std::move(inner)), depth_(depth) {
  NB_REQUIRE(inner_ != nullptr, "inner code must be provided");
  NB_REQUIRE(depth >= 1, "interleaving depth must be positive");
}

BitString InterleavedCode::Encode(
    const std::vector<std::uint64_t>& messages) const {
  NB_REQUIRE(static_cast<int>(messages.size()) == depth_,
             "need exactly `depth` messages");
  std::vector<BitString> words;
  words.reserve(depth_);
  for (std::uint64_t m : messages) words.push_back(inner_->Encode(m));
  BitString out;
  const std::size_t inner_len = inner_->codeword_length();
  for (std::size_t bit = 0; bit < inner_len; ++bit) {
    for (int w = 0; w < depth_; ++w) {
      out.PushBack(words[w][bit]);
    }
  }
  return out;
}

std::vector<std::uint64_t> InterleavedCode::Decode(
    const BitString& received) const {
  NB_REQUIRE(received.size() == codeword_length(),
             "received word has wrong length");
  const std::size_t inner_len = inner_->codeword_length();
  std::vector<std::uint64_t> messages;
  messages.reserve(depth_);
  for (int w = 0; w < depth_; ++w) {
    BitString word;
    for (std::size_t bit = 0; bit < inner_len; ++bit) {
      word.PushBack(received[bit * depth_ + w]);
    }
    messages.push_back(inner_->Decode(word));
  }
  return messages;
}

}  // namespace noisybeeps
