#include "ecc/concatenated.h"

#include "util/require.h"

namespace noisybeeps {

ConcatenatedCode::ConcatenatedCode(ReedSolomon outer,
                                   std::shared_ptr<const BinaryCode> inner)
    : outer_(outer), inner_(std::move(inner)) {
  NB_REQUIRE(inner_ != nullptr, "inner code must be provided");
  NB_REQUIRE(inner_->num_messages() == 256,
             "inner code must carry one byte (256 messages)");
}

BitString ConcatenatedCode::Encode(std::span<const std::uint8_t> data) const {
  const std::vector<std::uint8_t> outer_word = outer_.Encode(data);
  BitString bits;
  for (std::uint8_t symbol : outer_word) {
    bits.Append(inner_->Encode(symbol));
  }
  return bits;
}

std::optional<std::vector<std::uint8_t>> ConcatenatedCode::Decode(
    const BitString& received) const {
  NB_REQUIRE(received.size() == codeword_bits(),
             "received word has wrong length");
  const std::size_t inner_len = inner_->codeword_length();
  std::vector<std::uint8_t> symbols;
  symbols.reserve(outer_.total_symbols());
  for (int s = 0; s < outer_.total_symbols(); ++s) {
    const BitString chunk =
        received.Substring(s * inner_len, (s + 1) * inner_len);
    symbols.push_back(static_cast<std::uint8_t>(inner_->Decode(chunk)));
  }
  return outer_.Decode(symbols);
}

}  // namespace noisybeeps
