// Arithmetic in GF(2^8) with the reduction polynomial x^8+x^4+x^3+x^2+1
// (0x11d, the standard Reed-Solomon field where alpha = x = 0x02 is
// primitive), via exp/log tables.  The field substrate for Reed-Solomon.
#ifndef NOISYBEEPS_ECC_GF256_H_
#define NOISYBEEPS_ECC_GF256_H_

#include <array>
#include <cstdint>

namespace noisybeeps::gf256 {

// Addition and subtraction coincide (characteristic 2).
[[nodiscard]] constexpr std::uint8_t Add(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}

[[nodiscard]] std::uint8_t Mul(std::uint8_t a, std::uint8_t b);

// Multiplicative inverse.  Precondition: a != 0.
[[nodiscard]] std::uint8_t Inv(std::uint8_t a);

// a / b.  Precondition: b != 0.
[[nodiscard]] std::uint8_t Div(std::uint8_t a, std::uint8_t b);

// alpha^power where alpha = 0x02 is the chosen generator; power is taken
// modulo 255.
[[nodiscard]] std::uint8_t Exp(int power);

// Discrete log base alpha.  Precondition: a != 0.  Result in [0, 255).
[[nodiscard]] int Log(std::uint8_t a);

// Evaluates the polynomial sum_i coeffs[i] * x^i at the point x.
[[nodiscard]] std::uint8_t EvalPoly(const std::uint8_t* coeffs,
                                    std::size_t degree_plus_one,
                                    std::uint8_t x);

}  // namespace noisybeeps::gf256

#endif  // NOISYBEEPS_ECC_GF256_H_
