#include "ecc/code.h"

#include <limits>

#include "util/require.h"

namespace noisybeeps {

std::size_t MinimumDistance(const BinaryCode& code) {
  const std::uint64_t q = code.num_messages();
  NB_REQUIRE(q >= 2, "minimum distance needs at least two codewords");
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (std::uint64_t a = 0; a < q; ++a) {
    const BitString wa = code.Encode(a);
    for (std::uint64_t b = a + 1; b < q; ++b) {
      best = std::min(best, wa.HammingDistance(code.Encode(b)));
    }
  }
  return best;
}

std::uint64_t NearestCodewordDecode(const BinaryCode& code,
                                    const BitString& received) {
  NB_REQUIRE(received.size() == code.codeword_length(),
             "received word has wrong length");
  std::uint64_t best_message = 0;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (std::uint64_t m = 0; m < code.num_messages(); ++m) {
    const std::size_t d = code.Encode(m).HammingDistance(received);
    if (d < best_distance) {
      best_distance = d;
      best_message = m;
    }
  }
  return best_message;
}

}  // namespace noisybeeps
