#include "ecc/hamming.h"

#include <bit>

#include "util/require.h"

namespace noisybeeps {
namespace {

// Standard [7,4] layout with parity bits at positions 1, 2, 4 (1-based):
// position p (1-based) participates in parity check c iff bit c of p is
// set.  Data bits occupy positions 3, 5, 6, 7.
constexpr int kDataPositions[4] = {3, 5, 6, 7};

int ParityOf(std::uint32_t word7, int check) {
  // check in {0,1,2}: XOR of bits at 1-based positions with bit `check`
  // set in their index.
  int parity = 0;
  for (int p = 1; p <= 7; ++p) {
    if ((p >> check) & 1) parity ^= (word7 >> (p - 1)) & 1;
  }
  return parity;
}

// Builds the 7-bit word (bit p-1 of the result is position p) from a
// 4-bit message, filling parity bits so all three checks are even.
std::uint32_t Encode7(std::uint64_t message) {
  std::uint32_t word = 0;
  for (int d = 0; d < 4; ++d) {
    if ((message >> d) & 1) word |= 1u << (kDataPositions[d] - 1);
  }
  for (int c = 0; c < 3; ++c) {
    if (ParityOf(word, c)) word ^= 1u << ((1 << c) - 1);
  }
  return word;
}

std::uint64_t ExtractMessage(std::uint32_t word7) {
  std::uint64_t message = 0;
  for (int d = 0; d < 4; ++d) {
    if ((word7 >> (kDataPositions[d] - 1)) & 1) {
      message |= std::uint64_t{1} << d;
    }
  }
  return message;
}

}  // namespace

HammingCode::HammingCode(bool extended) : extended_(extended) {}

BitString HammingCode::Encode(std::uint64_t message) const {
  NB_REQUIRE(message < 16, "message out of range");
  const std::uint32_t word = Encode7(message);
  BitString bits;
  for (int p = 0; p < 7; ++p) bits.PushBack((word >> p) & 1);
  if (extended_) bits.PushBack(std::popcount(word) & 1);
  return bits;
}

std::uint64_t HammingCode::Decode(const BitString& received) const {
  NB_REQUIRE(received.size() == codeword_length(), "wrong received length");
  std::uint32_t word = 0;
  for (int p = 0; p < 7; ++p) {
    if (received[p]) word |= 1u << p;
  }
  // Syndrome: the 1-based position of a single error, or 0 if checks pass.
  int syndrome = 0;
  for (int c = 0; c < 3; ++c) {
    if (ParityOf(word, c)) syndrome |= 1 << c;
  }
  if (!extended_) {
    if (syndrome != 0) word ^= 1u << (syndrome - 1);
    return ExtractMessage(word);
  }
  // Extended code: overall parity disambiguates single vs double errors.
  const int overall =
      (std::popcount(word) & 1) ^ (received[7] ? 1 : 0);
  if (syndrome != 0 && overall != 0) {
    // Single error among the first 7 bits: correct it.
    word ^= 1u << (syndrome - 1);
  } else if (syndrome != 0 && overall == 0) {
    // Double error detected: no unique correction exists inside radius 1;
    // fall back to exhaustive nearest-codeword (the ML contract).
    return NearestCodewordDecode(*this, received);
  }
  // syndrome == 0: either clean, or the parity bit itself flipped --
  // either way the data bits are intact.
  return ExtractMessage(word);
}

std::string HammingCode::name() const {
  return extended_ ? "Hamming[8,4,4]" : "Hamming[7,4,3]";
}

}  // namespace noisybeeps
