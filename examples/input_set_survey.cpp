// The paper's headline tension, measured.
//
// For the InputSet_n task over the one-sided-up 1/3-noisy channel (the
// exact lower-bound setting of Theorem C.1), this survey finds -- per n --
// the minimal repetition factor r* at which the natural r-repetition
// protocol reaches 90% success.  The lower bound says r* must grow like
// log n; the upper bound says the paper's scheme matches that growth.  The
// table prints r*, the implied total rounds r* * 2n, the rewind scheme's
// measured rounds, and both normalized by n*log2(n).
//
// Usage: input_set_survey [trials] [seed]
#include <cstdio>
#include <cstdlib>

#include "channel/one_sided.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

double RepetitionSuccessRate(int n, int r, int trials, Rng& rng) {
  const OneSidedUpChannel channel(1.0 / 3.0);
  SuccessCounter counter;
  for (int t = 0; t < trials; ++t) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    // kAllOnes is the ML decision under one-sided-up noise.
    const auto protocol =
        MakeRepeatedInputSetProtocol(instance, r, RoundDecision::kAllOnes);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    counter.Record(InputSetAllCorrect(instance, result.outputs));
  }
  return counter.rate();
}

int MinimalRepetition(int n, int trials, Rng& rng) {
  for (int r = 1; r <= 128; ++r) {
    if (RepetitionSuccessRate(n, r, trials, rng) >= 0.9) return r;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  Rng rng(seed);

  std::printf(
      "InputSet_n over the one-sided-up eps=1/3 channel (%d trials/cell)\n\n",
      trials);
  std::printf("%6s %6s | %10s %12s | %12s | %14s %14s\n", "n", "log2n", "r*",
              "rep rounds", "rewind rounds", "rep/(n log n)",
              "rwd/(n log n)");
  for (const int n : {4, 8, 16, 32, 64}) {
    const int r_star = MinimalRepetition(n, trials, rng);
    const long rep_rounds = static_cast<long>(r_star) * 2 * n;

    // The paper's scheme on the same instances.
    const OneSidedUpChannel channel(1.0 / 3.0);
    RewindSimOptions options;
    options.rep_c = 5;
    const RewindSimulator sim(options);
    RunningStat rewind_rounds;
    for (int t = 0; t < 10; ++t) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const auto protocol = MakeInputSetProtocol(instance);
      const SimulationResult result = sim.Simulate(*protocol, channel, rng);
      rewind_rounds.Add(static_cast<double>(result.noisy_rounds_used));
    }

    const double nlogn = n * static_cast<double>(CeilLog2(n < 2 ? 2 : n));
    std::printf("%6d %6d | %10d %12ld | %12.0f | %14.2f %14.2f\n", n,
                CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n)), r_star,
                rep_rounds, rewind_rounds.mean(),
                nlogn > 0 ? rep_rounds / nlogn : 0.0,
                nlogn > 0 ? rewind_rounds.mean() / nlogn : 0.0);
  }
  std::printf(
      "\nBoth normalized columns flatten to constants: Theta(n log n) rounds\n"
      "are necessary (Theorem 1.1) and sufficient (Theorem 1.2).\n");
  return 0;
}
