// Noise-resilient leader election.
//
// A fleet of devices with distinct ids elects the maximum id by bitwise
// beeping (tasks/leader_election.h).  This demo sweeps the channel noise
// rate and compares three deployments:
//   raw        -- the election run directly on the noisy channel,
//   repetition -- each round repeated Theta(log n) times,
//   rewind     -- the paper's full rewind-if-error scheme.
// For each cell it reports the success rate over many elections and the
// average number of noisy rounds spent.
//
// Usage: leader_election_demo [n] [trials] [seed]
#include <cstdio>
#include <cstdlib>

#include "channel/correlated.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "tasks/leader_election.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

struct CellResult {
  double success_rate;
  double avg_rounds;
};

CellResult RunCell(const noisybeeps::Simulator& sim, int n, double eps,
                   int trials, std::uint64_t seed) {
  using namespace noisybeeps;
  Rng rng(seed);
  const CorrelatedNoisyChannel channel(eps);
  SuccessCounter counter;
  RunningStat rounds;
  for (int t = 0; t < trials; ++t) {
    const LeaderElectionInstance instance =
        SampleLeaderElection(n, 16, rng);
    const auto protocol = MakeLeaderElectionProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    counter.Record(!result.budget_exhausted() &&
                   LeaderElectionAllCorrect(instance, result.outputs));
    rounds.Add(static_cast<double>(result.noisy_rounds_used));
  }
  return CellResult{counter.rate(), rounds.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisybeeps;
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  const RepetitionSimulator raw(RepetitionSimOptions{.rep_factor = 1});
  const RepetitionSimulator repetition;
  const RewindSimulator rewind;

  std::printf("Leader election among %d parties (16-bit ids, %d trials)\n",
              n, trials);
  std::printf("%8s | %22s | %22s | %22s\n", "eps", "raw", "repetition",
              "rewind");
  std::printf("%8s | %10s %11s | %10s %11s | %10s %11s\n", "", "success",
              "rounds", "success", "rounds", "success", "rounds");
  for (const double eps : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const CellResult a = RunCell(raw, n, eps, trials, seed);
    const CellResult b = RunCell(repetition, n, eps, trials, seed + 1);
    const CellResult c = RunCell(rewind, n, eps, trials, seed + 2);
    std::printf("%8.2f | %9.0f%% %11.0f | %9.0f%% %11.0f | %9.0f%% %11.0f\n",
                eps, 100 * a.success_rate, a.avg_rounds,
                100 * b.success_rate, b.avg_rounds, 100 * c.success_rate,
                c.avg_rounds);
  }
  std::printf(
      "\nraw breaks as soon as eps > 0; both coded deployments hold, at a\n"
      "round cost that grows like log n (Theorem 1.2), not like T.\n");
  return 0;
}
