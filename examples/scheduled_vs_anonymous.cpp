// Why does noise-resilient beeping cost Theta(log n)?  Because of
// ANONYMITY, not noise per se.
//
// The same task -- BitExchange, every party broadcasts 8 bits in rounds
// it owns -- is simulated over the same two-sided noisy channel in two
// ways:
//
//   anonymous: the simulator is told nothing about who beeps when, so it
//              must run Algorithm 1's owner-finding to make someone
//              responsible for every 1 (the general Theorem 1.2 scheme);
//
//   scheduled: the simulator is handed the round-ownership schedule (as a
//              broadcast-channel protocol would come with), so owners are
//              free and every transcript bit is verifiable by its owner
//              alone -- the [EKS18] regime.
//
// The anonymous column grows like log n; the scheduled column is flat.
// The gap IS the paper's lower bound, localized to one missing piece of
// metadata.
//
// Usage: scheduled_vs_anonymous [epsilon] [seed]
#include <cstdio>
#include <cstdlib>

#include "channel/correlated.h"
#include "coding/rewind_sim.h"
#include "tasks/bit_exchange.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

double MeasureBlowup(const Simulator& sim, const Channel& channel, int n,
                     Rng& rng) {
  RunningStat blowup;
  for (int t = 0; t < 6; ++t) {
    const BitExchangeInstance instance = SampleBitExchange(n, 8, rng);
    const auto protocol = MakeBitExchangeProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    if (result.budget_exhausted() ||
        !BitExchangeAllCorrect(instance, result.outputs)) {
      return -1.0;
    }
    blowup.Add(static_cast<double>(result.noisy_rounds_used) /
               protocol->length());
  }
  return blowup.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  Rng rng(seed);
  const CorrelatedNoisyChannel channel(eps);

  std::printf(
      "BitExchange (8 bits/party) over two-sided eps=%.2f noise\n\n", eps);
  std::printf("%6s %6s | %12s | %12s | %8s\n", "n", "log2n", "anonymous",
              "scheduled", "gap");
  for (const int n : {8, 16, 32, 64, 128}) {
    const RewindSimulator anonymous;
    const RewindSimulator scheduled(
        RewindSimOptions::Scheduled(BitExchangeSchedule(n, 8)));
    const double a = MeasureBlowup(anonymous, channel, n, rng);
    const double s = MeasureBlowup(scheduled, channel, n, rng);
    std::printf("%6d %6d | %11.1fx | %11.1fx | %7.1fx\n", n,
                CeilLog2(static_cast<std::uint64_t>(n)), a, s, a / s);
  }
  std::printf(
      "\nSame task, same noise, same engine.  The only difference is whether\n"
      "the simulator KNOWS who owns each round.  Anonymity costs log n\n"
      "(Theorem 1.1); a schedule makes resilience almost free (cf. EKS18).\n");
  return 0;
}
