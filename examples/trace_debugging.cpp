// Deterministic replay: the debugging workflow for noisy executions.
//
// A simulation run over a stochastic channel is hard to debug -- the
// interesting failure evaporates when you re-run.  noisybeeps solves this
// with channel decorators: RecordingChannel captures every delivered bit;
// ReplayChannel plays the capture back verbatim, so the same execution
// can be stepped through as many times as needed, across code changes,
// with any RNG.
//
// This demo simulates InputSet over a noisy channel while recording,
// prints the noise statistics of the captured trace, then replays it
// twice and checks all three executions agree bit for bit.
//
// Usage: trace_debugging [n] [epsilon] [seed]
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "channel/correlated.h"
#include "channel/trace.h"
#include "coding/rewind_sim.h"
#include "tasks/input_set.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace noisybeeps;
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.1;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;

  Rng rng(seed);
  const InputSetInstance instance = SampleInputSet(n, rng);
  const auto protocol = MakeInputSetProtocol(instance);

  // 1. Record a full rewind-scheme run.
  const CorrelatedNoisyChannel noisy(eps);
  const RecordingChannel recorder(noisy);
  const RewindSimulator sim;
  Rng run_rng(seed + 1);
  const SimulationResult original = sim.Simulate(*protocol, recorder, run_rng);

  const Trace& trace = recorder.trace();
  std::cout << "recorded " << trace.size() << " noisy rounds; noise touched "
            << CountNoisyRounds(trace) << " of them ("
            << 100.0 * CountNoisyRounds(trace) / trace.size() << "%)\n";
  std::cout << "simulation "
            << (original.AllMatch(ReferenceTranscript(*protocol))
                    ? "succeeded"
                    : "FAILED")
            << " in " << original.noisy_rounds_used << " rounds\n";

  // 2. Replay twice with unrelated RNGs: identical executions.
  const ReplayChannel replay(trace, /*correlated=*/true);
  bool reproducible = true;
  for (int pass = 0; pass < 2; ++pass) {
    replay.Rewind();
    Rng fresh(977 + pass);
    const SimulationResult replayed = sim.Simulate(*protocol, replay, fresh);
    reproducible = reproducible &&
                   replayed.transcripts == original.transcripts &&
                   replayed.noisy_rounds_used == original.noisy_rounds_used;
  }
  std::cout << "replay x2: "
            << (reproducible ? "bit-identical" : "DIVERGED") << "\n";

  // 3. The first few trace rows, as they would land in a CSV artifact.
  std::ostringstream csv;
  WriteTraceCsv(Trace(trace.begin(), trace.begin() + 5), csv);
  std::cout << "\nfirst rows of the trace artifact:\n" << csv.str();

  return reproducible ? 0 : 1;
}
