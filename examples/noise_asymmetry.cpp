// The direction of the noise decides the price (Section 2 / A.1.2).
//
// The same rewind-if-error engine, two channels, two presets:
//   - 1 -> 0 noise (beeps get dropped):  a party whose beep vanished
//     detects it alone, so chunks need NO repetition and NO owner phase;
//     the blowup is a constant, independent of n.
//   - 0 -> 1 noise (phantom beeps):      nobody can refute a spurious 1
//     alone; rounds need Theta(log n) repetition plus the Algorithm 1
//     owner machinery, and the blowup grows with log n -- provably
//     unavoidably (Theorem 1.1).
//
// Usage: noise_asymmetry [epsilon] [seed]
#include <cstdio>
#include <cstdlib>

#include "channel/one_sided.h"
#include "coding/rewind_sim.h"
#include "tasks/bit_exchange.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

struct Cell {
  double overhead;
  double success;
};

Cell Measure(const Channel& channel, const RewindSimulator& sim, int n,
             Rng& rng) {
  SuccessCounter counter;
  RunningStat overhead;
  for (int t = 0; t < 8; ++t) {
    const BitExchangeInstance instance = SampleBitExchange(n, 8, rng);
    const auto protocol = MakeBitExchangeProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    counter.Record(!result.budget_exhausted() &&
                   BitExchangeAllCorrect(instance, result.outputs));
    overhead.Add(static_cast<double>(result.noisy_rounds_used) /
                 protocol->length());
  }
  return Cell{overhead.mean(), counter.rate()};
}

}  // namespace

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.10;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;
  Rng rng(seed);

  const OneSidedDownChannel down(eps);
  const OneSidedUpChannel up(eps);
  const RewindSimulator down_sim(RewindSimOptions::DownOnly());
  const RewindSimulator up_sim;  // two-sided preset handles 0->1 flips

  std::printf("BitExchange (8 bits/party), eps = %.2f, blowup vs n\n\n", eps);
  std::printf("%6s %6s | %17s | %17s | %12s\n", "n", "log2n",
              "1->0 noise (down)", "0->1 noise (up)", "up/down");
  std::printf("%6s %6s | %8s %8s | %8s %8s |\n", "", "", "blowup", "succ",
              "blowup", "succ");
  for (const int n : {8, 16, 32, 64, 128}) {
    const Cell d = Measure(down, down_sim, n, rng);
    const Cell u = Measure(up, up_sim, n, rng);
    std::printf("%6d %6d | %8.1f %7.0f%% | %8.1f %7.0f%% | %12.2f\n", n,
                CeilLog2(static_cast<std::uint64_t>(n)), d.overhead,
                100 * d.success, u.overhead, 100 * u.success,
                u.overhead / d.overhead);
  }
  std::printf(
      "\nThe down column is flat; the up column tracks log n.  Dropping a\n"
      "beep is detectable by its beeper; inventing one is everyone's "
      "problem.\n");
  return 0;
}
