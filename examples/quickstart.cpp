// Quickstart: the paper's story in sixty lines.
//
//   1. Build a noiseless beeping protocol (InputSet_n: party i beeps in
//      round x^i; the transcript IS the answer).
//   2. Run it over a noisy beeping channel -- watch it break.
//   3. Wrap it in the paper's O(log n) interactive-coding scheme -- watch
//      it recover, and see what the resilience costs in rounds.
//
// Usage: quickstart [n] [epsilon] [seed]
#include <cstdlib>
#include <iostream>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace noisybeeps;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.1;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  Rng rng(seed);

  // 1. The task and its trivial noiseless protocol.
  const InputSetInstance instance = SampleInputSet(n, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const BitString reference = ReferenceTranscript(*protocol);
  std::cout << "InputSet_" << n << ": " << protocol->length()
            << " noiseless rounds\n";
  std::cout << "  true transcript  " << reference.ToString() << "\n";

  // 2. The same protocol over an eps-noisy channel, unprotected.
  const CorrelatedNoisyChannel noisy(eps);
  const ExecutionResult raw = Execute(*protocol, noisy, rng);
  std::cout << "  raw noisy run    " << raw.shared().ToString() << "   ("
            << raw.shared().HammingDistance(reference)
            << " corrupted rounds, output "
            << (InputSetAllCorrect(instance, raw.outputs) ? "correct"
                                                          : "WRONG")
            << ")\n";

  // 3. The paper's rewind-if-error simulation (Theorem 1.2).
  const RewindSimulator sim;
  const SimulationResult coded = sim.Simulate(*protocol, noisy, rng);
  const bool ok = coded.AllMatch(reference) &&
                  InputSetAllCorrect(instance, coded.outputs);
  std::cout << "  coded simulation " << coded.transcripts[0].ToString()
            << "   (" << (ok ? "correct" : "WRONG") << ", "
            << coded.noisy_rounds_used << " noisy rounds = "
            << static_cast<double>(coded.noisy_rounds_used) /
                   protocol->length()
            << "x blowup)\n";

  return ok ? 0 : 1;
}
