#include "channel/collision.h"

#include <gtest/gtest.h>

#include "channel/noiseless.h"
#include "protocol/executor.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(CollisionChannel, ValidatesParameters) {
  EXPECT_THROW(CollisionAsSilenceChannel(0.5), std::invalid_argument);
  EXPECT_NO_THROW(CollisionAsSilenceChannel(0.0));
}

TEST(CollisionChannel, LoneTransmitterHeardCollisionSilenced) {
  const CollisionAsSilenceChannel channel(0.0);
  Rng rng(1);
  std::vector<std::uint8_t> received(3, 0);
  channel.Deliver(0, received, rng);
  EXPECT_EQ(received[0], 0);
  channel.Deliver(1, received, rng);
  EXPECT_EQ(received[0], 1);
  channel.Deliver(2, received, rng);  // collision -> silence
  EXPECT_EQ(received[0], 0);
  channel.Deliver(7, received, rng);
  EXPECT_EQ(received[0], 0);
}

TEST(CollisionChannel, NoiseFlipsAtRate) {
  const CollisionAsSilenceChannel channel(0.2);
  Rng rng(2);
  std::vector<std::uint8_t> received(1, 0);
  int heard = 0;
  constexpr int kTrials = 60000;
  for (int t = 0; t < kTrials; ++t) {
    channel.Deliver(2, received, rng);  // clean value 0
    heard += received[0];
  }
  EXPECT_NEAR(static_cast<double>(heard) / kTrials, 0.2, 0.01);
}

TEST(CollisionChannel, ScheduledProtocolsAgreeWithBeepingModel) {
  // BitExchange never has two simultaneous beepers, so its executions on
  // the (noiseless) beeping and collision channels are identical.
  Rng rng(3);
  const BitExchangeInstance instance = SampleBitExchange(6, 7, rng);
  const auto protocol = MakeBitExchangeProtocol(instance);
  const NoiselessChannel beeping;
  const CollisionAsSilenceChannel collision(0.0);
  Rng r1(5);
  Rng r2(5);
  const ExecutionResult a = Execute(*protocol, beeping, r1);
  const ExecutionResult b = Execute(*protocol, collision, r2);
  EXPECT_EQ(a.transcripts, b.transcripts);
  EXPECT_TRUE(BitExchangeAllCorrect(instance, b.outputs));
}

TEST(CollisionChannel, SimultaneousBeepsBreakOrProtocols) {
  // InputSet with duplicate inputs relies on the OR: the duplicates'
  // shared round collides into silence, and the duplicated element
  // vanishes from every party's output.
  InputSetInstance instance;
  instance.inputs = {2, 2, 5};  // parties 0 and 1 collide in round 2
  const auto protocol = MakeInputSetProtocol(instance);
  Rng rng(4);
  const CollisionAsSilenceChannel collision(0.0);
  const ExecutionResult run = Execute(*protocol, collision, rng);
  EXPECT_FALSE(run.shared()[2]);  // the collision round reads silent
  EXPECT_TRUE(run.shared()[5]);   // the lone beeper still gets through
  EXPECT_FALSE(InputSetAllCorrect(instance, run.outputs));
}

TEST(CollisionChannel, UniqueInputsStillWork) {
  // With all-distinct inputs every beeping round has one transmitter and
  // the task survives on the collision channel.
  InputSetInstance instance;
  instance.inputs = {0, 3, 5};
  const auto protocol = MakeInputSetProtocol(instance);
  Rng rng(5);
  const CollisionAsSilenceChannel collision(0.0);
  const ExecutionResult run = Execute(*protocol, collision, rng);
  EXPECT_TRUE(InputSetAllCorrect(instance, run.outputs));
}

}  // namespace
}  // namespace noisybeeps
