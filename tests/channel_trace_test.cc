#include "channel/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(RecordingChannel, CapturesEveryRound) {
  Rng rng(1);
  const CorrelatedNoisyChannel inner(0.2);
  const RecordingChannel channel(inner);
  EXPECT_TRUE(channel.is_correlated());
  const InputSetInstance instance = SampleInputSet(5, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  (void)Execute(*protocol, channel, rng);
  EXPECT_EQ(channel.trace().size(), 10u);
  for (const TraceRound& round : channel.trace()) {
    EXPECT_EQ(round.delivered.size(), 5u);
  }
}

TEST(RecordingChannel, NoisyRoundCountMatchesHammingDamage) {
  Rng rng(2);
  const CorrelatedNoisyChannel inner(0.25);
  const RecordingChannel channel(inner);
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const ExecutionResult run = Execute(*protocol, channel, rng);
  const BitString reference = ReferenceTranscript(*protocol);
  EXPECT_EQ(CountNoisyRounds(channel.trace()),
            run.shared().HammingDistance(reference));
}

TEST(RecordingChannel, ClearTraceResets) {
  Rng rng(3);
  const NoiselessChannel inner;
  const RecordingChannel channel(inner);
  std::vector<std::uint8_t> received(2, 0);
  channel.Deliver(true, received, rng);
  EXPECT_EQ(channel.trace().size(), 1u);
  channel.ClearTrace();
  EXPECT_TRUE(channel.trace().empty());
}

TEST(ReplayChannel, ReproducesARecordedExecutionExactly) {
  Rng rng(4);
  const CorrelatedNoisyChannel inner(0.3);
  const RecordingChannel recorder(inner);
  const InputSetInstance instance = SampleInputSet(6, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const ExecutionResult original = Execute(*protocol, recorder, rng);

  // Replay with a completely different rng: identical transcripts.
  Rng other_rng(999);
  const ReplayChannel replay(recorder.trace(), recorder.is_correlated());
  const ExecutionResult replayed = Execute(*protocol, replay, other_rng);
  EXPECT_EQ(replayed.transcripts, original.transcripts);
  EXPECT_EQ(replayed.outputs, original.outputs);
}

TEST(ReplayChannel, RewindAllowsASecondPass) {
  Rng rng(5);
  const CorrelatedNoisyChannel inner(0.2);
  const RecordingChannel recorder(inner);
  const InputSetInstance instance = SampleInputSet(4, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  (void)Execute(*protocol, recorder, rng);

  const ReplayChannel replay(recorder.trace(), true);
  Rng dummy(0);
  const ExecutionResult first = Execute(*protocol, replay, dummy);
  EXPECT_EQ(replay.rounds_remaining(), 0u);
  replay.Rewind();
  const ExecutionResult second = Execute(*protocol, replay, dummy);
  EXPECT_EQ(first.transcripts, second.transcripts);
}

TEST(ReplayChannel, ExhaustionFailsLoudly) {
  Trace trace(3);
  for (auto& round : trace) round.delivered = {0, 0};
  const ReplayChannel replay(std::move(trace), true);
  Rng rng(6);
  std::vector<std::uint8_t> received(2, 0);
  for (int r = 0; r < 3; ++r) replay.Deliver(false, received, rng);
  // Past the trace end the replay MUST refuse (NB_REQUIRE), not read
  // stale or out-of-bounds rounds.
  EXPECT_THROW(replay.Deliver(false, received, rng), std::invalid_argument);
}

TEST(ReplayChannel, ExhaustedChannelStaysUsableAfterRewind) {
  Trace trace(2);
  for (auto& round : trace) round.delivered = {1};
  const ReplayChannel replay(std::move(trace), true);
  Rng rng(6);
  std::vector<std::uint8_t> received(1, 0);
  replay.Deliver(true, received, rng);
  replay.Deliver(true, received, rng);
  EXPECT_THROW(replay.Deliver(true, received, rng), std::invalid_argument);
  replay.Rewind();
  replay.Deliver(true, received, rng);  // no throw after rewind
  EXPECT_EQ(replay.rounds_remaining(), 1u);
}

TEST(ReplayChannel, PartyCountMismatchThrows) {
  Trace trace(1);
  trace[0].delivered = {1, 0, 1};
  const ReplayChannel replay(std::move(trace), false);
  Rng rng(7);
  std::vector<std::uint8_t> received(2, 0);
  EXPECT_THROW(replay.Deliver(false, received, rng), std::invalid_argument);
}

TEST(ReplayChannel, RaggedTraceRejectedAtConstruction) {
  Trace trace(2);
  trace[0].delivered = {1, 0};
  trace[1].delivered = {1, 0, 1};  // width changes mid-trace
  EXPECT_THROW(ReplayChannel(std::move(trace), false),
               std::invalid_argument);
}

TEST(ReplayChannel, EmptyRoundRejectedAtConstruction) {
  Trace trace(1);  // delivered left empty: a zero-party round is nonsense
  EXPECT_THROW(ReplayChannel(std::move(trace), false),
               std::invalid_argument);
}

TEST(Trace, CsvFormat) {
  Trace trace(2);
  trace[0].or_bit = true;
  trace[0].delivered = {1, 1};
  trace[1].or_bit = false;
  trace[1].delivered = {0, 1};
  std::ostringstream os;
  WriteTraceCsv(trace, os);
  EXPECT_EQ(os.str(), "round,or_bit,delivered\n0,1,11\n1,0,01\n");
}

TEST(Trace, CsvRoundTrips) {
  Trace trace(3);
  trace[0].or_bit = true;
  trace[0].delivered = {1, 0, 1};
  trace[1].or_bit = false;
  trace[1].delivered = {0, 0, 0};
  trace[2].or_bit = true;
  trace[2].delivered = {1, 1, 1};
  std::ostringstream os;
  WriteTraceCsv(trace, os);
  std::istringstream is(os.str());
  const Trace read = ReadTraceCsv(is);
  ASSERT_EQ(read.size(), trace.size());
  for (std::size_t r = 0; r < trace.size(); ++r) {
    EXPECT_EQ(read[r].or_bit, trace[r].or_bit);
    EXPECT_EQ(read[r].delivered, trace[r].delivered);
  }
}

// Table-driven malformed-input coverage: every rejected shape, each with
// the reason it must not parse.
TEST(Trace, CsvRejectsMalformedInput) {
  const struct {
    const char* label;
    const char* csv;
  } kCases[] = {
      {"empty input", ""},
      {"wrong header", "round,or,delivered\n"},
      {"missing cells", "round,or_bit,delivered\n0,1\n"},
      {"rows out of order", "round,or_bit,delivered\n1,1,01\n"},
      {"duplicate round index",
       "round,or_bit,delivered\n0,1,01\n0,0,01\n"},
      {"non-numeric round index", "round,or_bit,delivered\nx,1,01\n"},
      {"negative round index", "round,or_bit,delivered\n-1,1,01\n"},
      {"overflowing round index",
       "round,or_bit,delivered\n99999999999999999999,1,01\n"},
      {"bad or_bit", "round,or_bit,delivered\n0,2,01\n"},
      {"non-binary delivered cell", "round,or_bit,delivered\n0,1,0x\n"},
      {"empty delivered column", "round,or_bit,delivered\n0,1,\n"},
      {"ragged delivered widths",
       "round,or_bit,delivered\n0,1,01\n1,0,011\n"},
      {"extra cells", "round,or_bit,delivered\n0,1,01,zzz\n"},
  };
  for (const auto& c : kCases) {
    std::istringstream is(c.csv);
    EXPECT_THROW((void)ReadTraceCsv(is), std::invalid_argument) << c.label;
  }
}

TEST(ReplayChannel, SimulatorRunIsReproducibleFromItsTrace) {
  // Record an entire rewind-scheme run (all phases), then replay: the
  // committed transcripts come out identical -- the debugging workflow.
  Rng rng(8);
  const CorrelatedNoisyChannel inner(0.1);
  const RecordingChannel recorder(inner);
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const RewindSimulator sim;
  Rng sim_rng(42);
  const SimulationResult original = sim.Simulate(*protocol, recorder, sim_rng);

  const ReplayChannel replay(recorder.trace(), true);
  Rng fresh(7777);
  const SimulationResult replayed = sim.Simulate(*protocol, replay, fresh);
  EXPECT_EQ(replayed.transcripts, original.transcripts);
  EXPECT_EQ(replayed.noisy_rounds_used, original.noisy_rounds_used);
}

}  // namespace
}  // namespace noisybeeps
