#include <gtest/gtest.h>

#include <stdexcept>

#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "util/rng.h"
#include "util/stats.h"

namespace noisybeeps {
namespace {

// Empirical flip rate of `channel` for input bit `or_bit` over `trials`
// rounds (rate at which the delivered bit differs from the input).
double FlipRate(const Channel& channel, bool or_bit, int trials, Rng& rng) {
  std::vector<std::uint8_t> received(4, 0);
  int flips = 0;
  for (int t = 0; t < trials; ++t) {
    channel.Deliver(or_bit, received, rng);
    flips += (received[0] != 0) != or_bit;
  }
  return static_cast<double>(flips) / trials;
}

TEST(NoiselessChannel, DeliversOrExactly) {
  NoiselessChannel channel;
  Rng rng(1);
  EXPECT_TRUE(channel.is_correlated());
  EXPECT_DOUBLE_EQ(FlipRate(channel, false, 1000, rng), 0.0);
  EXPECT_DOUBLE_EQ(FlipRate(channel, true, 1000, rng), 0.0);
}

TEST(CorrelatedChannel, RejectsBadEpsilon) {
  EXPECT_THROW(CorrelatedNoisyChannel(-0.1), std::invalid_argument);
  EXPECT_THROW(CorrelatedNoisyChannel(0.5), std::invalid_argument);
  EXPECT_NO_THROW(CorrelatedNoisyChannel(0.0));
}

TEST(CorrelatedChannel, FlipRateMatchesEpsilonBothDirections) {
  const double eps = 0.2;
  CorrelatedNoisyChannel channel(eps);
  Rng rng(2);
  EXPECT_NEAR(FlipRate(channel, false, 60000, rng), eps, 0.01);
  EXPECT_NEAR(FlipRate(channel, true, 60000, rng), eps, 0.01);
}

TEST(CorrelatedChannel, AllPartiesReceiveTheSameBit) {
  CorrelatedNoisyChannel channel(0.3);
  Rng rng(3);
  std::vector<std::uint8_t> received(16, 0);
  for (int t = 0; t < 2000; ++t) {
    channel.Deliver(t % 2 == 0, received, rng);
    for (std::uint8_t b : received) EXPECT_EQ(b, received[0]);
  }
}

TEST(OneSidedUpChannel, NeverFlipsOnes) {
  OneSidedUpChannel channel(1.0 / 3.0);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(FlipRate(channel, true, 20000, rng), 0.0);
}

TEST(OneSidedUpChannel, FlipsZerosAtRate) {
  const double eps = 1.0 / 3.0;
  OneSidedUpChannel channel(eps);
  Rng rng(5);
  EXPECT_NEAR(FlipRate(channel, false, 60000, rng), eps, 0.01);
}

TEST(OneSidedDownChannel, NeverFlipsZeros) {
  OneSidedDownChannel channel(0.25);
  Rng rng(6);
  EXPECT_DOUBLE_EQ(FlipRate(channel, false, 20000, rng), 0.0);
}

TEST(OneSidedDownChannel, FlipsOnesAtRate) {
  OneSidedDownChannel channel(0.25);
  Rng rng(7);
  EXPECT_NEAR(FlipRate(channel, true, 60000, rng), 0.25, 0.01);
}

TEST(IndependentChannel, IsNotCorrelated) {
  IndependentNoisyChannel channel(0.2);
  EXPECT_FALSE(channel.is_correlated());
}

TEST(IndependentChannel, PartiesReceiveIndependentCopies) {
  IndependentNoisyChannel channel(0.3);
  Rng rng(8);
  std::vector<std::uint8_t> received(2, 0);
  int disagreements = 0;
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    channel.Deliver(false, received, rng);
    disagreements += received[0] != received[1];
  }
  // Two independent eps-noisy copies disagree with prob 2*eps*(1-eps).
  EXPECT_NEAR(static_cast<double>(disagreements) / kTrials,
              2 * 0.3 * 0.7, 0.015);
}

TEST(IndependentChannel, PerPartyFlipRateMatchesEpsilon) {
  IndependentNoisyChannel channel(0.15);
  Rng rng(9);
  std::vector<std::uint8_t> received(8, 0);
  std::vector<int> flips(8, 0);
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    channel.Deliver(true, received, rng);
    for (int i = 0; i < 8; ++i) flips[i] += received[i] == 0;
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(static_cast<double>(flips[i]) / kTrials, 0.15, 0.01) << i;
  }
}

TEST(SharedRandomnessAdapter, PaperInstanceEmulatesQuarterNoise) {
  // A.1.2: one-sided-up 1/3 + shared 1/4 down-flip == two-sided 1/4 noise.
  const auto channel = SharedRandomnessOneSidedAdapter::PaperInstance();
  EXPECT_TRUE(channel.is_correlated());
  EXPECT_NEAR(channel.EffectiveUpRate(), 0.25, 1e-12);
  EXPECT_NEAR(channel.EffectiveDownRate(), 0.25, 1e-12);
  Rng rng(10);
  EXPECT_NEAR(FlipRate(channel, false, 80000, rng), 0.25, 0.01);
  EXPECT_NEAR(FlipRate(channel, true, 80000, rng), 0.25, 0.01);
}

TEST(SharedRandomnessAdapter, BalancedRateFormula) {
  // flip = eps/(1+eps) equalizes the two directions.
  const double up = 0.2;
  const double flip = up / (1.0 + up);
  const SharedRandomnessOneSidedAdapter channel(up, flip);
  EXPECT_NEAR(channel.EffectiveUpRate(), channel.EffectiveDownRate(), 1e-12);
}

TEST(SharedRandomnessAdapter, StaysCorrelated) {
  const auto channel = SharedRandomnessOneSidedAdapter::PaperInstance();
  Rng rng(11);
  std::vector<std::uint8_t> received(8, 0);
  for (int t = 0; t < 2000; ++t) {
    channel.Deliver(t % 2 == 0, received, rng);
    for (std::uint8_t b : received) EXPECT_EQ(b, received[0]);
  }
}

TEST(ChannelBase, DeliverSharedRequiresCorrelation) {
  IndependentNoisyChannel channel(0.1);
  Rng rng(12);
  EXPECT_THROW((void)channel.DeliverShared(true, rng), std::invalid_argument);
  CorrelatedNoisyChannel ok(0.1);
  EXPECT_NO_THROW((void)ok.DeliverShared(true, rng));
}

}  // namespace
}  // namespace noisybeeps
