#include "tasks/or_vector.h"

#include <gtest/gtest.h>

#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(OrVector, SampleShapes) {
  Rng rng(1);
  const OrVectorInstance instance = SampleOrVector(5, 20, 0.2, rng);
  EXPECT_EQ(instance.num_parties(), 5);
  EXPECT_EQ(instance.width(), 20);
}

TEST(OrVector, ExpectedOutputIsColumnwiseOr) {
  OrVectorInstance instance;
  instance.rows = {BitString::FromString("1010"),
                   BitString::FromString("0110")};
  const PartyOutput out = OrVectorExpectedOutput(instance);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0b0111u);  // columns 0,1,2 set (bit m = column m)
}

TEST(OrVector, TrivialProtocolTranscriptIsTheAnswer) {
  OrVectorInstance instance;
  instance.rows = {BitString::FromString("10010"),
                   BitString::FromString("00011"),
                   BitString::FromString("00000")};
  const auto protocol = MakeOrVectorProtocol(instance);
  EXPECT_EQ(protocol->length(), 5);
  EXPECT_EQ(ReferenceTranscript(*protocol).ToString(), "10011");
}

TEST(OrVector, NoiselessExecutionCorrectAcrossDensities) {
  Rng rng(2);
  const NoiselessChannel channel;
  for (double density : {0.0, 0.05, 0.3, 1.0}) {
    const OrVectorInstance instance = SampleOrVector(7, 30, density, rng);
    const auto protocol = MakeOrVectorProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    EXPECT_TRUE(OrVectorAllCorrect(instance, result.outputs)) << density;
  }
}

TEST(OrVector, GeneralizesInputSet) {
  // InputSet is OrVector with one-hot rows over width 2n: the transcripts
  // coincide.
  Rng rng(3);
  const InputSetInstance is = SampleInputSet(6, rng);
  OrVectorInstance ov;
  ov.rows.assign(6, BitString(12));
  for (int i = 0; i < 6; ++i) ov.rows[i].Set(is.inputs[i], true);
  const auto p_is = MakeInputSetProtocol(is);
  const auto p_ov = MakeOrVectorProtocol(ov);
  EXPECT_EQ(ReferenceTranscript(*p_is), ReferenceTranscript(*p_ov));
}

TEST(OrVector, RewindSchemeSolvesItUnderLowerBoundChannel) {
  // The unrestricted Section 2.2 task over the lower-bound channel: the
  // upper bound applies to it just as to InputSet.
  Rng rng(4);
  const OneSidedUpChannel channel(0.1);
  const RewindSimulator sim;
  int correct = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const OrVectorInstance instance = SampleOrVector(10, 20, 0.1, rng);
    const auto protocol = MakeOrVectorProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += OrVectorAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(OrVector, ValidatesParameters) {
  Rng rng(5);
  EXPECT_THROW((void)SampleOrVector(0, 4, 0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)SampleOrVector(2, 0, 0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)SampleOrVector(2, 4, -0.1, rng), std::invalid_argument);
  OrVectorInstance ragged;
  ragged.rows = {BitString::FromString("10"), BitString::FromString("1")};
  EXPECT_THROW((void)MakeOrVectorProtocol(ragged), std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
