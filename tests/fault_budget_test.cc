// Graceful degradation under round-budget exhaustion: a simulator that
// runs out of budget must stop with whatever chunks it committed, and
// those committed transcripts must be (a) identical across parties under a
// correlated channel and (b) a prefix of the true noiseless transcript
// when the channel never lied.  The verdict reports the truncation as
// kDegraded, never as silent success.
#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "coding/hierarchical_sim.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

template <typename Sim>
void ExpectConsistentPrefixOnExhaustion(const Sim& sim,
                                        const Channel& channel,
                                        bool check_reference_prefix) {
  Rng setup(21);
  const InputSetInstance instance = SampleInputSet(8, setup);
  const auto protocol = MakeInputSetProtocol(instance);
  const BitString reference = ReferenceTranscript(*protocol);

  Rng rng(4);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  ASSERT_TRUE(result.budget_exhausted());
  EXPECT_EQ(result.verdict.status, SimulationStatus::kDegraded);
  // All parties committed the SAME truncated transcript...
  for (const BitString& t : result.transcripts) {
    EXPECT_EQ(t, result.transcripts.front());
  }
  EXPECT_EQ(result.verdict.majority_size,
            static_cast<int>(result.transcripts.size()));
  EXPECT_LT(result.transcripts.front().size(), reference.size());
  // ...and over a truthful channel it is a prefix of the real one.
  if (check_reference_prefix) {
    EXPECT_TRUE(reference.StartsWith(result.transcripts.front()));
  }
}

TEST(BudgetExhaustion, RewindCommitsAConsistentPrefixNoiseless) {
  RewindSimOptions options;
  options.max_rounds = 60;  // far below any full run
  ExpectConsistentPrefixOnExhaustion(RewindSimulator(options),
                                     NoiselessChannel(),
                                     /*check_reference_prefix=*/true);
}

TEST(BudgetExhaustion, RewindStaysConsistentUnderCorrelatedNoise) {
  RewindSimOptions options;
  options.max_rounds = 60;
  ExpectConsistentPrefixOnExhaustion(RewindSimulator(options),
                                     CorrelatedNoisyChannel(0.1),
                                     /*check_reference_prefix=*/false);
}

TEST(BudgetExhaustion, HierarchicalCommitsAConsistentPrefixNoiseless) {
  HierarchicalSimOptions options;
  options.base.max_rounds = 60;
  ExpectConsistentPrefixOnExhaustion(HierarchicalSimulator(options),
                                     NoiselessChannel(),
                                     /*check_reference_prefix=*/true);
}

TEST(BudgetExhaustion, HierarchicalStaysConsistentUnderCorrelatedNoise) {
  HierarchicalSimOptions options;
  options.base.max_rounds = 60;
  ExpectConsistentPrefixOnExhaustion(HierarchicalSimulator(options),
                                     CorrelatedNoisyChannel(0.1),
                                     /*check_reference_prefix=*/false);
}

}  // namespace
}  // namespace noisybeeps
