#include "channel/adversary.h"

#include <gtest/gtest.h>

#include "channel/one_sided.h"
#include "tasks/input_set.h"
#include "coding/rewind_sim.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

double FlipRate(const Channel& channel, bool or_bit, int trials, Rng& rng) {
  std::vector<std::uint8_t> received(2, 0);
  int flips = 0;
  for (int t = 0; t < trials; ++t) {
    channel.Deliver(or_bit, received, rng);
    flips += (received[0] != 0) != or_bit;
  }
  return static_cast<double>(flips) / trials;
}

TEST(AdversaryChannel, ValidatesParameters) {
  EXPECT_THROW(
      AdversarialCorrectionChannel(0.5, CorrectionPolicy::kNever),
      std::invalid_argument);
  EXPECT_NO_THROW(
      AdversarialCorrectionChannel(0.0, CorrectionPolicy::kCorrectAll));
}

TEST(AdversaryChannel, NeverPolicyIsPlainTwoSidedNoise) {
  const AdversarialCorrectionChannel channel(0.2, CorrectionPolicy::kNever);
  Rng rng(1);
  EXPECT_NEAR(FlipRate(channel, false, 60000, rng), 0.2, 0.01);
  EXPECT_NEAR(FlipRate(channel, true, 60000, rng), 0.2, 0.01);
}

TEST(AdversaryChannel, CorrectDropsEqualsOneSidedUp) {
  // The A.1.2 claim: an adversary reverting every 1->0 flip turns the
  // two-sided channel into the one-sided-up channel, distributionally.
  const AdversarialCorrectionChannel channel(0.25,
                                             CorrectionPolicy::kCorrectDrops);
  Rng rng(2);
  EXPECT_DOUBLE_EQ(FlipRate(channel, true, 40000, rng), 0.0);
  EXPECT_NEAR(FlipRate(channel, false, 60000, rng), 0.25, 0.01);
}

TEST(AdversaryChannel, CorrectSpuriousEqualsOneSidedDown) {
  const AdversarialCorrectionChannel channel(
      0.25, CorrectionPolicy::kCorrectSpurious);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(FlipRate(channel, false, 40000, rng), 0.0);
  EXPECT_NEAR(FlipRate(channel, true, 60000, rng), 0.25, 0.01);
}

TEST(AdversaryChannel, CorrectAllIsNoiseless) {
  const AdversarialCorrectionChannel channel(0.4,
                                             CorrectionPolicy::kCorrectAll);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(FlipRate(channel, false, 20000, rng), 0.0);
  EXPECT_DOUBLE_EQ(FlipRate(channel, true, 20000, rng), 0.0);
}

TEST(AdversaryChannel, DropCorrectingAdversaryMakesDownPresetUnsound) {
  // Against kCorrectDrops the channel is effectively one-sided-UP, so the
  // constant-overhead down-preset (which trusts received 1s) must fail --
  // the concrete content of "the adversary prohibits relying on the noise
  // being exactly what it is".
  const AdversarialCorrectionChannel channel(0.25,
                                             CorrectionPolicy::kCorrectDrops);
  Rng rng(5);
  const RewindSimulator down(RewindSimOptions::DownOnly());
  int correct = 0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = down.Simulate(*protocol, channel, rng);
    correct += !result.budget_exhausted() &&
               result.AllMatch(ReferenceTranscript(*protocol));
  }
  EXPECT_LE(correct, kTrials / 3);

  // ...while the two-sided preset (which defends against 0->1) survives.
  RewindSimOptions options;
  options.rep_c = 6;
  options.flag_reps = 30;
  options.code_length_factor = 8;
  const RewindSimulator two_sided(options);
  correct = 0;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result =
        two_sided.Simulate(*protocol, channel, rng);
    correct += !result.budget_exhausted() &&
               result.AllMatch(ReferenceTranscript(*protocol));
  }
  EXPECT_GE(correct, kTrials - 1);
}

}  // namespace
}  // namespace noisybeeps
