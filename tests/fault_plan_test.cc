#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace noisybeeps {
namespace {

TEST(FaultPlan, DefaultIsEmpty) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed(), 0u);
  EXPECT_EQ(plan.MaxParty(), -1);
  EXPECT_EQ(plan.NumFaultyParties(), 0);
  EXPECT_EQ(plan.ToString(), "");
}

TEST(FaultPlan, BuilderChainsAndRecordsSpecs) {
  FaultPlan plan(7);
  plan.CrashStop(3, 100)
      .Sleepy(1, 10, 20)
      .StuckBeeper(0, 0, 5)
      .Babbler(2, 0, 50, 0.7)
      .DeafReceiver(4, 30, 40);
  ASSERT_EQ(plan.specs().size(), 5u);
  EXPECT_EQ(plan.seed(), 7u);
  EXPECT_EQ(plan.MaxParty(), 4);
  EXPECT_EQ(plan.NumFaultyParties(), 5);

  const FaultSpec& crash = plan.specs()[0];
  EXPECT_EQ(crash.kind, FaultKind::kCrashStop);
  EXPECT_EQ(crash.party, 3);
  EXPECT_EQ(crash.first_round, 100);
  EXPECT_EQ(crash.last_round, FaultSpec::kNoLastRound);
  EXPECT_TRUE(crash.ActiveAt(100));
  EXPECT_TRUE(crash.ActiveAt(1'000'000'000));
  EXPECT_FALSE(crash.ActiveAt(99));

  const FaultSpec& babble = plan.specs()[3];
  EXPECT_EQ(babble.kind, FaultKind::kBabbler);
  EXPECT_DOUBLE_EQ(babble.beep_prob, 0.7);
  EXPECT_TRUE(babble.ActiveAt(50));
  EXPECT_FALSE(babble.ActiveAt(51));
}

TEST(FaultPlan, NumFaultyPartiesCountsDistinctParties) {
  FaultPlan plan;
  plan.Sleepy(1, 0, 5).DeafReceiver(1, 10, 20).StuckBeeper(2, 0, 3);
  EXPECT_EQ(plan.NumFaultyParties(), 2);
  EXPECT_EQ(plan.MaxParty(), 2);
}

TEST(FaultPlan, KindNamesRoundTrip) {
  for (FaultKind kind :
       {FaultKind::kCrashStop, FaultKind::kSleepy, FaultKind::kStuckBeeper,
        FaultKind::kBabbler, FaultKind::kDeafReceiver}) {
    EXPECT_EQ(ParseFaultKind(FaultKindName(kind)), kind);
  }
  EXPECT_THROW((void)ParseFaultKind("byzantine"), std::invalid_argument);
}

TEST(FaultPlan, BuilderRejectsBadWindows) {
  FaultPlan plan;
  EXPECT_THROW(plan.CrashStop(-1, 0), std::invalid_argument);
  EXPECT_THROW(plan.Sleepy(0, -1, 5), std::invalid_argument);
  EXPECT_THROW(plan.Sleepy(0, 10, 9), std::invalid_argument);
  EXPECT_THROW(plan.Babbler(0, 0, 5, 1.5), std::invalid_argument);
  EXPECT_THROW(plan.Babbler(0, 0, 5, -0.1), std::invalid_argument);
  EXPECT_TRUE(plan.empty());  // failed builder calls add nothing
}

TEST(FaultPlan, ParseToStringRoundTrips) {
  const char* kPlans[] = {
      "",
      "crash:3@100",
      "sleepy:1@10-20",
      "stuck:0@0-5",
      "babble:2@0-50:0.7",
      "deaf:4@30-40",
      "crash:3@100;sleepy:1@10-20;babble:2@0-50:0.7",
      "sleepy:1@10-*",  // open-ended window
  };
  for (const char* text : kPlans) {
    const FaultPlan plan = FaultPlan::Parse(text, 42);
    EXPECT_EQ(FaultPlan::Parse(plan.ToString(), 42), plan) << text;
  }
}

TEST(FaultPlan, ParseAcceptsGrammarVariants) {
  // Omitted last == forever.
  const FaultPlan open = FaultPlan::Parse("sleepy:1@10");
  EXPECT_EQ(open.specs()[0].last_round, FaultSpec::kNoLastRound);
  // '-*' is the same window spelled explicitly.
  EXPECT_EQ(FaultPlan::Parse("sleepy:1@10-*").specs()[0],
            open.specs()[0]);
  // Babbler defaults to beep_prob 0.5.
  EXPECT_DOUBLE_EQ(FaultPlan::Parse("babble:0@0-9").specs()[0].beep_prob,
                   0.5);
  // Empty specs between separators are skipped.
  EXPECT_EQ(FaultPlan::Parse("crash:0@1;;sleepy:1@2-3").specs().size(), 2u);
}

// Table-driven malformed-grammar coverage.
TEST(FaultPlan, ParseRejectsMalformedInput) {
  const struct {
    const char* label;
    const char* text;
  } kCases[] = {
      {"unknown kind", "byzantine:0@0"},
      {"missing party", "crash:@0"},
      {"missing window", "crash:0"},
      {"non-numeric party", "crash:x@0"},
      {"negative-looking party", "crash:-1@0"},
      {"non-numeric round", "sleepy:0@x-5"},
      {"overflowing round", "sleepy:0@99999999999999999999-*"},
      {"window ends before start", "sleepy:0@10-9"},
      {"crash with an end round", "crash:0@5-10"},
      {"prob on a non-babbler", "sleepy:0@0-5:0.5"},
      {"prob above one", "babble:0@0-5:1.5"},
      {"prob not a number", "babble:0@0-5:x"},
      {"at before colon", "crash@0:5"},
  };
  for (const auto& c : kCases) {
    EXPECT_THROW((void)FaultPlan::Parse(c.text), std::invalid_argument)
        << c.label;
  }
}

TEST(FaultPlan, CsvRoundTrips) {
  FaultPlan plan(9);
  plan.CrashStop(3, 100).Babbler(2, 0, 50, 0.25).Sleepy(1, 10, 20);
  std::ostringstream os;
  WriteFaultPlanCsv(plan, os);
  std::istringstream is(os.str());
  EXPECT_EQ(ReadFaultPlanCsv(is, 9), plan);
}

TEST(FaultPlan, CsvFormat) {
  FaultPlan plan;
  plan.CrashStop(1, 4).Babbler(0, 2, 8, 0.5);
  std::ostringstream os;
  WriteFaultPlanCsv(plan, os);
  EXPECT_EQ(os.str(),
            "kind,party,first_round,last_round,beep_prob\n"
            "crash,1,4,*,0\n"
            "babble,0,2,8,0.5\n");
}

TEST(FaultPlan, CsvRejectsMalformedInput) {
  const struct {
    const char* label;
    const char* csv;
  } kCases[] = {
      {"empty input", ""},
      {"wrong header", "kind,party,first,last,prob\n"},
      {"too few cells", "kind,party,first_round,last_round,beep_prob\n"
                        "crash,0,0,*\n"},
      {"too many cells", "kind,party,first_round,last_round,beep_prob\n"
                         "crash,0,0,*,0,extra\n"},
      {"unknown kind", "kind,party,first_round,last_round,beep_prob\n"
                       "lazy,0,0,*,0\n"},
      {"non-numeric party", "kind,party,first_round,last_round,beep_prob\n"
                            "crash,x,0,*,0\n"},
      {"crash with finite end", "kind,party,first_round,last_round,beep_prob\n"
                                "crash,0,0,9,0\n"},
      {"bad probability", "kind,party,first_round,last_round,beep_prob\n"
                          "babble,0,0,9,2.0\n"},
      {"window ends before start",
       "kind,party,first_round,last_round,beep_prob\n"
       "sleepy,0,10,9,0\n"},
  };
  for (const auto& c : kCases) {
    std::istringstream is(c.csv);
    EXPECT_THROW((void)ReadFaultPlanCsv(is), std::invalid_argument)
        << c.label;
  }
}

}  // namespace
}  // namespace noisybeeps
