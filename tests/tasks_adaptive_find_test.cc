#include "tasks/adaptive_find.h"

#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "protocol/executor.h"
#include "util/math.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(AdaptiveFind, AnswerIsHighestSetBit) {
  AdaptiveFindInstance instance;
  instance.bits = {1, 0, 1, 0, 0};
  EXPECT_EQ(AdaptiveFindAnswer(instance), 2u);
  instance.bits = {0, 0, 0};
  EXPECT_EQ(AdaptiveFindAnswer(instance), 3u);  // "not found" == n
  instance.bits = {0, 0, 1};
  EXPECT_EQ(AdaptiveFindAnswer(instance), 2u);
}

TEST(AdaptiveFind, ProtocolLengthIsLogarithmic) {
  AdaptiveFindInstance instance;
  instance.bits.assign(16, 1);
  const auto protocol = MakeAdaptiveFindProtocol(instance);
  EXPECT_EQ(protocol->length(), 1 + CeilLog2(16));
}

TEST(AdaptiveFind, ExhaustiveSmallInstances) {
  // All 2^n bit patterns for several n: the binary search must always
  // land on the highest set index.
  Rng rng(1);
  const NoiselessChannel channel;
  for (int n : {1, 2, 3, 5, 8}) {
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      AdaptiveFindInstance instance;
      for (int i = 0; i < n; ++i) {
        instance.bits.push_back((mask >> i) & 1);
      }
      const auto protocol = MakeAdaptiveFindProtocol(instance);
      const ExecutionResult result = Execute(*protocol, channel, rng);
      EXPECT_TRUE(AdaptiveFindAllCorrect(instance, result.outputs))
          << "n=" << n << " mask=" << mask;
    }
  }
}

TEST(AdaptiveFind, LargeRandomInstances) {
  Rng rng(2);
  const NoiselessChannel channel;
  for (int t = 0; t < 30; ++t) {
    const int n = 3 + static_cast<int>(rng.UniformInt(500));
    const AdaptiveFindInstance instance = SampleAdaptiveFind(n, 0.1, rng);
    const auto protocol = MakeAdaptiveFindProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    EXPECT_TRUE(AdaptiveFindAllCorrect(instance, result.outputs)) << n;
  }
}

TEST(AdaptiveFind, BeepsDependOnTranscript) {
  // The same party must beep differently under different prefixes --
  // adaptivity in action.  Party 6 of 8 (upper half) with a 1:
  AdaptiveFindInstance instance;
  instance.bits = {0, 0, 0, 0, 0, 0, 1, 0};
  const auto protocol = MakeAdaptiveFindProtocol(instance);
  const Party& party = protocol->party(6);
  // After probe answered 1, range [0,8) -> probe [4,8): party 6 beeps.
  EXPECT_TRUE(party.ChooseBeep(BitString::FromString("1")));
  // If round 1 then answers 0 (nobody in [4,8)... counterfactual), range
  // becomes [0,4): party 6 is outside and must stay silent.
  EXPECT_FALSE(party.ChooseBeep(BitString::FromString("10")));
}

TEST(AdaptiveFind, NoiseDerailsSearch) {
  Rng rng(3);
  const CorrelatedNoisyChannel channel(0.3);
  int correct = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const AdaptiveFindInstance instance = SampleAdaptiveFind(64, 0.2, rng);
    const auto protocol = MakeAdaptiveFindProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    correct += AdaptiveFindAllCorrect(instance, result.outputs);
  }
  // 7 rounds at eps=0.3: survival ~ 0.7^7 ~ 8%; a wrong round can still
  // luck into the right answer occasionally.
  EXPECT_LE(correct, kTrials / 2);
}

}  // namespace
}  // namespace noisybeeps
