#include "tasks/counting.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "channel/noiseless.h"
#include "protocol/executor.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(Counting, ProtocolLength) {
  Rng rng(1);
  const CountingInstance instance = SampleCounting(10, 8, 6, rng);
  const auto protocol = MakeCountingProtocol(instance);
  EXPECT_EQ(protocol->length(), 9 * 6);
  EXPECT_EQ(protocol->num_parties(), 10);
}

TEST(Counting, PhaseZeroEveryoneBeeps) {
  Rng rng(2);
  const CountingInstance instance = SampleCounting(4, 5, 3, rng);
  const auto protocol = MakeCountingProtocol(instance);
  BitString prefix;
  for (int m = 0; m < 3; ++m) {  // phase 0 rounds
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(protocol->party(i).ChooseBeep(prefix));
    }
    prefix.PushBack(true);
  }
}

TEST(Counting, EstimateWithinConstantFactorNoiseless) {
  Rng rng(3);
  const NoiselessChannel channel;
  int good = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const CountingInstance instance = SampleCounting(64, 10, 15, rng);
    const auto protocol = MakeCountingProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    good += CountingAllWithinFactor(instance, result.outputs, 8.0);
  }
  EXPECT_GE(good, kTrials - 2);
}

TEST(Counting, EstimateScalesAcrossSizes) {
  Rng rng(4);
  const NoiselessChannel channel;
  for (int n : {4, 32, 256}) {
    int good = 0;
    constexpr int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      const CountingInstance instance = SampleCounting(n, 12, 15, rng);
      const auto protocol = MakeCountingProtocol(instance);
      const ExecutionResult result = Execute(*protocol, channel, rng);
      good += CountingAllWithinFactor(instance, result.outputs, 8.0);
    }
    EXPECT_GE(good, 8) << n;
  }
}

TEST(Counting, AllPartiesAgreeOnEstimate) {
  Rng rng(5);
  const NoiselessChannel channel;
  const CountingInstance instance = SampleCounting(30, 8, 9, rng);
  const auto protocol = MakeCountingProtocol(instance);
  const ExecutionResult result = Execute(*protocol, channel, rng);
  for (const PartyOutput& out : result.outputs) {
    EXPECT_EQ(out, result.outputs.front());
  }
}

TEST(Counting, ValidatesParameters) {
  Rng rng(6);
  EXPECT_THROW((void)SampleCounting(0, 4, 3, rng), std::invalid_argument);
  EXPECT_THROW((void)SampleCounting(4, 0, 3, rng), std::invalid_argument);
  EXPECT_THROW((void)SampleCounting(4, 4, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)CountingAllWithinFactor({}, {}, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
