#include "coding/hierarchical_sim.h"

#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(HierarchicalSim, NoiselessIsExact) {
  Rng rng(1);
  const NoiselessChannel channel;
  const HierarchicalSimulator sim;
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
  EXPECT_FALSE(result.budget_exhausted());
}

TEST(HierarchicalSim, RecoversUnderTwoSidedNoise) {
  Rng rng(2);
  const CorrelatedNoisyChannel channel(0.05);
  const HierarchicalSimulator sim;
  int correct = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += result.AllMatch(ReferenceTranscript(*protocol)) &&
               InputSetAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(HierarchicalSim, LongProtocolManyChunksStillExact) {
  // BitExchange with a large payload: T = n*k >> chunk size, exercising
  // many commits and several audit levels.
  Rng rng(3);
  const CorrelatedNoisyChannel channel(0.05);
  const HierarchicalSimulator sim;
  const BitExchangeInstance instance = SampleBitExchange(8, 40, rng);
  const auto protocol = MakeBitExchangeProtocol(instance);  // T = 320
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_FALSE(result.budget_exhausted());
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
  EXPECT_TRUE(BitExchangeAllCorrect(instance, result.outputs));
}

TEST(HierarchicalSim, DownOnlyPresetWorksOnDownChannel) {
  Rng rng(4);
  const OneSidedDownChannel channel(0.15);
  const HierarchicalSimulator sim(HierarchicalSimOptions::DownOnly());
  int correct = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const BitExchangeInstance instance = SampleBitExchange(8, 24, rng);
    const auto protocol = MakeBitExchangeProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += result.AllMatch(ReferenceTranscript(*protocol));
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(HierarchicalSim, FinalAuditGateRejectsPlantedCorruption) {
  // With a level-0 flag budget of 1 rep on a noisy channel, bad chunks DO
  // get committed; the audits must catch and repair them, so the final
  // transcript is still exact.
  Rng rng(5);
  const CorrelatedNoisyChannel channel(0.05);
  HierarchicalSimOptions options;
  options.base.flag_reps = 1;  // deliberately flaky level-0 verdicts
  const HierarchicalSimulator sim(options);
  int correct = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(12, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    if (!result.budget_exhausted()) {
      correct += result.AllMatch(ReferenceTranscript(*protocol));
    }
  }
  // Termination requires the maximal-strength audit to pass on the full
  // transcript, so completed runs are correct.
  EXPECT_GE(correct, kTrials - 2);
}

TEST(HierarchicalSim, BudgetExhaustionIsReported) {
  Rng rng(6);
  const CorrelatedNoisyChannel channel(0.2);
  HierarchicalSimOptions options;
  options.base.max_rounds = 40;
  const HierarchicalSimulator sim(options);
  const InputSetInstance instance = SampleInputSet(16, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_TRUE(result.budget_exhausted());
}

TEST(HierarchicalSim, RejectsBadOptions) {
  HierarchicalSimOptions bad;
  bad.audit_flag_slope = -1;
  EXPECT_THROW(HierarchicalSimulator{bad}, std::invalid_argument);
  HierarchicalSimOptions bad2;
  bad2.max_level = 0;
  EXPECT_THROW(HierarchicalSimulator{bad2}, std::invalid_argument);
}

TEST(HierarchicalSim, NamesIdentifyPresets) {
  EXPECT_EQ(HierarchicalSimulator().name(), "hierarchical(two-sided)");
  EXPECT_EQ(HierarchicalSimulator(HierarchicalSimOptions::DownOnly()).name(),
            "hierarchical(down-only)");
}

}  // namespace
}  // namespace noisybeeps
