// Model-based property tests: run library data structures against naive
// reference implementations under long random operation sequences.
#include <gtest/gtest.h>

#include <vector>

#include "util/bitstring.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// Reference model: std::vector<bool> with the obvious semantics.
class ReferenceBits {
 public:
  void PushBack(bool b) { bits_.push_back(b); }
  void Set(std::size_t i, bool b) { bits_[i] = b; }
  [[nodiscard]] bool Get(std::size_t i) const { return bits_[i]; }
  void Truncate(std::size_t size) { bits_.resize(size); }
  void Append(const ReferenceBits& other) {
    bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
  }
  [[nodiscard]] std::size_t size() const { return bits_.size(); }
  [[nodiscard]] std::size_t PopCount() const {
    std::size_t count = 0;
    for (bool b : bits_) count += b;
    return count;
  }
  [[nodiscard]] std::string ToString() const {
    std::string s;
    for (bool b : bits_) s.push_back(b ? '1' : '0');
    return s;
  }

 private:
  std::vector<bool> bits_;
};

TEST(BitStringModel, LongRandomOperationSequencesAgree) {
  Rng rng(2024);
  for (int run = 0; run < 20; ++run) {
    BitString subject;
    ReferenceBits model;
    for (int op = 0; op < 2000; ++op) {
      switch (rng.UniformInt(6)) {
        case 0:
        case 1: {  // push (weighted: growth dominates)
          const bool bit = rng.Bit();
          subject.PushBack(bit);
          model.PushBack(bit);
          break;
        }
        case 2: {  // set
          if (model.size() > 0) {
            const std::size_t i = rng.UniformInt(model.size());
            const bool bit = rng.Bit();
            subject.Set(i, bit);
            model.Set(i, bit);
          }
          break;
        }
        case 3: {  // truncate
          if (model.size() > 0) {
            const std::size_t target = rng.UniformInt(model.size() + 1);
            subject.Truncate(target);
            model.Truncate(target);
          }
          break;
        }
        case 4: {  // append a small random batch
          BitString extra_subject;
          ReferenceBits extra_model;
          const int len = static_cast<int>(rng.UniformInt(70));
          for (int i = 0; i < len; ++i) {
            const bool bit = rng.Bit();
            extra_subject.PushBack(bit);
            extra_model.PushBack(bit);
          }
          subject.Append(extra_subject);
          model.Append(extra_model);
          break;
        }
        case 5: {  // point read
          if (model.size() > 0) {
            const std::size_t i = rng.UniformInt(model.size());
            ASSERT_EQ(subject[i], model.Get(i));
          }
          break;
        }
      }
      ASSERT_EQ(subject.size(), model.size()) << "run " << run << " op " << op;
    }
    EXPECT_EQ(subject.ToString(), model.ToString());
    EXPECT_EQ(subject.PopCount(), model.PopCount());
  }
}

TEST(BitStringModel, PrefixSubstringConsistency) {
  Rng rng(2025);
  for (int run = 0; run < 50; ++run) {
    BitString s;
    const int len = static_cast<int>(rng.UniformInt(300));
    for (int i = 0; i < len; ++i) s.PushBack(rng.Bit());
    const std::size_t a = rng.UniformInt(len + 1);
    const std::size_t b = a + rng.UniformInt(len - a + 1);
    const BitString sub = s.Substring(a, b);
    ASSERT_EQ(sub.size(), b - a);
    for (std::size_t i = 0; i < sub.size(); ++i) {
      ASSERT_EQ(sub[i], s[a + i]);
    }
    EXPECT_EQ(s.Prefix(a), s.Substring(0, a));
    EXPECT_TRUE(s.StartsWith(s.Prefix(a)));
  }
}

}  // namespace
}  // namespace noisybeeps
