// The nblint engine: suppression comments, the rule registry, output
// formats, and the SARIF 2.1.0 emitter.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace noisybeeps::lint {
namespace {

SourceFile Src(std::string path, std::string body) {
  return SourceFile{std::move(path), std::move(body)};
}

std::size_t CountRule(const std::vector<Finding>& findings,
                      std::string_view rule_id) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.rule_id == rule_id;
      }));
}

// --- suppression parsing ----------------------------------------------------

TEST(LintSuppressions, TrailingCommentTargetsItsOwnLine) {
  const FileModel file = FileModel::Build(
      {"src/analysis/a.cc",
       "int x = 0;\n"
       "int y = f();  // NBLINT(banned-random): fixture exercises libc\n"});
  const auto sups = CollectSuppressions(file);
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(sups[0].comment_line, 2);
  EXPECT_EQ(sups[0].target_line, 2);
  EXPECT_EQ(sups[0].rule_id, "banned-random");
  EXPECT_EQ(sups[0].justification, "fixture exercises libc");
}

TEST(LintSuppressions, StandaloneCommentTargetsTheNextLine) {
  const FileModel file = FileModel::Build(
      {"src/analysis/a.cc",
       "// NBLINT(raw-thread): benchmark drives threads directly\n"
       "int y = f();\n"});
  const auto sups = CollectSuppressions(file);
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(sups[0].comment_line, 1);
  EXPECT_EQ(sups[0].target_line, 2);
  EXPECT_EQ(sups[0].rule_id, "raw-thread");
}

TEST(LintSuppressions, ProseMentioningTheSyntaxIsNotASuppression) {
  // The marker must LEAD the comment; docs talking about
  // "use // NBLINT(rule-id) to suppress" must not parse.
  const FileModel file = FileModel::Build(
      {"src/lint/doc.h",
       "// Suppress findings with NBLINT(rule-id): justification.\n"});
  EXPECT_TRUE(CollectSuppressions(file).empty());
}

TEST(LintSuppressions, MalformedMarkersKeepAnEmptyRuleId) {
  const FileModel file = FileModel::Build(
      {"src/analysis/a.cc",
       "int a = 0;  // NBLINT(banned-random missing the close\n"
       "int b = 0;  // NBLINTbanned-random: typo'd marker\n"});
  const auto sups = CollectSuppressions(file);
  ASSERT_EQ(sups.size(), 2u);
  EXPECT_TRUE(sups[0].rule_id.empty());
  EXPECT_TRUE(sups[1].rule_id.empty());
}

TEST(LintSuppressions, EmptyJustificationIsRecordedAsEmpty) {
  const FileModel file = FileModel::Build(
      {"src/analysis/a.cc", "int a = b();  // NBLINT(banned-random):\n"});
  const auto sups = CollectSuppressions(file);
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(sups[0].rule_id, "banned-random");
  EXPECT_TRUE(sups[0].justification.empty());
}

// --- suppression semantics through RunAllChecks -----------------------------

TEST(LintEngine, JustifiedSuppressionSilencesExactlyItsLine) {
  const auto findings = RunAllChecks({Src(
      "src/analysis/a.cc",
      "int A() { return std::rand(); }  // NBLINT(banned-random): fixture\n"
      "int B() { return std::rand(); }\n")});
  // Line 1 is suppressed; line 2's identical finding survives.
  ASSERT_EQ(CountRule(findings, "banned-random"), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.rule_id == "banned-random";
      });
  EXPECT_EQ(it->line, 2);
  // A valid, justified suppression produces no meta findings.
  EXPECT_EQ(CountRule(findings, "suppression-justification"), 0u);
  EXPECT_EQ(CountRule(findings, "suppression-unknown-rule"), 0u);
}

TEST(LintEngine, SuppressionOnlySilencesTheNamedRule) {
  // The comment names raw-thread but the line's finding is banned-random:
  // nothing is silenced.
  const auto findings = RunAllChecks({Src(
      "src/analysis/a.cc",
      "int A() { return std::rand(); }  // NBLINT(raw-thread): wrong rule\n")});
  EXPECT_EQ(CountRule(findings, "banned-random"), 1u);
}

TEST(LintEngine, UnjustifiedSuppressionSilencesNothingAndIsReported) {
  const auto findings = RunAllChecks({Src(
      "src/analysis/a.cc",
      "int A() { return std::rand(); }  // NBLINT(banned-random)\n")});
  // The original finding survives AND the bare suppression is a finding.
  EXPECT_EQ(CountRule(findings, "banned-random"), 1u);
  ASSERT_EQ(CountRule(findings, "suppression-justification"), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.rule_id == "suppression-justification";
      });
  EXPECT_EQ(it->line, 1);
  EXPECT_EQ(it->severity, Severity::kError);
  EXPECT_NE(it->message.find("justification"), std::string::npos);
}

TEST(LintEngine, UnknownRuleIdInSuppressionIsReportedLoudly) {
  const auto findings = RunAllChecks(
      {Src("src/analysis/a.cc",
           "int a = 0;  // NBLINT(no-such-rule): confidently wrong\n")});
  ASSERT_EQ(CountRule(findings, "suppression-unknown-rule"), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.rule_id == "suppression-unknown-rule";
      });
  EXPECT_NE(it->message.find("no-such-rule"), std::string::npos);
}

TEST(LintEngine, MalformedSuppressionIsReported) {
  const auto findings = RunAllChecks(
      {Src("src/analysis/a.cc",
           "int a = 0;  // NBLINT(banned-random and no close paren\n")});
  ASSERT_EQ(CountRule(findings, "suppression-unknown-rule"), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.rule_id == "suppression-unknown-rule";
      });
  EXPECT_NE(it->message.find("malformed"), std::string::npos);
}

TEST(LintEngine, StandaloneSuppressionSilencesTheNextLine) {
  const auto findings = RunAllChecks({Src(
      "src/analysis/a.cc",
      "// NBLINT(banned-random): exercising the libc generator on purpose\n"
      "int A() { return std::rand(); }\n")});
  EXPECT_EQ(CountRule(findings, "banned-random"), 0u);
  EXPECT_EQ(CountRule(findings, "suppression-justification"), 0u);
}

// --- the structural model ---------------------------------------------------

// Regression: an out-of-line template member definition
// (`template <...> R Foo<T>::Bar(...)`) used to lose its class because the
// qualifier back-walk stopped at the template-argument list.
TEST(LintModel, OutOfLineTemplateMemberDefinitionKeepsItsClass) {
  const FileModel file = FileModel::Build(
      {"src/util/ring.h",
       "#ifndef NOISYBEEPS_UTIL_RING_H_\n"
       "#define NOISYBEEPS_UTIL_RING_H_\n"
       "template <typename T>\n"
       "class Ring {\n"
       " public:\n"
       "  int Size() const;\n"
       "};\n"
       "template <typename T>\n"
       "int Ring<T>::Size() const {\n"
       "  return 3;\n"
       "}\n"
       "#endif  // NOISYBEEPS_UTIL_RING_H_\n"});
  const FunctionInfo* definition = nullptr;
  for (const FunctionInfo& fn : file.functions()) {
    if (fn.name == "Size" && fn.is_definition) definition = &fn;
  }
  ASSERT_NE(definition, nullptr);
  EXPECT_EQ(definition->class_name, "Ring");
  EXPECT_EQ(definition->qualified_name, "Ring::Size");
  EXPECT_EQ(definition->line, 9);
}

// Multi-argument template-ids in the qualifier back-walk, including the
// `>>` maximal-munch closer.
TEST(LintModel, NestedTemplateArgumentsInQualifiersParse) {
  const FileModel file = FileModel::Build(
      {"src/util/table.cc",
       "template <typename K, typename V>\n"
       "int Table<K, std::vector<V>>::Count() const {\n"
       "  return 0;\n"
       "}\n"});
  const FunctionInfo* definition = nullptr;
  for (const FunctionInfo& fn : file.functions()) {
    if (fn.name == "Count" && fn.is_definition) definition = &fn;
  }
  ASSERT_NE(definition, nullptr);
  EXPECT_EQ(definition->class_name, "Table");
}

// --- registry and severities ------------------------------------------------

TEST(LintRegistry, RulesAreRegisteredSortedAndUnique) {
  const std::vector<Rule>& rules = AllRules();
  ASSERT_GE(rules.size(), 16u);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1].id, rules[i].id) << "registry must stay sorted";
  }
  for (const Rule& rule : rules) {
    EXPECT_FALSE(rule.category.empty()) << rule.id;
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    EXPECT_FALSE(rule.rationale.empty()) << rule.id << ": --explain needs it";
    EXPECT_EQ(FindRule(rule.id), &rule);
  }
  EXPECT_EQ(FindRule("does-not-exist"), nullptr);
}

TEST(LintRegistry, WholeProgramRulesAreRegisteredAsSuch) {
  for (const char* id :
       {"determinism-taint", "rng-draw-parity", "lockset-discipline",
        "int-narrowing-at-boundary", "layering-reachability",
        "io-seam-discipline", "service-layering"}) {
    const Rule* rule = FindRule(id);
    ASSERT_NE(rule, nullptr) << id;
    EXPECT_EQ(rule->run, nullptr) << id;
    EXPECT_NE(rule->run_program, nullptr) << id;
  }
  // A missed draw desynchronizes every later word on the stream; the
  // other flow-sensitive rules stay baselineable warnings.
  EXPECT_EQ(FindRule("rng-draw-parity")->severity, Severity::kError);
  EXPECT_EQ(FindRule("lockset-discipline")->severity, Severity::kWarn);
  EXPECT_EQ(FindRule("int-narrowing-at-boundary")->severity, Severity::kWarn);
  // The v3 path-insensitive rule is gone; lockset-discipline replaced it.
  EXPECT_EQ(FindRule("shared-state-discipline"), nullptr);
}

TEST(LintRegistry, SeveritiesComeFromTheRegistry) {
  ASSERT_NE(FindRule("float-equality"), nullptr);
  EXPECT_EQ(FindRule("float-equality")->severity, Severity::kWarn);
  ASSERT_NE(FindRule("banned-random"), nullptr);
  EXPECT_EQ(FindRule("banned-random")->severity, Severity::kError);
  const auto findings = RunAllChecks(FindRule("float-equality")->firing_fixture);
  ASSERT_GE(CountRule(findings, "float-equality"), 1u);
  for (const Finding& f : findings) {
    if (f.rule_id == "float-equality") EXPECT_EQ(f.severity, Severity::kWarn);
  }
}

// The vacuity meta-test: a rule whose firing fixture produces no finding is
// dead weight -- either the fixture rotted or the rule can never fire.
// Whole-program mode so the call-graph rules get their ProgramAnalysis.
TEST(LintRegistry, EveryRuleFiresOnItsOwnFixture) {
  LintOptions options;
  options.whole_program = true;
  for (const Rule& rule : AllRules()) {
    ASSERT_FALSE(rule.firing_fixture.empty())
        << "rule has no firing fixture: " << rule.id;
    const auto findings = RunAllChecks(rule.firing_fixture, options);
    EXPECT_GE(CountRule(findings, rule.id), 1u)
        << "rule never fires on its own fixture: " << rule.id;
  }
}

// --- output formats ---------------------------------------------------------

TEST(LintFormats, TextFormatIsOneLinePerFinding) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 12, "banned-random", "no", Severity::kError},
      {"src/b.h", 3, "float-equality", "hmm", Severity::kWarn},
  };
  EXPECT_EQ(FormatText(findings),
            "src/a.cc:12: error: banned-random: no\n"
            "src/b.h:3: warn: float-equality: hmm\n");
  EXPECT_EQ(FormatText({}), "");
}

TEST(LintFormats, JsonFormatCarriesSeverityAndEscapes) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 1, "header-guard", "want \"x\"", Severity::kError}};
  const std::string json = FormatJson(findings);
  EXPECT_NE(json.find("\"file\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("want \\\"x\\\""), std::string::npos);
  EXPECT_EQ(FormatJson({}), "[]\n");
}

// --- SARIF ------------------------------------------------------------------

// A minimal recursive-descent JSON syntax checker, enough to prove the
// emitter produces well-formed JSON without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == '}') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ']') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(LintSarif, EmitsWellFormedSarif210) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 12, "banned-random", "say \"no\" to rand()",
       Severity::kError},
      {"src/analysis/b.cc", 3, "float-equality", "a == b", Severity::kWarn},
  };
  const std::string sarif = FormatSarif(findings);
  EXPECT_TRUE(JsonChecker(sarif).Valid()) << sarif;
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("https://json.schemastore.org/sarif-2.1.0.json"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"nblint\""), std::string::npos);
  // Every registered rule is described in tool.driver.rules.
  for (const Rule& rule : AllRules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule.id + "\""), std::string::npos)
        << rule.id;
  }
  // Results carry ruleId, a level mapped from the severity, and a location.
  EXPECT_NE(sarif.find("\"ruleId\": \"banned-random\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/analysis/b.cc\""), std::string::npos);
  // The quoted message survived escaping.
  EXPECT_NE(sarif.find("say \\\"no\\\" to rand()"), std::string::npos);
}

TEST(LintSarif, RuleIndexPointsIntoTheRulesArray) {
  const std::vector<Rule>& rules = AllRules();
  std::size_t expected = rules.size();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].id == "header-guard") expected = i;
  }
  ASSERT_LT(expected, rules.size());
  const std::string sarif = FormatSarif(
      {{"src/x/y.h", 1, "header-guard", "bad guard", Severity::kError}});
  EXPECT_NE(
      sarif.find("\"ruleIndex\": " + std::to_string(expected)),
      std::string::npos);
}

TEST(LintSarif, EmptyFindingsStillValidate) {
  const std::string sarif = FormatSarif({});
  EXPECT_TRUE(JsonChecker(sarif).Valid()) << sarif;
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
}

TEST(LintSarif, WitnessPathsBecomeCodeFlows) {
  Finding finding{"src/channel/word.cc", 9, "rng-draw-parity",
                  "arms draw differently", Severity::kError};
  finding.flow = {
      {"src/channel/word.cc", 9, "WordMode branch in Step"},
      {"src/channel/word.cc", 11, "Rng draw: NextU64"},
  };
  Finding plain{"src/a.cc", 1, "header-guard", "bad guard",
                Severity::kError};
  const std::string sarif = FormatSarif({finding, plain});
  EXPECT_TRUE(JsonChecker(sarif).Valid()) << sarif;
  EXPECT_NE(sarif.find("\"codeFlows\""), std::string::npos);
  EXPECT_NE(sarif.find("\"threadFlows\""), std::string::npos);
  EXPECT_NE(sarif.find("Rng draw: NextU64"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 11"), std::string::npos);
  // Flow-less findings must not grow an empty codeFlows array.
  EXPECT_EQ(sarif.find("\"codeFlows\": []"), std::string::npos);
}

TEST(LintFormats, TextFormatRendersFlowStepsIndented) {
  Finding finding{"src/a.cc", 4, "lockset-discipline", "unlocked write",
                  Severity::kWarn};
  finding.flow = {
      {"src/b.cc", 7, "parallel region in Sweep"},
      {"src/a.cc", 4, "unlocked write: g_hits += 1"},
  };
  EXPECT_EQ(FormatText({finding}),
            "src/a.cc:4: warn: lockset-discipline: unlocked write\n"
            "    src/b.cc:7: parallel region in Sweep\n"
            "    src/a.cc:4: unlocked write: g_hits += 1\n");
}

// --- the real tree ----------------------------------------------------------

// RunAllChecks over a small honest slice of repo-shaped files aggregates
// findings from multiple rules and sorts them by (file, line, rule).
TEST(LintEngine, AggregatesAndSortsAcrossRules) {
  const std::vector<SourceFile> files = {
      Src("src/analysis/z.cc",
          "#include \"fault/fault_plan.h\"\n"
          "int Draw() { return std::rand(); }\n"),
      Src("src/tasks/a.h",
          "#ifndef WRONG_H\n#define WRONG_H\n#endif\n"),
  };
  const auto findings = RunAllChecks(files);
  EXPECT_EQ(CountRule(findings, "layering"), 1u);
  EXPECT_EQ(CountRule(findings, "banned-random"), 1u);
  EXPECT_EQ(CountRule(findings, "header-guard"), 1u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].file, findings[i].file);
  }
}

TEST(LintEngine, CleanFilesProduceNoFindings) {
  const std::vector<SourceFile> files = {
      Src("src/util/widget.h",
          "#ifndef NOISYBEEPS_UTIL_WIDGET_H_\n"
          "#define NOISYBEEPS_UTIL_WIDGET_H_\n"
          "int Widget(int n);\n"
          "#endif  // NOISYBEEPS_UTIL_WIDGET_H_\n"),
      Src("src/util/widget.cc",
          "#include \"util/widget.h\"\n"
          "int Widget(int n) { return n + 1; }\n"),
  };
  EXPECT_TRUE(RunAllChecks(files).empty());
}

}  // namespace
}  // namespace noisybeeps::lint
