#include "coding/verification.h"

#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// Fixture: InputSet with fixed inputs so beep patterns are predictable.
// Party i beeps exactly in round inputs[i] of the (r=1) protocol.
struct Fixture {
  InputSetInstance instance;
  std::unique_ptr<Protocol> protocol;
  BitString reference;

  explicit Fixture(std::vector<int> inputs) {
    instance.inputs = std::move(inputs);
    protocol = MakeInputSetProtocol(instance);
    reference = ReferenceTranscript(*protocol);
  }
};

std::vector<int> NoOwners(std::size_t len) {
  return std::vector<int>(len, -1);
}

TEST(FirstViolation, CleanTranscriptHasNone) {
  const Fixture fx({0, 2, 2});
  // Owners: round m owned by a party whose input is m; rounds without
  // beepers unowned.
  std::vector<int> owners(6, -1);
  owners[0] = 0;
  owners[2] = 1;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(FirstViolation(*fx.protocol, i, fx.reference, owners,
                             NoiseRegime::kTwoSided),
              fx.reference.size())
        << i;
  }
}

TEST(FirstViolation, SpuriousOneWithoutOwnerFlaggedByEveryone) {
  const Fixture fx({0, 2, 2});
  BitString corrupted = fx.reference;  // "101000"
  corrupted.Set(4, true);              // a 0->1 flip at round 4
  std::vector<int> owners(6, -1);
  owners[0] = 0;
  owners[2] = 1;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(FirstViolation(*fx.protocol, i, corrupted, owners,
                             NoiseRegime::kTwoSided),
              4u)
        << i;
  }
}

TEST(FirstViolation, DroppedOneFlaggedByTheBeeper) {
  const Fixture fx({0, 2, 2});
  BitString corrupted = fx.reference;
  corrupted.Set(2, false);  // kill the 1 that parties 1,2 beeped
  std::vector<int> owners(6, -1);
  owners[0] = 0;
  // Parties 1 and 2 beeped in round 2 and see the 0: they flag round 2.
  EXPECT_EQ(FirstViolation(*fx.protocol, 1, corrupted, owners,
                           NoiseRegime::kTwoSided),
            2u);
  EXPECT_EQ(FirstViolation(*fx.protocol, 2, corrupted, owners,
                           NoiseRegime::kTwoSided),
            2u);
  // Party 0 did not beep there and cannot tell.
  EXPECT_EQ(FirstViolation(*fx.protocol, 0, corrupted, owners,
                           NoiseRegime::kTwoSided),
            corrupted.size());
}

TEST(FirstViolation, OwnerWhoDidNotBeepFlags) {
  const Fixture fx({0, 2, 2});
  std::vector<int> owners(6, -1);
  owners[0] = 0;
  owners[2] = 0;  // WRONG owner: party 0 beeped round 0, not round 2
  EXPECT_EQ(FirstViolation(*fx.protocol, 0, fx.reference, owners,
                           NoiseRegime::kTwoSided),
            2u);
  // Non-owners don't check 1s they don't own.
  EXPECT_EQ(FirstViolation(*fx.protocol, 1, fx.reference, owners,
                           NoiseRegime::kTwoSided),
            fx.reference.size());
}

TEST(FirstViolation, DownOnlyIgnoresOwners) {
  const Fixture fx({0, 2, 2});
  BitString corrupted = fx.reference;
  corrupted.Set(2, false);  // a 1->0 drop
  // In kDownOnly no owner records are needed; the beeper still flags.
  EXPECT_EQ(FirstViolation(*fx.protocol, 1, corrupted, NoOwners(6),
                           NoiseRegime::kDownOnly),
            2u);
  // And spurious unowned 1s are NOT flagged (they cannot occur under
  // down-only noise, so the check does not look for them).
  BitString up_corrupted = fx.reference;
  up_corrupted.Set(4, true);
  EXPECT_EQ(FirstViolation(*fx.protocol, 0, up_corrupted, NoOwners(6),
                           NoiseRegime::kDownOnly),
            up_corrupted.size());
}

TEST(FirstViolation, FromParameterSkipsCommittedRounds) {
  const Fixture fx({0, 2, 2});
  BitString corrupted = fx.reference;
  corrupted.Set(2, false);
  // Checking from round 3 on: the early violation is out of scope.
  EXPECT_EQ(FirstViolation(*fx.protocol, 1, corrupted, NoOwners(6),
                           NoiseRegime::kDownOnly, 3),
            corrupted.size());
}

TEST(FirstViolation, RequiresOwnersInTwoSidedMode) {
  const Fixture fx({0, 1});
  EXPECT_THROW((void)FirstViolation(*fx.protocol, 0, fx.reference,
                                    std::vector<int>(), NoiseRegime::kTwoSided),
               std::invalid_argument);
}

TEST(CommunicateFlags, NoiselessOrSemantics) {
  Rng rng(1);
  const NoiselessChannel channel;
  RoundEngine engine(channel, rng, 3);
  const std::vector<std::uint8_t> none{0, 0, 0};
  const std::vector<std::uint8_t> one{0, 1, 0};
  for (auto v : CommunicateFlags(engine, none, 3, FlagRule::kMajority)) {
    EXPECT_EQ(v, 0);
  }
  for (auto v : CommunicateFlags(engine, one, 3, FlagRule::kMajority)) {
    EXPECT_EQ(v, 1);
  }
}

TEST(CommunicateFlags, MajoritySurvivesModerateNoise) {
  Rng rng(2);
  const CorrelatedNoisyChannel channel(0.1);
  int correct = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    RoundEngine engine(channel, rng, 4);
    const bool raised = t % 2 == 0;
    std::vector<std::uint8_t> flags(4, 0);
    if (raised) flags[1] = 1;
    const auto verdict =
        CommunicateFlags(engine, flags, 15, FlagRule::kMajority);
    correct += (verdict[0] != 0) == raised;
  }
  EXPECT_GE(correct, 195);
}

TEST(CommunicateFlags, AnyOneRuleIsExactUnderDownNoise) {
  Rng rng(3);
  const OneSidedDownChannel channel(0.3);
  // No flag raised: under down-only noise no spurious 1 can appear, so the
  // verdict is ALWAYS clear.
  for (int t = 0; t < 100; ++t) {
    RoundEngine engine(channel, rng, 3);
    const std::vector<std::uint8_t> none{0, 0, 0};
    const auto verdict = CommunicateFlags(engine, none, 4, FlagRule::kAnyOne);
    for (auto v : verdict) EXPECT_EQ(v, 0);
  }
  // Raised flag: missed only if all reps drop (0.3^6 ~ 0.07%).
  int heard = 0;
  for (int t = 0; t < 200; ++t) {
    RoundEngine engine(channel, rng, 3);
    const std::vector<std::uint8_t> one{1, 0, 0};
    const auto verdict = CommunicateFlags(engine, one, 6, FlagRule::kAnyOne);
    heard += verdict[2] != 0;
  }
  EXPECT_GE(heard, 198);
}

TEST(BinarySearchVerifiedPrefix, FindsMinimumViolationNoiselessly) {
  Rng rng(4);
  const NoiselessChannel channel;
  // 5 parties with local first-violations; the verified prefix must be
  // the minimum (round indices are 0-based; prefix length == min index).
  const std::vector<std::size_t> fv{17, 9, 23, 9, 30};
  RoundEngine engine(channel, rng, 5);
  const auto verified = BinarySearchVerifiedPrefix(engine, fv, 30, 1,
                                                   FlagRule::kMajority);
  for (auto p : verified) EXPECT_EQ(p, 9u);
}

TEST(BinarySearchVerifiedPrefix, CleanTranscriptVerifiesFully) {
  Rng rng(5);
  const NoiselessChannel channel;
  const std::vector<std::size_t> fv{40, 40, 40};
  RoundEngine engine(channel, rng, 3);
  const auto verified = BinarySearchVerifiedPrefix(engine, fv, 40, 1,
                                                   FlagRule::kMajority);
  for (auto p : verified) EXPECT_EQ(p, 40u);
}

TEST(BinarySearchVerifiedPrefix, ViolationAtZeroMeansEmptyPrefix) {
  Rng rng(6);
  const NoiselessChannel channel;
  const std::vector<std::size_t> fv{0, 12};
  RoundEngine engine(channel, rng, 2);
  const auto verified = BinarySearchVerifiedPrefix(engine, fv, 12, 1,
                                                   FlagRule::kMajority);
  for (auto p : verified) EXPECT_EQ(p, 0u);
}

TEST(BinarySearchVerifiedPrefix, NoisySearchUsuallyCorrect) {
  Rng rng(7);
  const CorrelatedNoisyChannel channel(0.05);
  int correct = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    const std::size_t bad = rng.UniformInt(65);
    const std::vector<std::size_t> fv{64, bad, 64};
    RoundEngine engine(channel, rng, 3);
    const auto verified = BinarySearchVerifiedPrefix(engine, fv, 64, 9,
                                                     FlagRule::kMajority);
    correct += verified[0] == std::min<std::size_t>(bad, 64);
  }
  EXPECT_GE(correct, 90);
}

TEST(BinarySearchVerifiedPrefix, EmptyTranscriptIsTrivial) {
  Rng rng(8);
  const NoiselessChannel channel;
  RoundEngine engine(channel, rng, 2);
  const std::vector<std::size_t> fv{0, 0};
  const auto verified =
      BinarySearchVerifiedPrefix(engine, fv, 0, 1, FlagRule::kMajority);
  for (auto p : verified) EXPECT_EQ(p, 0u);
  EXPECT_EQ(engine.rounds_used(), 0);
}

}  // namespace
}  // namespace noisybeeps
