#include "util/flags.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace noisybeeps {
namespace {

Flags Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsAndSpaceForms) {
  Flags flags = Parse({"--n=32", "--eps", "0.25", "--name", "rewind"});
  EXPECT_EQ(flags.GetInt("n", 0), 32);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.25);
  EXPECT_EQ(flags.GetString("name", ""), "rewind");
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags flags = Parse({});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.5), 0.5);
  EXPECT_EQ(flags.GetString("name", "x"), "x");
  EXPECT_FALSE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("verbose", true));
}

TEST(Flags, BooleanForms) {
  Flags bare = Parse({"--verbose"});
  EXPECT_TRUE(bare.GetBool("verbose", false));
  Flags explicit_true = Parse({"--verbose=true"});
  EXPECT_TRUE(explicit_true.GetBool("verbose", false));
  Flags explicit_false = Parse({"--verbose=false"});
  EXPECT_FALSE(explicit_false.GetBool("verbose", true));
  Flags numeric = Parse({"--verbose=1"});
  EXPECT_TRUE(numeric.GetBool("verbose", false));
}

TEST(Flags, NegativeNumbersAsValues) {
  Flags flags = Parse({"--delta=-5"});
  EXPECT_EQ(flags.GetInt("delta", 0), -5);
}

TEST(Flags, HasAndUnconsumed) {
  Flags flags = Parse({"--used=1", "--typo=2"});
  EXPECT_TRUE(flags.Has("used"));
  EXPECT_TRUE(flags.Has("typo"));
  EXPECT_FALSE(flags.Has("absent"));
  (void)flags.GetInt("used", 0);
  const auto unconsumed = flags.UnconsumedFlags();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "typo");
}

TEST(Flags, MalformedInputThrows) {
  EXPECT_THROW(Parse({"notaflag"}), std::invalid_argument);
  Flags bad_int = Parse({"--n=abc"});
  EXPECT_THROW((void)bad_int.GetInt("n", 0), std::invalid_argument);
  Flags bad_double = Parse({"--eps=zz"});
  EXPECT_THROW((void)bad_double.GetDouble("eps", 0), std::invalid_argument);
  Flags bad_bool = Parse({"--v=maybe"});
  EXPECT_THROW((void)bad_bool.GetBool("v", false), std::invalid_argument);
}

TEST(Flags, LastOccurrenceWins) {
  Flags flags = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

TEST(TryParseInt64, AcceptsExactIntegers) {
  std::int64_t value = -1;
  EXPECT_TRUE(TryParseInt64("0", value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(TryParseInt64("42", value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(TryParseInt64("-17", value));
  EXPECT_EQ(value, -17);
  EXPECT_TRUE(TryParseInt64("9223372036854775807", value));
  EXPECT_EQ(value, std::numeric_limits<std::int64_t>::max());
}

TEST(TryParseInt64, RejectsGarbageAndOverflow) {
  std::int64_t value = 99;
  // The strtoll footgun this guards against: "all" parses as 0 with no
  // error unless the end pointer is checked.
  EXPECT_FALSE(TryParseInt64("all", value));
  EXPECT_FALSE(TryParseInt64("12x", value));
  EXPECT_FALSE(TryParseInt64("12 ", value));
  EXPECT_FALSE(TryParseInt64("", value));
  EXPECT_FALSE(TryParseInt64("1e3", value));
  EXPECT_FALSE(TryParseInt64("9223372036854775808", value));  // INT64_MAX + 1
  EXPECT_FALSE(TryParseInt64("-9223372036854775809", value));
  EXPECT_EQ(value, 99);  // failed parses leave the output untouched
}

TEST(TryParseDouble, AcceptsFiniteNumbers) {
  double value = -1.0;
  EXPECT_TRUE(TryParseDouble("0", value));
  EXPECT_DOUBLE_EQ(value, 0.0);
  EXPECT_TRUE(TryParseDouble("0.25", value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  EXPECT_TRUE(TryParseDouble("-1e-3", value));
  EXPECT_DOUBLE_EQ(value, -0.001);
  EXPECT_TRUE(TryParseDouble("1e308", value));
  EXPECT_DOUBLE_EQ(value, 1e308);
  // Underflow to zero/denormal is harmless and accepted.
  EXPECT_TRUE(TryParseDouble("1e-400", value));
  EXPECT_GE(value, 0.0);
}

TEST(TryParseDouble, RejectsGarbageOverflowAndNonFinite) {
  double value = 99.0;
  EXPECT_FALSE(TryParseDouble("", value));
  EXPECT_FALSE(TryParseDouble("zz", value));
  EXPECT_FALSE(TryParseDouble("0.5x", value));
  EXPECT_FALSE(TryParseDouble("0.5 ", value));
  // Regression: bare strtod turns "1e999" into +inf with only errno to
  // show for it, so --eps=1e999 used to sail through GetDouble.
  EXPECT_FALSE(TryParseDouble("1e999", value));
  EXPECT_FALSE(TryParseDouble("-1e999", value));
  // Explicit non-finite spellings set no errno; the policy is that no
  // experiment parameter is meaningfully infinite, so reject them too.
  EXPECT_FALSE(TryParseDouble("inf", value));
  EXPECT_FALSE(TryParseDouble("-inf", value));
  EXPECT_FALSE(TryParseDouble("nan", value));
  EXPECT_DOUBLE_EQ(value, 99.0);  // failed parses leave the output untouched
}

TEST(Flags, GetDoubleRejectsOverflowAndNonFinite) {
  Flags overflow = Parse({"--eps=1e999"});
  EXPECT_THROW((void)overflow.GetDouble("eps", 0), std::invalid_argument);
  Flags infinite = Parse({"--eps=inf"});
  EXPECT_THROW((void)infinite.GetDouble("eps", 0), std::invalid_argument);
  Flags fine = Parse({"--eps=1e300"});
  EXPECT_DOUBLE_EQ(fine.GetDouble("eps", 0), 1e300);
}

TEST(EnvInt64, FallsBackWhenUnsetOrEmptyAndThrowsOnGarbage) {
  constexpr char kVar[] = "NB_TEST_ENV_INT64";
  ASSERT_EQ(unsetenv(kVar), 0);
  EXPECT_EQ(EnvInt64(kVar, 5), 5);
  ASSERT_EQ(setenv(kVar, "", 1), 0);
  EXPECT_EQ(EnvInt64(kVar, 5), 5);
  ASSERT_EQ(setenv(kVar, "12", 1), 0);
  EXPECT_EQ(EnvInt64(kVar, 5), 12);
  // Regression: NB_BENCH_MAX_ATTEMPTS=all used to silently become 0; an
  // unparseable value must fail loudly instead.
  ASSERT_EQ(setenv(kVar, "all", 1), 0);
  EXPECT_THROW((void)EnvInt64(kVar, 5), std::invalid_argument);
  ASSERT_EQ(unsetenv(kVar), 0);
}

TEST(EnvDouble, FallsBackWhenUnsetOrEmptyAndThrowsOnGarbage) {
  constexpr char kVar[] = "NB_TEST_ENV_DOUBLE";
  ASSERT_EQ(unsetenv(kVar), 0);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 0.5), 0.5);
  ASSERT_EQ(setenv(kVar, "", 1), 0);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 0.5), 0.5);
  ASSERT_EQ(setenv(kVar, "0.125", 1), 0);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 0.5), 0.125);
  ASSERT_EQ(setenv(kVar, "1e999", 1), 0);
  EXPECT_THROW((void)EnvDouble(kVar, 0.5), std::invalid_argument);
  ASSERT_EQ(setenv(kVar, "half", 1), 0);
  EXPECT_THROW((void)EnvDouble(kVar, 0.5), std::invalid_argument);
  ASSERT_EQ(unsetenv(kVar), 0);
}

}  // namespace
}  // namespace noisybeeps
