#include "util/flags.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace noisybeeps {
namespace {

Flags Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsAndSpaceForms) {
  Flags flags = Parse({"--n=32", "--eps", "0.25", "--name", "rewind"});
  EXPECT_EQ(flags.GetInt("n", 0), 32);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.25);
  EXPECT_EQ(flags.GetString("name", ""), "rewind");
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags flags = Parse({});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.5), 0.5);
  EXPECT_EQ(flags.GetString("name", "x"), "x");
  EXPECT_FALSE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("verbose", true));
}

TEST(Flags, BooleanForms) {
  Flags bare = Parse({"--verbose"});
  EXPECT_TRUE(bare.GetBool("verbose", false));
  Flags explicit_true = Parse({"--verbose=true"});
  EXPECT_TRUE(explicit_true.GetBool("verbose", false));
  Flags explicit_false = Parse({"--verbose=false"});
  EXPECT_FALSE(explicit_false.GetBool("verbose", true));
  Flags numeric = Parse({"--verbose=1"});
  EXPECT_TRUE(numeric.GetBool("verbose", false));
}

TEST(Flags, NegativeNumbersAsValues) {
  Flags flags = Parse({"--delta=-5"});
  EXPECT_EQ(flags.GetInt("delta", 0), -5);
}

TEST(Flags, HasAndUnconsumed) {
  Flags flags = Parse({"--used=1", "--typo=2"});
  EXPECT_TRUE(flags.Has("used"));
  EXPECT_TRUE(flags.Has("typo"));
  EXPECT_FALSE(flags.Has("absent"));
  (void)flags.GetInt("used", 0);
  const auto unconsumed = flags.UnconsumedFlags();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "typo");
}

TEST(Flags, MalformedInputThrows) {
  EXPECT_THROW(Parse({"notaflag"}), std::invalid_argument);
  Flags bad_int = Parse({"--n=abc"});
  EXPECT_THROW((void)bad_int.GetInt("n", 0), std::invalid_argument);
  Flags bad_double = Parse({"--eps=zz"});
  EXPECT_THROW((void)bad_double.GetDouble("eps", 0), std::invalid_argument);
  Flags bad_bool = Parse({"--v=maybe"});
  EXPECT_THROW((void)bad_bool.GetBool("v", false), std::invalid_argument);
}

TEST(Flags, LastOccurrenceWins) {
  Flags flags = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

}  // namespace
}  // namespace noisybeeps
