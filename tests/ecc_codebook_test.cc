#include "ecc/codebook.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ecc/code.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(CodebookCode, ExplicitBookRoundTrips) {
  std::vector<BitString> book{BitString::FromString("0000"),
                              BitString::FromString("1111"),
                              BitString::FromString("0110")};
  const CodebookCode code(std::move(book));
  EXPECT_EQ(code.num_messages(), 3u);
  EXPECT_EQ(code.codeword_length(), 4u);
  for (std::uint64_t m = 0; m < 3; ++m) {
    EXPECT_EQ(code.Decode(code.Encode(m)), m);
  }
}

TEST(CodebookCode, RejectsInvalidBooks) {
  EXPECT_THROW(CodebookCode({BitString::FromString("01")}),
               std::invalid_argument);  // too few words
  EXPECT_THROW(CodebookCode({BitString::FromString("01"),
                             BitString::FromString("011")}),
               std::invalid_argument);  // ragged lengths
  EXPECT_THROW(CodebookCode({BitString::FromString("01"),
                             BitString::FromString("01")}),
               std::invalid_argument);  // duplicates
  EXPECT_THROW(CodebookCode({BitString(), BitString()}),
               std::invalid_argument);  // empty words
}

TEST(CodebookCode, RandomConstructionIsDeterministicInSeed) {
  const CodebookCode a = CodebookCode::Random(17, 24, 99);
  const CodebookCode b = CodebookCode::Random(17, 24, 99);
  for (std::uint64_t m = 0; m < 17; ++m) {
    EXPECT_EQ(a.Encode(m), b.Encode(m));
  }
  const CodebookCode c = CodebookCode::Random(17, 24, 100);
  std::size_t same = 0;
  for (std::uint64_t m = 0; m < 17; ++m) same += a.Encode(m) == c.Encode(m);
  EXPECT_LT(same, 3u);
}

TEST(CodebookCode, RandomBookHasReasonableDistance) {
  // Random codes of length 8*log2(q) concentrate near relative distance
  // 1/2; anything below L/5 would be an implementation bug.
  const CodebookCode code = CodebookCode::Random(33, 48, 7);
  EXPECT_GE(MinimumDistance(code), 48u / 5);
}

TEST(CodebookCode, DecodeNearestTiesBreakLow) {
  std::vector<BitString> book{BitString::FromString("0000"),
                              BitString::FromString("0011")};
  const CodebookCode code(std::move(book));
  // "0001" is at distance 1 from both; message 0 must win.
  EXPECT_EQ(code.Decode(BitString::FromString("0001")), 0u);
}

TEST(CodebookCode, DecodeRejectsWrongLength) {
  const CodebookCode code = CodebookCode::Random(4, 10, 1);
  EXPECT_THROW((void)code.Decode(BitString::FromString("01")),
               std::invalid_argument);
}

TEST(GilbertVarshamov, GuaranteesMinimumDistance) {
  const std::size_t d = 9;
  const CodebookCode code = CodebookCode::GilbertVarshamov(16, 32, d, 5);
  EXPECT_GE(MinimumDistance(code), d);
}

TEST(GilbertVarshamov, ImpossibleParametersThrow) {
  // 2^8 = 256 codewords of length 8 at distance 8 means all-distinct
  // repetitions -- impossible beyond 2 words.
  EXPECT_THROW(
      (void)CodebookCode::GilbertVarshamov(10, 8, 8, 1),
      std::runtime_error);
}

TEST(GilbertVarshamov, CorrectsHalfDistanceErrors) {
  const std::size_t d = 11;
  const CodebookCode code = CodebookCode::GilbertVarshamov(8, 40, d, 6);
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t msg = rng.UniformInt(code.num_messages());
    BitString word = code.Encode(msg);
    // Up to (d-1)/2 errors are always correctable.
    for (std::size_t e = 0; e < (d - 1) / 2; ++e) {
      const std::size_t p = rng.UniformInt(word.size());
      word.Set(p, !word[p]);
    }
    // Distinct positions not guaranteed above, so the effective error
    // count is <= (d-1)/2 -- decoding must still succeed.
    EXPECT_EQ(code.Decode(word), msg) << trial;
  }
}

class CodebookBscTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CodebookBscTest, MlDecodingSurvivesBscNoise) {
  const auto [q, eps] = GetParam();
  // Length ~ 8 * log2(q): generous rate, so decode failures should be
  // rare at these noise levels.
  std::size_t length = 8;
  while ((1u << (length / 8)) < static_cast<unsigned>(q)) length += 8;
  length += 24;
  const CodebookCode code = CodebookCode::Random(q, length, 42);
  Rng rng(4242);
  int failures = 0;
  constexpr int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t msg = rng.UniformInt(q);
    BitString word = code.Encode(msg);
    for (std::size_t i = 0; i < word.size(); ++i) {
      if (rng.Bernoulli(eps)) word.Set(i, !word[i]);
    }
    failures += code.Decode(word) != msg;
  }
  EXPECT_LE(failures, kTrials / 10)
      << "q=" << q << " eps=" << eps << " L=" << length;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodebookBscTest,
    ::testing::Combine(::testing::Values(5, 17, 65),
                       ::testing::Values(0.02, 0.05, 0.10)));

}  // namespace
}  // namespace noisybeeps
