#include "analysis/good_players.h"

#include <gtest/gtest.h>

#include "analysis/feasible_sets.h"
#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/math.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(UniqueInputPlayers, IdentifiesSingletons) {
  EXPECT_EQ(UniqueInputPlayers({3, 1, 3, 7}), (std::vector<int>{1, 3}));
  EXPECT_EQ(UniqueInputPlayers({5, 5}), (std::vector<int>{}));
  EXPECT_EQ(UniqueInputPlayers({2}), (std::vector<int>{0}));
}

TEST(LargeFeasiblePlayers, ThresholdIsSqrtN) {
  // n = 4 parties -> threshold 2: sets of size 3 qualify, size 2 do not.
  std::vector<std::vector<int>> sets{{1, 2, 3}, {1, 2}, {1, 2, 3, 4}, {}};
  EXPECT_EQ(LargeFeasiblePlayers(sets), (std::vector<int>{0, 2}));
}

TEST(GoodPlayers, IntersectionOfBothConditions) {
  const auto family = MakeInputSetFamily(4);  // universe 8, sqrt(4)=2
  // Transcript all ones: every feasible set is full (8 > 2), so G == G_1.
  const BitString pi = BitString::FromString("11111111");
  const std::vector<int> x{0, 0, 3, 5};  // parties 2, 3 unique
  EXPECT_EQ(GoodPlayers(*family, x, pi), (std::vector<int>{2, 3}));
}

TEST(GoodPlayers, ManyZerosDisqualifyEveryone) {
  const auto family = MakeInputSetFamily(4);
  // 7 zero rounds leave feasible sets of size 1 <= 2 = sqrt threshold...
  const BitString pi = BitString::FromString("00000001");
  const std::vector<int> x{0, 1, 2, 3};
  EXPECT_TRUE(GoodPlayers(*family, x, pi).empty());
}

TEST(EventGood, QuarterThreshold) {
  EXPECT_TRUE(EventGoodHolds(4, 16));
  EXPECT_FALSE(EventGoodHolds(3, 16));
  EXPECT_TRUE(EventGoodHolds(1, 4));
  EXPECT_TRUE(EventGoodHolds(5, 4));
}

TEST(GoodPlayers, G1IsLargeWithHighProbability) {
  // Lemma B.8 flavor: with inputs uniform over [2n], at least n/3 parties
  // are unique with probability >= 2/5 (empirically much higher).
  Rng rng(1);
  const int n = 32;
  int big = 0;
  constexpr int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    if (3 * UniqueInputPlayers(instance.inputs).size() >=
        static_cast<std::size_t>(n)) {
      ++big;
    }
  }
  EXPECT_GE(big, kTrials * 2 / 5);
}

TEST(GoodPlayers, EventGoodFrequentOnShortProtocolExecutions) {
  // For the trivial (short!) protocol on the one-sided channel, the event
  // G should hold for a constant fraction of executions (Lemma C.5 says
  // Pr[not G] <= 2/3).
  Rng rng(2);
  const OneSidedUpChannel channel(1.0 / 3.0);
  const int n = 16;
  const auto family = MakeInputSetFamily(n);
  int good_events = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const ExecutionResult run = Execute(*protocol, channel, rng);
    const auto good = GoodPlayers(*family, instance.inputs, run.shared());
    good_events += EventGoodHolds(good.size(), n);
  }
  EXPECT_GE(good_events, kTrials / 3);
}

}  // namespace
}  // namespace noisybeeps
