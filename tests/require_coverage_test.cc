// Negative tests for every NB_REQUIRE failure path documented on public
// constructors and factories: each API that documents a precondition and
// std::invalid_argument must actually throw it.  nblint's
// require-precondition rule checks the NB_REQUIRE is present; these tests
// check it fires.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "channel/adversary.h"
#include "channel/burst.h"
#include "channel/collision.h"
#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "coding/beep_code.h"
#include "coding/repetition_sim.h"
#include "ecc/codebook.h"
#include "ecc/concatenated.h"
#include "ecc/hadamard.h"
#include "ecc/interleaved.h"
#include "ecc/reed_solomon.h"
#include "ecc/repetition.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// --- channel constructors --------------------------------------------------

TEST(RequireCoverage, IndependentNoisyChannelRejectsBadEpsilon) {
  EXPECT_THROW(IndependentNoisyChannel(-0.01), std::invalid_argument);
  EXPECT_THROW(IndependentNoisyChannel(0.5), std::invalid_argument);
  EXPECT_NO_THROW(IndependentNoisyChannel(0.0));
  EXPECT_NO_THROW(IndependentNoisyChannel(0.49));
}

TEST(RequireCoverage, CorrelatedNoisyChannelRejectsBadEpsilon) {
  EXPECT_THROW(CorrelatedNoisyChannel(-0.01), std::invalid_argument);
  EXPECT_THROW(CorrelatedNoisyChannel(0.5), std::invalid_argument);
  EXPECT_NO_THROW(CorrelatedNoisyChannel(0.0));
}

TEST(RequireCoverage, OneSidedChannelsRejectBadEpsilon) {
  EXPECT_THROW(OneSidedUpChannel(-0.01), std::invalid_argument);
  EXPECT_THROW(OneSidedUpChannel(1.0), std::invalid_argument);
  EXPECT_THROW(OneSidedDownChannel(-0.01), std::invalid_argument);
  EXPECT_THROW(OneSidedDownChannel(1.0), std::invalid_argument);
  EXPECT_NO_THROW(OneSidedUpChannel(0.99));
  EXPECT_NO_THROW(OneSidedDownChannel(0.0));
}

TEST(RequireCoverage, CollisionChannelRejectsBadEpsilon) {
  EXPECT_THROW(CollisionAsSilenceChannel(-0.01), std::invalid_argument);
  EXPECT_THROW(CollisionAsSilenceChannel(0.5), std::invalid_argument);
  EXPECT_NO_THROW(CollisionAsSilenceChannel(0.0));
}

TEST(RequireCoverage, AdversarialChannelRejectsBadEpsilon) {
  EXPECT_THROW(
      AdversarialCorrectionChannel(-0.01, CorrectionPolicy::kNever),
      std::invalid_argument);
  EXPECT_THROW(
      AdversarialCorrectionChannel(0.5, CorrectionPolicy::kCorrectAll),
      std::invalid_argument);
  EXPECT_NO_THROW(
      AdversarialCorrectionChannel(0.2, CorrectionPolicy::kCorrectDrops));
}

TEST(RequireCoverage, SharedRandomnessAdapterRejectsBadRates) {
  EXPECT_THROW(SharedRandomnessOneSidedAdapter(-0.1, 0.1),
               std::invalid_argument);
  EXPECT_THROW(SharedRandomnessOneSidedAdapter(1.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(SharedRandomnessOneSidedAdapter(0.1, -0.1),
               std::invalid_argument);
  EXPECT_THROW(SharedRandomnessOneSidedAdapter(0.1, 1.0),
               std::invalid_argument);
  EXPECT_NO_THROW(SharedRandomnessOneSidedAdapter(0.1, 0.1));
}

TEST(RequireCoverage, BurstChannelRejectsBadParameters) {
  // Rates must be in [0, 1); transition probabilities in (0, 1].
  EXPECT_THROW(BurstNoisyChannel(-0.1, 0.3, 0.1, 0.5),
               std::invalid_argument);
  EXPECT_THROW(BurstNoisyChannel(0.1, 1.0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(BurstNoisyChannel(0.1, 0.3, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(BurstNoisyChannel(0.1, 0.3, 0.1, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(BurstNoisyChannel(0.01, 0.4, 0.05, 0.2));
}

// --- ECC parameter validation ----------------------------------------------

TEST(RequireCoverage, RepetitionCodeRejectsZeroRepetitions) {
  EXPECT_THROW(RepetitionCode(0), std::invalid_argument);
  EXPECT_NO_THROW(RepetitionCode(1));
}

TEST(RequireCoverage, HadamardCodeRejectsBadMessageBits) {
  EXPECT_THROW(HadamardCode(0), std::invalid_argument);
  EXPECT_THROW(HadamardCode(21), std::invalid_argument);
  EXPECT_NO_THROW(HadamardCode(1));
  EXPECT_NO_THROW(HadamardCode(8));
}

TEST(RequireCoverage, ReedSolomonRejectsBadSymbolCounts) {
  EXPECT_THROW(ReedSolomon(10, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(10, 10), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(256, 10), std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomon(255, 223));
}

TEST(RequireCoverage, InterleavedCodeRejectsBadArguments) {
  const auto inner = std::make_shared<const HadamardCode>(4);
  EXPECT_THROW(InterleavedCode(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(InterleavedCode(inner, 0), std::invalid_argument);
  EXPECT_NO_THROW(InterleavedCode(inner, 3));
}

TEST(RequireCoverage, ConcatenatedCodeRejectsNonByteInnerCode) {
  // The inner code must carry exactly 256 messages (one per RS symbol).
  EXPECT_THROW(
      ConcatenatedCode(ReedSolomon(10, 5),
                       std::make_shared<const HadamardCode>(4)),
      std::invalid_argument);
  EXPECT_NO_THROW(
      ConcatenatedCode(ReedSolomon(10, 5),
                       std::make_shared<const HadamardCode>(8)));
}

TEST(RequireCoverage, CodebookCodeRejectsDegenerateCodebooks) {
  EXPECT_THROW(CodebookCode(std::vector<BitString>{}),
               std::invalid_argument);
  EXPECT_THROW(CodebookCode({BitString({1, 0})}), std::invalid_argument);
  EXPECT_THROW(CodebookCode({BitString({1, 0}), BitString({1})}),
               std::invalid_argument);
  EXPECT_THROW(CodebookCode({BitString({1, 0}), BitString({1, 0})}),
               std::invalid_argument);
  EXPECT_NO_THROW(CodebookCode({BitString({1, 0}), BitString({0, 1})}));
}

TEST(RequireCoverage, BeepCodeRejectsBadParameters) {
  EXPECT_THROW(BeepCode(0, 6, 1), std::invalid_argument);
  EXPECT_THROW(BeepCode(8, 0, 1), std::invalid_argument);
  EXPECT_NO_THROW(BeepCode(8, 6, 1));
}

// --- simulators / parallel sweep -------------------------------------------

TEST(RequireCoverage, RepetitionSimulatorRejectsBadOptions) {
  EXPECT_THROW(RepetitionSimulator(RepetitionSimOptions{.rep_factor = -1}),
               std::invalid_argument);
}

TEST(RequireCoverage, ParallelTrialsRejectsNegativeCounts) {
  Rng rng(1);
  const auto body = [](int t, Rng&) { return t; };
  EXPECT_THROW((void)ParallelTrials(-1, rng, body), std::invalid_argument);
  EXPECT_THROW((void)ParallelTrials(4, rng, body, -1),
               std::invalid_argument);
  EXPECT_NO_THROW((void)ParallelTrials(4, rng, body, 0));
}

}  // namespace
}  // namespace noisybeeps
