#include "protocol/protocol_stats.h"

#include <gtest/gtest.h>

#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "tasks/or_vector.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(ProtocolStats, InputSetCounts) {
  // inputs {0, 2, 2} over universe 6: rounds 0 and 2 carry beeps; round 0
  // has a unique beeper, round 2 has two.
  const InputSetInstance instance{{0, 2, 2}};
  const auto protocol = MakeInputSetProtocol(instance);
  const ProtocolStats stats = ComputeProtocolStats(*protocol);
  EXPECT_EQ(stats.length, 6);
  EXPECT_EQ(stats.one_rounds, 2u);
  EXPECT_EQ(stats.unique_owner_rounds, 1u);
  EXPECT_EQ(stats.silent_rounds, 4u);
  EXPECT_EQ(stats.beeper_histogram[0], 4u);
  EXPECT_EQ(stats.beeper_histogram[1], 1u);
  EXPECT_EQ(stats.beeper_histogram[2], 1u);
  EXPECT_EQ(stats.beeper_histogram[3], 0u);
  EXPECT_NEAR(stats.transcript_density(), 2.0 / 6.0, 1e-12);
}

TEST(ProtocolStats, BitExchangeAllRoundsHaveAtMostOneBeeper) {
  Rng rng(1);
  const BitExchangeInstance instance = SampleBitExchange(5, 8, rng);
  const auto protocol = MakeBitExchangeProtocol(instance);
  const ProtocolStats stats = ComputeProtocolStats(*protocol);
  // Unique ownership is structural: a 1-round has exactly one beeper.
  EXPECT_EQ(stats.unique_owner_rounds, stats.one_rounds);
  for (std::size_t k = 2; k < stats.beeper_histogram.size(); ++k) {
    EXPECT_EQ(stats.beeper_histogram[k], 0u) << k;
  }
}

TEST(ProtocolStats, HistogramSumsToLength) {
  Rng rng(2);
  const OrVectorInstance instance = SampleOrVector(6, 40, 0.2, rng);
  const auto protocol = MakeOrVectorProtocol(instance);
  const ProtocolStats stats = ComputeProtocolStats(*protocol);
  std::size_t total = 0;
  for (std::size_t c : stats.beeper_histogram) total += c;
  EXPECT_EQ(total, static_cast<std::size_t>(stats.length));
  EXPECT_EQ(stats.one_rounds + stats.silent_rounds,
            static_cast<std::size_t>(stats.length));
}

TEST(ProtocolStats, DensityMatchesReferenceTranscript) {
  Rng rng(3);
  const OrVectorInstance instance = SampleOrVector(4, 60, 0.15, rng);
  const auto protocol = MakeOrVectorProtocol(instance);
  const ProtocolStats stats = ComputeProtocolStats(*protocol);
  const BitString pi = ReferenceTranscript(*protocol);
  EXPECT_EQ(stats.one_rounds, pi.PopCount());
}

}  // namespace
}  // namespace noisybeeps
