// nblint's flow-sensitive layer: CFG construction over the token model
// (cfg.h), edge-at-most-once path enumeration, and the generic worklist
// dataflow solver (dataflow.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "lint/cfg.h"
#include "lint/dataflow.h"
#include "lint/model.h"

namespace noisybeeps::lint {
namespace {

FileModel Model(std::string body) {
  return FileModel::Build({"src/util/cfg_fixture.cc", std::move(body)});
}

const FunctionInfo& DefinitionOf(const FileModel& file,
                                 const std::string& name) {
  for (const FunctionInfo& fn : file.functions()) {
    if (fn.name == name && fn.is_definition) return fn;
  }
  ADD_FAILURE() << "no definition of " << name;
  static const FunctionInfo kNone{};
  return kNone;
}

// Index of the first block with a statement whose first token is `text`,
// or kNpos.
std::size_t BlockStartingWith(const Cfg& cfg, const FileModel& file,
                              const std::string& text) {
  for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
    for (const CfgBlock::Stmt& stmt : cfg.blocks()[b].stmts) {
      if (stmt.begin < stmt.end &&
          file.tokens()[file.code()[stmt.begin]].text == text) {
        return b;
      }
    }
  }
  return kNpos;
}

std::size_t CountBranches(const Cfg& cfg) {
  std::size_t n = 0;
  for (const CfgBlock& block : cfg.blocks()) n += block.is_branch ? 1 : 0;
  return n;
}

// --- construction -----------------------------------------------------------

TEST(LintCfg, StraightLineBodyIsASinglePath) {
  const FileModel file = Model(
      "int F() {\n"
      "  int a = 1;\n"
      "  int b = 2;\n"
      "  return a + b;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  EXPECT_FALSE(cfg.fallback());
  EXPECT_EQ(CountBranches(cfg), 0u);
  EXPECT_EQ(EnumeratePaths(cfg, cfg.entry()).size(), 1u);
}

TEST(LintCfg, IfElseForksAndJoins) {
  const FileModel file = Model(
      "int F(bool p) {\n"
      "  int out = 0;\n"
      "  if (p) {\n"
      "    out = 1;\n"
      "  } else {\n"
      "    out = 2;\n"
      "  }\n"
      "  return out;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  EXPECT_FALSE(cfg.fallback());
  EXPECT_EQ(CountBranches(cfg), 1u);
  const std::size_t cond = BlockStartingWith(cfg, file, "p");
  ASSERT_NE(cond, kNpos);
  EXPECT_TRUE(cfg.blocks()[cond].is_branch);
  ASSERT_EQ(cfg.blocks()[cond].succs.size(), 2u);
  EXPECT_EQ(EnumeratePaths(cfg, cfg.entry()).size(), 2u);
}

TEST(LintCfg, ShortCircuitConditionsSplitIntoBranchChains) {
  // `a && b` tests b only when a holds: three paths through the if.
  const FileModel file = Model(
      "int F(bool a, bool b) {\n"
      "  if (a && b) return 1;\n"
      "  return 0;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  EXPECT_FALSE(cfg.fallback());
  EXPECT_EQ(CountBranches(cfg), 2u);
  EXPECT_EQ(EnumeratePaths(cfg, cfg.entry()).size(), 3u);

  // `!(a || b)` negates: the then-arm runs only when both tests fail.
  const FileModel neg = Model(
      "int F(bool a, bool b) {\n"
      "  if (!(a || b)) return 1;\n"
      "  return 0;\n"
      "}\n");
  const Cfg ncfg = Cfg::Build(neg, DefinitionOf(neg, "F"));
  EXPECT_EQ(CountBranches(ncfg), 2u);
  EXPECT_EQ(EnumeratePaths(ncfg, ncfg.entry()).size(), 3u);
}

TEST(LintCfg, LoopsContributeSkippedAndOnceThroughPaths) {
  const FileModel file = Model(
      "int F(int n) {\n"
      "  int total = 0;\n"
      "  while (n > 0) {\n"
      "    total += n;\n"
      "    n -= 1;\n"
      "  }\n"
      "  return total;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  EXPECT_FALSE(cfg.fallback());
  // Edge-at-most-once enumeration: body skipped, body taken once.
  EXPECT_EQ(EnumeratePaths(cfg, cfg.entry()).size(), 2u);

  const FileModel ranged = Model(
      "int F(const std::vector<int>& xs) {\n"
      "  int total = 0;\n"
      "  for (const int x : xs) total += x;\n"
      "  return total;\n"
      "}\n");
  const Cfg rcfg = Cfg::Build(ranged, DefinitionOf(ranged, "F"));
  EXPECT_FALSE(rcfg.fallback());
  EXPECT_EQ(CountBranches(rcfg), 1u);
  EXPECT_EQ(EnumeratePaths(rcfg, rcfg.entry()).size(), 2u);
}

TEST(LintCfg, EarlyReturnEdgesGoStraightToExit) {
  const FileModel file = Model(
      "int F(bool p) {\n"
      "  int rest = 0;\n"
      "  if (p) return 7;\n"
      "  rest = 1;\n"
      "  return rest;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  const auto paths = EnumeratePaths(cfg, cfg.entry());
  ASSERT_EQ(paths.size(), 2u);
  // Every enumerated path ends at the exit block.
  for (const auto& path : paths) {
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), cfg.exit());
  }
  // The early-return path never reaches the `rest` statement.
  const std::size_t rest = BlockStartingWith(cfg, file, "rest");
  ASSERT_NE(rest, kNpos);
  std::size_t through = 0;
  for (const auto& path : paths) {
    for (const std::size_t b : path) through += b == rest ? 1 : 0;
  }
  EXPECT_EQ(through, 1u);
}

TEST(LintCfg, SwitchArmsBranchFromTheHeadAndFallThrough) {
  const FileModel file = Model(
      "int F(int k) {\n"
      "  int out = 0;\n"
      "  switch (k) {\n"
      "    case 0:\n"
      "      out = 1;\n"
      "      break;\n"
      "    case 1:\n"
      "      out = 2;\n"
      "      break;\n"
      "    default:\n"
      "      out = 3;\n"
      "  }\n"
      "  return out;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  EXPECT_FALSE(cfg.fallback());
  // One path per arm; with a default the head has no direct skip edge.
  EXPECT_GE(EnumeratePaths(cfg, cfg.entry()).size(), 3u);
}

TEST(LintCfg, DeclarationsAndUnparseableBodiesDegradeToTheFallback) {
  const FileModel file = Model("int F(bool p);\n");
  ASSERT_EQ(file.functions().size(), 1u);
  EXPECT_FALSE(file.functions()[0].is_definition);
  const Cfg cfg = Cfg::Build(file, file.functions()[0]);
  EXPECT_TRUE(cfg.fallback());
  ASSERT_EQ(cfg.blocks().size(), 3u);
  EXPECT_EQ(EnumeratePaths(cfg, cfg.entry()).size(), 1u);
}

TEST(LintCfg, StmtLineReportsTheFirstTokenLine) {
  const FileModel file = Model(
      "int F() {\n"
      "  int a = 1;\n"
      "  return a;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  const std::size_t b = BlockStartingWith(cfg, file, "int");
  ASSERT_NE(b, kNpos);
  EXPECT_EQ(cfg.StmtLine(file, cfg.blocks()[b].stmts.front()), 2);
  EXPECT_EQ(cfg.StmtLine(file, CfgBlock::Stmt{}), 0);
}

TEST(LintCfg, PathEnumerationHonorsItsCaps) {
  // Four sequential ifs: 16 paths uncapped.
  const FileModel file = Model(
      "int F(bool a, bool b, bool c, bool d) {\n"
      "  int out = 0;\n"
      "  if (a) out += 1;\n"
      "  if (b) out += 2;\n"
      "  if (c) out += 4;\n"
      "  if (d) out += 8;\n"
      "  return out;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  EXPECT_EQ(EnumeratePaths(cfg, cfg.entry()).size(), 16u);
  EXPECT_EQ(EnumeratePaths(cfg, cfg.entry(), 5).size(), 5u);
  EXPECT_TRUE(EnumeratePaths(cfg, cfg.blocks().size() + 1).empty());
}

// --- the worklist solver ----------------------------------------------------

// Forward analysis over an if/else: bit 1 is generated in the then-arm
// only.  A may-analysis (join = OR) sees it at the join; a must-analysis
// (join = AND, top = full set) does not.
TEST(LintDataflow, MayAndMustJoinsDisagreeAcrossAnIfArm) {
  const FileModel file = Model(
      "int F(bool p) {\n"
      "  int out = 0;\n"
      "  if (p) {\n"
      "    gen();\n"
      "  } else {\n"
      "    out = 2;\n"
      "  }\n"
      "  return out;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  const std::size_t gen = BlockStartingWith(cfg, file, "gen");
  const std::size_t ret = BlockStartingWith(cfg, file, "return");
  ASSERT_NE(gen, kNpos);
  ASSERT_NE(ret, kNpos);

  DataflowSpec may;
  may.top = 0;
  may.join = [](std::uint64_t a, std::uint64_t b) { return a | b; };
  may.transfer = [gen](std::size_t block, std::uint64_t in) {
    return block == gen ? (in | 1u) : in;
  };
  const std::vector<std::uint64_t> may_in = Solve(cfg, may);
  EXPECT_EQ(may_in[ret] & 1u, 1u);

  DataflowSpec must;
  must.join = [](std::uint64_t a, std::uint64_t b) { return a & b; };
  must.transfer = may.transfer;
  const std::vector<std::uint64_t> must_in = Solve(cfg, must);
  EXPECT_EQ(must_in[ret] & 1u, 0u);

  // Generated on BOTH arms, the must-analysis agrees again.
  DataflowSpec both = must;
  const std::size_t other = BlockStartingWith(cfg, file, "out");
  both.transfer = [&](std::size_t block, std::uint64_t in) {
    return (block == gen || block == other) ? (in | 1u) : in;
  };
  EXPECT_EQ(Solve(cfg, both)[ret] & 1u, 1u);
}

TEST(LintDataflow, BackwardAnalysisPropagatesAgainstTheEdges) {
  // Liveness-style: bit 1 generated at the final return, visible at the
  // entry block's OUT (the solver reports pre-transfer values backward).
  const FileModel file = Model(
      "int F(bool p) {\n"
      "  int a = 1;\n"
      "  if (p) a = 2;\n"
      "  return a;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  const std::size_t ret = BlockStartingWith(cfg, file, "return");
  ASSERT_NE(ret, kNpos);
  ASSERT_NE(ret, cfg.entry());
  DataflowSpec live;
  live.backward = true;
  live.top = 0;
  live.join = [](std::uint64_t a, std::uint64_t b) { return a | b; };
  live.transfer = [ret](std::size_t block, std::uint64_t in) {
    return block == ret ? (in | 1u) : in;
  };
  const std::vector<std::uint64_t> out = Solve(cfg, live);
  EXPECT_EQ(out[cfg.entry()] & 1u, 1u);
}

TEST(LintDataflow, LoopsReachAFixedPoint) {
  // A kill inside the loop body must drain the must-set at the loop head
  // even though the back edge feeds the head twice.
  const FileModel file = Model(
      "int F(int n) {\n"
      "  while (n > 0) {\n"
      "    kill();\n"
      "    n -= 1;\n"
      "  }\n"
      "  return n;\n"
      "}\n");
  const Cfg cfg = Cfg::Build(file, DefinitionOf(file, "F"));
  const std::size_t kill = BlockStartingWith(cfg, file, "kill");
  const std::size_t ret = BlockStartingWith(cfg, file, "return");
  ASSERT_NE(kill, kNpos);
  ASSERT_NE(ret, kNpos);
  DataflowSpec must;
  must.boundary = 1;  // the lock is held on entry...
  must.join = [](std::uint64_t a, std::uint64_t b) { return a & b; };
  must.transfer = [kill](std::size_t block, std::uint64_t in) {
    return block == kill ? (in & ~std::uint64_t{1}) : in;
  };
  // ...but the loop may release it, so after the loop it is not a must.
  EXPECT_EQ(Solve(cfg, must)[ret] & 1u, 0u);
}

// --- width classification ---------------------------------------------------

TEST(LintDataflow, IntWidthOfTypeClassifiesTheSizedSpellings) {
  EXPECT_EQ(IntWidthOfType("std::int64_t"), 64);
  EXPECT_EQ(IntWidthOfType("int64_t"), 64);
  EXPECT_EQ(IntWidthOfType("std::uint64_t"), 64);
  EXPECT_EQ(IntWidthOfType("std::size_t"), 64);
  EXPECT_EQ(IntWidthOfType("size_t"), 64);
  EXPECT_EQ(IntWidthOfType("std::ptrdiff_t"), 64);
  EXPECT_EQ(IntWidthOfType("int"), 32);
  EXPECT_EQ(IntWidthOfType("unsigned"), 32);
  EXPECT_EQ(IntWidthOfType("std::int32_t"), 32);
  EXPECT_EQ(IntWidthOfType("uint32_t"), 32);
  EXPECT_EQ(IntWidthOfType("double"), 0);
  EXPECT_EQ(IntWidthOfType("Rng"), 0);
  EXPECT_EQ(IntWidthOfType(""), 0);
}

}  // namespace
}  // namespace noisybeeps::lint
