#include "ecc/interleaved.h"

#include <gtest/gtest.h>

#include <memory>

#include "ecc/hamming.h"
#include "ecc/codebook.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

std::shared_ptr<const BinaryCode> Inner() {
  return std::make_shared<HammingCode>(false);  // [7,4,3]
}

TEST(InterleavedCode, Dimensions) {
  const InterleavedCode code(Inner(), 5);
  EXPECT_EQ(code.depth(), 5);
  EXPECT_EQ(code.codeword_length(), 35u);
}

TEST(InterleavedCode, ValidatesParameters) {
  EXPECT_THROW(InterleavedCode(nullptr, 3), std::invalid_argument);
  EXPECT_THROW(InterleavedCode(Inner(), 0), std::invalid_argument);
  const InterleavedCode code(Inner(), 2);
  EXPECT_THROW((void)code.Encode({1}), std::invalid_argument);
  EXPECT_THROW((void)code.Decode(BitString(13)), std::invalid_argument);
}

TEST(InterleavedCode, CleanRoundTrip) {
  Rng rng(1);
  const InterleavedCode code(Inner(), 4);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> messages(4);
    for (auto& m : messages) m = rng.UniformInt(16);
    EXPECT_EQ(code.Decode(code.Encode(messages)), messages);
  }
}

TEST(InterleavedCode, ColumnMajorLayout) {
  // Bit b of inner word w sits at position b*depth + w.
  const InterleavedCode code(Inner(), 3);
  const std::vector<std::uint64_t> messages{3, 9, 14};
  const BitString combined = code.Encode(messages);
  for (int w = 0; w < 3; ++w) {
    const BitString word = code.inner().Encode(messages[w]);
    for (std::size_t b = 0; b < 7; ++b) {
      EXPECT_EQ(combined[b * 3 + w], word[b]) << w << " " << b;
    }
  }
}

TEST(InterleavedCode, BurstSpreadAcrossWords) {
  // A burst of length <= depth hits each inner word at most once, and
  // Hamming corrects single errors: ANY burst of `depth` consecutive
  // flips decodes cleanly.
  Rng rng(2);
  const int depth = 6;
  const InterleavedCode code(Inner(), depth);
  std::vector<std::uint64_t> messages(depth);
  for (auto& m : messages) m = rng.UniformInt(16);
  const BitString clean = code.Encode(messages);
  for (std::size_t start = 0; start + depth <= clean.size(); ++start) {
    BitString burst = clean;
    for (std::size_t p = start; p < start + depth; ++p) {
      burst.Set(p, !burst[p]);
    }
    EXPECT_EQ(code.Decode(burst), messages) << "burst at " << start;
  }
}

TEST(InterleavedCode, WithoutInterleavingTheSameBurstKills) {
  // Control: the same burst inside a single inner codeword (depth 1)
  // exceeds Hamming's radius and corrupts the message.
  Rng rng(3);
  const InterleavedCode flat(Inner(), 1);
  int corrupted = 0;
  for (int trial = 0; trial < 16; ++trial) {
    const std::vector<std::uint64_t> messages{rng.UniformInt(16)};
    BitString word = flat.Encode(messages);
    for (std::size_t p = 0; p < 4; ++p) word.Set(p, !word[p]);
    corrupted += flat.Decode(word) != messages;
  }
  EXPECT_GE(corrupted, 12);
}

TEST(InterleavedCode, WorksWithCodebookInner) {
  Rng rng(4);
  const auto inner = std::make_shared<CodebookCode>(
      CodebookCode::Random(33, 30, 9));
  const InterleavedCode code(inner, 3);
  std::vector<std::uint64_t> messages{0, 17, 32};
  EXPECT_EQ(code.Decode(code.Encode(messages)), messages);
}

}  // namespace
}  // namespace noisybeeps
