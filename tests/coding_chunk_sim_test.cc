#include "coding/chunk_sim.h"

#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "coding/owner_finding.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(ChunkSim, NoiselessChunkMatchesReferenceSlice) {
  Rng rng(1);
  const NoiselessChannel channel;
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const BitString reference = ReferenceTranscript(*protocol);

  RoundEngine engine(channel, rng, 8);
  const std::vector<BitString> committed(8, BitString());
  const ChunkAttempt attempt =
      SimulateChunk(*protocol, committed, 0, 8, 3, nullptr, engine);
  ASSERT_EQ(attempt.candidate.size(), 8u);
  for (const BitString& c : attempt.candidate) {
    EXPECT_EQ(c, reference.Prefix(8));
  }
  EXPECT_TRUE(attempt.owners.empty());
}

TEST(ChunkSim, MidProtocolChunkUsesCommittedPrefix) {
  Rng rng(2);
  const NoiselessChannel channel;
  const InputSetInstance instance = SampleInputSet(6, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const BitString reference = ReferenceTranscript(*protocol);

  RoundEngine engine(channel, rng, 6);
  const std::vector<BitString> committed(6, reference.Prefix(5));
  const ChunkAttempt attempt =
      SimulateChunk(*protocol, committed, 5, 4, 1, nullptr, engine);
  for (const BitString& c : attempt.candidate) {
    EXPECT_EQ(c, reference.Substring(5, 9));
  }
}

TEST(ChunkSim, BeepHistoryMatchesPartyFunctions) {
  Rng rng(3);
  const NoiselessChannel channel;
  const BitExchangeInstance instance = SampleBitExchange(4, 3, rng);
  const auto protocol = MakeBitExchangeProtocol(instance);
  RoundEngine engine(channel, rng, 4);
  const std::vector<BitString> committed(4, BitString());
  const ChunkAttempt attempt =
      SimulateChunk(*protocol, committed, 0, 12, 1, nullptr, engine);
  // Replay and compare the recorded beep history.
  for (int i = 0; i < 4; ++i) {
    BitString prefix;
    for (int m = 0; m < 12; ++m) {
      EXPECT_EQ(attempt.beeped[i][m], protocol->party(i).ChooseBeep(prefix));
      prefix.PushBack(attempt.candidate[i][m]);
    }
  }
}

TEST(ChunkSim, OwnerPhaseProducesValidOwnersNoiselessly) {
  Rng rng(4);
  const NoiselessChannel channel;
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const BitString reference = ReferenceTranscript(*protocol);
  const BeepCode code(16, 6, 11);
  RoundEngine engine(channel, rng, 8);
  const std::vector<BitString> committed(8, BitString());
  const ChunkAttempt attempt =
      SimulateChunk(*protocol, committed, 0, 16, 1, &code, engine);
  ASSERT_EQ(attempt.owners.size(), 8u);
  OwnerFindingResult as_result;
  as_result.owners = attempt.owners;
  EXPECT_TRUE(OwnersValid(as_result, reference.Prefix(16), attempt.beeped));
}

TEST(ChunkSim, RepetitionDefendsAgainstNoise) {
  Rng rng(5);
  const CorrelatedNoisyChannel channel(0.1);
  const InputSetInstance instance = SampleInputSet(12, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const BitString reference = ReferenceTranscript(*protocol);
  int good = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    RoundEngine engine(channel, rng, 12);
    const std::vector<BitString> committed(12, BitString());
    const ChunkAttempt attempt =
        SimulateChunk(*protocol, committed, 0, 24, 17, nullptr, engine);
    good += attempt.candidate[0] == reference;
  }
  EXPECT_GE(good, kTrials - 1);
}

TEST(ChunkSim, ValidatesArguments) {
  Rng rng(6);
  const NoiselessChannel channel;
  const InputSetInstance instance = SampleInputSet(4, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  RoundEngine engine(channel, rng, 4);
  const std::vector<BitString> committed(4, BitString());
  // Chunk beyond the protocol end.
  EXPECT_THROW((void)SimulateChunk(*protocol, committed, 0, 9, 1, nullptr,
                                   engine),
               std::invalid_argument);
  // rep_factor must be positive.
  EXPECT_THROW((void)SimulateChunk(*protocol, committed, 0, 4, 0, nullptr,
                                   engine),
               std::invalid_argument);
  // Committed prefixes must match `start`.
  EXPECT_THROW((void)SimulateChunk(*protocol, committed, 2, 2, 1, nullptr,
                                   engine),
               std::invalid_argument);
  // Owner code sized for a different chunk length.
  const BeepCode code(5, 4, 1);
  EXPECT_THROW((void)SimulateChunk(*protocol, committed, 0, 4, 1, &code,
                                   engine),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
