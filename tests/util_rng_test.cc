#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace noisybeeps {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(Rng, UniformIntZeroBoundThrows) {
  Rng rng(4);
  EXPECT_THROW(rng.UniformInt(0), std::invalid_argument);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformInt(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected)) << b;
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesRate) {
  Rng rng(7);
  for (double p : {0.0, 0.1, 0.333, 0.5, 0.9, 1.0}) {
    int hits = 0;
    constexpr int kSamples = 40000;
    for (int i = 0; i < kSamples; ++i) hits += rng.Bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, p, 0.01) << p;
  }
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(8);
  EXPECT_THROW(rng.Bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.Bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, BitIsBalanced) {
  Rng rng(9);
  int ones = 0;
  for (int i = 0; i < 40000; ++i) ones += rng.Bit();
  EXPECT_NEAR(ones / 40000.0, 0.5, 0.01);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng parent(10);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.NextU64() == child.NextU64();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(11);
  Rng b(11);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

TEST(Rng, SaveRestoreResumesIdenticalStream) {
  Rng rng(77);
  for (int i = 0; i < 13; ++i) (void)rng.NextU64();  // mid-stream state
  const std::array<std::uint64_t, 4> state = rng.SaveState();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(rng.NextU64());
  Rng restored = Rng::Restore(state);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(restored.NextU64(), expected[i]);
  // Splits resume identically too (checkpoint/resume depends on this).
  Rng again = Rng::Restore(state);
  Rng child_a = Rng::Restore(state).Split();
  Rng child_b = again.Split();
  EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
}

TEST(Rng, RestoreRejectsAllZeroState) {
  EXPECT_THROW((void)Rng::Restore({0, 0, 0, 0}), std::invalid_argument);
}

TEST(Rng, NoShortCycles) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(rng.NextU64()).second) << "cycle at " << i;
  }
}

}  // namespace
}  // namespace noisybeeps
