#include "util/rng.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <stdexcept>
#include <vector>

namespace noisybeeps {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(Rng, UniformIntZeroBoundThrows) {
  Rng rng(4);
  EXPECT_THROW(rng.UniformInt(0), std::invalid_argument);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformInt(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected)) << b;
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesRate) {
  Rng rng(7);
  for (double p : {0.0, 0.1, 0.333, 0.5, 0.9, 1.0}) {
    int hits = 0;
    constexpr int kSamples = 40000;
    for (int i = 0; i < kSamples; ++i) hits += rng.Bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, p, 0.01) << p;
  }
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(8);
  EXPECT_THROW(rng.Bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.Bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, BitIsBalanced) {
  Rng rng(9);
  int ones = 0;
  for (int i = 0; i < 40000; ++i) ones += rng.Bit();
  EXPECT_NEAR(ones / 40000.0, 0.5, 0.01);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng parent(10);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.NextU64() == child.NextU64();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(11);
  Rng b(11);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

TEST(Rng, SaveRestoreResumesIdenticalStream) {
  Rng rng(77);
  for (int i = 0; i < 13; ++i) (void)rng.NextU64();  // mid-stream state
  const std::array<std::uint64_t, 4> state = rng.SaveState();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(rng.NextU64());
  Rng restored = Rng::Restore(state);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(restored.NextU64(), expected[i]);
  // Splits resume identically too (checkpoint/resume depends on this).
  Rng again = Rng::Restore(state);
  Rng child_a = Rng::Restore(state).Split();
  Rng child_b = again.Split();
  EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
}

TEST(Rng, RestoreRejectsAllZeroState) {
  EXPECT_THROW((void)Rng::Restore({0, 0, 0, 0}), std::invalid_argument);
}

TEST(Rng, NoShortCycles) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(rng.NextU64()).second) << "cycle at " << i;
  }
}

// The p values the fixed-point threshold must get exactly right: the
// endpoints, subnormal-adjacent values, values just below/above exactly
// representable thresholds, and a spread of "ordinary" rates.
std::vector<double> ThresholdSweep() {
  const double denorm = std::numeric_limits<double>::denorm_min();
  std::vector<double> ps = {
      0.0,
      denorm,                            // smallest positive double
      2.0 * denorm,
      std::numeric_limits<double>::min(),  // smallest normal
      1e-300,
      0x1.0p-53,                         // exactly one 53-bit grain
      std::nextafter(0x1.0p-53, 0.0),
      std::nextafter(0x1.0p-53, 1.0),
      1e-9,
      0.1,
      1.0 / 3.0,
      0.25,
      std::nextafter(0.25, 0.0),
      std::nextafter(0.25, 1.0),
      0.5,
      0.75,
      0.9,
      std::nextafter(1.0, 0.0),          // largest double below 1
      1.0,
  };
  return ps;
}

TEST(Rng, BernoulliThresholdAgreesWithDoubleCompareForAllGrains) {
  // For every p in the sweep and every interesting 53-bit draw k, the
  // integer compare k < t(p) must agree with the historical double
  // compare k * 2^-53 < p.  The ks probe both sides of the threshold and
  // both ends of the draw range.
  constexpr std::uint64_t kMaxDraw = (1ULL << 53) - 1;
  for (double p : ThresholdSweep()) {
    const std::uint64_t t = BernoulliThreshold(p);
    ASSERT_LE(t, 1ULL << 53) << p;
    std::vector<std::uint64_t> ks = {0, 1, 2, kMaxDraw - 1, kMaxDraw};
    for (std::uint64_t around : {t}) {
      for (std::uint64_t delta : {0ULL, 1ULL, 2ULL}) {
        if (around >= delta) ks.push_back(around - delta);
        if (around + delta <= kMaxDraw) ks.push_back(around + delta);
      }
    }
    for (std::uint64_t k : ks) {
      const bool fixed_point = k < t;
      const bool reference = std::ldexp(static_cast<double>(k), -53) < p;
      EXPECT_EQ(fixed_point, reference) << "p=" << p << " k=" << k;
    }
  }
}

TEST(Rng, BernoulliIsBitIdenticalToUniformDoublePath) {
  // Stream-level property: Rng::Bernoulli must produce exactly the
  // decisions the historical `UniformDouble() < p` path produced, from
  // the same generator state, for every p and seed.
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    for (double p : ThresholdSweep()) {
      Rng historical(seed);
      Rng fixed_point(seed);
      for (int i = 0; i < 512; ++i) {
        const bool reference = historical.UniformDouble() < p;
        EXPECT_EQ(fixed_point.Bernoulli(p), reference)
            << "seed=" << seed << " p=" << p << " draw=" << i;
      }
    }
  }
}

TEST(Rng, BernoulliSamplerIsBitIdenticalToBernoulli) {
  for (std::uint64_t seed : {7ULL, 123456789ULL}) {
    for (double p : ThresholdSweep()) {
      const BernoulliSampler sampler(p);
      EXPECT_EQ(sampler.p(), p);
      EXPECT_EQ(sampler.threshold(), BernoulliThreshold(p));
      Rng direct(seed);
      Rng sampled(seed);
      for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(sampler.Sample(sampled), direct.Bernoulli(p))
            << "seed=" << seed << " p=" << p << " draw=" << i;
      }
      // Both paths consumed the same number of draws.
      EXPECT_EQ(sampled.NextU64(), direct.NextU64());
    }
  }
}

TEST(Rng, BernoulliThresholdEndpoints) {
  EXPECT_EQ(BernoulliThreshold(0.0), 0u);
  EXPECT_EQ(BernoulliThreshold(1.0), 1ULL << 53);
  // The smallest positive double still gets a nonzero threshold (it must
  // be able to fire), and probabilities below one grain round up.
  EXPECT_EQ(BernoulliThreshold(std::numeric_limits<double>::denorm_min()),
            1u);
  EXPECT_EQ(BernoulliThreshold(0x1.0p-53), 1u);
  EXPECT_EQ(BernoulliThreshold(0.5), 1ULL << 52);
  EXPECT_THROW((void)BernoulliThreshold(-0.1), std::invalid_argument);
  EXPECT_THROW((void)BernoulliThreshold(1.5), std::invalid_argument);
  EXPECT_THROW(BernoulliSampler(2.0), std::invalid_argument);
}

// --- BernoulliWordSampler: 64 exact Bernoulli lanes per call -------------

TEST(BernoulliWordSampler, EndpointsConsumeNoRandomness) {
  Rng rng(7);
  const auto before = rng.SaveState();
  BernoulliWordSampler zero(0.0);
  EXPECT_EQ(zero.NoiseWord(rng), 0u);
  EXPECT_EQ(rng.SaveState(), before);
  BernoulliWordSampler one(1.0);
  EXPECT_EQ(one.NoiseWord(rng), ~std::uint64_t{0});
  EXPECT_EQ(rng.SaveState(), before);
}

TEST(BernoulliWordSampler, DeterministicFromTheSameState) {
  BernoulliWordSampler sampler(0.3);
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sampler.NoiseWord(a), sampler.NoiseWord(b));
  }
}

TEST(BernoulliWordSampler, LaneMarginalMatchesTheProbability) {
  // Each of the 64 lanes must be Bernoulli(p) exactly; check the pooled
  // empirical rate against a 5-sigma band.
  for (double p : {0.05, 0.5, 0.9}) {
    BernoulliWordSampler sampler(p);
    Rng rng(20260808);
    const int kWords = 4000;
    std::int64_t ones = 0;
    for (int i = 0; i < kWords; ++i) {
      ones += std::popcount(sampler.NoiseWord(rng));
    }
    const double trials = 64.0 * kWords;
    const double sigma = std::sqrt(p * (1.0 - p) * trials);
    EXPECT_NEAR(static_cast<double>(ones), p * trials, 5.0 * sigma)
        << "p=" << p;
  }
}

TEST(BernoulliWordSampler, LanesAreIndependentAcrossCalls) {
  // Adjacent words must not be correlated: the XOR of two consecutive
  // draws at p=0.5 is itself Bernoulli(0.5) per lane.
  BernoulliWordSampler sampler(0.5);
  Rng rng(11);
  std::int64_t ones = 0;
  const int kPairs = 2000;
  for (int i = 0; i < kPairs; ++i) {
    ones += std::popcount(sampler.NoiseWord(rng) ^ sampler.NoiseWord(rng));
  }
  const double trials = 64.0 * kPairs;
  const double sigma = std::sqrt(0.25 * trials);
  EXPECT_NEAR(static_cast<double>(ones), 0.5 * trials, 5.0 * sigma);
}

// --- GeometricSkipSampler: gaps between Bernoulli successes --------------

TEST(GeometricSkipSampler, EndpointsConsumeNoRandomness) {
  Rng rng(7);
  const auto before = rng.SaveState();
  GeometricSkipSampler never(0.0);
  EXPECT_EQ(never.NextGap(rng), GeometricSkipSampler::kNoSuccess);
  EXPECT_EQ(rng.SaveState(), before);
  GeometricSkipSampler always(1.0);
  EXPECT_EQ(always.NextGap(rng), 0u);
  EXPECT_EQ(rng.SaveState(), before);
}

TEST(GeometricSkipSampler, MeanGapMatchesTheGeometricDistribution) {
  // E[gap] = (1-p)/p for the number of failures before a success.
  for (double p : {0.5, 0.05, 0.004}) {
    GeometricSkipSampler sampler(p);
    Rng rng(20260808);
    const int kDraws = 20000;
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const std::uint64_t gap = sampler.NextGap(rng);
      ASSERT_NE(gap, GeometricSkipSampler::kNoSuccess);
      sum += static_cast<double>(gap);
    }
    const double mean = sum / kDraws;
    const double expect = (1.0 - p) / p;
    // Var[gap] = (1-p)/p^2; 5-sigma band on the sample mean.
    const double sigma = std::sqrt((1.0 - p) / (p * p) / kDraws);
    EXPECT_NEAR(mean, expect, 5.0 * sigma) << "p=" << p;
  }
}

TEST(GeometricSkipSampler, OneDrawPerGap) {
  GeometricSkipSampler sampler(0.01);
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    (void)sampler.NextGap(a);
    (void)b.NextU64();
  }
  EXPECT_EQ(a.SaveState(), b.SaveState());
}

}  // namespace
}  // namespace noisybeeps

