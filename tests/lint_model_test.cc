// Structural-model additions that arrived with the flow-sensitive engine:
// named-lambda recognition, constructor member-brace-init handling, and
// the integer spellings in the declared-type map (model.h).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "lint/callgraph.h"
#include "lint/model.h"

namespace noisybeeps::lint {
namespace {

FileModel Model(std::string body) {
  return FileModel::Build({"src/util/model_fixture.cc", std::move(body)});
}

const FunctionInfo* Definition(const FileModel& file,
                               const std::string& name) {
  for (const FunctionInfo& fn : file.functions()) {
    if (fn.name == name && fn.is_definition) return &fn;
  }
  return nullptr;
}

// --- named lambdas ----------------------------------------------------------

TEST(LintModelLambdas, NamespaceScopeLambdaIsADefinition) {
  const FileModel file = Model(
      "namespace noisybeeps {\n"
      "auto Twice = [](int x) { return x * 2; };\n"
      "}  // namespace noisybeeps\n");
  const FunctionInfo* fn = Definition(file, "Twice");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->qualified_name, "Twice");
  EXPECT_EQ(fn->class_name, "");
  EXPECT_EQ(fn->line, 2);
  // The body range brackets the lambda body, not the whole initializer.
  ASSERT_NE(fn->body_begin, kNpos);
  ASSERT_NE(fn->body_end, kNpos);
  EXPECT_LT(fn->body_begin, fn->body_end);
  EXPECT_EQ(file.tokens()[fn->params_begin].text, "(");
  EXPECT_EQ(file.tokens()[fn->params_end].text, ")");
}

TEST(LintModelLambdas, CaptureOnlyLambdaGetsAnEmptyParamRange) {
  const FileModel file = Model(
      "int g_total = 0;\n"
      "auto Bump = [] { g_total += 1; };\n");
  const FunctionInfo* fn = Definition(file, "Bump");
  ASSERT_NE(fn, nullptr);
  // Both ends point at the capture's ']': a well-formed empty range.
  EXPECT_EQ(fn->params_begin, fn->params_end);
  EXPECT_EQ(file.tokens()[fn->params_begin].text, "]");
}

TEST(LintModelLambdas, SpecifiersBetweenParamsAndBodyAreSkipped) {
  const FileModel file = Model(
      "auto Scale = [](double x) mutable noexcept -> double {\n"
      "  return x * 0.5;\n"
      "};\n");
  const FunctionInfo* fn = Definition(file, "Scale");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->is_definition);
}

TEST(LintModelLambdas, BracketedInitializersAreNotLambdas) {
  // `ident = [...]` with no body following must record nothing.
  const FileModel file = Model(
      "int pick = table[0];\n"
      "int slot = [kIndex];\n");
  EXPECT_EQ(Definition(file, "pick"), nullptr);
  EXPECT_EQ(Definition(file, "slot"), nullptr);
}

// Call sites inside a named lambda's body attribute to the lambda node and
// resolve exactly, so effect closures flow through it.
TEST(LintModelLambdas, CallGraphResolvesEdgesThroughLambdaBodies) {
  const std::vector<SourceFile> sources = {
      {"src/util/helpers.cc",
       "int Helper(int x) { return x + 1; }\n"
       "auto Apply = [](int x) { return Helper(x); };\n"},
  };
  const RepoModel repo(sources);
  const CallGraph graph = CallGraph::Build(repo);
  const std::size_t apply = graph.FindNode("Apply");
  ASSERT_NE(apply, kNpos);
  const CallNode& node = graph.nodes()[apply];
  ASSERT_EQ(node.edges.size(), 1u);
  EXPECT_EQ(node.edges[0].site.callee, "Helper");
  EXPECT_EQ(node.edges[0].resolution, Resolution::kExact);
  ASSERT_EQ(node.edges[0].targets.size(), 1u);
  EXPECT_EQ(graph.nodes()[node.edges[0].targets[0]].name, "Helper");
}

// --- constructor member initializers ----------------------------------------

TEST(LintModelCtors, MemberBraceInitsAreNotTheBody) {
  const FileModel file = Model(
      "struct Widget {\n"
      "  Widget() : count_{1}, scale_{0.5} { count_ += 1; }\n"
      "  int count_;\n"
      "  double scale_;\n"
      "};\n");
  const FunctionInfo* ctor = Definition(file, "Widget");
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->class_name, "Widget");
  // The body must start at the brace AFTER the init list, i.e. the body
  // range contains the `+=` statement and not the member initializers.
  bool saw_bump = false;
  for (std::size_t t = ctor->body_begin; t <= ctor->body_end; ++t) {
    if (file.tokens()[t].text == "+=") saw_bump = true;
    EXPECT_NE(file.tokens()[t].text, "0.5")
        << "body range swallowed the init list";
  }
  EXPECT_TRUE(saw_bump);
}

// --- integer spellings in the declared-type map -----------------------------

TEST(LintModelTypes, SizedAndPlainIntSpellingsAreRecorded) {
  const FileModel file = Model(
      "void F() {\n"
      "  int count = 0;\n"
      "  unsigned mask = 0;\n"
      "  std::int64_t total = 0;\n"
      "  std::size_t length = 0;\n"
      "  int64_t raw = 0;\n"
      "  uint32_t small = 0;\n"
      "}\n");
  const auto& types = file.value_types();
  EXPECT_EQ(types.at("count"), "int");
  EXPECT_EQ(types.at("mask"), "unsigned");
  EXPECT_EQ(types.at("total"), "std::int64_t");
  EXPECT_EQ(types.at("length"), "std::size_t");
  EXPECT_EQ(types.at("raw"), "int64_t");
  EXPECT_EQ(types.at("small"), "uint32_t");
}

TEST(LintModelTypes, MultiWordIntegerSpellingsStayUntyped) {
  const FileModel file = Model(
      "void F() {\n"
      "  unsigned long long wide = 0;\n"
      "  long int lengthy = 0;\n"
      "  unsigned int narrow = 0;\n"
      "  const int frozen = 0;\n"
      "}\n");
  const auto& types = file.value_types();
  // `unsigned long long wide`: neither `long` nor `wide` gets a type.
  EXPECT_EQ(types.count("wide"), 0u);
  EXPECT_EQ(types.count("lengthy"), 0u);
  // `unsigned int narrow`: ambiguous multi-word spelling, left untyped.
  EXPECT_EQ(types.count("narrow"), 0u);
  // `const int` is skipped: cannot be a narrowing assignment target.
  EXPECT_EQ(types.count("frozen"), 0u);
}

}  // namespace
}  // namespace noisybeeps::lint
