#include "util/bitstring.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.PopCount(), 0u);
  EXPECT_EQ(s.ToString(), "");
}

TEST(BitString, SizedConstructorIsAllZero) {
  BitString s(130);
  EXPECT_EQ(s.size(), 130u);
  EXPECT_EQ(s.PopCount(), 0u);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_FALSE(s[i]);
}

TEST(BitString, InitializerList) {
  BitString s({1, 0, 1, 1});
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s[0]);
  EXPECT_FALSE(s[1]);
  EXPECT_TRUE(s[2]);
  EXPECT_TRUE(s[3]);
  EXPECT_EQ(s.PopCount(), 3u);
}

TEST(BitString, InitializerListRejectsNonBits) {
  EXPECT_THROW(BitString({0, 2}), std::invalid_argument);
}

TEST(BitString, FromStringRoundTrip) {
  const std::string pattern = "01101001100101101001011001101001";
  EXPECT_EQ(BitString::FromString(pattern).ToString(), pattern);
}

TEST(BitString, FromStringRejectsJunk) {
  EXPECT_THROW(BitString::FromString("01x"), std::invalid_argument);
}

TEST(BitString, PushBackGrowsAcrossWordBoundary) {
  BitString s;
  for (int i = 0; i < 200; ++i) s.PushBack(i % 3 == 0);
  EXPECT_EQ(s.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(s[i], i % 3 == 0) << i;
}

TEST(BitString, SetAndGet) {
  BitString s(100);
  s.Set(63, true);
  s.Set(64, true);
  s.Set(99, true);
  EXPECT_TRUE(s[63]);
  EXPECT_TRUE(s[64]);
  EXPECT_TRUE(s[99]);
  EXPECT_EQ(s.PopCount(), 3u);
  s.Set(64, false);
  EXPECT_FALSE(s[64]);
  EXPECT_EQ(s.PopCount(), 2u);
}

TEST(BitString, IndexOutOfRangeThrows) {
  BitString s(5);
  EXPECT_THROW((void)s[5], std::invalid_argument);
  EXPECT_THROW(s.Set(5, true), std::invalid_argument);
}

TEST(BitString, AppendConcatenates) {
  BitString a = BitString::FromString("101");
  BitString b = BitString::FromString("0110");
  a.Append(b);
  EXPECT_EQ(a.ToString(), "1010110");
}

TEST(BitString, AppendEmptyIsNoop) {
  BitString a = BitString::FromString("11");
  a.Append(BitString());
  EXPECT_EQ(a.ToString(), "11");
}

TEST(BitString, TruncateShrinksAndClearsSlack) {
  BitString s;
  for (int i = 0; i < 70; ++i) s.PushBack(true);
  s.Truncate(65);
  EXPECT_EQ(s.size(), 65u);
  EXPECT_EQ(s.PopCount(), 65u);
  // Growing again must not resurrect stale bits.
  s.Truncate(3);
  s.PushBack(false);
  EXPECT_EQ(s.ToString(), "1110");
}

TEST(BitString, TruncateBeyondSizeThrows) {
  BitString s(4);
  EXPECT_THROW(s.Truncate(5), std::invalid_argument);
}

TEST(BitString, PrefixAndSubstring) {
  const BitString s = BitString::FromString("1100101");
  EXPECT_EQ(s.Prefix(4).ToString(), "1100");
  EXPECT_EQ(s.Prefix(0).ToString(), "");
  EXPECT_EQ(s.Substring(2, 6).ToString(), "0010");
  EXPECT_EQ(s.Substring(3, 3).ToString(), "");
  EXPECT_THROW((void)s.Substring(5, 4), std::invalid_argument);
  EXPECT_THROW((void)s.Prefix(8), std::invalid_argument);
}

TEST(BitString, HammingDistance) {
  const BitString a = BitString::FromString("110010");
  const BitString b = BitString::FromString("011011");
  EXPECT_EQ(a.HammingDistance(b), 3u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
  EXPECT_THROW((void)a.HammingDistance(BitString::FromString("1")),
               std::invalid_argument);
}

TEST(BitString, StartsWith) {
  const BitString s = BitString::FromString("10110");
  EXPECT_TRUE(s.StartsWith(BitString()));
  EXPECT_TRUE(s.StartsWith(BitString::FromString("101")));
  EXPECT_TRUE(s.StartsWith(s));
  EXPECT_FALSE(s.StartsWith(BitString::FromString("100")));
  EXPECT_FALSE(s.StartsWith(BitString::FromString("101101")));
}

TEST(BitString, EqualityIsValueBased) {
  BitString a = BitString::FromString("0101");
  BitString b;
  for (char c : std::string("0101")) b.PushBack(c == '1');
  EXPECT_EQ(a, b);
  b.PushBack(false);
  EXPECT_NE(a, b);
}

TEST(BitString, EqualityIgnoresConstructionHistory) {
  // A string truncated down and rebuilt must equal a fresh one (slack
  // words cleared).
  BitString a;
  for (int i = 0; i < 128; ++i) a.PushBack(true);
  a.Truncate(2);
  const BitString b = BitString::FromString("11");
  EXPECT_EQ(a, b);
}

TEST(BitStringProperty, AppendThenPrefixRecoversOriginal) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    BitString a;
    BitString b;
    const int la = static_cast<int>(rng.UniformInt(100));
    const int lb = static_cast<int>(rng.UniformInt(100));
    for (int i = 0; i < la; ++i) a.PushBack(rng.Bit());
    for (int i = 0; i < lb; ++i) b.PushBack(rng.Bit());
    BitString joined = a;
    joined.Append(b);
    ASSERT_EQ(joined.size(), a.size() + b.size());
    EXPECT_EQ(joined.Prefix(a.size()), a);
    EXPECT_EQ(joined.Substring(a.size(), joined.size()), b);
  }
}

TEST(BitStringProperty, PopCountMatchesNaive) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    BitString s;
    std::size_t expected = 0;
    const int len = static_cast<int>(rng.UniformInt(300));
    for (int i = 0; i < len; ++i) {
      const bool bit = rng.Bit();
      s.PushBack(bit);
      expected += bit;
    }
    EXPECT_EQ(s.PopCount(), expected);
  }
}

TEST(BitStringProperty, HammingDistanceIsAMetric) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const int len = 1 + static_cast<int>(rng.UniformInt(128));
    BitString a;
    BitString b;
    BitString c;
    for (int i = 0; i < len; ++i) {
      a.PushBack(rng.Bit());
      b.PushBack(rng.Bit());
      c.PushBack(rng.Bit());
    }
    const std::size_t ab = a.HammingDistance(b);
    const std::size_t bc = b.HammingDistance(c);
    const std::size_t ac = a.HammingDistance(c);
    EXPECT_EQ(ab, b.HammingDistance(a));
    EXPECT_LE(ac, ab + bc);  // triangle inequality
    EXPECT_EQ(a.HammingDistance(a), 0u);
  }
}

TEST(BitStringWords, WordAccessorsExposeThePacking) {
  BitString s(70);  // two words, 6 valid bits in the last
  EXPECT_EQ(s.word_count(), 2u);
  EXPECT_EQ(s.words().size(), 2u);
  s.Set(0, true);
  s.Set(64, true);
  s.Set(69, true);
  EXPECT_EQ(s.Word(0), 1u);
  EXPECT_EQ(s.Word(1), (std::uint64_t{1} << 0) | (std::uint64_t{1} << 5));
  EXPECT_THROW((void)s.Word(2), std::invalid_argument);
}

TEST(BitStringWords, SetWordMasksTheTail) {
  BitString s(70);
  s.SetWord(1, ~std::uint64_t{0});  // only bits 0..5 are valid
  EXPECT_EQ(s.Word(1), (std::uint64_t{1} << 6) - 1);
  EXPECT_EQ(s.PopCount(), 6u);
  s.SetWord(0, ~std::uint64_t{0});  // full word, nothing masked
  EXPECT_EQ(s.Word(0), ~std::uint64_t{0});
  EXPECT_EQ(s.PopCount(), 70u);
  EXPECT_THROW(s.SetWord(2, 1), std::invalid_argument);
}

TEST(BitStringWords, TailMaskValues) {
  EXPECT_EQ(BitString::TailMask(64), ~std::uint64_t{0});
  EXPECT_EQ(BitString::TailMask(128), ~std::uint64_t{0});
  EXPECT_EQ(BitString::TailMask(1), 1u);
  EXPECT_EQ(BitString::TailMask(6), (std::uint64_t{1} << 6) - 1);
  EXPECT_EQ(BitString::TailMask(0), ~std::uint64_t{0});
}

TEST(BitStringWords, ResizeGrowsZeroFilledAndShrinksClean) {
  BitString s;
  for (int i = 0; i < 70; ++i) s.PushBack(true);
  s.Resize(200);
  EXPECT_EQ(s.size(), 200u);
  EXPECT_EQ(s.PopCount(), 70u);  // growth appends zeros
  for (std::size_t i = 70; i < 200; ++i) EXPECT_FALSE(s[i]);
  s.Resize(3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.PopCount(), 3u);
  // Regrow across the old dirty region: the slack must have been cleared.
  s.Resize(130);
  EXPECT_EQ(s.PopCount(), 3u);
}

// The tail-bit invariant, mechanically: after ANY randomized mutation
// sequence, the unused high bits of the last word are zero, and the
// word-path PopCount/HammingDistance agree with a bit-by-bit reference.
TEST(BitStringProperty, MutationsPreserveTheTailBitInvariant) {
  Rng rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    BitString s;
    for (int step = 0; step < 60; ++step) {
      switch (rng.UniformInt(6)) {
        case 0:
          s.PushBack(rng.Bit());
          break;
        case 1:
          if (s.size() > 0) s.Set(rng.UniformInt(s.size()), rng.Bit());
          break;
        case 2:
          s.Truncate(rng.UniformInt(s.size() + 1));
          break;
        case 3: {
          BitString other;
          const std::uint64_t extra = rng.UniformInt(80);
          for (std::uint64_t i = 0; i < extra; ++i) other.PushBack(rng.Bit());
          s.Append(other);
          break;
        }
        case 4:
          s.Resize(rng.UniformInt(150));
          break;
        case 5:
          if (s.word_count() > 0) {
            s.SetWord(rng.UniformInt(s.word_count()), rng.NextU64());
          }
          break;
      }
      // Invariant: slack bits of the last word are zero.
      if (s.word_count() > 0) {
        ASSERT_EQ(s.words().back() & ~BitString::TailMask(s.size()), 0u)
            << "trial " << trial << " step " << step;
      }
      // Word-path PopCount equals the bit-by-bit reference.
      std::size_t naive = 0;
      for (std::size_t i = 0; i < s.size(); ++i) naive += s[i] ? 1 : 0;
      ASSERT_EQ(s.PopCount(), naive) << "trial " << trial << " step " << step;
    }
    // Word-path HammingDistance equals the bit-by-bit reference against a
    // fresh random string of the same length.
    BitString other(s.size());
    for (std::size_t i = 0; i < other.size(); ++i) other.Set(i, rng.Bit());
    std::size_t naive_hd = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      naive_hd += s[i] != other[i] ? 1 : 0;
    }
    ASSERT_EQ(s.HammingDistance(other), naive_hd) << "trial " << trial;
  }
}

}  // namespace
}  // namespace noisybeeps
